"""Property-based tests: the symbolic set algebra against brute force.

Random small sets are generated as unions of conjuncts of random affine
constraints (plus occasional stride constraints) over a bounded box; every
algebraic operation must agree with the brute-force evaluation of
membership over the box.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.isets import (
    Conjunct,
    Constraint,
    IntegerSet,
    LinExpr,
    Space,
    enumerate_points,
    fresh_name,
    split_disjoint,
)

BOX = (-4, 6)
DIMS = ("x", "y")


def _box_constraints():
    constraints = []
    for dim in DIMS:
        v = LinExpr.var(dim)
        constraints.append(Constraint.geq(v, BOX[0]))
        constraints.append(Constraint.leq(v, BOX[1]))
    return constraints


@st.composite
def conjuncts(draw):
    n_constraints = draw(st.integers(0, 3))
    constraints = list(_box_constraints())
    wildcards = []
    for _ in range(n_constraints):
        cx = draw(st.integers(-2, 2))
        cy = draw(st.integers(-2, 2))
        const = draw(st.integers(-5, 5))
        expr = LinExpr({"x": cx, "y": cy}, const)
        kind = draw(st.sampled_from([">=", "=="]))
        if kind == ">=":
            constraints.append(Constraint.geq(expr, 0))
        else:
            constraints.append(Constraint.eq(expr, 0))
    if draw(st.booleans()):
        modulus = draw(st.integers(2, 3))
        offset = draw(st.integers(0, 2))
        dim = draw(st.sampled_from(DIMS))
        w = fresh_name("h")
        constraints.append(
            Constraint.eq(
                LinExpr.var(dim),
                LinExpr.var(w).scaled(modulus) + offset,
            )
        )
        wildcards.append(w)
    return Conjunct(constraints, wildcards)


@st.composite
def sets(draw):
    n = draw(st.integers(1, 2))
    return IntegerSet(Space(DIMS), [draw(conjuncts()) for _ in range(n)])


def points_of(subset):
    result = set()
    lo, hi = BOX
    for point in itertools.product(range(lo, hi + 1), repeat=len(DIMS)):
        if subset.contains(point):
            result.add(point)
    return result


@settings(max_examples=40, deadline=None)
@given(sets(), sets())
def test_union_matches_brute_force(a, b):
    assert points_of(a.union(b)) == points_of(a) | points_of(b)


@settings(max_examples=40, deadline=None)
@given(sets(), sets())
def test_intersection_matches_brute_force(a, b):
    assert points_of(a.intersect(b)) == points_of(a) & points_of(b)


@settings(max_examples=40, deadline=None)
@given(sets(), sets())
def test_difference_matches_brute_force(a, b):
    assert points_of(a.subtract(b)) == points_of(a) - points_of(b)


@settings(max_examples=40, deadline=None)
@given(sets())
def test_emptiness_matches_brute_force(a):
    assert a.is_empty() == (not points_of(a))


@settings(max_examples=40, deadline=None)
@given(sets(), sets())
def test_subset_matches_brute_force(a, b):
    assert a.is_subset(b) == (points_of(a) <= points_of(b))


@settings(max_examples=30, deadline=None)
@given(sets())
def test_simplify_preserves_meaning(a):
    assert points_of(a.simplify()) == points_of(a)
    assert points_of(a.simplify(full=True)) == points_of(a)


@settings(max_examples=30, deadline=None)
@given(sets())
def test_enumeration_matches_brute_force(a):
    assert set(enumerate_points(a)) == points_of(a)


@settings(max_examples=30, deadline=None)
@given(sets())
def test_split_disjoint_partitions(a):
    pieces = split_disjoint(a)
    seen = set()
    for piece in pieces:
        pts = points_of(piece)
        assert not (pts & seen), "disjoint pieces overlap"
        seen |= pts
    assert seen == points_of(a)


@settings(max_examples=30, deadline=None)
@given(sets())
def test_projection_matches_brute_force(a):
    projected = a.project_out("y")
    expected = {(x,) for (x, _) in points_of(a)}
    lo, hi = BOX
    got = {
        (x,) for x in range(lo, hi + 1) if projected.contains((x,))
    }
    assert got == expected
