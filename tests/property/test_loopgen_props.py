"""Property-based tests: loop generation scans exactly the set."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.isets import (
    Conjunct,
    Constraint,
    IntegerSet,
    LinExpr,
    Space,
    fresh_name,
    generate_loops,
    run_loops,
    mm_codegen,
)

DIMS = ("x", "y")
BOX = (0, 7)


def _box_constraints():
    constraints = []
    for dim in DIMS:
        v = LinExpr.var(dim)
        constraints.append(Constraint.geq(v, BOX[0]))
        constraints.append(Constraint.leq(v, BOX[1]))
    return constraints


@st.composite
def bounded_sets(draw):
    conjuncts = []
    for _ in range(draw(st.integers(1, 2))):
        constraints = list(_box_constraints())
        wildcards = []
        for _ in range(draw(st.integers(0, 2))):
            cx = draw(st.integers(-2, 2))
            cy = draw(st.integers(-2, 2))
            const = draw(st.integers(-6, 6))
            constraints.append(
                Constraint.geq(LinExpr({"x": cx, "y": cy}, const), 0)
            )
        if draw(st.booleans()):
            modulus = draw(st.integers(2, 3))
            dim = draw(st.sampled_from(DIMS))
            w = fresh_name("h")
            constraints.append(
                Constraint.eq(
                    LinExpr.var(dim),
                    LinExpr.var(w).scaled(modulus)
                    + draw(st.integers(0, 2)),
                )
            )
            wildcards.append(w)
        conjuncts.append(Conjunct(constraints, wildcards))
    return IntegerSet(Space(DIMS), conjuncts)


def brute(subset):
    result = set()
    lo, hi = BOX
    for point in itertools.product(range(lo, hi + 1), repeat=2):
        if subset.contains(point):
            result.add(point)
    return result


def scan(fragments):
    points = []
    run_loops(
        fragments, {}, lambda payload, env: points.append(
            (env["x"], env["y"])
        )
    )
    return points


@settings(max_examples=30, deadline=None)
@given(bounded_sets())
def test_generated_loops_scan_exactly_the_set(subset):
    points = scan(generate_loops(subset, "S"))
    assert len(points) == len(set(points)), "duplicate iteration"
    assert set(points) == brute(subset)


@settings(max_examples=30, deadline=None)
@given(bounded_sets())
def test_single_conjunct_scan_is_lexicographic(subset):
    # Global lexicographic order is guaranteed per disjoint piece (a union
    # emits one nest per piece, sequentially — see DESIGN.md); for a single
    # conjunct that is the whole set.
    piece = IntegerSet(subset.space, subset.conjuncts[:1])
    points = scan(generate_loops(piece, "S"))
    assert points == sorted(points)


@settings(max_examples=20, deadline=None)
@given(bounded_sets(), bounded_sets())
def test_mm_codegen_executes_each_statement_once(a, b):
    events = []
    run_loops(
        mm_codegen([(a, "A"), (b, "B")]),
        {},
        lambda payload, env: events.append(
            ((env["x"], env["y"]), payload)
        ),
    )
    assert len(events) == len(set(events)), "duplicate execution"
    a_points = {point for point, payload in events if payload == "A"}
    b_points = {point for point, payload in events if payload == "B"}
    assert a_points == brute(a)
    assert b_points == brute(b)
