"""Property tests for the set-engine fast paths against brute force.

The performance overhaul added pre-tests and reorderings that must never
change any *answer*:

* :func:`repro.isets.omega._quick_feasibility` — the GCD / interval /
  corner-witness emptiness pre-test.  It returns a tri-state; whenever it
  commits to an answer, that answer must match brute-force enumeration.
* ``project_out(..., order="least_fill")`` — the fill-minimizing
  elimination order.  It may produce a different *representation* than
  the default caller order (which is why it is opt-in, see DESIGN.md),
  but the set of points must be identical to brute-force projection.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.isets import Conjunct, Constraint, LinExpr
from repro.isets.errors import InexactOperationError
from repro.isets.omega import (
    _quick_feasibility,
    is_empty_conjunct,
    project_out,
)

BOX = (-3, 4)


def _box_constraints(dims):
    constraints = []
    for dim in dims:
        v = LinExpr.var(dim)
        constraints.append(Constraint.geq(v, BOX[0]))
        constraints.append(Constraint.leq(v, BOX[1]))
    return constraints


@st.composite
def boxed_conjuncts(draw, dims=("x", "y", "z")):
    """A wildcard-free conjunct whose points all lie in the box."""
    constraints = list(_box_constraints(dims))
    for _ in range(draw(st.integers(0, 4))):
        coeffs = {
            dim: draw(st.integers(-3, 3)) for dim in dims
        }
        expr = LinExpr(coeffs, draw(st.integers(-6, 6)))
        if draw(st.booleans()):
            constraints.append(Constraint.geq(expr, 0))
        else:
            constraints.append(Constraint.eq(expr, 0))
    return Conjunct(constraints, [])


def _points(conjunct, dims=("x", "y", "z")):
    lo, hi = BOX
    found = set()
    for values in itertools.product(range(lo, hi + 1), repeat=len(dims)):
        env = dict(zip(dims, values))
        if all(c.holds(env) for c in conjunct.constraints):
            found.add(values)
    return found


@settings(max_examples=120, deadline=None)
@given(boxed_conjuncts())
def test_quick_feasibility_sound_both_directions(conjunct):
    verdict = _quick_feasibility(conjunct)
    if verdict is None:
        return  # undecided is always allowed
    assert verdict == (not _points(conjunct)), (
        f"pre-test said {'empty' if verdict else 'nonempty'} but brute "
        f"force disagrees for {conjunct}"
    )


@settings(max_examples=120, deadline=None)
@given(boxed_conjuncts())
def test_quick_feasibility_agrees_with_full_test(conjunct):
    verdict = _quick_feasibility(conjunct)
    if verdict is not None:
        assert verdict == is_empty_conjunct(conjunct)


@settings(max_examples=80, deadline=None)
@given(boxed_conjuncts(), st.sampled_from([("y",), ("z",), ("y", "z")]))
def test_least_fill_projection_matches_brute_force(conjunct, eliminate):
    kept = tuple(d for d in ("x", "y", "z") if d not in eliminate)
    expected = {
        tuple(p[("x", "y", "z").index(d)] for d in kept)
        for p in _points(conjunct)
    }
    for order in ("given", "least_fill"):
        try:
            pieces = project_out(conjunct, list(eliminate), order=order)
        except InexactOperationError:
            # The exact-elimination iteration cap is a documented engine
            # limit, orthogonal to the ordering property under test.
            continue
        lo, hi = BOX
        got = set()
        for values in itertools.product(
            range(lo, hi + 1), repeat=len(kept)
        ):
            env = dict(zip(kept, values))
            if any(
                not is_empty_conjunct(piece.partial_evaluate(env))
                for piece in pieces
            ):
                got.add(values)
        assert got == expected, (
            f"project_out(order={order!r}) disagrees with brute force "
            f"eliminating {eliminate} from {conjunct}"
        )
