"""Property tests for the set-engine fast paths against brute force.

The performance overhaul added pre-tests and reorderings that must never
change any *answer*:

* :func:`repro.isets.omega._quick_feasibility` — the GCD / interval /
  corner-witness emptiness pre-test.  It returns a tri-state; whenever it
  commits to an answer, that answer must match brute-force enumeration.
* ``project_out(..., order="least_fill")`` — the fill-minimizing
  elimination order.  It may produce a different *representation* than
  the default caller order (which is why it is opt-in, see DESIGN.md),
  but the set of points must be identical to brute-force projection.
* :func:`repro.isets.bounds.presolve_constraints` — the
  bounds-propagation presolve.  An ``empty`` verdict, the per-variable
  interval windows, and the pinned values must each agree with brute
  force; ``project_out`` must produce pointwise-identical projections
  whether or not the presolve (and its pin-elimination) runs.
* :func:`repro.isets.bounds.presolve_disjoint` — the cross-conjunct
  disjointness pretest behind the subtraction identity fast path.  A
  ``True`` answer must mean a genuinely empty intersection.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.isets import Conjunct, Constraint, LinExpr
from repro.isets.bounds import (
    presolve_constraints,
    presolve_disabled,
    presolve_disjoint,
)
from repro.isets.errors import InexactOperationError
from repro.isets.omega import (
    _quick_feasibility,
    is_empty_conjunct,
    project_out,
)

BOX = (-3, 4)


def _box_constraints(dims):
    constraints = []
    for dim in dims:
        v = LinExpr.var(dim)
        constraints.append(Constraint.geq(v, BOX[0]))
        constraints.append(Constraint.leq(v, BOX[1]))
    return constraints


@st.composite
def boxed_conjuncts(draw, dims=("x", "y", "z")):
    """A wildcard-free conjunct whose points all lie in the box."""
    constraints = list(_box_constraints(dims))
    for _ in range(draw(st.integers(0, 4))):
        coeffs = {
            dim: draw(st.integers(-3, 3)) for dim in dims
        }
        expr = LinExpr(coeffs, draw(st.integers(-6, 6)))
        if draw(st.booleans()):
            constraints.append(Constraint.geq(expr, 0))
        else:
            constraints.append(Constraint.eq(expr, 0))
    return Conjunct(constraints, [])


def _points(conjunct, dims=("x", "y", "z")):
    lo, hi = BOX
    found = set()
    for values in itertools.product(range(lo, hi + 1), repeat=len(dims)):
        env = dict(zip(dims, values))
        if all(c.holds(env) for c in conjunct.constraints):
            found.add(values)
    return found


@settings(max_examples=120, deadline=None)
@given(boxed_conjuncts())
def test_quick_feasibility_sound_both_directions(conjunct):
    verdict = _quick_feasibility(conjunct)
    if verdict is None:
        return  # undecided is always allowed
    assert verdict == (not _points(conjunct)), (
        f"pre-test said {'empty' if verdict else 'nonempty'} but brute "
        f"force disagrees for {conjunct}"
    )


@settings(max_examples=120, deadline=None)
@given(boxed_conjuncts())
def test_quick_feasibility_agrees_with_full_test(conjunct):
    verdict = _quick_feasibility(conjunct)
    if verdict is not None:
        assert verdict == is_empty_conjunct(conjunct)


@settings(max_examples=80, deadline=None)
@given(boxed_conjuncts(), st.sampled_from([("y",), ("z",), ("y", "z")]))
def test_least_fill_projection_matches_brute_force(conjunct, eliminate):
    kept = tuple(d for d in ("x", "y", "z") if d not in eliminate)
    expected = {
        tuple(p[("x", "y", "z").index(d)] for d in kept)
        for p in _points(conjunct)
    }
    for order in ("given", "least_fill"):
        try:
            pieces = project_out(conjunct, list(eliminate), order=order)
        except InexactOperationError:
            # The exact-elimination iteration cap is a documented engine
            # limit, orthogonal to the ordering property under test.
            continue
        lo, hi = BOX
        got = set()
        for values in itertools.product(
            range(lo, hi + 1), repeat=len(kept)
        ):
            env = dict(zip(kept, values))
            if any(
                not is_empty_conjunct(piece.partial_evaluate(env))
                for piece in pieces
            ):
                got.add(values)
        assert got == expected, (
            f"project_out(order={order!r}) disagrees with brute force "
            f"eliminating {eliminate} from {conjunct}"
        )


@settings(max_examples=150, deadline=None)
@given(boxed_conjuncts())
def test_presolve_sound_both_directions(conjunct):
    result = presolve_constraints(conjunct.constraints)
    points = _points(conjunct)
    if result.empty:
        assert not points, (
            f"presolve declared empty ({result.reason}) but {conjunct} "
            f"contains {sorted(points)[:3]}"
        )
        return
    # Intervals are relaxations: every real point must fit every window,
    # and every pinned variable must take exactly its pinned value.
    for values in points:
        env = dict(zip(("x", "y", "z"), values))
        for var, (lo, hi) in result.intervals.items():
            value = env.get(var)
            if value is None:
                continue
            assert lo is None or value >= lo
            assert hi is None or value <= hi
        for var, pinned in result.pinned.items():
            if var in env:
                assert env[var] == pinned


@settings(max_examples=150, deadline=None)
@given(boxed_conjuncts())
def test_presolve_pins_match_brute_force(conjunct):
    points = _points(conjunct)
    if not points:
        return
    result = presolve_constraints(conjunct.constraints)
    assert not result.empty
    for var, pinned in result.pinned.items():
        slot = ("x", "y", "z").index(var)
        seen = {p[slot] for p in points}
        assert seen == {pinned}, (
            f"presolve pinned {var}={pinned} but brute force finds "
            f"{sorted(seen)} in {conjunct}"
        )


@settings(max_examples=60, deadline=None)
@given(boxed_conjuncts(), st.sampled_from([("y",), ("z",), ("y", "z")]))
def test_project_out_pinning_pointwise_equal(conjunct, eliminate):
    """Pin-aware elimination never changes the projected point set."""
    kept = tuple(d for d in ("x", "y", "z") if d not in eliminate)
    results = []
    for presolve_on in (True, False):
        try:
            if presolve_on:
                pieces = project_out(conjunct, list(eliminate))
            else:
                with presolve_disabled():
                    pieces = project_out(conjunct, list(eliminate))
        except InexactOperationError:
            return
        lo, hi = BOX
        got = set()
        for values in itertools.product(
            range(lo, hi + 1), repeat=len(kept)
        ):
            env = dict(zip(kept, values))
            if any(
                not is_empty_conjunct(piece.partial_evaluate(env))
                for piece in pieces
            ):
                got.add(values)
        results.append(got)
    assert results[0] == results[1], (
        f"project_out differs with presolve on/off eliminating "
        f"{eliminate} from {conjunct}"
    )


@settings(max_examples=150, deadline=None)
@given(boxed_conjuncts(), boxed_conjuncts())
def test_presolve_disjoint_implies_empty_intersection(a, b):
    if not presolve_disjoint(a, b):
        return  # "maybe overlapping" is always allowed
    overlap = _points(a) & _points(b)
    assert not overlap, (
        f"pretest called {a} and {b} disjoint but they share "
        f"{sorted(overlap)[:3]}"
    )
