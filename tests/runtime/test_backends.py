"""Unit tests for the execution-backend subsystem.

Backends are driven directly through raw :class:`LaunchSpec` objects with
hand-written node programs, so failure paths (tag mismatch, deadlock,
rank crash) are exercised on *every* backend without paying for a
compile.
"""

import typing

import pytest

from repro.runtime import RunStatistics, Trace
from repro.runtime.backends import (
    ExecutionBackend,
    LaunchSpec,
    RankBindings,
    backend_names,
    get_backend,
    resolve_backend,
)
from repro.runtime.machine import CommunicationError, Machine
from repro.runtime.options import (
    RECV_TIMEOUT_ENV,
    RuntimeOptions,
    default_recv_timeout,
)
from repro.runtime.trace import (
    CollectiveEvent,
    ComputeEvent,
    Event,
    RecvEvent,
    SendEvent,
)

BACKENDS = ("threads", "mp", "inproc-seq")


def _spec(body: str, nprocs: int, recv_timeout_s: float = 2.0) -> LaunchSpec:
    """A launch spec around a hand-written node program."""
    source = "import numpy as np\n\n" + body
    bindings = [
        RankBindings(rank, {}, {}, {}, ["out"], {})
        for rank in range(nprocs)
    ]
    options = RuntimeOptions(
        recv_timeout_s=recv_timeout_s, run_timeout_s=30.0
    )
    return LaunchSpec(nprocs, source, bindings, [], options)


class TestRegistry:
    def test_all_backends_registered(self):
        assert set(BACKENDS) <= set(backend_names())

    def test_unknown_backend_rejected_with_clear_error(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            get_backend("nonesuch")
        with pytest.raises(ValueError, match="threads"):
            get_backend("nonesuch")  # message lists what IS registered

    def test_resolve_accepts_instances(self):
        backend = get_backend("threads")
        assert resolve_backend(backend) is backend
        assert resolve_backend("threads").name == "threads"

    def test_backend_instances_report_their_names(self):
        for name in BACKENDS:
            backend = get_backend(name)
            assert isinstance(backend, ExecutionBackend)
            assert backend.name == name


ROUNDTRIP = """
def node_main(rt):
    if rt.rank == 0:
        rt.send(1, "t", [1.0, 2.0], indices=[(1,), (2,)])
        idx, vals = rt.recv(1, "u")
        rt.scalars["out"] = vals[0]
    elif rt.rank == 1:
        idx, vals = rt.recv(0, "t")
        rt.send(0, "u", [vals[0] + vals[1]], indices=[(0,)])
        rt.scalars["out"] = vals[1]
    rt.work(3)
"""

ALLREDUCE = """
def node_main(rt):
    rt.scalars["out"] = rt.allreduce("+", float(rt.rank + 1))
    rt.scalars["out"] += rt.allreduce("max", float(rt.rank))
    rt.barrier()
"""

TAG_MISMATCH = """
def node_main(rt):
    if rt.rank == 0:
        rt.send(1, "a", [1.0])
    else:
        rt.recv(0, "b")
"""

DEADLOCK = """
def node_main(rt):
    if rt.rank == 1:
        rt.recv(0, "never")
"""

CRASH = """
def node_main(rt):
    if rt.rank == 1:
        raise ValueError("boom")
    rt.recv(1, "never-sent")
"""


@pytest.mark.parametrize("backend", BACKENDS)
class TestEveryBackend:
    def test_point_to_point_roundtrip(self, backend):
        launch = get_backend(backend).launch(_spec(ROUNDTRIP, 2))
        assert launch.results[0].scalars["out"] == 3.0
        assert launch.results[1].scalars["out"] == 2.0
        assert launch.results[0].trace.compute_units == 3
        assert len(launch.timings) == 2
        assert all(t.wall_s >= 0.0 for t in launch.timings)

    def test_collectives(self, backend):
        for nprocs in (1, 2, 3, 4):
            launch = get_backend(backend).launch(_spec(ALLREDUCE, nprocs))
            expected = sum(range(1, nprocs + 1)) + (nprocs - 1)
            for result in launch.results:
                assert result.scalars["out"] == expected
                assert result.trace.collectives == 3

    def test_tag_mismatch_surfaces(self, backend):
        with pytest.raises(CommunicationError):
            get_backend(backend).launch(_spec(TAG_MISMATCH, 2))

    def test_deadlock_surfaces_not_hangs(self, backend):
        with pytest.raises(CommunicationError):
            get_backend(backend).launch(_spec(DEADLOCK, 2))

    def test_rank_crash_surfaces(self, backend):
        with pytest.raises(CommunicationError):
            get_backend(backend).launch(_spec(CRASH, 2))


class TestSequentialDeterminism:
    def test_identical_traces_across_runs(self):
        backend = get_backend("inproc-seq")
        runs = [backend.launch(_spec(ROUNDTRIP, 2)) for _ in range(2)]
        first = [r.trace.events for r in runs[0].results]
        second = [r.trace.events for r in runs[1].results]
        assert first == second


class TestMpTransport:
    def test_large_payload_falls_back_to_pickle(self):
        # a payload bigger than any ring must still arrive intact
        big = """
def node_main(rt):
    n = 200000
    if rt.rank == 0:
        rt.send(1, "big", [float(i) for i in range(n)])
    else:
        _, vals = rt.recv(0, "big")
        rt.scalars["out"] = vals[-1]
"""
        launch = get_backend("mp").launch(_spec(big, 2))
        assert launch.results[1].scalars["out"] == 199999.0

    def test_many_small_messages_reuse_ring(self):
        chatty = """
def node_main(rt):
    other = 1 - rt.rank
    total = 0.0
    for i in range(300):
        rt.send(other, ("m", i), [float(i)] * 64)
        _, vals = rt.recv(other, ("m", i))
        total += vals[0]
    rt.scalars["out"] = total
"""
        launch = get_backend("mp").launch(_spec(chatty, 2))
        assert launch.results[0].scalars["out"] == sum(range(300))

    def test_per_event_timings_recorded(self):
        launch = get_backend("mp").launch(_spec(ROUNDTRIP, 2))
        timing = launch.timings[0]
        assert timing.comm_wall_s > 0.0
        # one send + one recv = two timed communication events
        assert len(timing.per_event_s) == 2


class TestRecvTimeoutConfig:
    def test_env_var_controls_default(self, monkeypatch):
        monkeypatch.setenv(RECV_TIMEOUT_ENV, "3.5")
        assert default_recv_timeout() == 3.5
        assert RuntimeOptions().recv_timeout_s == 3.5
        assert Machine(2).recv_timeout_s == 3.5
        assert Machine(2).collective.timeout_s == 3.5

    def test_invalid_env_var_falls_back(self, monkeypatch):
        monkeypatch.setenv(RECV_TIMEOUT_ENV, "not-a-number")
        assert default_recv_timeout() == 60.0
        monkeypatch.setenv(RECV_TIMEOUT_ENV, "-1")
        assert default_recv_timeout() == 60.0

    def test_explicit_machine_timeout_wins(self, monkeypatch):
        monkeypatch.setenv(RECV_TIMEOUT_ENV, "3.5")
        machine = Machine(2, recv_timeout_s=0.25)
        assert machine.recv_timeout_s == 0.25
        assert machine.collective.timeout_s == 0.25

    def test_collective_timeout_honored(self):
        from repro.runtime.machine import NodeRuntime

        def node(rt):
            if rt.rank == 0:
                rt.allreduce("+", 1.0)  # rank 1 never joins

        def make(rank, machine):
            return NodeRuntime(machine, rank, {}, {}, {}, {})

        with pytest.raises(CommunicationError):
            Machine(2, recv_timeout_s=0.2).run(node, make)


class TestTraceTypes:
    def test_event_is_a_real_union(self):
        members = set(typing.get_args(Event))
        assert members == {
            ComputeEvent, SendEvent, RecvEvent, CollectiveEvent,
        }

    def test_run_statistics_merge_roundtrip(self):
        t0, t1, t2 = Trace(0), Trace(1), Trace(2)
        t0.compute(5.0)
        t0.send(1, "a", 80, 80)
        t1.recv(0, "a", 80, 0)
        t1.compute(9.0)
        t1.check(4)
        t2.collective("allreduce", 8)
        t2.compute(2.0)

        whole = RunStatistics.from_traces([t0, t1, t2])
        merged = RunStatistics.from_traces([t0]).merge(
            RunStatistics.from_traces([t1, t2])
        )
        assert merged == whole
        assert merged.nprocs == 3
        assert merged.max_compute == 9.0
