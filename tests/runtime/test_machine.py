"""Unit tests for the simulated message-passing machine."""

import numpy as np
import pytest

from repro.runtime.machine import (
    CommunicationError,
    Machine,
    NodeRuntime,
)


def _make_runtime_factory(scalars=None):
    def make(rank, machine):
        return NodeRuntime(
            machine, rank, {"rank": rank}, {}, {}, dict(scalars or {})
        )
    return make


def test_point_to_point_roundtrip():
    def node(rt):
        if rt.rank == 0:
            rt.send(1, "t", [1.0, 2.0], indices=[(1,), (2,)])
        else:
            idx, vals = rt.recv(0, "t")
            assert idx == [(1,), (2,)]
            assert list(vals) == [1.0, 2.0]

    Machine(2).run(node, _make_runtime_factory())


def test_allreduce_ops():
    results = {}

    def node(rt):
        results[("max", rt.rank)] = rt.allreduce("max", rt.rank * 10)
        results[("sum", rt.rank)] = rt.allreduce("+", 1.0)

    Machine(3).run(node, _make_runtime_factory())
    assert results[("max", 0)] == 20
    assert results[("sum", 2)] == 3.0


def test_exchange_does_not_deadlock():
    def node(rt):
        other = 1 - rt.rank
        rt.send(other, "x", [float(rt.rank)])
        _, vals = rt.recv(other, "x")
        assert list(vals) == [float(other)]

    Machine(2).run(node, _make_runtime_factory())


def test_tag_mismatch_detected():
    def node(rt):
        if rt.rank == 0:
            rt.send(1, "a", [1.0])
        else:
            rt.recv(0, "b")

    with pytest.raises(CommunicationError):
        Machine(2).run(node, _make_runtime_factory())


def test_rank_exception_surfaces():
    def node(rt):
        if rt.rank == 1:
            raise ValueError("boom")
        rt.allreduce("+", 0)  # would block forever without rank 1

    with pytest.raises(CommunicationError):
        Machine(2).run(node, _make_runtime_factory())


def test_traces_recorded():
    def node(rt):
        rt.work(42)
        if rt.rank == 0:
            rt.send(1, "t", [1.0] * 10)
        else:
            rt.recv(0, "t")

    results = Machine(2).run(node, _make_runtime_factory())
    assert results[0].trace.compute_units == 42
    assert results[0].trace.messages_sent == 1
    assert results[0].trace.bytes_sent == 80


def test_member_closures_with_overrides():
    def node(rt):
        assert rt.member(0, (3,)) is True
        assert rt.member(0, (3,), {"lim": 2}) is False

    def make(rank, machine):
        rt = NodeRuntime(machine, rank, {"lim": 5}, {}, {}, {})
        rt.member_fns = [lambda env, pt: pt[0] <= env["lim"]]
        return rt

    Machine(1).run(node, make)
