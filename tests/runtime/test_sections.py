"""Unit tests for the section-descriptor data plane helpers."""

import numpy as np
import pytest

from repro.runtime.sections import (
    message_count,
    own_payload,
    pack_sections,
    scatter_sections,
    section_count,
)


def grid(rows=8, cols=8):
    return np.arange(rows * cols, dtype=np.float64).reshape(rows, cols)


class TestCounts:
    def test_slice_section_count(self):
        assert section_count(("S", ((3, 4, 2), (0, 5, 1)))) == 20

    def test_fancy_section_count(self):
        assert section_count(("F", ((1, 2, 5), (0, 0, 3)))) == 3

    def test_message_count_sums_sections(self):
        secs = [("S", ((0, 2, 1),)), ("F", ((4, 6),))]
        assert message_count(secs) == 4


class TestPackScatterRoundtrip:
    @pytest.mark.parametrize(
        "sections",
        [
            [("S", ((2, 5, 1),))],  # contiguous 1-D span
            [("S", ((1, 3, 2),))],  # strided 1-D span
            [("S", ((2, 3, 1), (1, 4, 1)))],  # 2-D block
            [("S", ((1, 3, 2), (0, 4, 2)))],  # 2-D strided lattice
            [("F", ((0, 3, 7), (7, 3, 0)))],  # fancy scatter
            [
                ("S", ((0, 2, 1), (0, 8, 1))),
                ("F", ((5, 6), (1, 2))),
                ("S", ((7, 1, 1), (2, 3, 1))),
            ],  # mixed multi-section message
        ],
    )
    def test_roundtrip(self, sections):
        src = grid()
        dst = np.full_like(src, -1.0)
        one_d = len(sections[0][1]) == 1
        if one_d:
            src = np.arange(16, dtype=np.float64)
            dst = np.full_like(src, -1.0)
        payload, copied, viewed = pack_sections(
            src, (0,) * src.ndim, sections, force_copy=True
        )
        assert payload.flags.c_contiguous and payload.dtype == np.float64
        assert payload.size == message_count(sections)
        assert copied == payload.nbytes and viewed == 0
        consumed = scatter_sections(
            dst, (0,) * dst.ndim, sections, payload
        )
        assert consumed == payload.size
        # Every described element landed; nothing else was touched.
        from repro.runtime.sections import section_view

        for section in sections:
            np.testing.assert_array_equal(
                section_view(dst, (0,) * dst.ndim, section),
                section_view(src, (0,) * src.ndim, section),
            )

    def test_global_coordinates_use_lbounds(self):
        # Sender allocation starts at global index 1, receiver at 3.
        src = np.arange(10, dtype=np.float64)
        dst = np.zeros(10)
        sections = [("S", ((4, 3, 1),))]  # global 4..6
        payload, _, _ = pack_sections(src, (1,), sections, force_copy=True)
        np.testing.assert_array_equal(payload, src[3:6])
        scatter_sections(dst, (3,), sections, payload)
        np.testing.assert_array_equal(dst[1:4], src[3:6])


class TestCopyViewRules:
    def test_single_contiguous_section_is_zero_copy(self):
        src = grid()
        sections = [("S", ((2, 1, 1), (0, 8, 1)))]  # one full row
        payload, copied, viewed = pack_sections(
            src, (0, 0), sections, force_copy=False
        )
        assert np.shares_memory(payload, src)
        assert copied == 0 and viewed == payload.nbytes

    def test_force_copy_snapshots(self):
        src = grid()
        sections = [("S", ((2, 1, 1), (0, 8, 1)))]
        payload, copied, viewed = pack_sections(
            src, (0, 0), sections, force_copy=True
        )
        assert not np.shares_memory(payload, src)
        assert copied == payload.nbytes and viewed == 0
        src[2, :] = -7.0  # sender reuses its buffer: payload unaffected
        assert payload[0] == 16.0

    def test_strided_section_stages_one_copy(self):
        src = grid()
        sections = [("S", ((0, 8, 1), (3, 1, 1)))]  # one column
        payload, copied, viewed = pack_sections(
            src, (0, 0), sections, force_copy=False
        )
        assert not np.shares_memory(payload, src)
        assert copied == payload.nbytes and viewed == 0

    def test_scatter_accepts_readonly_payload(self):
        src = np.arange(8, dtype=np.float64)
        src.flags.writeable = False
        dst = np.zeros(8)
        scatter_sections(dst, (0,), [("S", ((0, 8, 1),))], src)
        np.testing.assert_array_equal(dst, src)


class TestErrors:
    def test_count_payload_mismatch_raises(self):
        dst = np.zeros(8)
        with pytest.raises(ValueError):
            scatter_sections(
                dst, (0,), [("S", ((0, 3, 1),))],
                np.zeros(5, dtype=np.float64),
            )

    def test_out_of_bounds_section_raises(self):
        dst = np.zeros(8)
        with pytest.raises(ValueError):
            scatter_sections(
                dst, (0,), [("S", ((4, 8, 1),))],
                np.zeros(8, dtype=np.float64),
            )


class TestOwnPayload:
    def test_list_is_materialized_once(self):
        payload, copied = own_payload([1.0, 2.0, 3.0])
        assert isinstance(payload, np.ndarray)
        assert payload.dtype == np.float64
        assert copied == 24

    def test_ndarray_is_snapshotted(self):
        values = np.arange(4, dtype=np.float64)
        payload, copied = own_payload(values)
        assert not np.shares_memory(payload, values)
        values[:] = 0.0
        np.testing.assert_array_equal(payload, [0.0, 1.0, 2.0, 3.0])
        assert copied == 32

    def test_generator_accepted(self):
        payload, _ = own_payload(float(i) for i in range(3))
        np.testing.assert_array_equal(payload, [0.0, 1.0, 2.0])
