"""Edge-case coverage for the mp backend's shared-memory rings.

The ring is exercised directly over a plain ``bytearray`` — the
single-producer/single-consumer protocol is identical whether the bytes
live in a ``multiprocessing.shared_memory`` segment or not.
"""

import numpy as np
import pytest

from repro.runtime.backends.mp import _RING_HEADER, _ShmRing


def make_ring(capacity: int) -> _ShmRing:
    return _ShmRing(memoryview(bytearray(_RING_HEADER + capacity)))


def floats(*values) -> np.ndarray:
    return np.asarray(values, dtype=np.float64)


class TestWraparound:
    def test_payload_wrapping_segment_boundary_reassembles(self):
        ring = make_ring(64)
        first = floats(1.0, 2.0, 3.0, 4.0, 5.0)  # 40 bytes
        assert ring.try_write(first)
        got, zero_copy = ring.read_view(40)
        assert zero_copy
        np.testing.assert_array_equal(got, first)
        ring.advance(40)
        # Next write starts at offset 40 and wraps: 24 bytes at the end,
        # 24 bytes from the start.
        second = floats(6.0, 7.0, 8.0, 9.0, 10.0, 11.0)  # 48 bytes
        assert ring.try_write(second)
        got, zero_copy = ring.read_view(48)
        assert not zero_copy  # wrapped payloads are assembled copies
        np.testing.assert_array_equal(got, second)
        ring.advance(48)

    def test_many_wrapping_messages_stay_fifo(self):
        ring = make_ring(40)
        for round_no in range(25):
            payload = floats(*(round_no * 10.0 + k for k in range(3)))
            assert ring.try_write(payload)
            got, _ = ring.read_view(24)
            np.testing.assert_array_equal(got, payload)
            ring.advance(24)


class TestExactFill:
    def test_payload_exactly_filling_ring(self):
        ring = make_ring(64)
        payload = floats(*range(8))  # exactly 64 bytes
        assert ring.try_write(payload)
        # Completely full: nothing more fits until the reader releases.
        assert not ring.try_write(floats(99.0))
        got, zero_copy = ring.read_view(64)
        assert zero_copy
        np.testing.assert_array_equal(got, payload)
        ring.advance(64)
        # Released: a second exact fill succeeds.
        assert ring.try_write(payload)

    def test_fallback_threshold_is_free_space(self):
        ring = make_ring(64)
        assert ring.try_write(floats(1.0, 2.0, 3.0))  # 24 bytes used
        # 40 bytes free: a 40-byte payload fits, 48 does not.
        assert ring.try_write(floats(*range(5)))
        assert not ring.try_write(floats(9.0))
        ring.read_view(24)
        ring.advance(24)
        assert ring.try_write(floats(9.0))

    def test_oversized_payload_always_falls_back(self):
        ring = make_ring(32)
        assert not ring.try_write(floats(*range(5)))  # 40 > 32

    def test_empty_payload_never_uses_the_ring(self):
        ring = make_ring(32)
        assert not ring.try_write(floats())


class TestZeroCopyViews:
    def test_view_aliases_shared_memory(self):
        ring = make_ring(64)
        payload = floats(4.0, 5.0, 6.0)
        ring.try_write(payload)
        got, zero_copy = ring.read_view(24)
        assert zero_copy
        assert np.shares_memory(
            got, np.frombuffer(ring.view, dtype=np.uint8)
        )

    def test_mutating_received_view_raises_and_preserves_ring(self):
        """A received view is read-only: generated code writing through
        the buffer must copy first, it can never corrupt the ring."""
        ring = make_ring(64)
        payload = floats(4.0, 5.0, 6.0)
        ring.try_write(payload)
        got, zero_copy = ring.read_view(24)
        assert zero_copy and not got.flags.writeable
        with pytest.raises(ValueError):
            got[0] = -1.0
        np.testing.assert_array_equal(got, payload)  # ring untouched
        ring.advance(24)

    def test_deferred_release_holds_writer_back(self):
        """head only advances at release: a writer cannot reclaim bytes
        an outstanding view still references."""
        ring = make_ring(48)
        ring.try_write(floats(1.0, 2.0, 3.0, 4.0))  # 32 of 48 bytes
        view, _ = ring.read_view(32)
        # Not yet released: only 16 bytes appear free to the writer.
        assert not ring.try_write(floats(7.0, 8.0, 9.0))
        assert ring.try_write(floats(7.0, 8.0))
        np.testing.assert_array_equal(view, [1.0, 2.0, 3.0, 4.0])
        ring.advance(32)
        assert ring.try_write(floats(7.0, 8.0, 9.0))

    def test_writes_accept_array_views_without_staging(self):
        """The writer side takes any C-contiguous buffer — including a
        live numpy view into an application array."""
        ring = make_ring(64)
        array = np.arange(16, dtype=np.float64).reshape(4, 4)
        ring.try_write(array[1, :])  # zero-copy write from a row view
        got, _ = ring.read_view(32)
        np.testing.assert_array_equal(got, array[1, :])
        ring.advance(32)
