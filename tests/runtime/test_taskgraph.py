"""Task-graph backend: planner determinism, SCC properties, chaos.

Three layers, mirroring the subsystem's structure:

* **graph algorithms** — property tests of the iterative Tarjan SCC and
  the condensation against a brute-force reachability checker on random
  digraphs (no hand-picked fixtures: the adversary is the seed);
* **plan construction** — the lowering of a *real* generated node
  program must be deterministic (stable unit ids and ``topo_hash``),
  must segment rather than degrade, and must honor the integer-set
  dependence hints; non-generated sources degrade to the trivial plan;
* **execution** — results bitwise-identical to ``threads``, scheduler
  counters surfaced through ``RunStatistics``, and a chaos matrix:
  every injected fault yields the documented typed error with zero
  leaked worker threads, with warnings escalated to errors.
"""

import random
import threading
import time
import warnings

import numpy as np
import pytest

from repro import compile_program, run_compiled
from repro.programs import gauss
from repro.runtime import (
    FaultPlan,
    LaunchSpec,
    RankBindings,
    RankCrashError,
    RecvTimeoutError,
    RuntimeOptions,
    get_backend,
    is_transient,
)
from repro.runtime.harness import build_launch_spec, independent_arrays
from repro.runtime.taskgraph import (
    build_task_plan,
    condense,
    longest_path,
    tarjan_scc,
    trivial_plan,
)

# ---------------------------------------------------------------------------
# graph algorithms vs brute force
# ---------------------------------------------------------------------------


def _random_digraph(rng, n, p):
    return [
        [v for v in range(n) if v != u and rng.random() < p]
        for u in range(n)
    ]


def _brute_sccs(n, adj):
    """SCCs via pairwise reachability (O(n^3), fine for n <= 12)."""
    reach = [set() for _ in range(n)]
    for u in range(n):
        stack, seen = [u], {u}
        while stack:
            v = stack.pop()
            for w in adj[v]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        reach[u] = seen
    comps, assigned = [], set()
    for u in range(n):
        if u in assigned:
            continue
        comp = frozenset(
            v for v in range(n) if v in reach[u] and u in reach[v]
        )
        assigned |= comp
        comps.append(comp)
    return set(comps)


def _brute_in_cycle(n, adj):
    """Vertices on some directed cycle (self-loops included)."""
    on_cycle = set()
    for u in range(n):
        stack, seen = list(adj[u]), set(adj[u])
        while stack:
            v = stack.pop()
            if v == u:
                on_cycle.add(u)
                break
            for w in adj[v]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
    return on_cycle


class TestGraphAlgorithms:
    def test_tarjan_matches_brute_force_on_random_digraphs(self):
        rng = random.Random(1729)
        for trial in range(60):
            n = rng.randint(1, 12)
            adj = _random_digraph(rng, n, rng.choice((0.1, 0.25, 0.5)))
            got = {frozenset(c) for c in tarjan_scc(n, adj)}
            want = _brute_sccs(n, adj)
            assert got == want, f"trial {trial}: {adj}"

    def test_tarjan_cycle_members_match_brute_force(self):
        rng = random.Random(4104)
        for _ in range(40):
            n = rng.randint(2, 10)
            adj = _random_digraph(rng, n, 0.3)
            in_cycle = {
                v
                for comp in tarjan_scc(n, adj)
                for v in comp
                if len(comp) > 1
            }
            # tarjan_scc ignores self-loops (a 1-SCC), so compare on the
            # multi-vertex cycles only.
            want = {
                v
                for v in _brute_in_cycle(n, adj)
                if any(
                    v in c and len(c) > 1 for c in _brute_sccs(n, adj)
                )
            }
            assert in_cycle == want

    def test_condensation_is_forward_topological(self):
        rng = random.Random(9)
        for _ in range(40):
            n = rng.randint(1, 12)
            adj = _random_digraph(rng, n, 0.3)
            comp_of, members, comp_adj = condense(n, adj)
            # membership consistent
            for cid, comp in enumerate(members):
                for v in comp:
                    assert comp_of[v] == cid
            assert sorted(v for c in members for v in c) == list(range(n))
            # the condensation is a DAG numbered in execution order:
            # every edge goes from a lower to a strictly higher id
            for u, succs in enumerate(comp_adj):
                for v in succs:
                    assert u < v

    def test_longest_path_weighted(self):
        #    0 -> 1 -> 3,  0 -> 2 -> 3, weights favor the 0-2-3 chain
        adj = [[1, 2], [3], [3], []]
        weights = [1.0, 1.0, 5.0, 2.0]
        assert longest_path(4, adj, weights) == pytest.approx(8.0)
        with pytest.raises(ValueError, match="topological"):
            longest_path(2, [[], [0]], [1.0, 1.0])


# ---------------------------------------------------------------------------
# plan construction on real generated programs
# ---------------------------------------------------------------------------

TWOFIELD = """
program twofield
  parameter n
  real a(n), b(n), c(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  align c(i) with t(i)
  distribute t(block) onto p

  do i = 1, 8
    a(i) = i * 0.5
  end do
  do i = 2, n
    c(i) = b(i-1) * 2.0
  end do
  do i = 9, n
    a(i) = i * 0.25
  end do
end
"""


@pytest.fixture(scope="module")
def gauss_spec():
    compiled = compile_program(gauss())
    spec = build_launch_spec(
        compiled, {"n": 11}, 4, RuntimeOptions()
    )
    return compiled, spec


class TestPlanConstruction:
    def test_non_generated_source_degrades_to_trivial_plan(self):
        bindings = [
            RankBindings(rank, {}, {}, {}, [], {}) for rank in range(3)
        ]
        plan = build_task_plan("def node_main(rt):\n    pass\n", bindings)
        assert len(plan.units) == 3
        assert all(u.kind == "call" for u in plan.units)
        assert plan.notes == ["not a generated node program"]
        assert plan.topo_hash() == trivial_plan(3, plan.notes[0]).topo_hash()

    def test_generated_program_is_segmented_not_trivial(self, gauss_spec):
        _compiled, spec = gauss_spec
        plan = build_task_plan(spec.source, spec.bindings)
        assert not plan.notes, plan.notes
        assert len(plan.units) > spec.nprocs
        kinds = {u.kind for u in plan.units}
        assert "send" in kinds and "recv" in kinds and "compute" in kinds
        # gauss's pivot loop contains communication: it must unroll
        assert plan.loops_unrolled >= 1
        assert max(u.instance for u in plan.units) > 0

    def test_plan_construction_is_deterministic(self, gauss_spec):
        _compiled, spec = gauss_spec
        first = build_task_plan(spec.source, spec.bindings)
        second = build_task_plan(spec.source, spec.bindings)
        assert first.topo_hash() == second.topo_hash()
        assert [
            (u.uid, u.rank, u.kind, u.label, u.instance, u.template, u.scc)
            for u in first.units
        ] == [
            (u.uid, u.rank, u.kind, u.label, u.instance, u.template, u.scc)
            for u in second.units
        ]
        assert first.edges == second.edges

    def test_scc_condensation_collapses_comm_cycles(self, gauss_spec):
        _compiled, spec = gauss_spec
        plan = build_task_plan(spec.source, spec.bindings)
        # loop-carried template edges close compute->send->recv->compute
        # cycles; the condensation must have collapsed at least one and
        # stamped every unit with its component
        assert plan.cycles_collapsed >= 1
        assert plan.scc_count >= 1
        assert all(u.scc >= 0 for u in plan.units)
        assert len(plan.scc_members) == plan.scc_count

    def test_integer_sets_prove_disjoint_regions_independent(self):
        compiled = compile_program(TWOFIELD)
        hints = independent_arrays(compiled)
        assert "a" in hints  # two nests write provably disjoint halves
        assert "b" not in hints  # read-only arrays are never hinted

    def test_dep_hints_drop_compute_compute_edges(self):
        # Hand-written generated-marker fixture: two plain statements
        # conflicting *only* through array 'a', kept apart by a barrier
        # (plain runs merge, so adjacent statements cannot show this).
        fixture = (
            '"""Generated SPMD node program (hand-written fixture)."""\n'
            "\n"
            "def proc_main(rt):\n"
            '    a = rt.arrays["a"]\n'
            "    a[0] = 1.0\n"
            "    rt.barrier()\n"
            "    a[1] = a[0] + 1.0\n"
            "\n"
            "def node_main(rt):\n"
            "    proc_main(rt)\n"
        )
        bindings = [
            RankBindings(rank, {}, {"a": (2,)}, {}, [], {})
            for rank in range(2)
        ]
        without = build_task_plan(fixture, bindings)
        with_hints = build_task_plan(fixture, bindings, dep_hints=("a",))
        assert not without.notes and not with_hints.notes
        assert len(with_hints.edges) < len(without.edges)

    def test_dependent_array_is_not_hinted(self, gauss_spec):
        compiled, _spec = gauss_spec
        # gauss's pivot-row flow dependence must keep 'a' out of the hints
        assert "a" not in independent_arrays(compiled)


# ---------------------------------------------------------------------------
# execution: identity with threads, scheduler observability
# ---------------------------------------------------------------------------


class TestExecution:
    def test_bitwise_identical_to_threads(self):
        compiled = compile_program(gauss())
        for nprocs in (1, 2, 4):
            ref = run_compiled(
                compiled, params={"n": 11}, nprocs=nprocs,
                backend="threads",
            )
            got = run_compiled(
                compiled, params={"n": 11}, nprocs=nprocs,
                backend="taskgraph",
            )
            for r_ref, r_got in zip(ref.results, got.results):
                assert set(r_ref.arrays) == set(r_got.arrays)
                for name, array in r_ref.arrays.items():
                    assert np.array_equal(array, r_got.arrays[name]), (
                        f"nprocs={nprocs} rank={r_ref.rank} array={name}"
                    )
                assert r_ref.scalars == r_got.scalars

    def test_scheduler_counters_in_run_statistics(self):
        compiled = compile_program(gauss())
        outcome = run_compiled(
            compiled, params={"n": 11}, nprocs=2, backend="taskgraph",
        )
        report = outcome.stats.scheduler
        assert report is not None
        assert report["executed"] == report["units"] > 2
        assert report["workers"] >= 2
        assert report["critical_path_units"] >= 1
        assert report["topo_hash"]
        assert report["plan"]["templates"] >= 1
        assert report["plan_build_s"] >= 0.0
        # the same launch twice builds the same graph (stable hash)
        again = run_compiled(
            compiled, params={"n": 11}, nprocs=2, backend="taskgraph",
        )
        assert again.stats.scheduler["topo_hash"] == report["topo_hash"]
        # other backends carry no scheduler block
        plain = run_compiled(
            compiled, params={"n": 11}, nprocs=2, backend="threads",
        )
        assert plain.stats.scheduler is None


# ---------------------------------------------------------------------------
# chaos: typed errors, no leaked workers, -W error clean
# ---------------------------------------------------------------------------

ROUNDTRIP = """
def node_main(rt):
    if rt.rank == 0:
        rt.send(1, "t", [1.0, 2.0], indices=[(1,), (2,)])
        idx, vals = rt.recv(1, "u")
        rt.scalars["out"] = vals[0]
    elif rt.rank == 1:
        idx, vals = rt.recv(0, "t")
        rt.send(0, "u", [vals[0] + vals[1]], indices=[(0,)])
        rt.scalars["out"] = vals[1]
    rt.work(3)
    rt.barrier()
"""


def _raw_spec(body, nprocs, plan=None):
    source = "import numpy as np\n\n" + body
    bindings = [
        RankBindings(rank, {}, {}, {}, ["out"], {})
        for rank in range(nprocs)
    ]
    options = RuntimeOptions(
        recv_timeout_s=1.0, run_timeout_s=30.0, fault_plan=plan
    )
    return LaunchSpec(nprocs, source, bindings, [], options)


@pytest.fixture
def no_leaked_threads():
    """Every worker thread spawned during the cell must be joined."""
    before = set(threading.enumerate())
    yield
    leaked = []
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = [
            t for t in threading.enumerate()
            if t not in before and t.is_alive()
        ]
        if not leaked:
            break
        time.sleep(0.05)
    assert not leaked, f"leaked threads: {[t.name for t in leaked]}"


#: (name, fault text, expected error; None = must succeed cleanly)
CHAOS = [
    ("drop", "drop:rank=0:op=send:n=1", RecvTimeoutError),
    ("crash-recv", "crash:rank=1:op=recv:n=1", RankCrashError),
    ("crash-send", "crash:rank=0:op=send:n=1", RankCrashError),
    ("crash-step", "crash:rank=1:op=step:n=1", RankCrashError),
    ("crash-coll", "crash:rank=1:op=collective:n=1", RankCrashError),
    ("kill", "kill:rank=1:op=recv:n=1", RankCrashError),
    ("delay", "delay:rank=0:op=send:n=1:ms=40", None),
    ("dup", "dup:rank=0:op=send:n=1", None),
    ("jitter", "jitter:ms=3", None),
]


@pytest.mark.parametrize(
    "name,text,expected", CHAOS, ids=[row[0] for row in CHAOS]
)
class TestChaosMatrix:
    def test_cell(self, name, text, expected, no_leaked_threads):
        plan = FaultPlan.parse(text, seed=13)
        spec = _raw_spec(ROUNDTRIP, 2, plan=plan)
        backend = get_backend("taskgraph")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            if expected is None:
                launch = backend.launch(spec)
                scalars = sorted(
                    r.scalars["out"] for r in launch.results
                )
                assert scalars == [2.0, 3.0]
            else:
                with pytest.raises(expected) as info:
                    backend.launch(spec)
                assert is_transient(info.value), name
                assert info.value.diagnostics, name


class TestChaosSegmented:
    """Faults against a real segmented plan, not the trivial fallback."""

    def test_crash_in_segmented_plan(self, gauss_spec, no_leaked_threads):
        compiled, _ = gauss_spec
        plan = FaultPlan.parse("crash:rank=1:op=send:n=1", seed=5)
        spec = build_launch_spec(
            compiled,
            {"n": 11},
            4,
            RuntimeOptions(
                recv_timeout_s=2.0, run_timeout_s=30.0, fault_plan=plan
            ),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(RankCrashError) as info:
                get_backend("taskgraph").launch(spec)
        assert any(d.rank == 1 for d in info.value.diagnostics)

    def test_supervisor_degrades_to_threads(self, no_leaked_threads):
        """The taskgraph->threads->inproc-seq chain survives a crashy
        primary: the supervisor retries and falls back, and the final
        outcome reports which backend actually ran."""
        from repro.runtime import RetryPolicy

        compiled = compile_program(gauss())
        # the injected crash expires after the first global attempt, so
        # the taskgraph attempt fails and the threads fallback succeeds
        plan = FaultPlan.parse("crash:rank=0:op=send:attempts=1", seed=3)
        outcome = run_compiled(
            compiled,
            params={"n": 11},
            nprocs=2,
            backend="taskgraph",
            runtime_options=RuntimeOptions(
                recv_timeout_s=2.0, run_timeout_s=30.0, fault_plan=plan
            ),
            retry_policy=RetryPolicy(max_attempts=1),
            fallback_backends=("threads", "inproc-seq"),
        )
        assert outcome.backend == "threads"
        assert [a.backend for a in outcome.attempts] == [
            "taskgraph", "threads"
        ]
        assert outcome.attempts[0].outcome == "RankCrashError"
