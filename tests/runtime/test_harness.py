"""Unit tests for startup bindings and numeric ownership (validation)."""

import pytest

from repro.hpf import DataMapping
from repro.lang import parse_program
from repro.runtime.harness import (
    eval_lang_expr,
    evaluate_bindings,
    owner_coordinate,
    rank_of_coords,
)
from repro.lang.ast import BinOp, Name, Num


def _mapping(src):
    return DataMapping(parse_program(src))


BLOCK_SYM = """
program x
  parameter n
  real a(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  distribute t(block) onto p
end
"""


class TestEvalLangExpr:
    def test_arithmetic(self):
        expr = BinOp("+", BinOp("*", Num(3), Name("n")), Num(1))
        assert eval_lang_expr(expr, {"n": 4}) == 13

    def test_fortran_division(self):
        expr = BinOp("/", Name("nprocs"), Num(2))
        assert eval_lang_expr(expr, {"nprocs": 7}) == 3


class TestBindings:
    def test_vp_block_binding(self):
        mapping = _mapping(BLOCK_SYM)
        env = evaluate_bindings(mapping, {"n": 100}, 4, 2)
        assert env["B_t_0"] == 25
        # vm = B*m + tlb = 25*2 + 1
        assert env["my_p_0"] == 51

    def test_grid_coords_row_major(self):
        src = BLOCK_SYM.replace(
            "processors p(nprocs)", "processors p(2, nprocs / 2)"
        ).replace("distribute t(block) onto p",
                  "distribute t(block) onto p")
        # rank 5 on a 2x4 grid: coords (1, 1)
        mapping = _mapping(
            """
program g
  real a(8,8)
  processors p(2, nprocs / 2)
  template t(8,8)
  align a(i,j) with t(i,j)
  distribute t(block, block) onto p
end
"""
        )
        env = evaluate_bindings(mapping, {}, 8, 5)
        # rank 5 on a 2x4 grid is coords (1, 1).  Dim 0 is exact block
        # (both extents constant): my_p_0 is the physical coordinate.
        # Dim 1 has a symbolic extent: my_p_1 is the VP-block coordinate
        # vm = B*m + 1 with B = ceil(8/4) = 2.
        assert env["my_p_0"] == 1
        assert env["my_p_1"] == 2 * 1 + 1

    def test_wrong_nprocs_rejected(self):
        mapping = _mapping(BLOCK_SYM.replace("p(nprocs)", "p(4)"))
        with pytest.raises(ValueError):
            evaluate_bindings(mapping, {"n": 16}, 3, 0)

    def test_missing_parameter_rejected(self):
        mapping = _mapping(BLOCK_SYM)
        with pytest.raises(ValueError):
            evaluate_bindings(mapping, {}, 2, 0)


class TestOwnership:
    def test_block_owner(self):
        mapping = _mapping(BLOCK_SYM)
        layout = mapping.layout("a")
        env = evaluate_bindings(mapping, {"n": 100}, 4, 0)
        assert owner_coordinate(layout, 0, (1,), env) == 0
        assert owner_coordinate(layout, 0, (25,), env) == 0
        assert owner_coordinate(layout, 0, (26,), env) == 1
        assert owner_coordinate(layout, 0, (100,), env) == 3

    def test_cyclic_owner(self):
        mapping = _mapping(
            BLOCK_SYM.replace("distribute t(block)", "distribute t(cyclic)")
        )
        layout = mapping.layout("a")
        env = evaluate_bindings(mapping, {"n": 100}, 4, 0)
        assert owner_coordinate(layout, 0, (1,), env) == 0
        assert owner_coordinate(layout, 0, (2,), env) == 1
        assert owner_coordinate(layout, 0, (6,), env) == 1

    def test_cyclic_k_owner(self):
        mapping = _mapping(
            BLOCK_SYM.replace(
                "distribute t(block)", "distribute t(cyclic(3))"
            )
        )
        layout = mapping.layout("a")
        env = evaluate_bindings(mapping, {"n": 100}, 2, 0)
        # blocks of 3, round robin on 2 procs: 1..3 -> 0, 4..6 -> 1, ...
        assert owner_coordinate(layout, 0, (3,), env) == 0
        assert owner_coordinate(layout, 0, (4,), env) == 1
        assert owner_coordinate(layout, 0, (7,), env) == 0

    def test_offset_alignment_owner(self):
        mapping = _mapping(
            """
program x
  real a(0:99)
  processors p(4)
  template t(100)
  align a(i) with t(i+1)
  distribute t(block) onto p
end
"""
        )
        layout = mapping.layout("a")
        env = evaluate_bindings(mapping, {}, 4, 0)
        # a(24) -> t(25) -> proc 0; a(25) -> t(26) -> proc 1
        assert owner_coordinate(layout, 0, (24,), env) == 0
        assert owner_coordinate(layout, 0, (25,), env) == 1


def test_rank_of_coords():
    assert rank_of_coords([2, 4], [1, 3]) == 7
    assert rank_of_coords([3], [2]) == 2
