"""Chaos matrix: every injected fault on every backend yields the right
typed error — never a hang, never a leaked process or shm segment, never
a silently wrong answer.

The matrix drives raw :class:`LaunchSpec` objects with hand-written node
programs (no compile cost).  Success cases are cross-checked against a
clean ``inproc-seq`` reference run; failure cases assert the documented
error type *and* its rank-level diagnostics.  Leak checks run after
every ``mp`` cell: no live children, no shared-memory segments left in
``/dev/shm``.
"""

import multiprocessing
import os
import pickle
import warnings

import pytest

from repro.runtime import (
    CommunicationError,
    FaultPlan,
    FaultSpec,
    LaunchError,
    LaunchSpec,
    RankBindings,
    RankCrashError,
    RankDiagnostics,
    RecvTimeoutError,
    ResultDivergenceError,
    RetryPolicy,
    RunTimeoutError,
    RuntimeOptions,
    cross_check_results,
    decode_exitcode,
    get_backend,
    is_transient,
)
from repro.runtime.harness import _supervised_launch

BACKENDS = ("threads", "mp", "inproc-seq")

ROUNDTRIP = """
def node_main(rt):
    if rt.rank == 0:
        rt.send(1, "t", [1.0, 2.0], indices=[(1,), (2,)])
        idx, vals = rt.recv(1, "u")
        rt.scalars["out"] = vals[0]
    elif rt.rank == 1:
        idx, vals = rt.recv(0, "t")
        rt.send(0, "u", [vals[0] + vals[1]], indices=[(0,)])
        rt.scalars["out"] = vals[1]
    rt.work(3)
"""

DEADLOCK = """
def node_main(rt):
    if rt.rank == 1:
        rt.recv(0, "never")
"""

SLOW_RANK = """
import time

def node_main(rt):
    if rt.rank == 1:
        time.sleep(8.0)
"""


def _spec(
    body,
    nprocs,
    plan=None,
    recv_timeout_s=1.0,
    run_timeout_s=30.0,
):
    source = "import numpy as np\n\n" + body
    bindings = [
        RankBindings(rank, {}, {}, {}, ["out"], {})
        for rank in range(nprocs)
    ]
    options = RuntimeOptions(
        recv_timeout_s=recv_timeout_s,
        run_timeout_s=run_timeout_s,
        fault_plan=plan,
    )
    return LaunchSpec(nprocs, source, bindings, [], options)


def _shm_segments():
    if not os.path.isdir("/dev/shm"):
        return set()
    return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}


@pytest.fixture
def leak_check():
    """Assert a cell leaves zero children and zero shm segments behind."""
    before = _shm_segments()
    yield
    for proc in multiprocessing.active_children():
        proc.join(timeout=5.0)
    assert multiprocessing.active_children() == []
    assert _shm_segments() - before == set()


# ---------------------------------------------------------------------------
# The plan itself: parsing, determinism, attempt filtering
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            "crash:rank=1:op=send:n=2:attempts=1; jitter:rank=0:ms=5",
            seed=7,
        )
        assert plan.seed == 7
        assert plan.faults == (
            FaultSpec("crash", rank=1, op="send", n=2, attempts=1),
            FaultSpec("jitter", rank=0, delay_ms=5.0),
        )

    def test_parse_rejects_unknown_kind_op_and_fields(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("explode")
        with pytest.raises(ValueError, match="unknown fault op"):
            FaultPlan.parse("crash:op=think")
        with pytest.raises(ValueError, match="unknown fault field"):
            FaultPlan.parse("crash:when=later")
        with pytest.raises(ValueError, match="only apply to sends"):
            FaultPlan.parse("drop:op=recv")
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan.parse("crash:n=0")

    def test_plan_is_picklable(self):
        plan = FaultPlan.parse("kill:rank=2:op=step:n=4", seed=11)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_same_seed_replays_byte_identical_schedules(self):
        text = "jitter:ms=20; delay:rank=0:op=send:n=3:ms=5"
        for rank in range(4):
            first = FaultPlan.parse(text, seed=42).schedule(rank)
            second = FaultPlan.parse(text, seed=42).schedule(rank)
            assert pickle.dumps(first) == pickle.dumps(second)

    def test_different_seeds_give_different_jitter(self):
        a = FaultPlan.parse("jitter:ms=20", seed=1).schedule(0)
        b = FaultPlan.parse("jitter:ms=20", seed=2).schedule(0)
        assert a != b

    def test_for_attempt_expires_transient_faults(self):
        plan = FaultPlan.parse("crash:attempts=2; drop:op=send")
        assert len(plan.for_attempt(0).faults) == 2
        assert len(plan.for_attempt(1).faults) == 2
        survivors = plan.for_attempt(2).faults
        assert [f.kind for f in survivors] == ["drop"]


# ---------------------------------------------------------------------------
# The taxonomy: decoding, transience, rendering, pickling
# ---------------------------------------------------------------------------


class TestTaxonomy:
    def test_decode_exitcodes(self):
        assert decode_exitcode(-9) == "killed by SIGKILL (signal 9)"
        assert decode_exitcode(-15) == "killed by SIGTERM (signal 15)"
        assert decode_exitcode(-127) == "killed by signal 127"
        assert decode_exitcode(3) == "exit code 3"
        assert decode_exitcode(0) == "exit code 0"

    def test_transience_classification(self):
        assert is_transient(RankCrashError("x"))
        assert is_transient(RecvTimeoutError("x"))
        assert is_transient(RunTimeoutError("x"))
        assert is_transient(LaunchError("x"))
        assert not is_transient(ResultDivergenceError("x"))
        assert not is_transient(CommunicationError("tag mismatch"))
        assert not is_transient(ValueError("not ours"))

    def test_every_error_is_a_communication_error(self):
        for cls in (
            RankCrashError,
            RecvTimeoutError,
            RunTimeoutError,
            LaunchError,
            ResultDivergenceError,
        ):
            assert issubclass(cls, CommunicationError)

    def test_crash_report_renders_diagnostics(self):
        err = RankCrashError(
            "rank 1 died",
            diagnostics=[
                RankDiagnostics(
                    rank=1,
                    phase="send",
                    detail="ValueError: boom",
                    trace_tail=["SendEvent(dest=0, ...)"],
                    ring_occupancy={0: 128},
                    exitcode=-9,
                )
            ],
        )
        text = str(err)
        assert "rank 1 [phase=send]" in text
        assert "killed by SIGKILL" in text
        assert "ValueError: boom" in text
        assert "trace tail:" in text
        assert "0→128B" in text

    def test_errors_pickle_with_diagnostics(self):
        err = RecvTimeoutError(
            "timed out",
            diagnostics=[RankDiagnostics(rank=2, phase="recv")],
        )
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, RecvTimeoutError)
        assert clone.diagnostics[0].rank == 2
        assert str(clone) == str(err)


# ---------------------------------------------------------------------------
# The chaos matrix proper
# ---------------------------------------------------------------------------

#: (name, spec text, expected error by backend; None = clean success)
MATRIX = [
    ("drop", "drop:rank=0:op=send:n=1", {b: RecvTimeoutError for b in BACKENDS}),
    ("delay", "delay:rank=0:op=send:n=1:ms=40", {b: None for b in BACKENDS}),
    ("dup", "dup:rank=0:op=send:n=1", {b: None for b in BACKENDS}),
    ("crash-recv", "crash:rank=1:op=recv:n=1", {b: RankCrashError for b in BACKENDS}),
    ("crash-send", "crash:rank=0:op=send:n=1", {b: RankCrashError for b in BACKENDS}),
    ("crash-step", "crash:rank=1:op=step:n=1", {b: RankCrashError for b in BACKENDS}),
    ("crash-coll", "crash:rank=1:op=collective:n=1", {b: RankCrashError for b in BACKENDS}),
    ("kill", "kill:rank=1:op=recv:n=1", {b: RankCrashError for b in BACKENDS}),
    ("jitter", "jitter:ms=3", {b: None for b in BACKENDS}),
    (
        "shm-alloc",
        "shm-alloc",
        {"threads": None, "inproc-seq": None, "mp": LaunchError},
    ),
]

COLLECTIVE_TAIL = """
def node_main(rt):
    if rt.rank == 0:
        rt.send(1, "t", [1.0, 2.0], indices=[(1,), (2,)])
        idx, vals = rt.recv(1, "u")
        rt.scalars["out"] = vals[0]
    elif rt.rank == 1:
        idx, vals = rt.recv(0, "t")
        rt.send(0, "u", [vals[0] + vals[1]], indices=[(0,)])
        rt.scalars["out"] = vals[1]
    rt.work(3)
    rt.barrier()
"""


@pytest.fixture(scope="module")
def reference_results():
    """Clean inproc-seq run of the matrix program — the golden answer."""
    launch = get_backend("inproc-seq").launch(_spec(COLLECTIVE_TAIL, 2))
    return launch.results


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "name,text,expected", MATRIX, ids=[row[0] for row in MATRIX]
)
class TestChaosMatrix:
    def test_cell(
        self, backend, name, text, expected, reference_results, leak_check
    ):
        plan = FaultPlan.parse(text, seed=13)
        spec = _spec(COLLECTIVE_TAIL, 2, plan=plan)
        want = expected[backend]
        if want is None:
            launch = get_backend(backend).launch(spec)
            # a benign fault must never corrupt results silently
            cross_check_results(
                launch.results, reference_results, context=name
            )
        else:
            with pytest.raises(want) as info:
                get_backend(backend).launch(spec)
            err = info.value
            assert is_transient(err), name
            if want is not LaunchError:
                assert err.diagnostics, f"{name} carried no diagnostics"
                assert all(
                    d.rank in (0, 1) for d in err.diagnostics
                )

    def test_cell_replays_identically(
        self, backend, name, text, expected, reference_results, leak_check
    ):
        """Same seed, same cell → same typed outcome (reproducibility)."""
        if expected[backend] is None:
            pytest.skip("success cells are covered by test_cell")
        plan = FaultPlan.parse(text, seed=13)
        outcomes = []
        for _ in range(2):
            with pytest.raises(expected[backend]):
                get_backend(backend).launch(
                    _spec(COLLECTIVE_TAIL, 2, plan=plan)
                )
            outcomes.append(expected[backend].__name__)
        assert outcomes[0] == outcomes[1]


class TestKillDecoding:
    def test_mp_kill_reports_signal_name(self, leak_check):
        plan = FaultPlan.parse("kill:rank=1:op=recv:n=1")
        with pytest.raises(RankCrashError) as info:
            get_backend("mp").launch(_spec(ROUNDTRIP, 2, plan=plan))
        message = str(info.value)
        assert "SIGKILL" in message
        assert info.value.diagnostics[0].exitcode == -9

    def test_in_process_kill_degrades_to_crash(self):
        plan = FaultPlan.parse("kill:rank=1:op=recv:n=1")
        for backend in ("threads", "inproc-seq"):
            with pytest.raises(RankCrashError, match="degraded to crash"):
                get_backend(backend).launch(
                    _spec(ROUNDTRIP, 2, plan=plan)
                )


# ---------------------------------------------------------------------------
# Recv-timeout parity across backends (deadlock → RecvTimeoutError)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestRecvTimeoutParity:
    def test_deadlock_raises_typed_timeout_with_diagnostics(
        self, backend, leak_check
    ):
        with pytest.raises(RecvTimeoutError) as info:
            get_backend(backend).launch(_spec(DEADLOCK, 2))
        err = info.value
        assert err.diagnostics, "timeout carried no diagnostics"
        diag = err.diagnostics[0]
        assert diag.rank == 1
        assert diag.phase == "recv"
        assert isinstance(diag.ring_occupancy, dict)
        # the payload renders as a readable report
        assert f"rank {diag.rank} [phase=recv]" in str(err)


class TestRunTimeout:
    @pytest.mark.parametrize("backend", ("threads", "mp"))
    def test_wedged_rank_hits_run_deadline(self, backend, leak_check):
        spec = _spec(
            SLOW_RANK, 2, recv_timeout_s=30.0, run_timeout_s=1.5
        )
        with pytest.raises(RunTimeoutError) as info:
            get_backend(backend).launch(spec)
        assert any(d.rank == 1 for d in info.value.diagnostics)


# ---------------------------------------------------------------------------
# mp cleanup: no leaked processes, queues, or shm on failure paths
# ---------------------------------------------------------------------------


class TestMpCleanup:
    def test_rank_crash_unlinks_shm_and_reaps_children(self):
        before = _shm_segments()
        plan = FaultPlan.parse("crash:rank=1:op=recv:n=1")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(RankCrashError):
                get_backend("mp").launch(_spec(ROUNDTRIP, 2, plan=plan))
        assert multiprocessing.active_children() == []
        assert _shm_segments() - before == set()

    def test_run_timeout_unlinks_shm_and_reaps_children(self):
        before = _shm_segments()
        spec = _spec(
            SLOW_RANK, 2, recv_timeout_s=30.0, run_timeout_s=1.0
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(RunTimeoutError):
                get_backend("mp").launch(spec)
        assert multiprocessing.active_children() == []
        assert _shm_segments() - before == set()

    def test_sigkilled_rank_leaves_nothing_behind(self):
        before = _shm_segments()
        plan = FaultPlan.parse("kill:rank=0:op=send:n=1")
        with pytest.raises(RankCrashError):
            get_backend("mp").launch(_spec(ROUNDTRIP, 2, plan=plan))
        assert multiprocessing.active_children() == []
        assert _shm_segments() - before == set()


# ---------------------------------------------------------------------------
# Supervision: retries, backoff determinism, fallback chains
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, jitter_frac=0.0
        )
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(2) == pytest.approx(0.4)

    def test_jitter_is_deterministic_per_seed(self):
        a = RetryPolicy(seed=5, jitter_frac=0.5)
        b = RetryPolicy(seed=5, jitter_frac=0.5)
        c = RetryPolicy(seed=6, jitter_frac=0.5)
        for attempt in range(4):
            assert a.backoff_s(attempt) == b.backoff_s(attempt)
        assert any(
            a.backoff_s(k) != c.backoff_s(k) for k in range(4)
        )


class TestSupervision:
    def _policy(self, max_attempts):
        return RetryPolicy(
            max_attempts=max_attempts,
            backoff_base_s=0.01,
            jitter_frac=0.0,
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_transient_crash_recovers_on_retry(self, backend, leak_check):
        plan = FaultPlan.parse("crash:rank=1:op=recv:n=1:attempts=1")
        spec = _spec(ROUNDTRIP, 2, plan=plan)
        launch, used, attempts = _supervised_launch(
            spec, [get_backend(backend)], self._policy(3)
        )
        assert used.name == backend
        assert launch.results[0].scalars["out"] == 3.0
        assert [a.outcome for a in attempts] == ["RankCrashError", "ok"]
        assert attempts[0].backoff_s > 0.0
        assert attempts[-1].ok

    def test_fallback_chain_degrades_to_working_backend(self, leak_check):
        plan = FaultPlan.parse("shm-alloc")  # mp can never launch
        spec = _spec(ROUNDTRIP, 2, plan=plan)
        launch, used, attempts = _supervised_launch(
            spec,
            [get_backend("mp"), get_backend("threads")],
            self._policy(2),
        )
        assert used.name == "threads"
        assert [a.backend for a in attempts] == ["mp", "mp", "threads"]
        assert [a.outcome for a in attempts] == [
            "LaunchError", "LaunchError", "ok",
        ]
        assert launch.results[1].scalars["out"] == 2.0

    def test_permanent_failure_is_not_retried(self):
        tag_mismatch = """
def node_main(rt):
    if rt.rank == 0:
        rt.send(1, "a", [1.0])
    else:
        rt.recv(0, "b")
"""
        spec = _spec(tag_mismatch, 2)
        with pytest.raises(CommunicationError) as info:
            _supervised_launch(
                spec, [get_backend("threads")], self._policy(3)
            )
        assert not is_transient(info.value)
        # exactly one attempt was made — permanent errors short-circuit
        assert len(info.value.attempts) == 1

    def test_exhausted_budget_attaches_attempt_history(self):
        plan = FaultPlan.parse("crash:rank=1:op=recv:n=1")  # every attempt
        spec = _spec(ROUNDTRIP, 2, plan=plan)
        with pytest.raises(RankCrashError) as info:
            _supervised_launch(
                spec, [get_backend("threads")], self._policy(2)
            )
        assert [a.outcome for a in info.value.attempts] == [
            "RankCrashError", "RankCrashError",
        ]

    def test_run_compiled_surfaces_attempt_history(self, leak_check):
        """End to end: a transient fault on a real compiled program is
        supervised away, and RunOutcome records every attempt."""
        from repro import compile_program, run_compiled
        from repro.programs import tomcatv

        compiled = compile_program(tomcatv())
        plan = FaultPlan.parse("crash:rank=1:op=recv:n=1:attempts=1")
        outcome = run_compiled(
            compiled,
            params={"n": 12, "niter": 2},
            nprocs=2,
            backend="threads",
            runtime_options=RuntimeOptions(
                recv_timeout_s=2.0, fault_plan=plan
            ),
            retry_policy=RetryPolicy(
                max_attempts=2, backoff_base_s=0.01, jitter_frac=0.0
            ),
        )
        assert outcome.backend == "threads"
        assert [a.outcome for a in outcome.attempts] == [
            "RankCrashError", "ok",
        ]

    def test_divergence_is_never_transient(self, reference_results):
        tweaked = [
            type(r)(
                r.rank, dict(r.arrays),
                {**r.scalars, "out": -1.0}, r.trace, r.env,
            )
            for r in reference_results
        ]
        with pytest.raises(ResultDivergenceError) as info:
            cross_check_results(tweaked, reference_results, "chaos")
        assert not is_transient(info.value)
