"""Unit tests for traces and the LogGP replay model."""

import pytest

from repro.runtime.cost import CostModel, replay
from repro.runtime.trace import RunStatistics, Trace


def _model():
    return CostModel(
        flop_time=1.0,
        latency=10.0,
        per_byte=0.0,
        o_send=1.0,
        o_recv=1.0,
        copy_per_byte=0.0,
        check_time=0.5,
    )


def test_compute_events_merge():
    trace = Trace(0)
    trace.compute(5)
    trace.compute(3)
    assert len(trace.events) == 1
    assert trace.compute_units == 8


def test_compute_only_replay():
    t0, t1 = Trace(0), Trace(1)
    t0.compute(100)
    t1.compute(40)
    result = replay([t0, t1], _model())
    assert result.time == 100.0
    assert result.per_rank == [100.0, 40.0]


def test_send_recv_latency():
    t0, t1 = Trace(0), Trace(1)
    t0.compute(10)
    t0.send(1, "x", 8, 0)
    t1.recv(0, "x", 8, 0)
    t1.compute(5)
    result = replay([t0, t1], _model())
    # sender: 10 + o_send = 11; arrival 11 + 10 = 21;
    # receiver: max(0, 21) + o_recv = 22; + 5 compute = 27
    assert result.per_rank[1] == pytest.approx(27.0)


def test_receiver_already_late_pays_no_wait():
    t0, t1 = Trace(0), Trace(1)
    t0.send(1, "x", 8, 0)
    t1.compute(100)
    t1.recv(0, "x", 8, 0)
    result = replay([t0, t1], _model())
    assert result.per_rank[1] == pytest.approx(101.0)


def test_fifo_matching_order():
    t0, t1 = Trace(0), Trace(1)
    t0.send(1, "a", 8, 0)
    t0.send(1, "b", 8, 0)
    t1.recv(0, "a", 8, 0)
    t1.recv(0, "b", 8, 0)
    result = replay([t0, t1], _model())
    assert result.time > 0


def test_pipeline_serializes():
    # rank k waits for rank k-1's message: completion grows with rank
    traces = [Trace(r) for r in range(4)]
    for rank in range(4):
        if rank > 0:
            traces[rank].recv(rank - 1, "t", 8, 0)
        traces[rank].compute(10)
        if rank < 3:
            traces[rank].send(rank + 1, "t", 8, 0)
    result = replay(traces, _model())
    assert result.per_rank[3] > result.per_rank[0]
    assert result.per_rank == sorted(result.per_rank)


def test_collective_synchronizes():
    t0, t1 = Trace(0), Trace(1)
    t0.compute(100)
    t0.collective("allreduce", 8)
    t1.compute(10)
    t1.collective("allreduce", 8)
    result = replay([t0, t1], _model())
    assert result.per_rank[0] == result.per_rank[1]
    assert result.per_rank[0] > 100


def test_copy_cost_charged():
    model = _model()
    model.copy_per_byte = 1.0
    t0, t1 = Trace(0), Trace(1)
    t0.send(1, "x", 8, 8)  # copied
    t1.recv(0, "x", 8, 0)  # in place
    result = replay([t0, t1], model)
    assert result.per_rank[0] == pytest.approx(1.0 + 8.0)


def test_buffer_checks_add_time():
    t0 = Trace(0)
    t0.compute(10)
    t0.check(4)
    result = replay([t0], _model())
    assert result.per_rank[0] == pytest.approx(10 + 4 * 0.5)


def test_stuck_replay_detected():
    t0, t1 = Trace(0), Trace(1)
    t1.recv(0, "never", 8, 0)  # no matching send
    with pytest.raises(RuntimeError):
        replay([t0, t1], _model())


def test_statistics_aggregation():
    t0, t1 = Trace(0), Trace(1)
    t0.compute(10)
    t0.send(1, "x", 16, 16)
    t1.recv(0, "x", 16, 0)
    stats = RunStatistics.from_traces([t0, t1])
    assert stats.total_messages == 1
    assert stats.total_bytes == 16
    assert stats.max_compute == 10
