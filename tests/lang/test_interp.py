"""Unit tests for the serial reference interpreter."""

import pytest

from repro.lang import SemanticError, parse_program, run_serial
from repro.lang.affine import is_affine, to_affine
from repro.lang.ast import BinOp, Name, Num
from repro.lang.errors import NonAffineSubscriptError


def test_simple_assignment_and_loops():
    interp = run_serial(
        parse_program(
            "program x\nreal a(10)\ndo i = 1, 10\na(i) = 2 * i\n"
            "end do\nend\n"
        ),
        {},
    )
    assert interp.arrays["a"].get((7,)) == 14.0


def test_custom_lower_bounds():
    interp = run_serial(
        parse_program(
            "program x\nreal a(0:4)\ndo i = 0, 4\na(i) = i\nend do\nend\n"
        ),
        {},
    )
    assert interp.arrays["a"].get((0,)) == 0.0
    assert interp.arrays["a"].get((4,)) == 4.0


def test_parameters_override_defaults():
    src = "program x\nparameter n = 3\nscalar s\ns = n\nend\n"
    assert run_serial(parse_program(src), {}).values["s"] == 3
    assert run_serial(parse_program(src), {"n": 9}).values["s"] == 9


def test_missing_parameter_raises():
    src = "program x\nparameter n\nscalar s\ns = n\nend\n"
    with pytest.raises(SemanticError):
        run_serial(parse_program(src), {})


def test_if_branches():
    src = (
        "program x\nscalar s, r\ns = 5\nif (s >= 3) then\nr = 1\n"
        "else\nr = 2\nend if\nend\n"
    )
    assert run_serial(parse_program(src), {}).values["r"] == 1


def test_intrinsics():
    src = (
        "program x\nscalar a, b, c, d\na = max(1, 5, 3)\nb = abs(-2)\n"
        "c = min(4, 2)\nd = sqrt(9.0)\nend\n"
    )
    values = run_serial(parse_program(src), {}).values
    assert values["a"] == 5 and values["b"] == 2
    assert values["c"] == 2 and values["d"] == 3.0


def test_integer_division_truncates():
    src = "program x\nscalar s\ns = 7 / 2\nend\n"
    assert run_serial(parse_program(src), {}).values["s"] == 3


def test_negative_step_loop():
    src = (
        "program x\nreal a(5)\nscalar s\ns = 0\n"
        "do i = 5, 1, -1\ns = s * 10 + i\nend do\nend\n"
    )
    assert run_serial(parse_program(src), {}).values["s"] == 54321


def test_procedure_call():
    src = (
        "program x\nscalar s\nprocedure bump\ns = s + 1\nend\n"
        "s = 0\ncall bump\ncall bump\nend\n"
    )
    assert run_serial(parse_program(src), {}).values["s"] == 2


def test_stencil_matches_manual():
    src = (
        "program x\nparameter n = 5\nreal a(n), b(n)\n"
        "do i = 1, n\nb(i) = i\nend do\n"
        "do i = 2, n-1\na(i) = 0.5 * (b(i-1) + b(i+1))\nend do\nend\n"
    )
    interp = run_serial(parse_program(src), {})
    assert interp.arrays["a"].get((3,)) == 3.0


class TestAffineConversion:
    def test_affine_subscript(self):
        expr = parse_program(
            "program x\nreal a(10)\nscalar s\ns = a(2 * 3 - 1)\nend\n"
        ).main.body[0].rhs
        assert to_affine(expr.subscripts[0]).constant == 5

    def test_symbolic_affine(self):
        assert is_affine(BinOp("+", Name("i"), Num(1)))

    def test_product_not_affine(self):
        assert not is_affine(BinOp("*", Name("i"), Name("j")))

    def test_inexact_division_not_affine(self):
        with pytest.raises(NonAffineSubscriptError):
            to_affine(BinOp("/", Name("i"), Num(2)))

    def test_exact_division_is_affine(self):
        expr = BinOp("/", BinOp("*", Num(4), Name("i")), Num(2))
        assert to_affine(expr).coeff("i") == 2
