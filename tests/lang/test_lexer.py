"""Unit tests for the mini-HPF tokenizer."""

import pytest

from repro.lang.errors import LangParseError
from repro.lang.lexer import Token, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def test_keywords_case_insensitive():
    assert kinds("DO i = 1, N")[:1] == ["do"]
    assert kinds("End Do")[:2] == ["end", "do"]


def test_names_preserve_case():
    tokens = tokenize("Alpha = beta")
    assert tokens[0].text == "Alpha"


def test_numbers():
    tokens = tokenize("x = 42 + 0.25 + 1e3 + 2.5d0")
    texts = [t.text for t in tokens if t.kind in ("int", "float")]
    assert texts == ["42", "0.25", "1e3", "2.5d0"]


def test_operators_longest_match():
    ops = [
        k for k in kinds("a <= b >= c == d /= e ** f")
        if k not in ("name", "newline", "eof")
    ]
    assert ops == ["<=", ">=", "==", "/=", "**"]


def test_comments_stripped():
    tokens = tokenize("a = 1 ! comment with do end if\nb = 2")
    texts = [t.text for t in tokens if t.kind == "name"]
    assert texts == ["a", "b"]


def test_newlines_collapse():
    tokens = tokenize("a = 1\n\n\nb = 2")
    newline_count = sum(1 for t in tokens if t.kind == "newline")
    assert newline_count == 2  # one after each statement


def test_line_numbers():
    tokens = tokenize("a = 1\nb = 2\n")
    b_token = [t for t in tokens if t.text == "b"][0]
    assert b_token.line == 2


def test_eof_token():
    assert tokenize("")[-1].kind == "eof"


def test_illegal_character():
    with pytest.raises(LangParseError):
        tokenize("a = @b")
