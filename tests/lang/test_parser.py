"""Unit tests for the mini-HPF lexer and parser."""

import pytest

from repro.lang import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    CallStmt,
    Do,
    If,
    LangParseError,
    Name,
    Num,
    parse_program,
    walk_statements,
)

BASIC = """
program demo
  parameter n = 8, m
  real a(n,n), b(0:9,100)
  scalar s
  processors p(2, nprocs / 2)
  template t(n,n)
  align a(i,j) with t(i+1,j)
  align b(i,j) with t(*,i)
  distribute t(*, block) onto p
  do i = 1, n
    a(i,1) = 0.0
  end do
end
"""


def test_declarations():
    prog = parse_program(BASIC)
    assert [p.name for p in prog.parameters] == ["n", "m"]
    assert prog.parameters[0].value == 8
    assert prog.parameters[1].value is None
    assert [a.name for a in prog.arrays] == ["a", "b"]
    assert prog.array("b").extents[0][0] == Num(0)
    assert [s.name for s in prog.scalars] == ["s"]
    assert prog.processors[0].rank == 2
    assert prog.templates[0].name == "t"


def test_align_stars_and_exprs():
    prog = parse_program(BASIC)
    align_a = prog.align_for("a")
    assert align_a.dummies == ["i", "j"]
    assert isinstance(align_a.targets[0], BinOp)
    align_b = prog.align_for("b")
    assert align_b.targets[0] is None  # '*'


def test_distribute_formats():
    prog = parse_program(BASIC)
    dist = prog.distribute_for("t")
    assert dist.formats[0].kind == "*"
    assert dist.formats[1].kind == "block"
    assert dist.processors == "p"


def test_cyclic_k_format():
    prog = parse_program(
        "program x\nreal a(8)\nprocessors p(2)\ntemplate t(8)\n"
        "align a(i) with t(i)\ndistribute t(cyclic(3)) onto p\nend\n"
    )
    fmt = prog.distribute_for("t").formats[0]
    assert fmt.kind == "cyclic"
    assert fmt.block_size == Num(3)


def test_do_loop_with_step():
    prog = parse_program(
        "program x\ndo i = 1, 10, 2\nend do\nend\n"
    )
    loop = prog.main.body[0]
    assert isinstance(loop, Do)
    assert loop.step == Num(2)


def test_if_else():
    prog = parse_program(
        "program x\nscalar s\nif (s < 3) then\ns = 1\nelse\ns = 2\n"
        "end if\nend\n"
    )
    node = prog.main.body[0]
    assert isinstance(node, If)
    assert len(node.then_body) == 1
    assert len(node.else_body) == 1


def test_on_home_attaches_to_next_assignment():
    prog = parse_program(
        "program x\nreal a(5), b(5)\ndo i = 1, 5\n"
        "on_home b(i)\na(i) = b(i)\nend do\nend\n"
    )
    assign = prog.main.body[0].body[0]
    assert assign.cp is not None
    assert assign.cp.terms[0].ref.array == "b"


def test_on_home_union():
    prog = parse_program(
        "program x\nreal a(5), b(5)\ndo i = 1, 5\n"
        "on_home a(i) union b(i)\na(i) = b(i)\nend do\nend\n"
    )
    assign = prog.main.body[0].body[0]
    assert len(assign.cp.terms) == 2


def test_procedures_and_calls():
    prog = parse_program(
        "program x\nscalar s\nprocedure setup\ns = 1\nend\n"
        "call setup\nend\n"
    )
    assert prog.procedure("setup").body
    assert isinstance(prog.main.body[0], CallStmt)


def test_intrinsic_vs_array_ref():
    prog = parse_program(
        "program x\nreal a(5)\nscalar s\ns = max(a(1), abs(a(2)))\nend\n"
    )
    rhs = prog.main.body[0].rhs
    assert isinstance(rhs, Call) and rhs.func == "max"
    assert isinstance(rhs.args[0], ArrayRef)


def test_float_literals():
    prog = parse_program("program x\nscalar s\ns = 0.25\nend\n")
    assert prog.main.body[0].rhs == Num(0.25)


def test_operator_precedence():
    prog = parse_program("program x\nscalar s\ns = 1 + 2 * 3\nend\n")
    rhs = prog.main.body[0].rhs
    assert isinstance(rhs, BinOp) and rhs.op == "+"


def test_comments_ignored():
    prog = parse_program(
        "program x ! a program\nscalar s\n! full line comment\n"
        "s = 1 ! trailing\nend\n"
    )
    assert len(prog.main.body) == 1


def test_dangling_on_home_rejected():
    with pytest.raises(LangParseError):
        parse_program(
            "program x\nreal a(5)\ndo i = 1, 5\non_home a(i)\n"
            "end do\nend\n"
        )


def test_missing_end_rejected():
    with pytest.raises(LangParseError):
        parse_program("program x\ndo i = 1, 5\nend\n")


def test_walk_statements():
    prog = parse_program(BASIC)
    statements = list(walk_statements(prog.main.body))
    assert any(isinstance(s, Assign) for s in statements)
    assert any(isinstance(s, Do) for s in statements)
