"""Unit tests for data-mapping semantics (layouts, distributions, VP)."""

import pytest

from repro.hpf import (
    DataMapping,
    PHYS_BLOCK,
    PHYS_CYCLIC,
    PHYS_CYCLIC_K,
    VP_BLOCK,
    VP_CYCLIC,
    VP_CYCLIC_K,
)
from repro.isets import enumerate_points, parse_set
from repro.lang import SemanticError, parse_program


def _mapping(dist, procs="p(4)", array="a(100)", template="t(100)",
             align="align a(i) with t(i)"):
    src = (
        f"program x\nreal {array}\nprocessors {procs}\n"
        f"template {template}\n{align}\n"
        f"distribute {dist} onto p\nend\n"
    )
    return DataMapping(parse_program(src))


class TestBlock:
    def test_exact_block_sections(self):
        mapping = _mapping("t(block)")
        layout = mapping.layout("a")
        assert layout.ownerships[0].kind == PHYS_BLOCK
        owned = enumerate_points(
            layout.map.fix_input({"p_0": 1}).range()
        )
        assert owned[0] == (26,) and owned[-1] == (50,)

    def test_uneven_block(self):
        mapping = _mapping("t(block)", procs="p(3)")
        layout = mapping.layout("a")
        # ceil(100/3) = 34: proc 2 owns 69..100
        owned = enumerate_points(layout.map.fix_input({"p_0": 2}).range())
        assert owned[0] == (69,) and owned[-1] == (100,)

    def test_symbolic_procs_become_vp_block(self):
        mapping = _mapping("t(block)", procs="p(nprocs)")
        layout = mapping.layout("a")
        assert layout.ownerships[0].kind == VP_BLOCK
        assert not layout.ownerships[0].needs_vp_loops

    def test_symbolic_extent_becomes_vp_block(self):
        src = (
            "program x\nparameter n\nreal a(n)\nprocessors p(4)\n"
            "template t(n)\nalign a(i) with t(i)\n"
            "distribute t(block) onto p\nend\n"
        )
        mapping = DataMapping(parse_program(src))
        assert mapping.layout("a").ownerships[0].kind == VP_BLOCK


class TestCyclic:
    def test_exact_cyclic(self):
        mapping = _mapping("t(cyclic)")
        layout = mapping.layout("a")
        assert layout.ownerships[0].kind == PHYS_CYCLIC
        owned = enumerate_points(layout.map.fix_input({"p_0": 1}).range())
        assert owned[:3] == [(2,), (6,), (10,)]

    def test_symbolic_cyclic_is_vp(self):
        mapping = _mapping("t(cyclic)", procs="p(nprocs)")
        layout = mapping.layout("a")
        assert layout.ownerships[0].kind == VP_CYCLIC
        assert layout.ownerships[0].needs_vp_loops
        # elementwise: VP v owns exactly template element v
        owned = enumerate_points(layout.map.fix_input({"p_0": 42}).range())
        assert owned == [(42,)]

    def test_cyclic_k_exact_residue_blocks(self):
        mapping = _mapping("t(cyclic(3))", procs="p(2)")
        layout = mapping.layout("a")
        assert layout.ownerships[0].kind == PHYS_CYCLIC_K
        owned = enumerate_points(layout.map.fix_input({"p_0": 0}).range())
        assert (1,) in owned and (3,) in owned
        assert (4,) not in owned and (7,) in owned

    def test_cyclic_k_symbolic_is_vp(self):
        mapping = _mapping("t(cyclic(3))", procs="p(nprocs)")
        assert mapping.layout("a").ownerships[0].kind == VP_CYCLIC_K

    def test_symbolic_k_rejected(self):
        with pytest.raises(SemanticError):
            _mapping("t(cyclic(kk))", procs="p(nprocs)")


class TestAlignment:
    def test_offset_alignment_shifts_sections(self):
        # paper Figure 2: align a(i,j) with t(i+1, j), distribute (*, block)
        src = """
program fig2
  real a(0:99,100), b(100,100)
  processors p(4)
  template t(100,100)
  align a(i,j) with t(i+1,j)
  align b(i,j) with t(*,i)
  distribute t(*,block) onto p
end
"""
        mapping = DataMapping(parse_program(src))
        layout_a = mapping.layout("a")
        owned = enumerate_points(layout_a.map.fix_input({"p_0": 0}).range())
        firsts = sorted({second for _, second in owned})
        assert firsts == list(range(1, 26))  # a's 2nd dim = t2 in 1..25
        rows = sorted({first for first, _ in owned})
        assert rows == list(range(0, 100))  # full first dim

    def test_star_align_replicates(self):
        src = """
program x
  real a(10,10)
  processors p(4)
  template t(10)
  align a(i,j) with t(*)
  distribute t(block) onto p
end
"""
        mapping = DataMapping(parse_program(src))
        layout = mapping.layout("a")
        assert layout.is_fully_replicated() or layout.replicated_dims

    def test_unaligned_array_fully_replicated(self):
        src = (
            "program x\nreal a(10)\nprocessors p(4)\ntemplate t(10)\n"
            "distribute t(block) onto p\nend\n"
        )
        mapping = DataMapping(parse_program(src))
        assert mapping.layout("a").is_fully_replicated()

    def test_rank_mismatch_rejected(self):
        with pytest.raises(SemanticError):
            _mapping("t(block)", align="align a(i,j) with t(i)")


class TestLocalSet:
    def test_local_set_uses_my_symbols(self):
        mapping = _mapping("t(block)")
        local = mapping.layout("a").local_set()
        assert "my_p_0" in local.parameters()
        concrete = local.partial_evaluate({"my_p_0": 0})
        points = enumerate_points(concrete)
        assert points[0] == (1,) and points[-1] == (25,)


def test_no_processors_rejected():
    with pytest.raises(SemanticError):
        DataMapping(parse_program("program x\nreal a(5)\nend\n"))


def test_runtime_bindings_include_grid_and_block():
    mapping = _mapping("t(block)", procs="p(nprocs)")
    symbols = [b.symbol for b in mapping.runtime_bindings()]
    assert "my_p_0" in symbols
    assert any(s.startswith("B_t_") for s in symbols)
