"""Kernel vectorization: qualification, per-statement fallback, and
kernels-vs-scalar A/B identity on every execution backend.

The compute plane must never change results: for each program below the
``compute="kernels"`` and ``compute="scalar"`` compilations are run with
full harness validation (element-by-element against the serial
interpreter) *and* compared to each other bitwise, per rank.
"""

import numpy as np
import pytest

from repro import CompilerOptions, compile_program, run_compiled
from repro.codegen.kernels import _pair_safe, _Ref
from repro.isets import LinExpr
from repro.runtime.faults import FaultPlan
from repro.runtime.options import RuntimeOptions

BACKENDS = ("threads", "mp", "inproc-seq")

STENCIL = """
program s
  parameter n
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 2, n - 1
    a(i) = 0.5 * (b(i-1) + b(i+1))
  end do
end
"""

# ``a`` is unaligned, hence fully replicated: loop-carried reads of it
# need no communication, so the nests below are decided purely by the
# dependence rules (a distributed ``a`` would anchor pipeline
# communication inside the nest and bail the whole piece).
REPL = """
program r
  parameter n
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 2, n - 1
    a(i) = 0.5 * (b(i-1) + b(i+1))
  end do
end
"""


def _compile(source, **overrides):
    return compile_program(source, CompilerOptions(**overrides))


def _statuses(compiled):
    """Statuses of per-statement kernel_report entries, by stmt_id."""
    out = {}
    for stmt_id, _var, status, _reason in compiled.module.kernel_report:
        if status in ("vectorized", "scalar", "empty"):
            out.setdefault(stmt_id, status)
    return out


# ---------------------------------------------------------------------------
# Qualification rules
# ---------------------------------------------------------------------------


class TestQualification:
    def test_stencil_vectorizes(self):
        compiled = _compile(STENCIL)
        assert "# kernel piece over i" in compiled.source
        assert "vectorized=True" in compiled.source
        assert "vectorized" in _statuses(compiled).values()

    def test_scalar_plane_emits_no_kernels(self):
        compiled = _compile(STENCIL, compute="scalar")
        assert "# kernel piece" not in compiled.source
        assert "np.arange" not in compiled.source
        assert compiled.module.kernel_report == []

    def test_backward_dependence_falls_back(self):
        # a(i) reads a(i-1): iteration i must see iteration i-1's write,
        # which a full-RHS-first numpy statement would miss.
        src = REPL.replace(
            "a(i) = 0.5 * (b(i-1) + b(i+1))",
            "a(i) = 0.5 * a(i-1) + b(i)",
        )
        compiled = _compile(src)
        assert set(_statuses(compiled).values()) == {"scalar"}

    def test_forward_dependence_vectorizes(self):
        # a(i) reads a(i+1): numpy's read-all-then-write order matches
        # the scalar loop exactly (each read sees the original value).
        src = REPL.replace(
            "a(i) = 0.5 * (b(i-1) + b(i+1))",
            "a(i) = 0.5 * a(i+1) + b(i)",
        )
        compiled = _compile(src)
        assert "vectorized" in _statuses(compiled).values()

    def test_redblack_parity_vectorizes(self):
        # Distance-1 dependence off a stride-2 lattice never conflicts.
        src = REPL.replace(
            "do i = 2, n - 1",
            "do i = 2, n - 1, 2",
        ).replace(
            "a(i) = 0.5 * (b(i-1) + b(i+1))",
            "a(i) = 0.5 * (a(i-1) + a(i+1))",
        )
        compiled = _compile(src)
        assert "vectorized" in _statuses(compiled).values()

    def test_nonunit_subscript_coefficient_falls_back(self):
        src = """
program nu
  real a(40), b(40)
  processors p(nprocs)
  template t(40)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, 20
    a(i) = b(i+i)
  end do
end
"""
        compiled = _compile(src)
        assert "scalar" in _statuses(compiled).values()

    def test_sum_reduction_lowers_to_np_sum(self):
        src = STENCIL.replace(
            "  do i = 2, n - 1",
            "  scalar s\n  do i = 2, n - 1",
        ).replace(
            "a(i) = 0.5 * (b(i-1) + b(i+1))",
            "s = s + b(i)",
        )
        compiled = _compile(src)
        assert "np.sum(" in compiled.source
        assert "rt.allreduce('+'" in compiled.source

    def test_max_reduction_lowers_to_np_max(self):
        src = STENCIL.replace(
            "  do i = 2, n - 1",
            "  scalar s\n  do i = 2, n - 1",
        ).replace(
            "a(i) = 0.5 * (b(i-1) + b(i+1))",
            "s = max(s, b(i))",
        )
        compiled = _compile(src)
        assert "np.max(" in compiled.source
        assert "rt.allreduce('max'" in compiled.source

    def test_mixed_body_distributes_per_statement(self):
        """One nest, one vectorizable + one dependence-bound statement:
        loop distribution applies, each statement keeps its own loop."""
        src = REPL.replace(
            "a(i) = 0.5 * (b(i-1) + b(i+1))",
            "a(i) = 0.5 * a(i-1) + b(i)\n    b(i) = b(i) * 2.0",
        )
        compiled = _compile(src)
        statuses = set(_statuses(compiled).values())
        assert statuses == {"scalar", "vectorized"}


# ---------------------------------------------------------------------------
# Dependence-distance unit tests
# ---------------------------------------------------------------------------


def _ref(array, *subs, write=False):
    return _Ref(array, tuple(subs), write)


def _sub(coeff_i=0, const=0):
    return LinExpr({"i": coeff_i} if coeff_i else {}, const)


class TestPairSafe:
    def test_same_stmt_backward_read_unsafe(self):
        write = _ref("a", _sub(1, 0), write=True)
        read = _ref("a", _sub(1, -1))
        ok, why = _pair_safe(write, read, "i", 1, same_stmt=True)
        assert not ok and "distance" in why

    def test_same_stmt_forward_read_safe(self):
        write = _ref("a", _sub(1, 0), write=True)
        read = _ref("a", _sub(1, 1))
        ok, _ = _pair_safe(write, read, "i", 1, same_stmt=True)
        assert ok

    def test_cross_stmt_sign_flips(self):
        # Later statement reading the earlier statement's future write
        # is unsafe; reading its past write is the normal pipeline.
        earlier = _ref("a", _sub(1, 0), write=True)
        later_past = _ref("a", _sub(1, -1))
        later_future = _ref("a", _sub(1, 1))
        ok, _ = _pair_safe(earlier, later_past, "i", 1, same_stmt=False)
        assert ok
        ok, _ = _pair_safe(earlier, later_future, "i", 1, same_stmt=False)
        assert not ok

    def test_off_lattice_distance_safe(self):
        write = _ref("a", _sub(1, 0), write=True)
        read = _ref("a", _sub(1, -1))
        ok, _ = _pair_safe(write, read, "i", 2, same_stmt=True)
        assert ok  # red-black: odd distance on an even lattice

    def test_var_free_disjoint_dim_safe(self):
        write = _ref("a", _sub(0, 3), _sub(1, 0), write=True)
        read = _ref("a", _sub(0, 4), _sub(1, -5))
        ok, _ = _pair_safe(write, read, "i", 1, same_stmt=True)
        assert ok  # rows 3 and 4 never overlap

    def test_non_affine_unsafe(self):
        write = _ref("a", _sub(1, 0), write=True)
        read = _Ref("a", None, False)
        ok, why = _pair_safe(write, read, "i", 1, same_stmt=True)
        assert not ok and "non-affine" in why


# ---------------------------------------------------------------------------
# A/B identity: kernels vs scalar, every backend, bitwise
# ---------------------------------------------------------------------------

# Guard-heavy: a replicated recurrence (``c``) shares a nest with a
# distributed stencil statement — the backward dependence forces the
# recurrence onto the scalar fallback path while its neighbour
# vectorizes, and the distributed statement keeps its ownership guard.
GUARD_HEAVY = """
program gh
  parameter n
  real a(n), b(n), c(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    a(i) = i * 0.25
    b(i) = i * 0.5
    c(i) = 0.0
  end do
  do i = 3, n - 2
    c(i) = 0.5 * c(i-1) + a(i)
    b(i) = a(i-2) + a(i+2)
  end do
end
"""

# cyclic(k): VP loops with stride wildcards in the membership sets.
CYCLIC_K = """
program ck
  parameter n
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(cyclic(3)) onto p
  do i = 1, n
    b(i) = i * 0.5
    a(i) = 0.0
  end do
  do i = 2, n - 1
    a(i) = 0.5 * (b(i-1) + b(i+1))
  end do
end
"""

# Strided loop over an offset alignment: slice steps + nonzero bases.
STRIDED = """
program st
  parameter n
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i+1)
  distribute t(block) onto p
  do i = 1, n - 1
    b(i) = i * 0.5
    a(i) = 1.0
  end do
  do i = 2, n - 4, 3
    a(i) = b(i+1) * 2.0
  end do
end
"""

AB_PROGRAMS = {
    "guard_heavy": (GUARD_HEAVY, {"n": 33}),
    "cyclic_k": (CYCLIC_K, {"n": 31}),
    "strided": (STRIDED, {"n": 32}),
}


def _run_ab(name, backend, nprocs=4, runtime_options=None):
    source, params = AB_PROGRAMS[name]
    outcomes = {}
    for mode in ("kernels", "scalar"):
        compiled = _compile(source, compute=mode)
        # validate=True: element-by-element against the serial
        # interpreter (plane-independent ground truth).
        outcomes[mode] = run_compiled(
            compiled, params=params, nprocs=nprocs, backend=backend,
            validate=True, runtime_options=runtime_options,
        )
    for kr, sr in zip(
        outcomes["kernels"].results, outcomes["scalar"].results
    ):
        for array_name, data in kr.arrays.items():
            np.testing.assert_array_equal(
                data, sr.arrays[array_name],
                err_msg=f"{name}: array {array_name} differs bitwise",
            )
        assert kr.scalars == pytest.approx(sr.scalars, rel=1e-9)
    return outcomes


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(AB_PROGRAMS))
def test_kernels_match_scalar_bitwise(name, backend):
    outcomes = _run_ab(name, backend)
    stats = outcomes["kernels"].stats
    assert stats.total_flops_vectorized > 0, (
        f"{name}: nothing vectorized — the A/B compares nothing"
    )
    # Both planes charge identical abstract work.
    assert stats.total_compute == outcomes["scalar"].stats.total_compute


def test_kernels_match_scalar_under_jitter():
    """Timing perturbation must not change kernel-plane results."""
    plan = FaultPlan.parse("jitter:ms=2", seed=13)
    _run_ab(
        "guard_heavy", "threads",
        runtime_options=RuntimeOptions(fault_plan=plan),
    )


# ---------------------------------------------------------------------------
# Compile-cache flow
# ---------------------------------------------------------------------------


class TestCacheFlow:
    def test_kernel_report_flows_through_persistent_cache(self, tmp_path):
        opts = CompilerOptions(cache_dir=str(tmp_path))
        cold = compile_program(STENCIL, opts)
        assert not cold.cache_hit
        assert cold.module.kernel_report
        warm = compile_program(STENCIL, opts)
        assert warm.cache_hit
        assert warm.module.kernel_report == cold.module.kernel_report
        assert warm.source == cold.source

    def test_compute_plane_keys_the_artifact(self, tmp_path):
        compile_program(
            STENCIL, CompilerOptions(cache_dir=str(tmp_path))
        )
        other = compile_program(
            STENCIL,
            CompilerOptions(cache_dir=str(tmp_path), compute="scalar"),
        )
        # Different compute plane -> different fingerprint -> cold.
        assert not other.cache_hit
        assert "# kernel piece" not in other.source
