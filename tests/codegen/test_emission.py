"""Unit tests for Python-source emission and generated-module structure."""

from repro import CompilerOptions, compile_program
from repro.codegen.pyexpr import (
    SourceWriter,
    emit_conjunct_guard,
    emit_linexpr,
    emit_set_guard,
)
from repro.isets import LinExpr, parse_set

STENCIL = """
program s
  parameter n
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 2, n - 1
    a(i) = b(i-1) + b(i+1)
  end do
end
"""


class TestPyExpr:
    def test_emit_linexpr(self):
        expr = LinExpr({"i": 2, "j": -1}, 3)
        text = emit_linexpr(expr)
        assert eval(text, {"i": 5, "j": 4}) == 9

    def test_emit_linexpr_rename(self):
        expr = LinExpr({"i_cur": 1}, 0)
        text = emit_linexpr(expr, {"i_cur": "i"})
        assert "i_cur" not in text

    def test_constant_expr(self):
        assert eval(emit_linexpr(LinExpr.const(-4))) == -4

    def test_conjunct_guard_plain(self):
        conjunct = parse_set("{[i] : 2 <= i <= 8}").conjuncts[0]
        guard = emit_conjunct_guard(conjunct)
        assert eval(guard, {"i": 5})
        assert not eval(guard, {"i": 9})

    def test_conjunct_guard_stride(self):
        conjunct = parse_set(
            "{[i] : exists(a : i = 3a + 1) and 1 <= i <= 20}"
        ).conjuncts[0]
        guard = emit_conjunct_guard(conjunct)
        assert eval(guard, {"i": 7})
        assert not eval(guard, {"i": 8})

    def test_set_guard_union(self):
        subset = parse_set("{[i] : i = 1 or i = 4}")
        guard = emit_set_guard(subset)
        assert eval(guard, {"i": 4}) and not eval(guard, {"i": 3})

    def test_empty_set_guard(self):
        assert emit_set_guard(parse_set("{[i] : 1 <= i <= 0}")) == "False"

    def test_source_writer_indentation(self):
        writer = SourceWriter()
        writer.line("def f():")
        writer.push()
        writer.line("return 1")
        writer.pop()
        text = writer.text()
        namespace = {}
        exec(text, namespace)
        assert namespace["f"]() == 1


class TestGeneratedModule:
    def test_module_is_valid_python(self):
        compiled = compile_program(STENCIL)
        compile(compiled.source, "<generated>", "exec")

    def test_module_structure(self):
        compiled = compile_program(STENCIL)
        source = compiled.source
        assert "def node_main(rt):" in source
        assert "def proc_main(rt):" in source
        assert "rt.send_section(" in source
        assert "rt.recv_section(" in source
        assert "rt.work(" in source
        # partitioned bounds reference myid's (VP) coordinate
        assert "my_p_0" in source

    def test_elements_dataplane_structure(self):
        """The legacy per-element plane stays available for A/B runs."""
        compiled = compile_program(
            STENCIL, CompilerOptions(dataplane="elements")
        )
        source = compiled.source
        assert "rt.send(" in source and "rt.recv(" in source
        assert "rt.send_section(" not in source

    def test_no_dollar_names_leak(self):
        """Fresh internal names contain '$' and must never be emitted."""
        for options in (
            CompilerOptions(),
            CompilerOptions(coalesce=False),
            CompilerOptions(inplace=False),
            CompilerOptions(loop_split=True, buffer_mode="direct"),
        ):
            compiled = compile_program(STENCIL, options)
            assert "$" not in compiled.source.replace("B_t_0", ""), (
                "internal wildcard name leaked into generated source"
            )

    def test_procedures_emitted_separately(self):
        src = """
program multi
  real a(10)
  processors p(2)
  template t(10)
  align a(i) with t(i)
  distribute t(block) onto p
  procedure init
  do i = 1, 10
    a(i) = i
  end do
  end
  call init
end
"""
        compiled = compile_program(src)
        assert "def proc_init(rt):" in compiled.source
        assert "proc_init(rt)" in compiled.source

    def test_listing_mentions_events(self):
        compiled = compile_program(STENCIL)
        assert "communication event" in compiled.source

    def test_reduction_emits_allreduce(self):
        src = STENCIL.replace(
            "    a(i) = b(i-1) + b(i+1)",
            "    a(i) = b(i-1) + b(i+1)\n    s = max(s, a(i))",
        ).replace("  do i = 2", "  scalar s\n  do i = 2")
        compiled = compile_program(src)
        assert "rt.allreduce('max'" in compiled.source
