"""Qualification rules for lowering loop fragments to section descriptors.

``_section_plan`` decides, per ``generate_loops`` fragment, whether the
emitter may replace the per-element pack loop with a closed-form strided
section — or must fall back to the exact fancy-index path.
"""

from repro.codegen.spmd import _section_plan
from repro.isets import Constraint, LinExpr
from repro.isets.bounds import SymbolicBound
from repro.isets.loopgen import GuardNode, LoopNode, StmtNode


def lb(expr, divisor=1):
    return SymbolicBound(expr, divisor, True)


def ub(expr, divisor=1):
    return SymbolicBound(expr, divisor, False)


def loop(var, lower, upper, body, stride=1, align_base=None):
    return LoopNode(
        var, [lb(lower)], [ub(upper)], stride, align_base, [body]
    )


N = LinExpr.var("n")
ONE = LinExpr.const(1)
LEAF = StmtNode("PACK")


class TestQualifies:
    def test_rectangular_nest(self):
        node = loop("d0", ONE, N, loop("d1", ONE, N, LEAF))
        plan = _section_plan(node, ("d0", "d1"))
        assert plan is not None
        guards, loops = plan
        assert guards == [] and [n.var for n in loops] == ["d0", "d1"]

    def test_strided_loop(self):
        node = loop(
            "d0", ONE, N, LEAF, stride=4, align_base=LinExpr.var("p_0")
        )
        assert _section_plan(node, ("d0",)) is not None

    def test_data_dim_free_outer_guard(self):
        guard = GuardNode(
            constraints=[Constraint.geq(N, ONE)],
            body=[loop("d0", ONE, N, LEAF)],
        )
        plan = _section_plan(guard, ("d0",))
        assert plan is not None
        guards, loops = plan
        assert len(guards) == 1 and len(loops) == 1


class TestFallsBack:
    def test_triangular_inner_bound(self):
        inner = loop("d1", LinExpr.var("d0"), N, LEAF)
        node = loop("d0", ONE, N, inner)
        assert _section_plan(node, ("d0", "d1")) is None

    def test_guard_mentioning_data_dim(self):
        guard = GuardNode(
            constraints=[Constraint.geq(LinExpr.var("d0"), ONE)],
            body=[loop("d0", ONE, N, LEAF)],
        )
        assert _section_plan(guard, ("d0",)) is None

    def test_interior_guard(self):
        inner = GuardNode(
            constraints=[Constraint.geq(N, ONE)], body=[LEAF]
        )
        node = loop("d0", ONE, N, inner)
        assert _section_plan(node, ("d0",)) is None

    def test_wrong_dim_order(self):
        node = loop("d1", ONE, N, loop("d0", ONE, N, LEAF))
        assert _section_plan(node, ("d0", "d1")) is None

    def test_missing_dim(self):
        node = loop("d0", ONE, N, LEAF)
        assert _section_plan(node, ("d0", "d1")) is None

    def test_strided_align_base_on_outer_dim(self):
        inner = loop(
            "d1", ONE, N, LEAF, stride=2, align_base=LinExpr.var("d0")
        )
        node = loop("d0", ONE, N, inner)
        assert _section_plan(node, ("d0", "d1")) is None
