"""Shared fixtures: cache isolation for the whole test suite.

The memoization caches (:mod:`repro.cache.manager`) are process-global by
design; without isolation they would leak state — and hit/miss counters —
across test modules (the ad-hoc ``_EMPTINESS_CACHE`` they replaced did
exactly that).  Caches are reset at every module boundary; within a module
they stay warm, which keeps the suite fast.

``REPRO_CACHE_DIR`` is pointed at a session-temporary directory so CLI
invocations under test never touch the user's real compile cache.
"""

import os

import pytest

from repro.cache.manager import reset_caches


@pytest.fixture(autouse=True, scope="module")
def _fresh_repro_caches():
    reset_caches()
    yield
    reset_caches()


@pytest.fixture(autouse=True, scope="session")
def _hermetic_compile_cache(tmp_path_factory):
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("repro-compile-cache")
    )
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
