"""Unit tests for loop-nest generation from sets."""

import pytest

from repro.isets import (
    CodegenError,
    enumerate_points,
    generate_loops,
    parse_set,
    run_loops,
)


def scan(subset, env=None):
    points = []
    fragments = generate_loops(subset, "S")
    run_loops(
        fragments,
        dict(env or {}),
        lambda payload, env_: points.append(
            tuple(env_[d] for d in subset.dims)
        ),
    )
    return points


CASES = [
    ("{[i] : 1 <= i <= 10}", {}),
    ("{[i,j] : 1 <= i <= 5 and i <= j <= 2i}", {}),
    ("{[i,j,k] : 1 <= i <= 3 and i <= j <= 4 and j <= k <= 5}", {}),
    ("{[i] : 1 <= i <= 20 and exists(a : i = 3a + 1)}", {}),
    ("{[i,j] : 1 <= i <= 6 and 1 <= j <= 6 and 2j = i}", {}),
    ("{[i] : 1 <= i <= n}", {"n": 9}),
    ("{[i,j] : 1 <= i <= n and i + 1 <= j <= n + 1}", {"n": 5}),
    ("{[i] : 1 <= i <= 3 or 7 <= i <= 9}", {}),
    ("{[i] : 1 <= i <= 8 or 5 <= i <= 12}", {}),
    ("{[i,j] : 1 <= i <= 3 and 1 <= j <= 3 or "
     "2 <= i <= 5 and 2 <= j <= 5}", {}),
    ("{[i] : 0 <= i <= 30 and exists(a : i = 5a) or "
     "0 <= i <= 30 and exists(b : i = 5b + 2)}", {}),
    ("{[p,t] : 0 <= p <= 3 and 10p + 1 <= t <= 10p + 10}", {}),
]


@pytest.mark.parametrize("text,env", CASES)
def test_scan_matches_enumeration(text, env):
    subset = parse_set(text)
    assert sorted(scan(subset, env)) == enumerate_points(subset, env)


def test_lexicographic_order():
    subset = parse_set("{[i,j] : 1 <= i <= 3 and 1 <= j <= 3}")
    points = scan(subset)
    assert points == sorted(points)


def test_zero_trip_inner_loops():
    subset = parse_set("{[i,j] : 1 <= i <= 5 and 10 <= j <= i}")
    assert scan(subset) == []  # inner range always empty


def test_unbounded_raises():
    subset = parse_set("{[i] : i >= 0}")
    with pytest.raises(CodegenError):
        generate_loops(subset, "S")


def test_parameter_guard_wraps_nest():
    subset = parse_set("{[i] : 1 <= i <= 5 and n >= 3}")
    assert scan(subset, {"n": 2}) == []
    assert len(scan(subset, {"n": 3})) == 5


def test_stride_with_symbolic_base():
    subset = parse_set(
        "{[i] : exists(a : i = 2a + n) and n <= i <= n + 9}"
    )
    points = scan(subset, {"n": 4})
    assert points == [(4,), (6,), (8,), (10,), (12,)]


def test_payload_passthrough():
    subset = parse_set("{[i] : 1 <= i <= 2}")
    payloads = []
    run_loops(
        generate_loops(subset, ("tag", 42)),
        {},
        lambda payload, env: payloads.append(payload),
    )
    assert payloads == [("tag", 42)] * 2
