"""Unit tests for the Omega-like set-notation parser."""

import pytest

from repro.isets import ParseError, parse_map, parse_set


def test_simple_set():
    s = parse_set("{[i,j] : 1 <= i <= 10 and j = i}")
    assert s.dims == ("i", "j")
    assert s.contains((3, 3))
    assert not s.contains((3, 4))


def test_relational_chain():
    s = parse_set("{[i] : 1 <= i < 5}")
    assert s.contains((4,)) and not s.contains((5,))


def test_implicit_multiplication():
    s = parse_set("{[i] : 2i = 6}")
    assert s.contains((3,))
    t = parse_set("{[i] : 2*i = 6}")
    assert t.contains((3,))


def test_or_makes_union():
    s = parse_set("{[i] : i = 1 or i = 5}")
    assert len(s.conjuncts) == 2
    assert s.contains((1,)) and s.contains((5,)) and not s.contains((3,))


def test_exists_wildcards():
    s = parse_set("{[i] : exists(a : i = 3a + 1) and 0 <= i <= 10}")
    members = [i for i in range(11) if s.contains((i,))]
    assert members == [1, 4, 7, 10]


def test_exists_multiple_names():
    s = parse_set("{[i] : exists(a, b : i = 2a and i = 3b) and 0 <= i <= 12}")
    members = [i for i in range(13) if s.contains((i,))]
    assert members == [0, 6, 12]


def test_nested_exists_names_do_not_clash():
    s = parse_set(
        "{[i,j] : exists(a : i = 2a) and exists(a : j = 2a + 1) "
        "and 0 <= i <= 4 and 0 <= j <= 4}"
    )
    assert s.contains((2, 3))
    assert not s.contains((2, 2))


def test_map_parsing():
    m = parse_map("{[i] -> [j] : j = i + 1}")
    assert m.in_dims == ("i",) and m.out_dims == ("j",)
    assert m.contains((1,), (2,))


def test_symbolic_constants_free():
    s = parse_set("{[i] : 1 <= i <= n}")
    assert s.parameters() == ("n",)
    assert s.contains((5,), {"n": 5})


def test_true_false_literals():
    assert parse_set("{[i] : true}").is_obviously_universe()
    assert parse_set("{[i] : false}").is_empty()


def test_empty_constraint_list():
    s = parse_set("{[i,j]}")
    assert s.is_obviously_universe()


def test_parenthesized_expressions():
    s = parse_set("{[i] : 2(i + 1) = 8}")
    assert s.contains((3,))


def test_negative_coefficients():
    s = parse_set("{[i] : -i >= -5 and i >= 0}")
    assert s.contains((5,)) and not s.contains((6,))


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_set("{[i] : i ** 2 = 4}")
    with pytest.raises(ParseError):
        parse_set("{[i] : }")
    with pytest.raises(ParseError):
        parse_set("[i] : i = 1")
    with pytest.raises(ParseError):
        parse_set("{[i] : i = 1} trailing")
    with pytest.raises(ParseError):
        parse_map("{[i] : i = 1}")  # set, not map
    with pytest.raises(ParseError):
        parse_set("{[i] -> [j] : j = i}")  # map, not set


def test_roundtrip_via_str():
    s = parse_set("{[i,j] : 1 <= i <= 10 and exists(a : j = 2a) "
                  "and 0 <= j <= 6}")
    t = parse_set(str(s).replace("$", ""))
    assert s.space.arity_in == t.space.arity_in
