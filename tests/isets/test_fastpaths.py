"""Unit tests for the set-engine performance fast paths.

These target the individual pieces of the compile-time overhaul:
subsumption pruning between disjuncts, the syntactic redundancy test,
incremental redundancy removal, the canonical mod-residue reduction, and
the profiler instrumentation that surfaces all of them.
"""

import pickle

from repro.isets import Conjunct, Constraint, IntegerSet, LinExpr, Space
from repro.isets import parse_set
from repro.isets.omega import (
    _quick_feasibility,
    _syntactic_redundant,
    incremental_redundancies,
    remove_redundancies,
)
from repro.isets.ops import _prune_subsumed
from repro.isets.profile import SetOpProfiler, profiled


def _conjunct(text):
    (conjunct,) = parse_set(text).conjuncts
    return conjunct


class TestPruneSubsumed:
    def test_strict_subset_is_pruned(self):
        # {0 <= i <= 10 and i >= 5} ⊆ {0 <= i <= 10}: drop the tighter one.
        loose = _conjunct("{[i] : 0 <= i <= 10}")
        tight = _conjunct("{[i] : 0 <= i <= 10 and i >= 5}")
        kept = _prune_subsumed([tight, loose])
        assert kept == [loose]

    def test_equal_sets_keep_earliest(self):
        a = _conjunct("{[i] : 0 <= i <= 10}")
        b = _conjunct("{[i] : 0 <= i <= 10}")
        kept = _prune_subsumed([a, b])
        assert len(kept) == 1
        assert kept[0] is a

    def test_incomparable_conjuncts_survive(self):
        a = _conjunct("{[i] : 0 <= i <= 4}")
        b = _conjunct("{[i] : 6 <= i <= 10}")
        assert _prune_subsumed([a, b]) == [a, b]

    def test_wildcard_conjuncts_never_pruned(self):
        strided = _conjunct("{[i] : 0 <= i <= 10 and exists(a : i = 2a)}")
        loose = _conjunct("{[i] : 0 <= i <= 10}")
        kept = _prune_subsumed([strided, loose])
        assert len(kept) == 2

    def test_union_applies_pruning(self):
        # Pruning is syntactic: the tighter disjunct literally contains
        # every constraint of the looser one, plus one more.
        loose = parse_set("{[i] : 0 <= i <= 10}")
        tight = parse_set("{[i] : 0 <= i <= 10 and i >= 5}")
        merged = tight.union(loose)
        assert len(merged.conjuncts) == 1
        assert merged == loose

    def test_pruning_preserves_meaning(self):
        a = parse_set("{[i] : 0 <= i <= 6}")
        b = parse_set("{[i] : 1 <= i <= 6 and i >= 2}")
        merged = a.union(b)
        for v in range(-2, 10):
            assert merged.contains((v,)) == (0 <= v <= 6)


class TestSyntacticRedundant:
    def test_tautology(self):
        c = _conjunct("{[i] : 0 <= i <= 5}")
        assert _syntactic_redundant(c, Constraint.geq(LinExpr.const(3), 0))

    def test_exact_member(self):
        c = _conjunct("{[i] : 0 <= i <= 5}")
        assert _syntactic_redundant(c, Constraint.geq(LinExpr.var("i"), 0))

    def test_weaker_inequality(self):
        c = _conjunct("{[i] : i >= 3}")
        assert _syntactic_redundant(c, Constraint.geq(LinExpr.var("i"), 0))

    def test_stronger_inequality_not_redundant(self):
        c = _conjunct("{[i] : i >= 0}")
        assert not _syntactic_redundant(
            c, Constraint.geq(LinExpr.var("i") - 3, 0)
        )

    def test_equality_pins_inequality_both_signs(self):
        c = _conjunct("{[i] : i = 4}")
        assert _syntactic_redundant(c, Constraint.geq(LinExpr.var("i"), 0))
        assert _syntactic_redundant(
            c, Constraint.geq(-LinExpr.var("i") + 10, 0)
        )


class TestIncrementalRedundancies:
    def test_fresh_constraints_filtered_against_base(self):
        base = _conjunct("{[i] : 0 <= i <= 10}")
        fresh = [
            Constraint.geq(LinExpr.var("i") + 5, 0),   # implied by i >= 0
            Constraint.geq(-LinExpr.var("i") + 7, 0),  # genuinely new
        ]
        kept = incremental_redundancies(base, fresh)
        assert kept == [fresh[1]]

    def test_kept_fresh_constraints_see_each_other(self):
        base = _conjunct("{[i] : 0 <= i <= 10}")
        fresh = [
            Constraint.geq(-LinExpr.var("i") + 7, 0),  # i <= 7 (kept)
            Constraint.geq(-LinExpr.var("i") + 9, 0),  # i <= 9 (implied)
        ]
        kept = incremental_redundancies(base, fresh)
        assert kept == [fresh[0]]

    def test_agrees_with_full_removal(self):
        base = _conjunct("{[i,j] : 0 <= i <= 8 and 0 <= j <= 8}")
        fresh = [
            Constraint.geq(LinExpr.var("i") + LinExpr.var("j"), 0),
            Constraint.geq(-LinExpr.var("i") + 5, 0),
        ]
        kept = incremental_redundancies(base, fresh)
        full = remove_redundancies(
            Conjunct(list(base.constraints) + fresh, [])
        )
        assert set(kept) <= set(full.constraints)
        # The genuinely-new bound must survive both paths.
        assert fresh[1] in kept and fresh[1] in full.constraints


class TestReducedMod:
    def test_residues_in_range(self):
        expr = LinExpr({"x": 7, "y": -3}, 11)
        reduced = expr.reduced_mod(4)
        assert reduced.coeff("x") == 3
        assert reduced.coeff("y") == 1
        assert reduced.constant == 3

    def test_congruent_for_every_assignment(self):
        expr = LinExpr({"x": 5, "y": -2}, 9)
        reduced = expr.reduced_mod(3)
        for x in range(-4, 5):
            for y in range(-4, 5):
                env = {"x": x, "y": y}
                assert (
                    expr.evaluate(env) % 3 == reduced.evaluate(env) % 3
                )

    def test_multiple_of_modulus_drops_out(self):
        expr = LinExpr({"x": 4, "y": 1}, 8)
        reduced = expr.reduced_mod(2)
        assert reduced.coeff("x") == 0
        assert reduced.variables() == ("y",)


class TestQuickFeasibility:
    def test_gcd_empty(self):
        # Built directly: the parser already drops infeasible conjuncts.
        c = Conjunct([Constraint.eq(LinExpr({"i": 2}, -5), 0)], [])
        assert _quick_feasibility(c) is True

    def test_interval_empty(self):
        c = Conjunct(
            [
                Constraint.geq(LinExpr({"i": 1}, -5), 0),   # i >= 5
                Constraint.geq(LinExpr({"i": -1}, 4), 0),   # i <= 4
            ],
            [],
        )
        assert _quick_feasibility(c) is True

    def test_interval_nonempty(self):
        c = _conjunct("{[i,j] : 0 <= i <= 5 and 1 <= j <= 3}")
        assert _quick_feasibility(c) is False

    def test_corner_witness_nonempty(self):
        # Multi-variable inequality satisfied at the lower corner.
        c = _conjunct("{[i,j] : 0 <= i <= 5 and 0 <= j <= 5 and i + j <= 9}")
        assert _quick_feasibility(c) is False

    def test_repair_walk_certifies_off_corner_witness(self):
        # The corner (0,0) violates i + j >= 1, but the min-conflicts
        # repair walk moves one variable inside its window and lands on a
        # genuine witness — provably nonempty without elimination.
        c = _conjunct("{[i,j] : 0 <= i <= 5 and 0 <= j <= 5 and i + j >= 1}")
        assert _quick_feasibility(c) is False

    def test_undecided_returns_none(self):
        # Empty, but only via elimination: the pairwise sums force
        # 2(i+j+k) >= 12 against i+j+k <= 5.  No variable window
        # collapses, no two constraints share a linear form, and the
        # repair walk cannot find a witness (there is none) — the
        # pre-test must pass, not guess.
        c = _conjunct(
            "{[i,j,k] : 0 <= i <= 5 and 0 <= j <= 5 and 0 <= k <= 5 "
            "and i + j >= 4 and j + k >= 4 and i + k >= 4 "
            "and i + j + k <= 5}"
        )
        assert _quick_feasibility(c) is None


class TestProfiler:
    def test_ops_recorded_during_set_algebra(self):
        a = parse_set("{[i] : 0 <= i <= 10}")
        b = parse_set("{[i] : 5 <= i <= 15}")
        with profiled() as prof:
            a.intersect(b).is_empty()
            a.subtract(b).simplify()
        snap = prof.snapshot()
        assert snap["ops"]["set.intersect"]["calls"] == 1
        assert snap["ops"]["set.subtract"]["calls"] == 1
        assert "is_empty_conjunct" in snap["ops"]

    def test_no_profiler_attached_records_nothing(self):
        prof = SetOpProfiler()
        a = parse_set("{[i] : 0 <= i <= 3}")
        a.intersect(a)  # not inside `profiled` — must not touch prof
        assert prof.snapshot() == {"ops": {}, "events": {}}

    def test_merge_snapshot_accumulates(self):
        one = SetOpProfiler()
        one.record("set.union", 0.5, 4, 2)
        one.count("fastpath.gcd_empty", 3)
        two = SetOpProfiler()
        two.merge_snapshot(one.snapshot())
        two.merge_snapshot(one.snapshot())
        snap = two.snapshot()
        assert snap["ops"]["set.union"]["calls"] == 2
        assert snap["events"]["fastpath.gcd_empty"] == 6

    def test_nested_profilers_restore(self):
        outer = SetOpProfiler()
        inner = SetOpProfiler()
        a = parse_set("{[i] : 0 <= i <= 3}")
        b = parse_set("{[i] : 1 <= i <= 2}")
        with profiled(outer):
            with profiled(inner):
                a.intersect(b)
            a.subtract(b)
        assert "set.intersect" in inner.snapshot()["ops"]
        assert "set.intersect" not in outer.snapshot()["ops"]
        assert "set.subtract" in outer.snapshot()["ops"]


class TestLazyHashPickling:
    def test_linexpr_roundtrip_drops_cached_hash(self):
        expr = LinExpr({"x": 2, "y": -1}, 7)
        hash(expr)  # populate the cache
        clone = pickle.loads(pickle.dumps(expr))
        assert clone == expr
        assert hash(clone) == hash(expr)

    def test_constraint_roundtrip(self):
        constraint = Constraint.geq(LinExpr({"x": 2}, -4), 0)
        hash(constraint)
        clone = pickle.loads(pickle.dumps(constraint))
        assert clone == constraint
        assert hash(clone) == hash(constraint)

    def test_set_roundtrip_preserves_equality(self):
        subset = parse_set("{[i,j] : 0 <= i <= 4 and 0 <= j <= i}")
        clone = pickle.loads(pickle.dumps(subset))
        assert clone == subset
