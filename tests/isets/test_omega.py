"""Unit tests for the Omega-test core: equality solving, projection,
emptiness, redundancy."""

from repro.isets import Conjunct, Constraint, LinExpr, parse_set
from repro.isets.omega import (
    constraint_redundant,
    eliminate_variable,
    gist_conjunct,
    is_empty_conjunct,
    normalize,
    project_out,
    remove_redundancies,
    solve_equalities,
)


def _conj(text):
    return parse_set(text).conjuncts[0]


class TestNormalize:
    def test_drops_tautologies_and_duplicates(self):
        c = _conj("{[i] : i >= 1 and i >= 1 and 0 <= 1}")
        result = normalize(c)
        assert len(result.constraints) == 1

    def test_detects_ground_contradiction(self):
        c = Conjunct([Constraint.geq(LinExpr.const(-1), 0)])
        assert normalize(c) is None

    def test_pairs_inequalities_into_equality(self):
        c = _conj("{[i] : i <= 5 and i >= 5}")
        result = normalize(c)
        assert len(result.equalities()) == 1

    def test_opposed_bounds_infeasible(self):
        # The set constructor's normalization already detects this.
        assert parse_set("{[i] : i <= 4 and i >= 5}").is_empty()

    def test_drops_unused_wildcards(self):
        c = Conjunct([Constraint.geq(LinExpr.var("i"), 0)], ["w"])
        assert normalize(c).wildcards == ()


class TestSolveEqualities:
    def test_unit_wildcard_substitution(self):
        c = _conj("{[i] : exists(a : a = i + 1) and 1 <= i <= 5}")
        solved = solve_equalities(c, protected={"i"})
        assert not solved.wildcards

    def test_stride_form_is_preserved(self):
        c = _conj("{[i] : exists(a : i = 2a) and 0 <= i <= 10}")
        solved = solve_equalities(c, protected={"i"})
        assert len(solved.wildcards) == 1
        assert len(solved.equalities()) == 1

    def test_gcd_infeasible_equality(self):
        c = Conjunct([Constraint.eq(LinExpr({"i": 2}), LinExpr.const(5))])
        assert solve_equalities(c, protected={"i"}) is None

    def test_mod_reduce_terminates_on_large_coefficients(self):
        c = _conj("{[i,j] : exists(a, b : 7a + 12b = i and 5a - 3b = j)}")
        solved = solve_equalities(c, protected={"i", "j"})
        assert solved is not None

    def test_drop_rule_removes_free_definitions(self):
        c = _conj("{[i] : exists(a : a = 0) and i >= 1}")
        solved = solve_equalities(c, protected={"i"})
        assert not solved.wildcards


class TestEliminateVariable:
    def test_exact_unit_fme(self):
        c = _conj("{[i,j] : 1 <= i <= 10 and i <= j <= 20}")
        pieces = eliminate_variable(c, "i")
        assert len(pieces) == 1
        # result: 1 <= j... j >= 1 (from i<=j, i>=1) and j <= 20
        piece = pieces[0]
        assert not piece.uses("i")

    def test_unbounded_side_drops_constraints(self):
        c = _conj("{[i,j] : i >= j and j >= 0}")
        pieces = eliminate_variable(c, "i")
        assert len(pieces) == 1
        assert pieces[0].uses("j")

    def test_dark_shadow_and_splinters_are_exact(self):
        # 2i <= x <= 2i + 1 covers every x: projection of x's parity pair
        c = _conj("{[x] : exists(i : 2i <= x and x <= 2i + 1) and "
                  "0 <= x <= 9}")
        # eliminate the wildcard via conjunct-level emptiness on samples
        for value in range(0, 10):
            pinned = c.partial_evaluate({"x": value})
            assert not is_empty_conjunct(pinned)

    def test_nonunit_projection_exact(self):
        # {x : exists i : 3i <= x <= 3i + 1, 0 <= x <= 8}: x % 3 in {0, 1}
        s = parse_set(
            "{[x] : exists(i : 3i <= x and x <= 3i + 1) and 0 <= x <= 8}"
        )
        member = [x for x in range(0, 9) if s.contains((x,))]
        assert member == [0, 1, 3, 4, 6, 7]


class TestEmptiness:
    def test_simple_nonempty(self):
        assert not is_empty_conjunct(_conj("{[i] : 0 <= i <= 10}"))

    def test_simple_empty(self):
        c = Conjunct([
            Constraint.geq(LinExpr.var("i"), 1),
            Constraint.leq(LinExpr.var("i"), 0),
        ])
        assert is_empty_conjunct(c)

    def test_parity_conflict_is_empty(self):
        c = _conj(
            "{[i] : exists(a : i = 2a) and exists(b : i = 2b + 1)}"
        )
        assert is_empty_conjunct(c)

    def test_symbolic_emptiness(self):
        n = LinExpr.var("n")
        i = LinExpr.var("i")
        empty = Conjunct([Constraint.geq(i, n), Constraint.leq(i, n - 1)])
        assert is_empty_conjunct(empty)
        ok = Conjunct([Constraint.geq(i, n), Constraint.leq(i, n + 1)])
        assert not is_empty_conjunct(ok)

    def test_integer_gap_empty(self):
        # 3 <= 2i <= 3 requires 2i == 3: no integer solution.
        i2 = LinExpr({"i": 2})
        c = Conjunct([
            Constraint.geq(i2, 3),
            Constraint.leq(i2, 3),
        ])
        assert is_empty_conjunct(c)


class TestRedundancy:
    def test_redundant_constraint_detected(self):
        c = _conj("{[i] : i >= 5}")
        assert constraint_redundant(c, Constraint.geq(LinExpr.var("i"), 3))
        assert not constraint_redundant(
            c, Constraint.geq(LinExpr.var("i"), 6)
        )

    def test_remove_redundancies(self):
        c = _conj("{[i] : i >= 5 and i >= 3 and i <= 10 and i <= 20}")
        reduced = remove_redundancies(c)
        assert len(reduced.constraints) == 2

    def test_gist_drops_context_implied(self):
        target = _conj("{[i] : 1 <= i <= 10 and i >= 5}")
        context = _conj("{[i] : 1 <= i <= 10}")
        g = gist_conjunct(target, context)
        assert len(g.constraints) == 1


class TestProjectOut:
    def test_multiple_variables(self):
        c = _conj("{[i,j,k] : 1 <= i <= j and j <= k and k <= 10}")
        pieces = project_out(c, ["j", "k"])
        # i ranges over 1..10
        values = set()
        for piece in pieces:
            for v in range(-5, 20):
                if not is_empty_conjunct(piece.partial_evaluate({"i": v})):
                    values.add(v)
        assert values == set(range(1, 11))
