"""Unit tests for the §3.3 predicates (IsConvex / IsSingleton / spans)."""

from repro.isets import (
    Answer,
    is_convex_1d,
    is_singleton_1d,
    parse_set,
    projection,
    spans_full_range,
)


class TestIsConvex:
    def test_interval_is_convex(self):
        assert is_convex_1d(parse_set("{[i] : 1 <= i <= 9}")).answer \
            is Answer.TRUE

    def test_hole_is_not_convex(self):
        result = is_convex_1d(
            parse_set("{[i] : 1 <= i <= 3 or 6 <= i <= 9}")
        )
        assert result.answer is Answer.FALSE

    def test_adjacent_union_is_convex(self):
        result = is_convex_1d(
            parse_set("{[i] : 1 <= i <= 4 or 5 <= i <= 9}")
        )
        assert result.answer is Answer.TRUE

    def test_stride_is_not_convex(self):
        result = is_convex_1d(
            parse_set("{[i] : 0 <= i <= 8 and exists(a : i = 2a)}")
        )
        assert result.answer is Answer.FALSE

    def test_singleton_is_convex(self):
        assert is_convex_1d(parse_set("{[i] : i = 4}")).answer is Answer.TRUE

    def test_symbolic_unknown(self):
        result = is_convex_1d(
            parse_set("{[i] : 1 <= i <= n or i = n + 2}")
        )
        assert result.answer is Answer.UNKNOWN
        assert result.violations is not None

    def test_symbolic_provable(self):
        # Two ranges that always touch: [1,n] ∪ [n,2n] for n >= 1... still
        # convex for every n >= 1, but the sets allow n <= 0 too, where
        # both are empty — also convex.  Provably TRUE.
        result = is_convex_1d(
            parse_set("{[i] : 1 <= i <= n or n <= i <= n + 3}")
        )
        assert result.answer is Answer.TRUE


class TestIsSingleton:
    def test_singleton(self):
        assert is_singleton_1d(parse_set("{[i] : i = 3}")).answer \
            is Answer.TRUE

    def test_pair_is_not(self):
        assert is_singleton_1d(
            parse_set("{[i] : 3 <= i <= 4}")
        ).answer is Answer.FALSE

    def test_empty_is_singleton(self):
        # vacuously: no two distinct members
        assert is_singleton_1d(
            parse_set("{[i] : i >= 1 and i <= 0}")
        ).answer is Answer.TRUE

    def test_symbolic(self):
        result = is_singleton_1d(parse_set("{[i] : n <= i <= m}"))
        assert result.answer is Answer.UNKNOWN


class TestSpansFullRange:
    def test_full(self):
        c = parse_set("{[i] : 1 <= i <= 10}")
        a = parse_set("{[i] : 1 <= i <= 10}")
        assert spans_full_range(c, a).answer is Answer.TRUE

    def test_partial(self):
        c = parse_set("{[i] : 2 <= i <= 10}")
        a = parse_set("{[i] : 1 <= i <= 10}")
        assert spans_full_range(c, a).answer is Answer.FALSE

    def test_symbolic_partial(self):
        c = parse_set("{[i] : p <= i <= 10}")
        a = parse_set("{[i] : 1 <= i <= 10}")
        assert spans_full_range(c, a).answer is Answer.UNKNOWN


def test_projection_helper():
    s = parse_set("{[i,j] : 1 <= i <= 2 and 5 <= j <= 9}")
    p = projection(s, 1)
    assert p.space.arity_in == 1
    assert p.contains((7,)) and not p.contains((4,))
