"""Unit tests for constraint normalization."""

import pytest

from repro.isets import Constraint, LinExpr
from repro.isets.constraint import EQ, GEQ, ceil_div, floor_div


def test_geq_normalization_divides_gcd_and_tightens():
    # 4i - 6 >= 0  →  2i - 3 >= 0  →  i >= ceil(3/2) → 2i... tightened:
    # gcd(4)=4? coefficients gcd is 4 → i - 2 >= 0 (floor(-6/4) = -2).
    c = Constraint(LinExpr({"i": 4}, -6), GEQ)
    assert c.expr.coeff("i") == 1
    assert c.expr.constant == -2  # i >= 2 (integer tightening of i >= 1.5)


def test_eq_normalization_divides_gcd():
    c = Constraint(LinExpr({"i": 4, "j": -2}, 6), EQ)
    assert c.expr.coeff("i") == 2
    assert c.expr.coeff("j") == -1
    assert c.expr.constant == 3


def test_eq_with_indivisible_constant_is_false():
    c = Constraint(LinExpr({"i": 2}, 1), EQ)
    assert c.is_false()


def test_eq_sign_canonicalization():
    a = Constraint.eq(LinExpr.var("i"), LinExpr.var("j"))
    b = Constraint.eq(LinExpr.var("j"), LinExpr.var("i"))
    assert a == b


def test_builders():
    i, j = LinExpr.var("i"), LinExpr.var("j")
    assert Constraint.leq(i, j).holds({"i": 1, "j": 2})
    assert not Constraint.lt(i, j).holds({"i": 2, "j": 2})
    assert Constraint.geq(i, 0).holds({"i": 0})
    assert Constraint.gt(i, j).holds({"i": 3, "j": 2})
    assert Constraint.eq(i, 5).holds({"i": 5})


def test_tautology_and_false_detection():
    assert Constraint.geq(LinExpr.const(0), 0).is_tautology()
    assert Constraint.geq(LinExpr.const(-1), 0).is_false()
    assert Constraint.eq(LinExpr.const(0), 0).is_tautology()
    assert Constraint.eq(LinExpr.const(1), 0).is_false()


def test_negation_of_inequality():
    c = Constraint.geq(LinExpr.var("i"), 3)  # i >= 3
    (negated,) = c.negated()
    # negation: i <= 2
    assert negated.holds({"i": 2})
    assert not negated.holds({"i": 3})


def test_negation_of_equality_is_two_clauses():
    c = Constraint.eq(LinExpr.var("i"), 3)
    clauses = c.negated()
    assert len(clauses) == 2
    holds_at = lambda v: any(cl.holds({"i": v}) for cl in clauses)
    assert holds_at(2) and holds_at(4) and not holds_at(3)


def test_substitute_and_rename():
    c = Constraint.leq(LinExpr.var("i"), LinExpr.var("n"))
    assert c.substitute("n", 10).holds({"i": 10})
    renamed = c.rename({"i": "x"})
    assert renamed.coeff("x") != 0 and renamed.coeff("i") == 0


def test_division_helpers():
    assert floor_div(7, 2) == 3
    assert floor_div(-7, 2) == -4
    assert ceil_div(7, 2) == 4
    assert ceil_div(-7, 2) == -3


def test_invalid_kind_rejected():
    with pytest.raises(ValueError):
        Constraint(LinExpr.var("i"), "<=")
