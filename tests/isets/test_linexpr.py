"""Unit tests for affine expressions."""

import pytest

from repro.isets import LinExpr, NonAffineError, lin_sum


def test_var_and_const_construction():
    i = LinExpr.var("i")
    assert i.coeff("i") == 1
    assert i.constant == 0
    c = LinExpr.const(7)
    assert c.is_constant()
    assert c.constant == 7


def test_addition_merges_coefficients():
    e = LinExpr.var("i") + LinExpr.var("i") + 3
    assert e.coeff("i") == 2
    assert e.constant == 3


def test_subtraction_cancels_to_constant():
    e = LinExpr.var("i") - LinExpr.var("i")
    assert e.is_constant()
    assert e.constant == 0


def test_zero_coefficients_are_dropped():
    e = LinExpr({"i": 0, "j": 2})
    assert e.variables() == ("j",)


def test_scalar_multiplication():
    e = (LinExpr.var("i") + 1) * 3
    assert e.coeff("i") == 3
    assert e.constant == 3


def test_rmul_and_negation():
    e = -2 * LinExpr.var("i")
    assert e.coeff("i") == -2
    assert (-e).coeff("i") == 2


def test_product_of_variables_raises():
    with pytest.raises(NonAffineError):
        LinExpr.var("i") * LinExpr.var("j")


def test_substitute_variable_with_expression():
    e = LinExpr.var("i").scaled(2) + LinExpr.var("j") + 1
    out = e.substitute("i", LinExpr.var("k") + 5)
    assert out.coeff("k") == 2
    assert out.coeff("j") == 1
    assert out.constant == 11
    assert out.coeff("i") == 0


def test_substitute_absent_variable_is_identity():
    e = LinExpr.var("i")
    assert e.substitute("z", 3) is e


def test_rename_merges_colliding_names():
    e = LinExpr.var("i") + LinExpr.var("j")
    out = e.rename({"j": "i"})
    assert out.coeff("i") == 2


def test_evaluate_and_partial_evaluate():
    e = LinExpr.var("i").scaled(3) - LinExpr.var("j") + 4
    assert e.evaluate({"i": 2, "j": 1}) == 9
    part = e.partial_evaluate({"i": 2})
    assert part.coeff("j") == -1
    assert part.constant == 10


def test_exact_div():
    e = LinExpr.var("i").scaled(4) + 8
    half = e.exact_div(4)
    assert half.coeff("i") == 1
    assert half.constant == 2
    with pytest.raises(ValueError):
        (LinExpr.var("i").scaled(3)).exact_div(2)


def test_content_gcd():
    e = LinExpr.var("i").scaled(6) + LinExpr.var("j").scaled(9)
    assert e.content() == 3
    assert LinExpr.const(5).content() == 0


def test_equality_and_hash():
    a = LinExpr.var("i") + 2
    b = LinExpr({"i": 1}, 2)
    assert a == b
    assert hash(a) == hash(b)


def test_lin_sum():
    total = lin_sum([LinExpr.var("i"), 3, "j"])
    assert total.coeff("i") == 1
    assert total.coeff("j") == 1
    assert total.constant == 3


def test_str_round_readability():
    e = LinExpr.var("i").scaled(2) - LinExpr.var("j") - 1
    text = str(e)
    assert "2i" in text and "j" in text


def test_bool():
    assert LinExpr.var("i")
    assert LinExpr.const(1)
    assert not LinExpr.const(0)
