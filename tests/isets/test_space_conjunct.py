"""Unit tests for tuple spaces and conjuncts."""

import pytest

from repro.isets import (
    Conjunct,
    Constraint,
    LinExpr,
    Space,
    SpaceMismatchError,
    fresh_name,
    stride_constraint,
)


class TestSpace:
    def test_set_space(self):
        space = Space(["i", "j"])
        assert not space.is_map
        assert space.arity_in == 2
        assert space.all_dims() == ("i", "j")
        with pytest.raises(SpaceMismatchError):
            space.arity_out

    def test_map_space(self):
        space = Space(["i"], ["j", "k"])
        assert space.is_map
        assert space.arity_out == 2
        assert space.reversed().in_dims == ("j", "k")
        assert space.domain_space() == Space(["i"])
        assert space.range_space() == Space(["j", "k"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpaceMismatchError):
            Space(["i", "i"])
        with pytest.raises(SpaceMismatchError):
            Space(["i"], ["i"])

    def test_alignment_renaming(self):
        a = Space(["i", "j"])
        b = Space(["x", "y"])
        assert a.alignment_renaming(b) == {"x": "i", "y": "j"}
        with pytest.raises(SpaceMismatchError):
            a.alignment_renaming(Space(["x"]))

    def test_drop_and_rename(self):
        space = Space(["i", "j", "k"])
        assert space.drop_dims(["j"]).in_dims == ("i", "k")
        assert space.rename({"i": "a"}).in_dims == ("a", "j", "k")

    def test_fresh_names_unique_and_unparsable(self):
        a, b = fresh_name("e"), fresh_name("e")
        assert a != b
        assert "$" in a  # cannot collide with user-written names


class TestConjunct:
    def _ij(self):
        i, j = LinExpr.var("i"), LinExpr.var("j")
        return Conjunct(
            [Constraint.geq(i, 1), Constraint.leq(i, j)], []
        )

    def test_variables_and_free(self):
        c = self._ij().with_wildcards(["w"]).with_constraints(
            [Constraint.eq(LinExpr.var("w"), LinExpr.var("i"))]
        )
        assert c.variables() == ("i", "j", "w")
        assert c.free_variables() == ("i", "j")

    def test_conjoin_renames_wildcards_apart(self):
        w = fresh_name("w")
        stride, witness = stride_constraint(LinExpr.var("i"), 2)
        a = Conjunct([stride], [witness])
        merged = a.conjoin(a)
        assert len(merged.wildcards) == 2
        assert merged.wildcards[0] != merged.wildcards[1]

    def test_holds_simple(self):
        c = self._ij()
        assert c.holds({"i": 1, "j": 5})
        assert not c.holds({"i": 0, "j": 5})

    def test_holds_with_wildcards(self):
        stride, witness = stride_constraint(LinExpr.var("i"), 3, 1)
        c = Conjunct([stride], [witness])
        assert c.holds({"i": 4})
        assert not c.holds({"i": 5})

    def test_key_canonicalizes_wildcard_names(self):
        s1, w1 = stride_constraint(LinExpr.var("i"), 2)
        s2, w2 = stride_constraint(LinExpr.var("i"), 2)
        a = Conjunct([s1], [w1])
        b = Conjunct([s2], [w2])
        assert a == b
        assert hash(a) == hash(b)

    def test_substitute_drops_wildcard(self):
        stride, witness = stride_constraint(LinExpr.var("i"), 2)
        c = Conjunct([stride], [witness])
        out = c.substitute(witness, 3)
        assert witness not in out.wildcards
        # i = 2*3 = 6 now forced
        assert out.holds({"i": 6})
        assert not out.holds({"i": 4})

    def test_partial_evaluate(self):
        c = self._ij()
        pinned = c.partial_evaluate({"j": 10})
        assert pinned.holds({"i": 10})
        assert not pinned.holds({"i": 11})

    def test_stride_constraint_validation(self):
        with pytest.raises(ValueError):
            stride_constraint(LinExpr.var("i"), 0)
