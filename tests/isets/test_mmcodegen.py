"""Unit tests for multiple-mappings code generation (Appendix B)."""

from repro.isets import mm_codegen, parse_set, run_loops


def scan(fragments, dims, env=None):
    events = []
    run_loops(
        fragments,
        dict(env or {}),
        lambda payload, env_: events.append(
            (tuple(env_[d] for d in dims), payload)
        ),
    )
    return events


def test_single_statement():
    s = parse_set("{[i] : 1 <= i <= 4}")
    events = scan(mm_codegen([(s, "A")]), ("i",))
    assert events == [((i,), "A") for i in range(1, 5)]


def test_two_statements_interleaved_in_order():
    full = parse_set("{[i,j] : 1 <= i <= 3 and 1 <= j <= 3}")
    lower = parse_set("{[i,j] : 1 <= i <= 3 and 1 <= j <= i}")
    events = scan(mm_codegen([(full, "A"), (lower, "B")]), ("i", "j"))
    per_point = {}
    for point, payload in events:
        per_point.setdefault(point, []).append(payload)
    for (i, j), payloads in per_point.items():
        if j <= i:
            assert payloads == ["A", "B"]
        else:
            assert payloads == ["A"]
    points = [point for point, _ in events]
    assert points == sorted(points)


def test_statement_executes_exactly_once_per_tuple():
    a = parse_set("{[i] : 1 <= i <= 10}")
    b = parse_set("{[i] : 5 <= i <= 15}")
    events = scan(mm_codegen([(a, "A"), (b, "B")]), ("i",))
    from collections import Counter

    counts = Counter(events)
    assert all(v == 1 for v in counts.values())
    assert sum(1 for (_, p) in events if p == "A") == 10
    assert sum(1 for (_, p) in events if p == "B") == 11


def test_known_context_prunes_guards():
    s = parse_set("{[i] : 1 <= i <= n and n >= 1}")
    known = parse_set("{[i] : n >= 1}")
    fragments = mm_codegen([(s, "A")], known=known)
    events = scan(fragments, ("i",), {"n": 3})
    assert len(events) == 3


def test_symbolic_guard():
    a = parse_set("{[i] : 1 <= i <= n}")
    b = parse_set("{[i] : 1 <= i <= n and i <= m}")
    events = scan(mm_codegen([(a, "A"), (b, "B")]), ("i",), {"n": 5, "m": 2})
    b_points = [point for point, payload in events if payload == "B"]
    assert b_points == [(1,), (2,)]


def test_strided_statement_set():
    s = parse_set("{[i] : 1 <= i <= 12 and exists(a : i = 4a)}")
    events = scan(mm_codegen([(s, "S")]), ("i",))
    assert [point for point, _ in events] == [(4,), (8,), (12,)]


def test_empty_mapping_list():
    assert mm_codegen([]) == []
