"""Unit tests for bound extraction and relaxed projection."""

from repro.isets import LinExpr, parse_set
from repro.isets.bounds import (
    SymbolicBound,
    extract_bounds,
    ground_range,
    inequality_projection,
    relax_equalities,
)


def _conj(text):
    return parse_set(text).conjuncts[0]


def test_relax_equalities_doubles():
    c = _conj("{[i] : i = 5}")
    relaxed = relax_equalities(c.constraints)
    assert len(relaxed) == 2
    assert all(not r.is_equality for r in relaxed)


def test_ground_range_simple():
    c = _conj("{[i] : 2 <= i <= 9}")
    assert ground_range(c, "i") == (2, 9)


def test_ground_range_through_other_vars():
    c = _conj("{[i,j] : 1 <= j <= 5 and j <= i <= j + 2}")
    assert ground_range(c, "i") == (1, 7)


def test_ground_range_with_stride_witness():
    c = _conj("{[i] : exists(a : i = 2a) and 1 <= i <= 9}")
    lo, hi = ground_range(c, "i")
    assert lo <= 2 and hi >= 8


def test_ground_range_unbounded():
    c = _conj("{[i] : i >= 0}")
    assert ground_range(c, "i") == (0, None)
    c2 = _conj("{[i] : i >= n}")
    assert ground_range(c2, "i") == (None, None)


def test_ground_range_divisor_tightening():
    # 3i >= 7 → i >= ceil(7/3) = 3;  3i <= 11 → i <= 3
    c = _conj("{[i] : 7 <= 3i and 3i <= 11}")
    assert ground_range(c, "i") == (3, 3)


def test_inequality_projection_keeps_only_requested():
    c = _conj("{[i,j] : 1 <= i <= 10 and i <= j <= 12}")
    constraints = inequality_projection(c, {"j"})
    names = {v for con in constraints for v in con.variables()}
    assert names == {"j"}


def test_symbolic_bound_evaluation():
    lower = SymbolicBound(LinExpr.var("n") + 1, 2, True)
    assert lower.evaluate({"n": 4}) == 3  # ceil(5/2)
    upper = SymbolicBound(LinExpr.var("n") + 1, 2, False)
    assert upper.evaluate({"n": 4}) == 2  # floor(5/2)
    assert SymbolicBound(LinExpr.const(7), 1, True).ground_value() == 7


def test_extract_bounds_splits_sides():
    c = _conj("{[i,j] : 2i >= j and 3i <= j + 12 and 0 <= j}")
    lowers, uppers, rest = extract_bounds(c.constraints, "i")
    assert len(lowers) == 1 and lowers[0].divisor == 2
    assert len(uppers) == 1 and uppers[0].divisor == 3
    assert len(rest) == 1


def test_extract_bounds_equality_gives_both():
    c = _conj("{[i,j] : 2i = j}")
    lowers, uppers, _ = extract_bounds(c.constraints, "i")
    assert len(lowers) == 1 and len(uppers) == 1
    assert lowers[0].evaluate({"j": 6}) == 3
    assert uppers[0].evaluate({"j": 6}) == 3
    # odd j: empty integer range (ceil > floor)
    assert lowers[0].evaluate({"j": 7}) > uppers[0].evaluate({"j": 7})
