"""Unit tests for point enumeration."""

import pytest

from repro.isets import (
    UnboundedSetError,
    brute_force_points,
    count_points,
    enumerate_points,
    parse_set,
    sample_point,
)


def test_box_enumeration():
    s = parse_set("{[i,j] : 1 <= i <= 2 and 3 <= j <= 4}")
    assert enumerate_points(s) == [(1, 3), (1, 4), (2, 3), (2, 4)]


def test_triangle():
    s = parse_set("{[i,j] : 1 <= i <= 3 and 1 <= j <= i}")
    assert count_points(s) == 6


def test_stride_enumeration():
    s = parse_set("{[i] : 0 <= i <= 12 and exists(a : i = 4a)}")
    assert enumerate_points(s) == [(0,), (4,), (8,), (12,)]


def test_union_deduplicates():
    s = parse_set("{[i] : 1 <= i <= 4 or 3 <= i <= 6}")
    assert enumerate_points(s) == [(i,) for i in range(1, 7)]


def test_empty_set():
    s = parse_set("{[i] : i >= 2 and i <= 1}")
    assert enumerate_points(s) == []
    assert sample_point(s) is None


def test_parameterized_enumeration():
    s = parse_set("{[i] : 1 <= i <= n}")
    assert count_points(s, {"n": 7}) == 7


def test_unbounded_raises():
    s = parse_set("{[i] : i >= 0}")
    with pytest.raises(UnboundedSetError):
        enumerate_points(s)


def test_unbound_parameter_raises():
    s = parse_set("{[i] : 1 <= i <= n}")
    with pytest.raises(UnboundedSetError):
        enumerate_points(s)


def test_sample_point_is_member():
    s = parse_set("{[i,j] : 3 <= i <= 5 and i <= j <= 7}")
    point = sample_point(s)
    assert s.contains(point)


def test_brute_force_agrees():
    s = parse_set(
        "{[i,j] : 1 <= i <= 6 and 1 <= j <= 6 and exists(a : i + j = 2a)}"
    )
    brute = brute_force_points(s, {"i": (1, 6), "j": (1, 6)})
    assert enumerate_points(s) == brute


def test_rank_zero_set():
    s = parse_set("{[] : 1 <= n}")
    assert enumerate_points(s, {"n": 3}) == [()]
    assert enumerate_points(s, {"n": 0}) == []


def test_negative_ranges():
    s = parse_set("{[i] : -5 <= i <= -2}")
    assert enumerate_points(s) == [(-5,), (-4,), (-3,), (-2,)]
