"""Unit tests for the set/map algebra (paper Appendix A operations)."""

import pytest

from repro.isets import (
    Conjunct,
    Constraint,
    IntegerMap,
    IntegerSet,
    LinExpr,
    SpaceMismatchError,
    count_points,
    enumerate_points,
    parse_map,
    parse_set,
    split_disjoint,
)
from repro.isets.ops import disjoint_subtract


class TestSetAlgebra:
    def test_union_and_count(self):
        a = parse_set("{[i] : 1 <= i <= 5}")
        b = parse_set("{[i] : 4 <= i <= 8}")
        assert count_points(a.union(b)) == 8

    def test_intersect(self):
        a = parse_set("{[i] : 1 <= i <= 5}")
        b = parse_set("{[i] : 4 <= i <= 8}")
        assert enumerate_points(a.intersect(b)) == [(4,), (5,)]

    def test_subtract(self):
        a = parse_set("{[i] : 1 <= i <= 8}")
        b = parse_set("{[i] : 3 <= i <= 5}")
        assert enumerate_points(a.subtract(b)) == [
            (1,), (2,), (6,), (7,), (8,)
        ]

    def test_subtract_stride(self):
        a = parse_set("{[i] : 0 <= i <= 9}")
        even = parse_set("{[i] : 0 <= i <= 9 and exists(e : i = 2e)}")
        odd = a.subtract(even)
        assert enumerate_points(odd) == [(1,), (3,), (5,), (7,), (9,)]

    def test_alignment_renames_dims(self):
        a = parse_set("{[i] : 1 <= i <= 5}")
        b = parse_set("{[x] : 2 <= x <= 9}")
        assert count_points(a.intersect(b)) == 4

    def test_alignment_capture_rejected(self):
        a = parse_set("{[i] : 1 <= i <= n}")
        b = parse_set("{[x] : 1 <= x <= i}")  # free symbol 'i' would capture
        with pytest.raises(SpaceMismatchError):
            a.intersect(b)

    def test_is_subset_and_equal(self):
        small = parse_set("{[i,j] : 2 <= i <= 4 and 2 <= j <= 4}")
        big = parse_set("{[i,j] : 1 <= i <= 5 and 1 <= j <= 5}")
        assert small.is_subset(big)
        assert not big.is_subset(small)
        assert big.is_equal(
            parse_set("{[a,b] : 1 <= a <= 5 and 1 <= b <= 5}")
        )

    def test_symbolic_subset(self):
        a = parse_set("{[i] : 2 <= i <= n - 1}")
        b = parse_set("{[i] : 1 <= i <= n}")
        assert a.is_subset(b)
        assert not b.is_subset(a)

    def test_project_out(self):
        s = parse_set("{[i,j] : 1 <= i <= 3 and i <= j <= 2i}")
        p = s.project_out("j")
        assert enumerate_points(p) == [(1,), (2,), (3,)]

    def test_project_onto_reorders(self):
        s = parse_set("{[i,j] : 1 <= i <= 2 and 5 <= j <= 6}")
        p = s.project_onto(["j"])
        assert enumerate_points(p) == [(5,), (6,)]

    def test_universe_and_empty(self):
        assert IntegerSet.universe(["i"]).is_obviously_universe()
        assert IntegerSet.empty(["i"]).is_empty()

    def test_fix_dims(self):
        s = parse_set("{[i,j] : 1 <= i <= 5 and 1 <= j <= 5}")
        fixed = s.fix_dims({"i": 3})
        assert count_points(fixed) == 5

    def test_simplify_removes_empty_conjuncts(self):
        s = parse_set("{[i] : 1 <= i <= 5 or 3 <= i <= n and n <= 2}")
        assert len(s.simplify().conjuncts) == 1

    def test_simplify_full_removes_redundant_constraints(self):
        s = parse_set("{[i] : 1 <= i <= 5 and i >= 0 and i <= 100}")
        simplified = s.simplify(full=True)
        assert len(simplified.conjuncts[0].constraints) == 2

    def test_parameters(self):
        s = parse_set("{[i] : 1 <= i <= n and i >= pivot}")
        assert s.parameters() == ("n", "pivot")

    def test_contains_with_params(self):
        s = parse_set("{[i] : 1 <= i <= n}")
        assert s.contains((5,), {"n": 10})
        assert not s.contains((11,), {"n": 10})


class TestMapAlgebra:
    def test_domain_and_range(self):
        m = parse_map("{[i] -> [j] : j = i + 1 and 1 <= i <= 4}")
        assert enumerate_points(m.domain()) == [(1,), (2,), (3,), (4,)]
        assert enumerate_points(m.range()) == [(2,), (3,), (4,), (5,)]

    def test_inverse(self):
        m = parse_map("{[i] -> [j] : j = 2i and 1 <= i <= 3}")
        inv = m.inverse()
        assert enumerate_points(inv.apply(parse_set("{[j] : j = 4}"))) == [
            (2,)
        ]

    def test_apply(self):
        m = parse_map("{[i] -> [j] : j = i + 10}")
        image = m.apply(parse_set("{[i] : 1 <= i <= 3}"))
        assert enumerate_points(image) == [(11,), (12,), (13,)]

    def test_then_composition_order(self):
        f = parse_map("{[i] -> [j] : j = i + 1}")
        g = parse_map("{[j] -> [k] : k = 2j}")
        fg = f.then(g)  # k = 2(i+1)
        image = fg.apply(parse_set("{[i] : i = 3}"))
        assert enumerate_points(image) == [(8,)]

    def test_compose_is_reversed(self):
        f = parse_map("{[i] -> [j] : j = i + 1}")
        g = parse_map("{[j] -> [k] : k = 2j}")
        gf = g.compose(f)
        image = gf.apply(parse_set("{[i] : i = 3}"))
        assert enumerate_points(image) == [(8,)]

    def test_identity(self):
        ident = IntegerMap.identity(["i", "j"])
        assert ident.contains((1, 2), (1, 2))
        assert not ident.contains((1, 2), (2, 1))

    def test_restrict_domain_range(self):
        m = parse_map("{[i] -> [j] : j = i}")
        dom = parse_set("{[i] : 1 <= i <= 3}")
        rng = parse_set("{[j] : 2 <= j <= 9}")
        restricted = m.restrict_domain(dom).restrict_range(rng)
        assert enumerate_points(restricted.range()) == [(2,), (3,)]

    def test_preimage(self):
        m = parse_map("{[i] -> [j] : j = i + 1}")
        pre = m.preimage(parse_set("{[j] : 5 <= j <= 6}"))
        assert enumerate_points(pre) == [(4,), (5,)]

    def test_from_exprs(self):
        m = IntegerMap.from_exprs(
            ["i", "j"], [LinExpr.var("j"), LinExpr.var("i") - 1]
        )
        assert m.contains((2, 7), (7, 1))

    def test_map_subtract(self):
        m = parse_map("{[i] -> [j] : j = i and 1 <= i <= 5}")
        diag = parse_map("{[i] -> [j] : j = i and 3 <= i <= 3}")
        rest = m.subtract(diag)
        assert enumerate_points(rest.domain()) == [
            (1,), (2,), (4,), (5,)
        ]

    def test_mismatched_arity_rejected(self):
        f = parse_map("{[i] -> [j,k] : j = i and k = i}")
        g = parse_map("{[j] -> [l] : l = j}")
        with pytest.raises(SpaceMismatchError):
            f.then(g)


class TestDisjointDecomposition:
    def test_split_disjoint_partitions_union(self):
        s = parse_set("{[i] : 1 <= i <= 10 or 5 <= i <= 15}")
        pieces = split_disjoint(s)
        covered = {}
        for piece in pieces:
            for point in enumerate_points(piece):
                assert point not in covered, "pieces overlap"
                covered[point] = True
        assert sorted(covered) == [(i,) for i in range(1, 16)]

    def test_disjoint_subtract_pieces_are_disjoint(self):
        a = parse_set("{[i,j] : 0 <= i <= 5 and 0 <= j <= 5}").conjuncts[0]
        b = parse_set("{[i,j] : 2 <= i <= 3 and 2 <= j <= 3}").conjuncts[0]
        pieces = disjoint_subtract(a, b)
        seen = set()
        for piece in pieces:
            pts = enumerate_points(
                IntegerSet(parse_set("{[i,j]}").space, [piece])
            )
            for point in pts:
                assert point not in seen
                seen.add(point)
        assert len(seen) == 36 - 4

    def test_split_disjoint_with_strides(self):
        s = parse_set(
            "{[i] : 0 <= i <= 11 and exists(a : i = 2a) or "
            "0 <= i <= 11 and exists(b : i = 3b)}"
        )
        pieces = split_disjoint(s)
        covered = set()
        for piece in pieces:
            for point in enumerate_points(piece):
                assert point not in covered
                covered.add(point)
        expected = {(i,) for i in range(12) if i % 2 == 0 or i % 3 == 0}
        assert covered == expected


class TestGist:
    def test_gist_drops_implied(self):
        s = parse_set("{[i] : 1 <= i <= 10 and i >= 5}")
        ctx = parse_set("{[i] : 1 <= i <= 10}")
        g = s.gist(ctx)
        assert len(g.conjuncts[0].constraints) == 1
