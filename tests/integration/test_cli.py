"""Integration tests for the command-line interface."""

import pytest

from repro.__main__ import main

PROGRAM = """
program cli
  parameter n
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i
    a(i) = 0.0
  end do
  do i = 2, n - 1
    a(i) = b(i-1) + b(i+1)
  end do
end
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.hpf"
    path.write_text(PROGRAM)
    return str(path)


def test_compile_listing(program_file, capsys):
    assert main(["compile", program_file]) == 0
    out = capsys.readouterr().out
    assert "ON_HOME a(i)" in out and "event main_ev0" in out


def test_compile_source(program_file, capsys):
    assert main(["compile", program_file, "--source"]) == 0
    out = capsys.readouterr().out
    assert "def node_main(rt):" in out


def test_compile_phases(program_file, capsys):
    assert main(["compile", program_file, "--phases"]) == 0
    assert "partitioning" in capsys.readouterr().out


def test_run_validates(program_file, capsys):
    code = main([
        "run", program_file, "--nprocs", "3", "--param", "n=17",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "validation: OK" in out
    assert "messages:" in out


def test_run_mp_backend_reports_wallclock(program_file, capsys):
    code = main([
        "run", program_file, "--backend", "mp", "--nprocs", "4",
        "--param", "n=17",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "validation: OK" in out
    assert "backend:    mp" in out
    assert "measured wall-clock" in out
    for rank in range(4):
        assert f"rank {rank}:" in out


def test_run_inproc_seq_backend(program_file, capsys):
    code = main([
        "run", program_file, "--backend", "inproc-seq", "--nprocs", "2",
        "--param", "n=17", "--recv-timeout", "5",
    ])
    assert code == 0
    assert "backend:    inproc-seq" in capsys.readouterr().out


def test_run_unknown_backend_rejected(program_file):
    with pytest.raises(SystemExit, match="unknown execution backend"):
        main([
            "run", program_file, "--backend", "warp-drive",
            "--param", "n=17",
        ])


def test_run_with_options(program_file, capsys):
    code = main([
        "run", program_file, "--nprocs", "2", "--param", "n=17",
        "--no-coalesce", "--loop-split", "--buffer-mode", "direct",
    ])
    assert code == 0
    assert "validation: OK" in capsys.readouterr().out


def test_sets_enumeration(capsys):
    code = main([
        "sets", "{[i] : 1 <= i <= 9 and exists(a : i = 2a)}",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "4 point(s):" in out


def test_sets_with_params(capsys):
    code = main(["sets", "{[i] : 1 <= i <= n}", "--param", "n=3"])
    assert code == 0
    assert "3 point(s):" in capsys.readouterr().out


def test_bad_param_rejected(program_file):
    with pytest.raises(SystemExit):
        main(["run", program_file, "--param", "oops"])


def test_compile_with_cache_dir_warm_start(program_file, tmp_path, capsys):
    cache_dir = str(tmp_path / "cc")
    assert main([
        "compile", program_file, "--phases", "--cache-dir", cache_dir,
    ]) == 0
    cold_out = capsys.readouterr().out
    assert "served from the compile cache" not in cold_out
    assert main([
        "compile", program_file, "--phases", "--cache-dir", cache_dir,
    ]) == 0
    warm_out = capsys.readouterr().out
    assert "served from the compile cache" in warm_out


def test_run_reports_cache_lines(program_file, tmp_path, capsys):
    cache_dir = str(tmp_path / "cc")
    args = [
        "run", program_file, "--nprocs", "2", "--param", "n=17",
        "--backend", "inproc-seq", "--cache-dir", cache_dir,
    ]
    assert main(args) == 0
    cold_out = capsys.readouterr().out
    assert "set-op memoization:" in cold_out
    assert main(args) == 0
    warm_out = capsys.readouterr().out
    assert "compile cache: warm (artifact reused)" in warm_out
    assert "validation: OK" in warm_out


def test_caching_off_flag(program_file, capsys):
    assert main([
        "compile", program_file, "--source", "--caching", "off",
    ]) == 0
    off_src = capsys.readouterr().out
    assert main(["compile", program_file, "--source"]) == 0
    assert capsys.readouterr().out == off_src


def test_cache_stats_and_clear(program_file, tmp_path, capsys):
    cache_dir = str(tmp_path / "cc")
    assert main(["compile", program_file, "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "artifacts: 1" in out
    assert "in-process memoization caches:" in out
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    assert "removed 1 artifact(s)" in capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    assert "artifacts: 0" in capsys.readouterr().out
