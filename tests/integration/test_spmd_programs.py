"""Integration tests: compile mini-HPF programs, run the generated SPMD
code on the simulated machine, and validate every array element against
the serial interpreter (the strongest end-to-end check we have)."""

import pytest

from repro import CompilerOptions, compile_program, run_compiled
from repro.programs import erlebacher, gauss, jacobi, sp_like, tomcatv


def _check(src, params, procs, options=None):
    compiled = compile_program(src, options)
    outcomes = {}
    for p in procs:
        outcomes[p] = run_compiled(compiled, params=params, nprocs=p)
    return compiled, outcomes


class TestBenchmarkPrograms:
    def test_jacobi_validates(self):
        _, outcomes = _check(jacobi(), {"n": 14, "niter": 2}, (2, 4))
        assert outcomes[4].stats.total_messages > 0

    def test_tomcatv_validates(self):
        _, outcomes = _check(tomcatv(), {"n": 12, "niter": 2}, (1, 3))
        # max-reductions become collectives
        assert outcomes[3].results[0].trace.collectives > 0

    def test_erlebacher_validates(self):
        _, outcomes = _check(
            erlebacher(), {"n": 5, "nz": 9, "niter": 2}, (1, 3)
        )
        assert outcomes[3].stats.total_messages > 0

    def test_gauss_validates(self):
        _check(gauss(), {"n": 11}, (1, 2, 4))

    def test_sp_like_validates(self):
        src = sp_like(routines=2, nests_per_routine=1)
        _check(src, {"n": 6, "niter": 1}, (2, 4))


class TestDistributions:
    TEMPLATE = """
program d
  parameter n
  real a(n), b(n)
  processors PROCS
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(FMT) onto p
  do i = 1, n
    b(i) = 3 * i
    a(i) = 0.0
  end do
  do i = 2, n - 1
    a(i) = b(i-1) + b(i+1)
  end do
end
"""

    @pytest.mark.parametrize(
        "fmt,procs,nprocs",
        [
            ("block", "p(4)", 4),
            ("block", "p(nprocs)", 3),
            ("cyclic", "p(4)", 4),
            ("cyclic", "p(nprocs)", 3),
            ("cyclic(2)", "p(2)", 2),
            ("cyclic(2)", "p(nprocs)", 2),
        ],
    )
    def test_shift_stencil_all_distributions(self, fmt, procs, nprocs):
        src = self.TEMPLATE.replace("FMT", fmt).replace("PROCS", procs)
        compiled = compile_program(src)
        run_compiled(compiled, params={"n": 13}, nprocs=nprocs)

    def test_2d_block_block(self):
        src = """
program d2
  parameter n
  real a(n,n), b(n,n)
  processors p(2, nprocs / 2)
  template t(n,n)
  align a(i,j) with t(i,j)
  align b(i,j) with t(i,j)
  distribute t(block, block) onto p
  do i = 1, n
    do j = 1, n
      b(i,j) = i + 2 * j
      a(i,j) = 0.0
    end do
  end do
  do i = 2, n - 1
    do j = 2, n - 1
      a(i,j) = b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1)
    end do
  end do
end
"""
        compiled = compile_program(src)
        run_compiled(compiled, params={"n": 12}, nprocs=4)

    def test_transpose_like_communication(self):
        src = """
program tr
  real a(20,20), b(20,20)
  processors p(4)
  template t(20,20)
  align a(i,j) with t(i,j)
  align b(i,j) with t(i,j)
  distribute t(block, *) onto p
  do i = 1, 20
    do j = 1, 20
      b(i,j) = i * 100 + j
    end do
  end do
  do i = 1, 20
    do j = 1, 20
      a(i,j) = b(j,i)
    end do
  end do
end
"""
        compiled = compile_program(src)
        out = run_compiled(compiled, params={}, nprocs=4)
        assert out.stats.total_messages > 0


class TestOptimizationVariants:
    STENCIL = """
program s
  parameter n
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i * 1.5
    a(i) = 0.0
  end do
  do iter = 1, 3
    do i = 2, n - 1
      a(i) = b(i-1) + b(i+1)
    end do
    do i = 2, n - 1
      b(i) = a(i)
    end do
  end do
end
"""

    # Two reads needing data from the *same* neighbor: coalescing merges
    # their messages, so disabling it must increase the message count.
    SAME_NEIGHBOR = STENCIL.replace(
        "      a(i) = b(i-1) + b(i+1)", "      a(i) = b(i-1) + b(i-2)"
    ).replace("    do i = 2, n - 1\n      a(i)", "    do i = 3, n - 1\n      a(i)")

    def test_no_coalescing_still_correct(self):
        src = self.SAME_NEIGHBOR
        options = CompilerOptions(coalesce=False)
        out = run_compiled(
            compile_program(src, options), params={"n": 16}, nprocs=4
        )
        base = run_compiled(
            compile_program(src), params={"n": 16}, nprocs=4
        )
        assert out.stats.total_messages > base.stats.total_messages
        assert out.stats.total_bytes >= base.stats.total_bytes

    def test_no_inplace_still_correct(self):
        options = CompilerOptions(inplace=False)
        compiled = compile_program(self.STENCIL, options)
        out = run_compiled(compiled, params={"n": 16}, nprocs=4)
        base = run_compiled(
            compile_program(self.STENCIL), params={"n": 16}, nprocs=4
        )
        # disabling in-place cannot reduce copies
        assert out.stats.total_copies >= base.stats.total_copies

    def test_no_active_vp_still_correct(self):
        options = CompilerOptions(active_vp=False)
        compiled = compile_program(gauss(), options)
        run_compiled(compiled, params={"n": 10}, nprocs=2)


class TestNonOwnerComputes:
    def test_on_home_rhs_partitioning_runs(self):
        src = """
program noc
  real a(40), b(40)
  processors p(4)
  template t(40)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, 40
    b(i) = i
    a(i) = 0.0
  end do
  do i = 1, 39
    on_home b(i)
    a(i+1) = b(i) * 2
  end do
end
"""
        compiled = compile_program(src)
        out = run_compiled(compiled, params={}, nprocs=4)
        # non-owner-computes writes flush updates to the owners
        assert out.stats.total_messages > 0


class TestReductionCorrectness:
    def test_sum_reduction_with_nonzero_base(self):
        src = """
program red
  parameter n
  real a(n)
  scalar s
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    a(i) = i
  end do
  s = 100.0
  do i = 1, n
    s = s + a(i)
  end do
end
"""
        compiled = compile_program(src)
        out = run_compiled(compiled, params={"n": 10}, nprocs=2)
        assert out.results[0].scalars["s"] == pytest.approx(155.0)

    def test_min_reduction(self):
        src = """
program red2
  parameter n
  real a(n)
  scalar s
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    a(i) = 100 - i
  end do
  s = 1000.0
  do i = 1, n
    s = min(s, a(i))
  end do
end
"""
        compiled = compile_program(src)
        out = run_compiled(compiled, params={"n": 12}, nprocs=3)
        assert out.results[0].scalars["s"] == pytest.approx(88.0)


class TestStridedLoops:
    @pytest.mark.slow
    def test_redblack_strided_validates(self):
        from repro.programs import redblack

        compiled = compile_program(redblack())
        out = run_compiled(
            compiled, params={"n": 21, "niter": 2}, nprocs=2
        )
        assert out.stats.total_messages > 0
