"""Cross-backend integration: the multiprocess runtime must agree with
the serial interpreter on every benchmark program.

Each program is compiled once and executed on the ``mp`` backend (one OS
process per rank) at 1, 2, and 4 ranks (2 and 4 for the programs with a
2-D processor grid) with full harness validation —
every owned array element and scalar is compared against the serial
reference.  The deterministic ``inproc-seq`` backend gets the same
treatment on a representative program.
"""

import functools

import pytest

from repro import compile_program, run_compiled
from repro.programs import erlebacher, gauss, jacobi, sp_like, tomcatv

RANKS = (1, 2, 4)
# jacobi and sp_like distribute onto a 2 x (P/2) grid, which cannot be
# formed with a single rank (true on every backend, matching the seed's
# own test_spmd_programs.py rank choices).
GRID_RANKS = (2, 4)


@functools.lru_cache(maxsize=None)
def _compiled(name):
    sources = {
        "jacobi": (jacobi, {"n": 14, "niter": 2}, GRID_RANKS),
        "tomcatv": (tomcatv, {"n": 12, "niter": 2}, RANKS),
        "erlebacher": (erlebacher, {"n": 5, "nz": 9, "niter": 2}, RANKS),
        "gauss": (gauss, {"n": 11}, RANKS),
        "sp_like": (
            lambda: sp_like(routines=2, nests_per_routine=1),
            {"n": 6, "niter": 1},
            GRID_RANKS,
        ),
    }
    make_source, params, ranks = sources[name]
    return compile_program(make_source()), params, ranks


PROGRAMS = ("jacobi", "tomcatv", "erlebacher", "gauss", "sp_like")


@pytest.mark.parametrize("name", PROGRAMS)
def test_mp_backend_matches_serial(name):
    compiled, params, ranks = _compiled(name)
    for nprocs in ranks:
        outcome = run_compiled(
            compiled, params=params, nprocs=nprocs, backend="mp"
        )
        assert outcome.backend == "mp"
        # measured, not modeled: every rank reports wall-clock
        assert len(outcome.timings) == nprocs
        assert all(t.wall_s > 0.0 for t in outcome.timings)


@pytest.mark.parametrize("name", ("jacobi", "gauss"))
def test_inproc_seq_backend_matches_serial(name):
    compiled, params, ranks = _compiled(name)
    for nprocs in ranks:
        run_compiled(
            compiled, params=params, nprocs=nprocs, backend="inproc-seq"
        )


def test_backends_agree_elementwise():
    """threads / mp / inproc-seq produce identical distributed arrays."""
    import numpy as np

    compiled, params, _ranks = _compiled("gauss")
    outcomes = {
        backend: run_compiled(
            compiled, params=params, nprocs=4, backend=backend
        )
        for backend in ("threads", "mp", "inproc-seq")
    }
    reference = outcomes["threads"]
    for backend, outcome in outcomes.items():
        for ref_rank, got_rank in zip(reference.results, outcome.results):
            for array_name, ref_data in ref_rank.arrays.items():
                np.testing.assert_allclose(
                    got_rank.arrays[array_name], ref_data,
                    rtol=1e-12, atol=0.0,
                    err_msg=f"{backend}: array {array_name}",
                )
            assert got_rank.scalars == pytest.approx(ref_rank.scalars)
        # same communication structure on every backend
        assert (
            outcome.stats.total_messages == reference.stats.total_messages
        )
        assert outcome.stats.total_bytes == reference.stats.total_bytes
