"""Integration tests for the Figure 4(b) loop-splitting schedule."""

import pytest

from repro import CompilerOptions, compile_program, run_compiled

STENCIL_1D = """
program s1
  parameter n, niter
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i * 1.5
    a(i) = 0.0
  end do
  do iter = 1, niter
    do i = 2, n - 1
      a(i) = b(i-1) + b(i+1)
    end do
    do i = 2, n - 1
      b(i) = a(i)
    end do
  end do
end
"""

STENCIL_2D = """
program s2
  parameter n, niter
  real a(n,n), b(n,n)
  processors p(nprocs)
  template t(n,n)
  align a(i,j) with t(i,j)
  align b(i,j) with t(i,j)
  distribute t(block, *) onto p
  do i = 1, n
    do j = 1, n
      b(i,j) = i + 2 * j
      a(i,j) = 0.0
    end do
  end do
  do iter = 1, niter
    do i = 2, n - 1
      do j = 1, n
        a(i,j) = b(i-1,j) + b(i+1,j)
      end do
    end do
    do i = 2, n - 1
      do j = 1, n
        b(i,j) = a(i,j)
      end do
    end do
  end do
end
"""


@pytest.mark.parametrize("src", [STENCIL_1D, STENCIL_2D])
@pytest.mark.parametrize("mode", ["overlap", "direct"])
def test_split_programs_validate(src, mode):
    options = CompilerOptions(loop_split=True, buffer_mode=mode)
    compiled = compile_program(src, options)
    assert "# --- loop splitting" in compiled.source
    for nprocs in (1, 3):
        run_compiled(
            compiled, params={"n": 14, "niter": 2}, nprocs=nprocs
        )


def test_split_emits_local_then_recv_then_nonlocal():
    compiled = compile_program(
        STENCIL_1D, CompilerOptions(loop_split=True)
    )
    source = compiled.source
    split_at = source.index("# --- loop splitting")
    send_at = source.index("rt.send", split_at)
    recv_at = source.index("rt.recv", split_at)
    assert send_at < recv_at
    # the local compute section sits between the send and the receive
    # (overlapping the message latency) — a vectorized kernel launch
    # under the default compute plane, a scalar loop otherwise
    between = source[send_at:recv_at]
    assert "# kernel piece over i" in between or "for i in range" in between

    scalar = compile_program(
        STENCIL_1D, CompilerOptions(loop_split=True, compute="scalar")
    ).source
    split_at = scalar.index("# --- loop splitting")
    between = scalar[
        scalar.index("rt.send", split_at):scalar.index("rt.recv", split_at)
    ]
    assert "for i in range" in between


def test_split_reduces_checks_in_direct_mode():
    base = run_compiled(
        compile_program(
            STENCIL_2D, CompilerOptions(buffer_mode="direct")
        ),
        params={"n": 14, "niter": 2},
        nprocs=3,
    )
    split = run_compiled(
        compile_program(
            STENCIL_2D,
            CompilerOptions(buffer_mode="direct", loop_split=True),
        ),
        params={"n": 14, "niter": 2},
        nprocs=3,
    )
    assert split.stats.total_checks < base.stats.total_checks


def test_split_skipped_when_reduction_present():
    src = STENCIL_1D.replace(
        "      b(i) = a(i)",
        "      b(i) = a(i)\n      s = max(s, a(i))",
    ).replace("  real a(n), b(n)", "  real a(n), b(n)\n  scalar s")
    compiled = compile_program(src, CompilerOptions(loop_split=True))
    run_compiled(compiled, params={"n": 14, "niter": 2}, nprocs=3)


def test_split_skipped_for_cyclic_vp():
    src = STENCIL_1D.replace(
        "distribute t(block)", "distribute t(cyclic)"
    )
    compiled = compile_program(src, CompilerOptions(loop_split=True))
    run_compiled(compiled, params={"n": 14, "niter": 2}, nprocs=3)
