"""Smoke tests: the lightweight example scripts run to completion."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(name):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buffer.getvalue()


def test_figure2_example_matches_paper_objects():
    output = _run("figure2_sets.py")
    assert "Layout_A" in output
    assert "CPMap" in output
    # the distributed section boundary 25p shows up in the printed sets
    assert "25p" in output.replace("25p_0", "25p")


def test_compiler_listing_example():
    output = _run("compiler_listing.py")
    assert "COMPILATION LISTING" in output
    assert "GENERATED SPMD NODE PROGRAM" in output
    assert "def node_main(rt):" in output


@pytest.mark.slow
def test_gauss_example():
    output = _run("gauss_active_vps.py")
    assert "activeSendVPSet" in output
    assert "validated" in output


def test_execution_backends_example():
    output = _run("execution_backends.py")
    assert "threads" in output
    assert "inproc-seq" in output
    assert "mp" in output
    assert "validated" in output
