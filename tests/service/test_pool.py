"""Compile worker pool chaos matrix: crash, stall, quarantine, drain.

Every worker death in these tests is a *real* dead process — the
``worker-crash``/``worker-stall`` FaultPlan kinds make the worker
SIGKILL itself or sleep past its deadline — so the supervisor's crash
detection, kill escalation, respawn backoff, and quarantine accounting
are exercised against the operating system, not a mock.  Every test
asserts zero leaked children on the way out; the whole module runs
under ``-W error`` in CI.
"""

import multiprocessing
import pickle
import threading
import time

import pytest

from repro import CompilerOptions, compile_program
from repro.cache.persist import compute_fingerprint
from repro.runtime.errors import (
    CompileQuarantinedError,
    WorkerCrashError,
    WorkerStallError,
)
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.service.pool import (
    PoolDrainingError,
    PoolSaturatedError,
    WorkerPool,
)
from repro.service.server import CompileService
from repro.service.supervisor import CompileTask, Quarantine

PROGRAM = """
program pooled
  parameter n
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i
    a(i) = 0.0
  end do
  do i = 2, n - 1
    a(i) = b(i-1) + b(i+1)
  end do
end
"""


def variant(tag: int) -> str:
    return PROGRAM.replace("a(i) = 0.0", f"a(i) = {float(tag)}")


OPTS = CompilerOptions(cache_dir=None)


def fingerprint(source: str) -> str:
    return compute_fingerprint(source, OPTS)


def assert_no_leaked_children():
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


@pytest.fixture
def drained_pool():
    """Yield a factory; every pool it built is drained at teardown."""
    pools = []

    def make(**kwargs) -> WorkerPool:
        kwargs.setdefault("compile_deadline_s", 30.0)
        pool = WorkerPool(**kwargs).start()
        pools.append(pool)
        return pool

    yield make
    for pool in pools:
        pool.drain(timeout_s=20.0)
    assert_no_leaked_children()


# -- happy path -------------------------------------------------------------


def test_pooled_compile_is_byte_identical(drained_pool):
    pool = drained_pool(workers=2)
    source = variant(1)
    pooled = pool.compile(source, OPTS, fingerprint(source))
    local = compile_program(source, OPTS.with_(profile_sets=True))
    # The identity contract (DESIGN §6/§13): the emitted node program is
    # byte-identical to the in-process compile.  (The artifact's pickle
    # *bytes* are not stable even between two in-process compiles —
    # process-global id counters leak into them — so the gate is the
    # emitted source plus functional identity, same as the disk cache.)
    assert pooled.source == local.source
    # The pipe round-trip must survive a further cache-style round-trip.
    thawed = pickle.loads(pickle.dumps(pooled))
    assert thawed.source == local.source
    # Functional identity: the served artifact runs like the local one.
    from repro import run_compiled

    ours = run_compiled(thawed, params={"n": 14}, nprocs=2)
    theirs = run_compiled(local, params={"n": 14}, nprocs=2)
    assert ours.stats.total_messages == theirs.stats.total_messages
    assert ours.stats.total_bytes == theirs.stats.total_bytes
    for mine, ref in zip(ours.results, theirs.results):
        assert mine.scalars == ref.scalars
        for name, array in mine.arrays.items():
            assert (array == ref.arrays[name]).all()
    # The worker's set-engine profile travelled back with the artifact.
    assert pooled.phases.set_stats


def test_fan_out_across_workers(drained_pool):
    pool = drained_pool(workers=2, queue_depth=8)
    sources = [variant(tag) for tag in range(2, 6)]
    results = [None] * len(sources)

    def submit(i):
        results[i] = pool.compile(sources[i], OPTS,
                                  fingerprint(sources[i]))

    threads = [threading.Thread(target=submit, args=(i,))
               for i in range(len(sources))]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert all(r is not None for r in results)
    assert pool.stats_counters.get("compiles") == len(sources)


# -- crash path -------------------------------------------------------------


def test_worker_crash_is_typed_transient_with_diagnostics(drained_pool):
    # Slot 0's first incarnation SIGKILLs itself at its first compile.
    plan = FaultPlan.parse("worker-crash:rank=0:n=1:attempts=1", seed=3)
    pool = drained_pool(workers=1, fault_plan=plan)
    source = variant(6)
    with pytest.raises(WorkerCrashError) as err:
        pool.compile(source, OPTS, fingerprint(source))
    assert err.value.transient
    diag = err.value.diagnostics[0]
    assert diag.worker == 0
    assert diag.exitcode == -9  # SIGKILL, signal-decoded in the report
    assert "SIGKILL" in diag.report()
    assert diag.fingerprint == fingerprint(source)
    # The supervisor respawned the slot; the retry compiles cleanly and
    # the artifact is identical to the no-chaos path.
    pooled = pool.compile(source, OPTS, fingerprint(source))
    local = compile_program(source, OPTS.with_(profile_sets=True))
    assert pooled.source == local.source
    assert pool.stats_counters.get("crashes") == 1
    assert pool.stats_counters.get("respawns") == 1


def test_service_retry_loop_outlives_transient_crashes(tmp_path):
    # Two incarnations die mid-compile; the service-level retry loop
    # (bounded by the quarantine budget) hides both from the client.
    plan = FaultPlan.parse("worker-crash:rank=0:n=1:attempts=2", seed=5)
    service = CompileService(
        cache_dir=str(tmp_path), workers=1, quarantine_after=5,
        pool_fault_plan=plan,
    )
    try:
        response = service.handle_compile({"source": variant(7)})
        assert response["ok"] is True
        assert response["cache"] == "cold"
        assert service.metrics.counter("pool.compile_retries") == 2
        # Byte-identical to the in-process compile despite the chaos.
        from repro.service.protocol import sha256_text
        local = compile_program(variant(7), CompilerOptions())
        assert response["artifact_sha256"] == sha256_text(local.source)
    finally:
        assert service.close(timeout_s=20.0)
    assert_no_leaked_children()


# -- stall path -------------------------------------------------------------


def test_worker_stall_hits_deadline_and_is_killed(drained_pool):
    # The worker sleeps 30 s against a 1 s deadline; the supervisor
    # must kill and replace it, and type the failure as a stall.
    plan = FaultPlan.parse(
        "worker-stall:rank=0:n=1:ms=30000:attempts=1", seed=11
    )
    pool = drained_pool(
        workers=1, fault_plan=plan, compile_deadline_s=1.0
    )
    source = variant(8)
    start = time.monotonic()
    with pytest.raises(WorkerStallError) as err:
        pool.compile(source, OPTS, fingerprint(source))
    # Bounded by the deadline, not the 30 s sleep.
    assert time.monotonic() - start < 15.0
    assert err.value.transient
    assert "deadline" in err.value.diagnostics[0].detail
    assert pool.stats_counters.get("stalls") == 1
    # The replacement worker serves the retry.
    assert pool.compile(source, OPTS, fingerprint(source)).source


# -- quarantine -------------------------------------------------------------


def test_poison_pill_quarantines_after_distinct_worker_kills(drained_pool):
    # The slot's first two incarnations die at their first compile:
    # after two distinct dead workers the breaker trips and stops
    # feeding the fingerprint processes.  (attempts=2 keeps incarnation
    # 2 healthy so the post-quarantine compile below can succeed.)
    plan = FaultPlan.parse("worker-crash:rank=0:n=1:attempts=2", seed=13)
    pool = drained_pool(workers=1, quarantine_after=2, fault_plan=plan)
    source = variant(9)
    fp = fingerprint(source)
    with pytest.raises(WorkerCrashError):
        pool.compile(source, OPTS, fp)
    # Second kill trips the breaker — the tripping caller is told the
    # truth (terminal, not transient).
    with pytest.raises(CompileQuarantinedError) as err:
        pool.compile(source, OPTS, fp)
    assert err.value.transient is False
    # Subsequent submits are rejected before touching any worker.
    generations_before = pool.stats()["generations"]
    with pytest.raises(CompileQuarantinedError):
        pool.compile(source, OPTS, fp)
    assert pool.stats()["generations"] == generations_before
    assert pool.quarantine.kills(fp) == 2
    # Other fingerprints still compile (on a respawned worker).
    other = variant(10)
    assert pool.compile(other, OPTS, fingerprint(other)).source


def test_quarantined_fingerprint_is_typed_ok_false_via_service(tmp_path):
    plan = FaultPlan.parse("worker-crash:rank=0:n=1", seed=17)
    service = CompileService(
        cache_dir=str(tmp_path), workers=1, quarantine_after=2,
        pool_fault_plan=plan,
    )
    try:
        response = service.handle_compile({"source": variant(11)})
        assert response["ok"] is False
        assert response["error"]["type"] == "CompileQuarantinedError"
        assert response["error"]["transient"] is False
        # The service survives; the quarantine shows up in /stats.
        assert service.stats()["pool"]["quarantine"]["tripped"]
    finally:
        assert service.close(timeout_s=20.0)
    assert_no_leaked_children()


def test_quarantine_counts_distinct_workers_not_retries():
    quarantine = Quarantine(quarantine_after=3)
    # The same dead worker charged twice is one kill, not two.
    assert quarantine.record_kill("fp", generation=1) is False
    assert quarantine.record_kill("fp", generation=1) is False
    assert quarantine.record_kill("fp", generation=2) is False
    assert quarantine.record_kill("fp", generation=3) is True
    with pytest.raises(CompileQuarantinedError):
        quarantine.check("fp")
    quarantine.check("other")  # unrelated fingerprints unaffected


# -- backpressure -----------------------------------------------------------


def test_full_queue_sheds_immediately_with_retry_hint():
    # No supervisors running: the queue fills deterministically.
    pool = WorkerPool(workers=2, queue_depth=2)
    for tag in (12, 13):
        pool.tasks.put_nowait(
            CompileTask(variant(tag), OPTS, fingerprint(variant(tag)))
        )
    source = variant(14)
    with pytest.raises(PoolSaturatedError) as err:
        pool.compile(source, OPTS, fingerprint(source))
    assert err.value.transient
    assert err.value.retry_after_s >= 1.0
    assert pool.stats_counters.get("shed") == 1
    assert pool.stats()["queue_depth"] == 2


# -- drain ------------------------------------------------------------------


def test_drain_finishes_queued_work_and_rejects_new(drained_pool):
    pool = drained_pool(workers=2, queue_depth=8)
    sources = [variant(tag) for tag in range(15, 19)]
    results = {}
    errors = []

    def submit(src):
        try:
            results[src] = pool.compile(src, OPTS, fingerprint(src))
        except Exception as exc:  # noqa: BLE001 - recorded for assert
            errors.append(exc)

    threads = [threading.Thread(target=submit, args=(s,))
               for s in sources]
    for t in threads:
        t.start()
    time.sleep(0.05)  # let the first submits reach the queue
    pool.begin_drain()
    # New work is refused at the door the moment draining starts.
    with pytest.raises(PoolDrainingError):
        pool.compile(variant(99), OPTS, fingerprint(variant(99)))
    for t in threads:
        t.join(timeout=120)
    # In-flight and queued work was finished, not dropped: every
    # submission either completed or was refused pre-queue (raced the
    # drain flag) — none was abandoned mid-queue.
    assert len(results) + len(errors) == len(sources)
    assert all(isinstance(e, PoolDrainingError) for e in errors)
    assert pool.drain(timeout_s=20.0) is True
    assert pool.alive_workers() == 0
    assert_no_leaked_children()


# -- HTTP front-end integration ---------------------------------------------


@pytest.fixture
def http_pool_server(tmp_path):
    """Factory for a pooled HTTP server; graceful-drained at teardown."""
    import threading as _threading

    from repro.service import create_server

    started = []

    def make(**kwargs):
        kwargs.setdefault("port", 0)
        kwargs.setdefault("cache_dir", str(tmp_path))
        kwargs.setdefault("workers", 1)
        server = create_server(**kwargs)
        thread = _threading.Thread(target=server.serve_forever,
                                   daemon=True)
        thread.start()
        assert server.service.wait_ready(timeout_s=30.0)
        started.append((server, thread))
        return server

    yield make
    for server, thread in started:
        server.shutdown_gracefully(timeout_s=20.0)
        server.server_close()
        thread.join(timeout=10)
    assert_no_leaked_children()


def test_readiness_flips_to_503_while_draining(http_pool_server):
    from repro.service import ServiceClient

    server = http_pool_server(workers=1)
    with ServiceClient(port=server.server_address[1]) as client:
        assert client.healthz() == {"ok": True}
        server.service.begin_drain()
        health = client.healthz()
        assert health["ok"] is False
        assert health["reason"] == "draining"
        # Liveness is unaffected: the process still serves HTTP.
        assert client.livez() == {"ok": True}
        assert client.ready() is False


def test_no_workers_up_is_not_ready(http_pool_server, monkeypatch):
    server = http_pool_server(workers=1)
    monkeypatch.setattr(server.service.pool, "alive_workers", lambda: 0)
    ready, payload = server.service.readiness()
    assert ready is False
    assert payload["reason"] == "no compile workers up"
    assert payload["workers"] == {"alive": 0, "configured": 1}


def test_draining_server_rejects_compiles_with_503(http_pool_server):
    from repro.service import ServiceClient, ServiceError

    server = http_pool_server(workers=1)
    server.service.begin_drain()
    with ServiceClient(port=server.server_address[1]) as client:
        with pytest.raises(ServiceError) as err:
            client.compile(variant(20))
        assert err.value.status == 503
        assert (err.value.payload["error"]["type"]
                == "PoolDrainingError")


def test_saturated_server_sheds_with_429_retry_after(http_pool_server):
    from concurrent.futures import ThreadPoolExecutor

    from repro.service import ServiceClient, ServiceOverloadedError

    # One worker, queue of one, and a 1.5 s stall on each incarnation's
    # first compile: concurrent distinct submits must overflow the
    # queue and be shed at the door.
    plan = FaultPlan.parse("worker-stall:rank=0:n=1:ms=1500", seed=21)
    server = http_pool_server(
        workers=1, queue_depth=1, pool_fault_plan=plan,
        compile_deadline_s=30.0,
    )
    port = server.server_address[1]

    def submit(tag):
        with ServiceClient(port=port) as client:
            try:
                return client.compile(variant(tag))
            except ServiceOverloadedError as exc:
                return exc

    with ThreadPoolExecutor(max_workers=4) as executor:
        outcomes = list(executor.map(submit, range(21, 25)))
    shed = [o for o in outcomes if isinstance(o, ServiceOverloadedError)]
    served = [o for o in outcomes if isinstance(o, dict)]
    assert shed, "expected at least one 429 under queue overflow"
    assert all(exc.retry_after_s >= 1.0 for exc in shed)
    assert all(exc.payload["error"]["type"] == "PoolSaturatedError"
               for exc in shed)
    assert all(r["ok"] for r in served)
    assert server.service.metrics.counter("requests.shed") >= len(shed)


def test_pooled_http_compile_matches_inprocess_sha(http_pool_server):
    from repro.service import ServiceClient
    from repro.service.protocol import sha256_text

    server = http_pool_server(workers=2)
    with ServiceClient(port=server.server_address[1]) as client:
        cold = client.compile(variant(26))
        local = compile_program(variant(26), CompilerOptions())
        assert cold["cache"] == "cold"
        assert cold["artifact_sha256"] == sha256_text(local.source)
        # Bypass path through the pool is byte-identical too.
        off = client.compile(variant(26), options={"caching": "off"})
        assert off["cache"] == "bypass"
        assert off["artifact_sha256"] == cold["artifact_sha256"]


def test_remote_compile_error_keeps_original_type(http_pool_server):
    from repro.service import ServiceClient

    server = http_pool_server(workers=1)
    with ServiceClient(port=server.server_address[1]) as client:
        response = client.request(
            "POST", "/compile",
            payload={"source": "program broken\n  this is not hpf\nend"},
            check=False,
        )
    assert response["ok"] is False
    # The worker relayed the original exception class name over the
    # pipe — same wire type the single-process service reports.
    assert "Error" in response["error"]["type"]
    assert response["error"]["type"] != "RemoteCompileError"


# -- fault grammar ----------------------------------------------------------


def test_worker_fault_kinds_validate_op():
    with pytest.raises(ValueError):
        FaultSpec("worker-crash", op="send")
    FaultSpec("worker-crash", op="compile")  # fine
    FaultSpec("worker-stall")  # op=any is implicitly compile


def test_worker_faults_do_not_fire_on_spmd_ops():
    # op defaults to "any", but pool kinds must only consume their
    # trigger on pool compiles — an SPMD send must see nothing.
    plan = FaultPlan.parse("worker-crash:rank=0:n=1", seed=1)
    injector = plan.injector(0)
    assert injector._fire("send") == []
    assert injector._fire("recv") == []
    fired = injector._fire("compile")
    assert [action for action, _ in fired] == ["worker-crash"]


def test_schedule_preview_covers_compile_op():
    plan = FaultPlan.parse("worker-stall:rank=1:op=compile:n=2:ms=500",
                           seed=9)
    schedule = plan.schedule(rank=1, nops=4)
    assert ("compile", 2, "worker-stall", 0.5) in schedule
    assert plan.schedule(rank=0, nops=4) == ()
