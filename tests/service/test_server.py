"""The compile server end to end: HTTP protocol, caching kinds,
single-flight coalescing, typed failure behaviour, CLI verbs."""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import CompilerOptions, compile_program, run_compiled
from repro.__main__ import main
from repro.service import ServiceClient, create_server

PROGRAM = """
program served
  parameter n
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i
    a(i) = 0.0
  end do
  do i = 2, n - 1
    a(i) = b(i-1) + b(i+1)
  end do
end
"""


def variant(tag: int) -> str:
    """A distinct program (and therefore fingerprint) per tag."""
    return PROGRAM.replace("a(i) = 0.0", f"a(i) = {float(tag)}")


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("service-store")
    server = create_server(port=0, cache_dir=str(root), nshards=4,
                           shard_capacity=16)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


@pytest.fixture
def client(server):
    with ServiceClient(host=server.server_address[0],
                       port=server.server_address[1]) as client:
        yield client


def test_healthz(client):
    assert client.healthz() == {"ok": True}


def test_livez_and_ready_split(client):
    # Liveness and readiness agree while the server is healthy; the
    # split only diverges during drain (covered in test_pool.py).
    assert client.livez() == {"ok": True}
    assert client.ready() is True


def test_cold_then_hot_compile_byte_identical(client):
    cold = client.compile(variant(1))
    warm = client.compile(variant(1))
    assert cold["ok"] and warm["ok"]
    assert cold["cache"] == "cold"
    assert warm["cache"] == "hot"
    assert warm["fingerprint"] == cold["fingerprint"]
    assert warm["artifact_sha256"] == cold["artifact_sha256"]
    # And identical to a single-client in-process compile.
    from repro.service.protocol import sha256_text

    local = compile_program(variant(1), CompilerOptions())
    assert sha256_text(local.source) == cold["artifact_sha256"]


def test_caching_off_bypass_is_byte_identical(client):
    on = client.compile(variant(2))
    off = client.compile(variant(2), options={"caching": "off"})
    assert off["cache"] == "bypass"
    assert off["artifact_sha256"] == on["artifact_sha256"]


def test_concurrent_identical_requests_single_flight(client, server):
    source = variant(3)
    before = server.service.flight.led_total

    def submit(_):
        with ServiceClient(host=server.server_address[0],
                           port=server.server_address[1]) as c:
            return c.compile(source)

    with ThreadPoolExecutor(max_workers=8) as pool:
        responses = list(pool.map(submit, range(8)))
    kinds = sorted(r["cache"] for r in responses)
    assert all(r["ok"] for r in responses)
    # Exactly one compile ran; everything else coalesced onto it or hit
    # the store just after it finished.
    assert kinds.count("cold") == 1
    assert set(kinds) <= {"cold", "coalesced", "hot"}
    assert server.service.flight.led_total == before + 1
    shas = {r["artifact_sha256"] for r in responses}
    assert len(shas) == 1


def test_run_matches_in_process_run(client):
    response = client.run(variant(4), params={"n": 14}, nprocs=2)
    assert response["ok"] and response["validated"]
    outcome = response["outcome"]
    local = run_compiled(
        compile_program(variant(4), CompilerOptions()),
        params={"n": 14}, nprocs=2,
    )
    assert outcome["backend"] == "threads"
    assert outcome["nprocs"] == 2
    assert outcome["messages"] == local.stats.total_messages
    assert outcome["payload_bytes"] == local.stats.total_bytes
    assert outcome["attempts"][-1]["outcome"] == "ok"


def test_faulted_run_returns_typed_error_and_server_survives(client):
    # Short receive timeout: the surviving rank notices the crashed
    # peer quickly instead of waiting out the 60 s default.
    response = client.run(
        variant(4), params={"n": 14}, nprocs=2,
        fault_spec="crash:rank=1:n=1", recv_timeout_s=2.0,
    )
    assert response["ok"] is False
    assert response["error"]["type"] == "RankCrashError"
    assert response["error"]["transient"] is True
    assert response["error"]["attempts"][-1]["outcome"] == "RankCrashError"
    # The failure was contained to that request.
    assert client.healthz() == {"ok": True}
    assert client.run(variant(4), params={"n": 14}, nprocs=2)["ok"]


def test_supervised_retry_expires_injected_fault(client):
    response = client.run(
        variant(4), params={"n": 14}, nprocs=2,
        fault_spec="crash:rank=1:n=1:attempts=1", retries=2,
        recv_timeout_s=2.0,
    )
    assert response["ok"] is True
    attempts = response["outcome"]["attempts"]
    assert [a["outcome"] for a in attempts] == ["RankCrashError", "ok"]


def test_bad_requests_are_400(client):
    bad_option = client.compile(PROGRAM, options={"bogus": 1})
    assert bad_option["ok"] is False
    assert bad_option["error"]["type"] == "BadRequest"
    empty = client.request("POST", "/compile", payload={"source": "  "})
    assert empty["ok"] is False
    missing = client.request("GET", "/nowhere")
    assert missing["ok"] is False and missing["error"]["type"] == "NotFound"


def test_stats_shape(client):
    client.compile(variant(1))  # guarantee at least one hot hit
    stats = client.stats()
    assert stats["ok"]
    totals = stats["store"]["totals"]
    assert set(totals) == {"entries", "bytes", "hits", "misses",
                          "stores", "evictions"}
    assert stats["store"]["nshards"] == 4
    assert len(stats["store"]["shards"]) == 4
    assert stats["single_flight"]["led"] >= 1
    assert stats["queue_depth"]["peak"] >= 1
    latency = stats["latency"]
    assert "compile_cold" in latency and latency["compile_cold"]["count"]
    assert latency["compile_cold"]["p99_ms"] >= latency["compile_cold"]["p50_ms"] * 0 + 0
    assert "run" in latency
    assert stats["counters"]["run.ok"] >= 1


# -- CLI verbs -------------------------------------------------------------


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.hpf"
    path.write_text(variant(5))
    return str(path)


def test_submit_text_output(server, program_file, capsys):
    port = str(server.server_address[1])
    assert main(["submit", program_file, "--port", port,
                 "--nprocs", "2", "--param", "n=14"]) == 0
    out = capsys.readouterr().out
    assert "fingerprint:" in out
    assert "validation:  OK" in out


def test_submit_json_output(server, program_file, capsys):
    port = str(server.server_address[1])
    assert main(["submit", program_file, "--port", port, "--json",
                 "--nprocs", "2", "--param", "n=14"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["cache"] in ("hot", "cold", "coalesced")
    assert payload["outcome"]["nprocs"] == 2
    assert payload["outcome"]["cache_delta"] is not None
    assert payload["outcome"]["scalars"] == {}


def test_submit_compile_only_json(server, program_file, capsys):
    port = str(server.server_address[1])
    assert main(["submit", program_file, "--port", port, "--json",
                 "--compile-only"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert "outcome" not in payload
    assert len(payload["fingerprint"]) == 64


def test_submit_failure_exit_code(server, program_file, capsys):
    port = str(server.server_address[1])
    assert main(["submit", program_file, "--port", port, "--json",
                 "--nprocs", "2", "--param", "n=14",
                 "--fault-spec", "crash:rank=0:n=1",
                 "--recv-timeout", "2.0"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["error"]["type"] == "RankCrashError"
