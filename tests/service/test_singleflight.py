"""Single-flight batching: one execution per in-flight key."""

import threading

import pytest

from repro.service.singleflight import SingleFlight


def test_leader_computes_once_waiters_coalesce():
    group = SingleFlight()
    release = threading.Event()
    computed = []

    def compute():
        release.wait(timeout=10)
        computed.append(object())
        return "artifact"

    results = []
    threads = [
        threading.Thread(
            target=lambda: results.append(group.do("key", compute))
        )
        for _ in range(8)
    ]
    for t in threads:
        t.start()
    # Every duplicate must be parked on the leader before it finishes.
    deadline = [group.coalesced_total]
    for _ in range(1000):
        deadline[0] = group.coalesced_total
        if deadline[0] == 7:
            break
        threading.Event().wait(0.005)
    release.set()
    for t in threads:
        t.join(timeout=10)
    assert len(computed) == 1
    assert len(results) == 8
    values = {value for value, _ in results}
    assert values == {"artifact"}
    assert sum(1 for _, coalesced in results if not coalesced) == 1
    assert group.coalesced_total == 7
    assert group.led_total == 1
    assert group.in_flight() == 0


def test_leader_failure_propagates_to_every_waiter():
    group = SingleFlight()
    release = threading.Event()

    def explode():
        release.wait(timeout=10)
        raise RuntimeError("compile failed")

    outcomes = []

    def call():
        try:
            group.do("bad", explode)
            outcomes.append("ok")
        except RuntimeError as exc:
            outcomes.append(str(exc))

    threads = [threading.Thread(target=call) for _ in range(4)]
    for t in threads:
        t.start()
    for _ in range(1000):
        if group.coalesced_total == 3:
            break
        threading.Event().wait(0.005)
    release.set()
    for t in threads:
        t.join(timeout=10)
    assert outcomes == ["compile failed"] * 4
    assert group.in_flight() == 0


def test_distinct_keys_do_not_serialize():
    group = SingleFlight()
    barrier = threading.Barrier(3, timeout=10)

    def make(key):
        def compute():
            # All three keys must be in flight simultaneously for the
            # barrier to pass — a serialized group would deadlock here.
            barrier.wait()
            return key

        return compute

    results = []
    threads = [
        threading.Thread(
            target=lambda k=k: results.append(group.do(k, make(k)))
        )
        for k in ("a", "b", "c")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert sorted(value for value, _ in results) == ["a", "b", "c"]
    assert group.coalesced_total == 0


def test_key_leaves_the_table_after_completion():
    group = SingleFlight()
    value, coalesced = group.do("k", lambda: 1)
    assert (value, coalesced) == (1, False)
    # A later identical request starts fresh (normally a cache hit by
    # then, but single-flight itself must not memoize).
    value, coalesced = group.do("k", lambda: 2)
    assert (value, coalesced) == (2, False)
    assert group.led_total == 2


def test_failed_key_can_be_retried():
    group = SingleFlight()
    with pytest.raises(ValueError):
        group.do("k", lambda: (_ for _ in ()).throw(ValueError("boom")))
    assert group.do("k", lambda: "recovered") == ("recovered", False)
