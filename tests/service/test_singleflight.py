"""Single-flight batching: one execution per in-flight key."""

import threading

import pytest

from repro.service.singleflight import SingleFlight


def test_leader_computes_once_waiters_coalesce():
    group = SingleFlight()
    release = threading.Event()
    computed = []

    def compute():
        release.wait(timeout=10)
        computed.append(object())
        return "artifact"

    results = []
    threads = [
        threading.Thread(
            target=lambda: results.append(group.do("key", compute))
        )
        for _ in range(8)
    ]
    for t in threads:
        t.start()
    # Every duplicate must be parked on the leader before it finishes.
    deadline = [group.coalesced_total]
    for _ in range(1000):
        deadline[0] = group.coalesced_total
        if deadline[0] == 7:
            break
        threading.Event().wait(0.005)
    release.set()
    for t in threads:
        t.join(timeout=10)
    assert len(computed) == 1
    assert len(results) == 8
    values = {value for value, _ in results}
    assert values == {"artifact"}
    assert sum(1 for _, coalesced in results if not coalesced) == 1
    assert group.coalesced_total == 7
    assert group.led_total == 1
    assert group.in_flight() == 0


def test_leader_failure_propagates_to_every_waiter():
    group = SingleFlight()
    release = threading.Event()

    def explode():
        release.wait(timeout=10)
        raise RuntimeError("compile failed")

    outcomes = []

    def call():
        try:
            group.do("bad", explode)
            outcomes.append("ok")
        except RuntimeError as exc:
            outcomes.append(str(exc))

    threads = [threading.Thread(target=call) for _ in range(4)]
    for t in threads:
        t.start()
    for _ in range(1000):
        if group.coalesced_total == 3:
            break
        threading.Event().wait(0.005)
    release.set()
    for t in threads:
        t.join(timeout=10)
    assert outcomes == ["compile failed"] * 4
    assert group.in_flight() == 0


def test_distinct_keys_do_not_serialize():
    group = SingleFlight()
    barrier = threading.Barrier(3, timeout=10)

    def make(key):
        def compute():
            # All three keys must be in flight simultaneously for the
            # barrier to pass — a serialized group would deadlock here.
            barrier.wait()
            return key

        return compute

    results = []
    threads = [
        threading.Thread(
            target=lambda k=k: results.append(group.do(k, make(k)))
        )
        for k in ("a", "b", "c")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert sorted(value for value, _ in results) == ["a", "b", "c"]
    assert group.coalesced_total == 0


def test_key_leaves_the_table_after_completion():
    group = SingleFlight()
    value, coalesced = group.do("k", lambda: 1)
    assert (value, coalesced) == (1, False)
    # A later identical request starts fresh (normally a cache hit by
    # then, but single-flight itself must not memoize).
    value, coalesced = group.do("k", lambda: 2)
    assert (value, coalesced) == (2, False)
    assert group.led_total == 2


def test_failed_key_can_be_retried():
    group = SingleFlight()
    with pytest.raises(ValueError):
        group.do("k", lambda: (_ for _ in ()).throw(ValueError("boom")))
    assert group.do("k", lambda: "recovered") == ("recovered", False)


# -- leader-failure handoff (the latent-hang fix) ---------------------------


class Transient(RuntimeError):
    """Stands in for WorkerCrashError: a retryable leader death."""


def _park_waiters(group, n, timeout_s=10.0):
    for _ in range(int(timeout_s / 0.005)):
        if group.coalesced_total >= n:
            return
        threading.Event().wait(0.005)
    raise AssertionError("waiters never parked")


def test_leader_crash_hands_waiters_off_to_new_leader():
    group = SingleFlight()
    release = threading.Event()
    calls = []

    def flaky():
        calls.append(threading.get_ident())
        if len(calls) == 1:
            release.wait(timeout=10)
            raise Transient("worker died under the leader")
        return "artifact"

    outcomes = []

    def call():
        try:
            value, coalesced = group.do(
                "k", flaky, retryable=lambda e: isinstance(e, Transient)
            )
            outcomes.append(("ok", value))
        except Transient:
            outcomes.append(("crashed", None))

    threads = [threading.Thread(target=call) for _ in range(4)]
    for t in threads:
        t.start()
    _park_waiters(group, 3)
    release.set()
    for t in threads:
        t.join(timeout=10)
    # The crashed leader sees its own failure; every waiter was handed
    # off and got the retried value — nobody hung, nobody saw the
    # transient error second-hand.
    assert outcomes.count(("crashed", None)) == 1
    assert outcomes.count(("ok", "artifact")) == 3
    assert group.handoffs_total == 3
    assert group.led_total >= 2  # original leader + >=1 handoff leader
    assert group.in_flight() == 0


def test_leader_permanent_failure_still_propagates():
    group = SingleFlight()
    release = threading.Event()

    def explode():
        release.wait(timeout=10)
        raise ValueError("bad program")

    failures = []

    def call():
        try:
            group.do("k", explode,
                     retryable=lambda e: isinstance(e, Transient))
            failures.append("ok")
        except ValueError as exc:
            failures.append(str(exc))

    threads = [threading.Thread(target=call) for _ in range(3)]
    for t in threads:
        t.start()
    _park_waiters(group, 2)
    release.set()
    for t in threads:
        t.join(timeout=10)
    # Not retryable: one compile, every caller gets the typed error.
    assert failures == ["bad program"] * 3
    assert group.handoffs_total == 0


def test_handoff_budget_bounds_leader_deaths():
    group = SingleFlight()
    release = threading.Event()

    def always_dies():
        release.wait(timeout=10)
        release.set()  # later leaders fail immediately
        raise Transient("dies every time")

    results = []

    def call():
        try:
            group.do("k", always_dies,
                     retryable=lambda e: isinstance(e, Transient),
                     max_handoffs=2)
            results.append("ok")
        except Transient:
            results.append("failed")

    threads = [threading.Thread(target=call) for _ in range(3)]
    for t in threads:
        t.start()
    _park_waiters(group, 2)
    release.set()
    for t in threads:
        t.join(timeout=10)
    # A key that kills every leader converges to failure for everyone
    # instead of looping forever.
    assert results == ["failed"] * 3
    assert group.in_flight() == 0


def test_wait_timeout_runs_uncoalesced_instead_of_hanging():
    group = SingleFlight()
    leader_parked = threading.Event()
    release = threading.Event()

    def slow():
        leader_parked.set()
        release.wait(timeout=10)
        return "slow"

    leader = threading.Thread(
        target=lambda: group.do("k", slow)
    )
    leader.start()
    assert leader_parked.wait(timeout=10)
    # The waiter gives up on the stuck leader and computes for itself.
    value, coalesced = group.do(
        "k", lambda: "impatient", wait_timeout_s=0.05
    )
    assert (value, coalesced) == ("impatient", False)
    assert group.timeouts_total == 1
    release.set()
    leader.join(timeout=10)
    assert group.in_flight() == 0
