"""Sharded artifact store: routing, LRU eviction, cross-process races,
advisory-lock stale recovery.  The multi-process tests are the shard-write
race gate and run under ``-W error`` in CI."""

import multiprocessing
import os
import pickle
import signal
import time

import pytest

from repro.cache.locks import FileLock, LockTimeout
from repro.service.store import ShardedArtifactStore

NSHARDS = 4


def fp_for_shard(shard: int, serial: int, nshards: int = NSHARDS) -> str:
    """A synthetic 64-hex fingerprint routed to ``shard``."""
    return f"{serial * nshards + shard:08x}" + f"{serial:056x}"


# -- routing and round-trip ------------------------------------------------


def test_same_fingerprint_routes_to_same_shard(tmp_path):
    store = ShardedArtifactStore(str(tmp_path), nshards=NSHARDS)
    fp = fp_for_shard(2, 7)
    assert store.shard_for(fp) is store.shard_for(fp)
    assert store.shard_for(fp).index == 2


def test_round_trip_and_stats(tmp_path):
    store = ShardedArtifactStore(str(tmp_path), nshards=NSHARDS,
                                 shard_capacity=8)
    payload = {"program": "jacobi", "blob": list(range(32))}
    fp = fp_for_shard(1, 0)
    assert store.load(fp) is None
    store.store(fp, payload)
    assert store.load(fp) == payload
    stats = store.stats()
    assert stats["totals"]["entries"] == 1
    assert stats["totals"]["hits"] == 1
    assert stats["totals"]["misses"] == 1
    assert stats["shards"]["shard-01"]["stores"] == 1
    # On-disk layout: the artifact lives inside its shard directory.
    assert (tmp_path / "shard-01").is_dir()


def test_lru_eviction_bounds_each_shard(tmp_path):
    store = ShardedArtifactStore(str(tmp_path), nshards=NSHARDS,
                                 shard_capacity=2)
    shard = store.shards[3]
    fps = [fp_for_shard(3, i) for i in range(5)]
    for i, fp in enumerate(fps):
        store.store(fp, {"serial": i})
        # Deterministic recency without sleeping between stores.
        os.utime(shard.cache.path_for(fp), (100.0 + i, 100.0 + i))
    stats = shard.stats()
    assert stats["entries"] == 2
    assert stats["evictions"] == 3
    assert store.load(fps[0]) is None  # oldest gone
    assert store.load(fps[4]) == {"serial": 4}  # newest kept


def test_hit_refreshes_recency(tmp_path):
    store = ShardedArtifactStore(str(tmp_path), nshards=NSHARDS,
                                 shard_capacity=2)
    shard = store.shards[0]
    a, b, c = (fp_for_shard(0, i) for i in range(3))
    store.store(a, "A")
    store.store(b, "B")
    os.utime(shard.cache.path_for(a), (100.0, 100.0))
    os.utime(shard.cache.path_for(b), (200.0, 200.0))
    assert store.load(a) == "A"  # refreshes a's mtime to now
    store.store(c, "C")  # evicts the oldest, which is now b
    assert store.load(b) is None
    assert store.load(a) == "A"
    assert store.load(c) == "C"


def test_other_shards_untouched_by_eviction(tmp_path):
    store = ShardedArtifactStore(str(tmp_path), nshards=NSHARDS,
                                 shard_capacity=1)
    for shard_index in range(NSHARDS):
        store.store(fp_for_shard(shard_index, 0), shard_index)
    for shard_index in range(NSHARDS):
        assert store.load(fp_for_shard(shard_index, 0)) == shard_index
    assert store.stats()["totals"]["evictions"] == 0


# -- cross-process shard-write race ---------------------------------------


def _race_worker(root, worker, iterations, result_queue):
    """Hammer one store root: store + load a small shared key space."""
    try:
        store = ShardedArtifactStore(root, nshards=NSHARDS,
                                     shard_capacity=3)
        for i in range(iterations):
            serial = (worker + i) % 6
            shard = serial % NSHARDS
            fp = fp_for_shard(shard, serial)
            store.store(fp, {"serial": serial, "blob": "x" * 256})
            loaded = store.load(fp)
            # A concurrent eviction may have removed it, but a present
            # artifact must never be torn or belong to another key.
            if loaded is not None and loaded["serial"] != serial:
                result_queue.put(
                    f"worker {worker}: wrong payload for {fp}"
                )
                return
        result_queue.put("ok")
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        result_queue.put(f"worker {worker}: {type(exc).__name__}: {exc}")


def test_multiprocess_shard_write_race(tmp_path):
    """Four writer processes race stores, loads, and evictions on one
    root; every surviving artifact must load clean afterwards."""
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    workers = [
        ctx.Process(target=_race_worker,
                    args=(str(tmp_path), w, 25, queue))
        for w in range(4)
    ]
    for p in workers:
        p.start()
    outcomes = [queue.get(timeout=120) for _ in workers]
    for p in workers:
        p.join(timeout=30)
        assert p.exitcode == 0
    assert outcomes == ["ok"] * 4
    # Post-mortem: bounds respected, every artifact valid.
    store = ShardedArtifactStore(str(tmp_path), nshards=NSHARDS,
                                 shard_capacity=3)
    stats = store.stats()
    assert 0 < stats["totals"]["entries"] <= NSHARDS * 3
    for serial in range(6):
        fp = fp_for_shard(serial % NSHARDS, serial)
        loaded = store.load(fp)
        if loaded is not None:
            assert loaded["serial"] == serial
    # No stranded tmp files (a crashed or raced writer cleans up).
    strays = [
        p for p in tmp_path.rglob(".tmp-*")
    ]
    assert strays == []


# -- advisory-lock behaviour ----------------------------------------------


def _hold_lock_forever(path):
    lock = FileLock(path, stale_after=3600.0)
    lock.acquire(timeout=5)
    os.kill(os.getpid(), signal.SIGSTOP)  # wedge while holding


def test_lock_released_when_holder_dies(tmp_path):
    """flock is kernel-owned: SIGKILLing the holder frees the lock."""
    path = tmp_path / ".lock"
    ctx = multiprocessing.get_context("fork")
    holder = ctx.Process(target=_hold_lock_forever, args=(str(path),))
    holder.start()
    try:
        deadline = time.monotonic() + 10
        lock = FileLock(path, stale_after=3600.0)
        while time.monotonic() < deadline:
            try:
                lock.acquire(timeout=0.05)
            except LockTimeout:
                break  # holder owns it now
            lock.release()
            time.sleep(0.02)
        else:
            pytest.fail("holder never took the lock")
        holder.kill()
        holder.join(timeout=10)
        # The kernel released the dead holder's flock; no stale wait.
        lock.acquire(timeout=2.0)
        lock.release()
    finally:
        if holder.is_alive():
            holder.kill()
            holder.join(timeout=10)


def test_stale_lock_is_broken_after_grace(tmp_path):
    """A wedged-but-alive holder is bypassed once the lock file ages out."""
    path = tmp_path / ".lock"
    ctx = multiprocessing.get_context("fork")
    holder = ctx.Process(target=_hold_lock_forever, args=(str(path),))
    holder.start()
    try:
        deadline = time.monotonic() + 10
        probe = FileLock(path, stale_after=3600.0)
        while time.monotonic() < deadline:
            try:
                probe.acquire(timeout=0.05)
            except LockTimeout:
                break
            probe.release()
            time.sleep(0.02)
        else:
            pytest.fail("holder never took the lock")
        # Make the holder look long-wedged, then steal.
        os.utime(path, (1.0, 1.0))
        waiter = FileLock(path, stale_after=0.5)
        waiter.acquire(timeout=0.5)
        waiter.release()
    finally:
        holder.kill()
        holder.join(timeout=10)


def test_lock_timeout_when_holder_is_live(tmp_path):
    path = tmp_path / ".lock"
    a = FileLock(path, stale_after=3600.0)
    b = FileLock(path, stale_after=3600.0)
    a.acquire(timeout=1)
    try:
        with pytest.raises(LockTimeout):
            b.acquire(timeout=0.3)
    finally:
        a.release()
    b.acquire(timeout=1)
    b.release()


def test_artifact_files_are_flat_cache_compatible(tmp_path):
    """A shard is a plain CompileCache directory: the PR 3 reader loads it."""
    from repro.cache.persist import CompileCache

    store = ShardedArtifactStore(str(tmp_path), nshards=NSHARDS)
    fp = fp_for_shard(2, 9)
    store.store(fp, {"compat": True})
    flat = CompileCache(str(tmp_path / "shard-02"))
    assert flat.load(fp) == {"compat": True}
    raw = pickle.loads(flat.path_for(fp).read_bytes())
    assert raw["fingerprint"] == fp
