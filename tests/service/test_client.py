"""ServiceClient transport behaviour: bounded retries, attempt history."""

import socket
import threading

import pytest

from repro.runtime.harness import RetryPolicy
from repro.service import ServiceClient, create_server
from repro.service.client import CLIENT_RETRY_POLICY

FAST_POLICY = RetryPolicy(
    max_attempts=3, backoff_base_s=0.01, backoff_factor=2.0,
    jitter_frac=0.25, backoff_cap_s=0.05,
)


def free_dead_port() -> int:
    """A port with nothing listening on it."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def test_idempotent_requests_retry_connection_refused():
    client = ServiceClient(port=free_dead_port(),
                           retry_policy=FAST_POLICY)
    with pytest.raises(ConnectionRefusedError):
        client.request("GET", "/stats")
    # Attempt history mirrors RunOutcome.attempts: one record per try,
    # typed outcome, backoff after every non-final failure.
    attempts = client.last_attempts
    assert len(attempts) == FAST_POLICY.max_attempts
    assert all(a.outcome == "ConnectionRefusedError" for a in attempts)
    assert all(a.backoff_s > 0 for a in attempts[:-1])
    assert attempts[-1].backoff_s == 0.0
    client.close()


def test_non_idempotent_requests_get_single_reconnect_only():
    client = ServiceClient(port=free_dead_port(),
                           retry_policy=FAST_POLICY)
    with pytest.raises(ConnectionRefusedError):
        client.request("POST", "/run", payload={})
    # A non-idempotent POST must not be blindly replayed: one reconnect
    # (for stale keep-alive connections), then the error surfaces.
    assert len(client.last_attempts) == 2
    client.close()


def test_compile_is_marked_idempotent():
    client = ServiceClient(port=free_dead_port(),
                           retry_policy=FAST_POLICY)
    # /compile is a pure function of its payload, so it retries like a
    # GET despite being a POST.
    with pytest.raises(ConnectionRefusedError):
        client.compile("program p\nend")
    assert len(client.last_attempts) == FAST_POLICY.max_attempts
    client.close()


def test_backoff_jitter_is_deterministic():
    a = CLIENT_RETRY_POLICY.backoff_s(0)
    b = CLIENT_RETRY_POLICY.backoff_s(0)
    assert a == b  # seeded jitter: reruns reproduce exactly
    assert CLIENT_RETRY_POLICY.backoff_s(10) <= (
        CLIENT_RETRY_POLICY.backoff_cap_s * 1.25
    )  # capped growth (plus at most the jitter fraction)


def test_successful_request_records_single_ok_attempt():
    server = create_server(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        with ServiceClient(port=server.server_address[1]) as client:
            assert client.healthz() == {"ok": True}
            assert [a.outcome for a in client.last_attempts] == ["ok"]
            assert client.ready() is True
            assert client.livez() == {"ok": True}
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def test_ready_is_false_when_unreachable():
    client = ServiceClient(port=free_dead_port(),
                           retry_policy=FAST_POLICY)
    assert client.ready() is False
    client.close()
