"""Concurrent CacheManager use: the thread-pool hammer gate.

The compile service runs many client compiles in one process, so the
memoization layer must hold up under threads: no lost counter updates,
no duplicate "canonical" interned instances, per-thread ``disabled()``
scoping, and set-algebra results identical to a single-threaded run.
Runs under ``-W error`` in CI.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.cache.intern import conjunct_key, intern_conjunct
from repro.cache.manager import LRUCache, caches
from repro.isets import parse_set

THREADS = 8
OPS_PER_THREAD = 200


# -- LRUCache primitives under contention ----------------------------------


def test_counters_lose_no_updates_under_contention():
    cache = LRUCache("hammer.counters", maxsize=1024)
    lookups_per_thread = 500
    keyspace = 32

    def worker(seed: int) -> int:
        performed = 0
        for i in range(lookups_per_thread):
            key = (seed * i) % keyspace
            found, _ = cache.lookup(key)
            if not found:
                cache.put(key, key)
            performed += 1
        return performed

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        performed = sum(pool.map(worker, range(1, THREADS + 1)))
    stats = cache.stats()
    # Every lookup was counted exactly once: no lost increments.
    assert performed == THREADS * lookups_per_thread
    assert stats.hits + stats.misses == performed
    assert stats.size <= keyspace


def test_intern_is_atomic_one_instance_per_key():
    cache = LRUCache("hammer.intern", maxsize=1024)
    keyspace = 16
    barrier = threading.Barrier(THREADS, timeout=30)

    def worker(_: int):
        barrier.wait()  # maximize simultaneous first-touch races
        seen = {}
        for i in range(OPS_PER_THREAD):
            key = i % keyspace
            value = cache.intern(key, object())
            seen.setdefault(key, value)
            # Identity-stable within this thread's view...
            assert cache.intern(key, object()) is value
        return seen

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        views = list(pool.map(worker, range(THREADS)))
    # ...and across threads: exactly one canonical instance per key.
    for key in range(keyspace):
        instances = {id(view[key]) for view in views}
        assert len(instances) == 1, f"duplicate canonical value for {key}"
    stats = cache.stats()
    assert stats.misses == keyspace
    assert stats.hits + stats.misses == stats.lookups


def test_eviction_accounting_is_consistent_under_contention():
    cache = LRUCache("hammer.evict", maxsize=8)

    def worker(seed: int):
        for i in range(OPS_PER_THREAD):
            cache.put((seed, i), i)

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        list(pool.map(worker, range(THREADS)))
    stats = cache.stats()
    assert stats.size <= 8
    # Every insert beyond capacity was evicted exactly once.
    assert stats.evictions == THREADS * OPS_PER_THREAD - stats.size


# -- the real interner ------------------------------------------------------


def test_conjunct_interner_never_mints_duplicates():
    texts = [
        "{[i] : 1 <= i <= 40}",
        "{[i] : 2 <= i <= 39 and exists(a : i = 2a)}",
        "{[i,j] : 1 <= i <= 10 and i <= j <= 20}",
        "{[i,j] : 1 <= j <= 10 and j < i <= 30}",
    ]
    barrier = threading.Barrier(THREADS, timeout=30)

    def worker(_: int):
        barrier.wait()
        canon = []
        for _round in range(25):
            for text in texts:
                # Each parse builds fresh structurally-equal conjuncts.
                for conjunct in parse_set(text).conjuncts:
                    canon.append(
                        (conjunct_key(conjunct),
                         id(intern_conjunct(conjunct)))
                    )
        return canon

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        results = list(pool.map(worker, range(THREADS)))
    by_key = {}
    for view in results:
        for key, identity in view:
            by_key.setdefault(key, set()).add(identity)
    assert by_key, "no conjuncts were interned"
    duplicates = {k: ids for k, ids in by_key.items() if len(ids) > 1}
    assert not duplicates, (
        f"{len(duplicates)} key(s) produced multiple canonical instances"
    )


# -- memoized set algebra under threads -------------------------------------


def test_concurrent_set_algebra_matches_single_threaded_reference():
    big = parse_set("{[i,j] : 1 <= i <= 30 and 1 <= j <= 30}")
    band = parse_set("{[i,j] : 1 <= i <= 30 and i <= j <= i + 4}")
    evens = parse_set(
        "{[i,j] : 1 <= i <= 30 and 1 <= j <= 30 and exists(a : j = 2a)}"
    )

    def algebra():
        inter = big.intersect(band).simplify()
        diff = big.subtract(evens).simplify()
        both = inter.intersect(evens).simplify()
        return (str(inter), str(diff), str(both),
                inter.is_empty(), both.is_empty())

    reference = algebra()

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        results = list(pool.map(lambda _: algebra(), range(THREADS * 4)))
    assert all(result == reference for result in results)


def test_disabled_is_scoped_to_the_calling_thread():
    cache = caches.register("hammer.scoped", maxsize=64)
    inside = threading.Event()
    proceed = threading.Event()
    observed = {}

    def disabled_thread():
        with caches.disabled():
            observed["disabled_sees"] = caches.enabled
            inside.set()
            proceed.wait(timeout=30)

    worker = threading.Thread(target=disabled_thread)
    worker.start()
    assert inside.wait(timeout=30)
    try:
        # This thread's caching stays on while the other is disabled.
        assert caches.enabled
        before = cache.stats().misses
        value = caches.memoize(cache, "k", lambda: "computed")
        assert value == "computed"
        assert cache.stats().misses == before + 1
        found, cached = cache.lookup("k")
        assert found and cached == "computed"
    finally:
        proceed.set()
        worker.join(timeout=30)
    assert observed["disabled_sees"] is False
