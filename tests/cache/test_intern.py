"""Structural keys and hash-consing (repro.cache.intern)."""

from repro.cache.intern import (
    conjunct_key,
    constraint_key,
    intern_conjunct,
    intern_constraint,
    intern_linexpr,
    linexpr_key,
    presburger_key,
)
from repro.cache.manager import caches
from repro.isets import parse_map, parse_set
from repro.isets.conjunct import Conjunct
from repro.isets.linexpr import LinExpr


def _stride_conjunct() -> Conjunct:
    [conjunct] = parse_set(
        "{[i] : 1 <= i <= 20 and exists(a : i = 3a)}"
    ).conjuncts
    assert conjunct.wildcards
    return conjunct


def test_linexpr_key_structural():
    a = LinExpr({"i": 2, "j": -1}, 5)
    b = LinExpr({"j": -1, "i": 2}, 5)
    assert linexpr_key(a) == linexpr_key(b)
    assert linexpr_key(a) != linexpr_key(LinExpr({"i": 2, "j": -1}, 6))
    assert intern_linexpr(a) is intern_linexpr(b)


def test_constraint_and_conjunct_keys_structural():
    [base] = parse_set("{[i] : 1 <= i <= 8}").conjuncts
    # Fresh, structurally identical copies (parse_set itself already
    # returns interned conjuncts, so copy explicitly).
    c1 = Conjunct(base.constraints, base.wildcards)
    c2 = Conjunct(base.constraints, base.wildcards)
    assert c1 is not c2
    assert conjunct_key(c1) == conjunct_key(c2)
    assert constraint_key(c1.constraints[0]) == constraint_key(
        c2.constraints[0]
    )
    assert intern_constraint(c1.constraints[0]) is intern_constraint(
        c2.constraints[0]
    )
    assert intern_conjunct(c1) is intern_conjunct(c2)


def test_exact_key_distinguishes_alpha_variants():
    conjunct = _stride_conjunct()
    renamed = conjunct.rename(
        {w: w + "_alpha" for w in conjunct.wildcards}
    )
    # Alpha-canonical key (used only for name-insensitive values) matches…
    assert conjunct.key() == renamed.key()
    # …but the exact memoization/interning key does not: a cached
    # transformation result must mention the caller's wildcard names.
    assert conjunct_key(conjunct) != conjunct_key(renamed)
    assert intern_conjunct(conjunct) is not intern_conjunct(renamed)


def test_exact_key_distinguishes_constraint_order():
    [conjunct] = parse_set("{[i] : 1 <= i <= 8}").conjuncts
    reordered = Conjunct(
        tuple(reversed(conjunct.constraints)), conjunct.wildcards
    )
    assert conjunct_key(conjunct) != conjunct_key(reordered)


def test_presburger_key_covers_space_and_class():
    s1 = parse_set("{[i] : 1 <= i <= 8}")
    s2 = parse_set("{[i] : 1 <= i <= 8}")
    s3 = parse_set("{[j] : 1 <= j <= 8}")
    assert presburger_key(s1) == presburger_key(s2)
    assert presburger_key(s1) != presburger_key(s3)  # dimension name
    m = parse_map("{[i] -> [j] : j = i}")
    assert presburger_key(m)[0] == "IntegerMap"
    assert presburger_key(s1)[0] == "IntegerSet"


def test_interning_disabled_returns_argument():
    conjunct = _stride_conjunct()
    canonical = intern_conjunct(conjunct)
    with caches.disabled():
        fresh = Conjunct(conjunct.constraints, conjunct.wildcards)
        assert intern_conjunct(fresh) is fresh
    assert intern_conjunct(conjunct) is canonical


def test_conjunct_key_survives_pickle_without_cached_state():
    import pickle

    conjunct = _stride_conjunct()
    key_before = conjunct.key()  # populate the lazy _key slot
    clone = pickle.loads(pickle.dumps(conjunct))
    assert clone.constraints == conjunct.constraints
    assert clone.wildcards == conjunct.wildcards
    assert clone.key() == key_before
