"""Memoized set algebra and the cached/uncached A/B guarantee."""

import pytest

from repro import compile_program
from repro.cache.manager import caches, reset_caches
from repro.core.options import CompilerOptions
from repro.isets import parse_set
from repro.isets.omega import is_empty_conjunct

PROGRAM = """
program memo
  parameter n
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i
    a(i) = 0.0
  end do
  do i = 2, n - 1
    a(i) = b(i-1) + b(i+1)
  end do
end
"""


def test_emptiness_memoized():
    reset_caches()
    [conjunct] = parse_set(
        "{[i] : 1 <= i <= 20 and exists(a : i = 3a)}"
    ).conjuncts
    empt = caches["isets.emptiness"]
    before = empt.stats()
    assert not is_empty_conjunct(conjunct)
    assert not is_empty_conjunct(conjunct)
    after = empt.stats()
    assert after.misses == before.misses + 1
    assert after.hits >= before.hits + 1


def test_emptiness_hit_across_alpha_variants():
    # The emptiness boolean is name-insensitive, so the alpha-canonical
    # Conjunct.key() lets renamed-apart copies share one entry.
    reset_caches()
    [conjunct] = parse_set(
        "{[i] : 1 <= i <= 20 and exists(a : i = 3a)}"
    ).conjuncts
    is_empty_conjunct(conjunct)
    empt = caches["isets.emptiness"]
    hits_before = empt.stats().hits
    renamed = conjunct.rename(
        {w: w + "_alpha" for w in conjunct.wildcards}
    )
    assert not is_empty_conjunct(renamed)
    assert empt.stats().hits == hits_before + 1


def test_set_algebra_memoized_on_identical_operands():
    reset_caches()
    s = parse_set("{[i] : 1 <= i <= 100}")
    t = parse_set("{[i] : 50 <= i <= 200}")
    first = s.intersect(t)
    second = s.intersect(t)
    assert second is first  # served from isets.setalg
    assert caches["isets.setalg"].stats().hits >= 1
    # Different operands do not collide.
    other = s.intersect(parse_set("{[i] : 60 <= i <= 200}"))
    assert other is not first


def test_subtract_and_simplify_memoized():
    reset_caches()
    s = parse_set("{[i] : 1 <= i <= 100}")
    empty1 = s.subtract(s)
    empty2 = s.subtract(s)
    assert empty1 is empty2
    assert empty1.is_empty()
    simp1 = s.simplify()
    simp2 = s.simplify()
    assert simp1 is simp2


def test_memoized_results_match_uncached():
    reset_caches()
    s = parse_set("{[i] : 1 <= i <= 100 and exists(a : i = 4a + 1)}")
    t = parse_set("{[i] : 13 <= i <= 61}")
    cached = s.intersect(t).simplify()
    with caches.disabled():
        uncached = s.intersect(t).simplify()
    assert str(cached) == str(uncached)
    assert sorted(map(tuple, _points(cached))) == sorted(
        map(tuple, _points(uncached))
    )


def _points(integer_set):
    from repro.isets import enumerate_points

    return enumerate_points(integer_set, {})


def test_compile_reports_nonzero_memo_hit_rate():
    # Acceptance criterion: a compile's phase report carries memoization
    # counters with a nonzero aggregate hit rate.
    reset_caches()
    compiled = compile_program(PROGRAM)
    stats = compiled.phases.cache_stats
    assert stats, "compile recorded no cache deltas"
    hits = sum(entry.get("hits", 0) for entry in stats.values())
    assert hits > 0
    table = compiled.phases.format_table("phases")
    assert "cache" in table
    assert "isets.emptiness" in table


def test_caching_off_emits_byte_identical_program():
    # Acceptance criterion: the uncached A/B path produces byte-identical
    # emitted programs (warm caches on the cached side, to make the
    # comparison as adversarial as possible).
    reset_caches()
    compile_program(PROGRAM)  # warm every memo cache
    cached = compile_program(PROGRAM)
    uncached = compile_program(PROGRAM, CompilerOptions(caching="off"))
    assert cached.source == uncached.source
    # (listing() is not compared: statement ids come from a global parse
    # counter and differ between any two compiles, cached or not.)
    # caching="off" must not populate or count against the caches.
    assert not uncached.phases.cache_stats


def test_invalid_caching_value_rejected():
    with pytest.raises(ValueError, match="caching"):
        compile_program(PROGRAM, CompilerOptions(caching="sometimes"))


def test_run_outcome_carries_cache_stats():
    reset_caches()
    compiled = compile_program(PROGRAM)
    outcome = compiled.run(params={"n": 17}, nprocs=2, backend="inproc-seq")
    assert outcome.cache_stats == compiled.phases.cache_stats
