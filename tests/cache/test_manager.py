"""Unit tests for the cache registry (repro.cache.manager)."""

import threading

import pytest

from repro.cache.manager import CacheManager, LRUCache, caches


def test_lru_evicts_least_recently_used():
    cache = LRUCache("t.lru", maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    # Touch "a" so "b" becomes the LRU entry.
    assert cache.lookup("a") == (True, 1)
    cache.put("c", 3)
    assert len(cache) == 2
    assert cache.evictions == 1
    assert cache.lookup("b") == (False, None)
    assert cache.lookup("a") == (True, 1)
    assert cache.lookup("c") == (True, 3)


def test_counters_and_stats():
    cache = LRUCache("t.counters", maxsize=8)
    calls = []

    def compute():
        calls.append(1)
        return 42

    assert cache.memoize("k", compute) == 42
    assert cache.memoize("k", compute) == 42
    assert len(calls) == 1  # second lookup served from cache
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.evictions) == (1, 1, 0)
    assert stats.lookups == 2
    assert stats.hit_rate == pytest.approx(0.5)


def test_put_existing_key_does_not_evict():
    cache = LRUCache("t.update", maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)  # update in place, no eviction
    assert cache.evictions == 0
    assert cache.lookup("a") == (True, 10)


def test_reset_clears_entries_and_counters():
    cache = LRUCache("t.reset", maxsize=4)
    cache.put("a", 1)
    cache.lookup("a")
    cache.lookup("zzz")
    cache.reset()
    assert len(cache) == 0
    assert (cache.hits, cache.misses, cache.evictions) == (0, 0, 0)


def test_maxsize_must_be_positive():
    with pytest.raises(ValueError):
        LRUCache("t.bad", maxsize=0)


def test_manager_register_is_idempotent():
    manager = CacheManager()
    a = manager.register("x", maxsize=10)
    b = manager.register("x", maxsize=999)  # maxsize of first wins
    assert a is b
    assert a.maxsize == 10
    assert "x" in manager
    assert manager["x"] is a
    assert manager.names() == ("x",)


def test_manager_disabled_bypasses_cache():
    manager = CacheManager()
    cache = manager.register("y")
    calls = []

    def compute():
        calls.append(1)
        return "v"

    assert manager.enabled
    with manager.disabled():
        assert not manager.enabled
        with manager.disabled():  # re-entrant
            assert not manager.enabled
            manager.memoize(cache, "k", compute)
        assert not manager.enabled
        manager.memoize(cache, "k", compute)
    assert manager.enabled
    # While disabled nothing was cached or counted.
    assert len(calls) == 2
    assert len(cache) == 0
    assert (cache.hits, cache.misses) == (0, 0)
    # Re-enabled: memoization works again.
    manager.memoize(cache, "k", compute)
    manager.memoize(cache, "k", compute)
    assert len(calls) == 3
    assert (cache.hits, cache.misses) == (1, 1)


def test_manager_counters_snapshot_delta():
    manager = CacheManager()
    cache = manager.register("z")
    before = manager.counters()
    assert manager.delta(before) == {}
    manager.memoize(cache, "k", lambda: 1)
    manager.memoize(cache, "k", lambda: 1)
    delta = manager.delta(before)
    assert delta == {"z": {"hits": 1, "misses": 1, "evictions": 0}}
    # A cache with no activity since the snapshot is omitted.
    manager.register("idle")
    assert "idle" not in manager.delta(before)


def test_manager_reset_resets_all_registered_caches():
    manager = CacheManager()
    a = manager.register("a")
    b = manager.register("b")
    a.put("k", 1)
    b.lookup("missing")
    manager.reset()
    assert len(a) == 0 and len(b) == 0
    assert b.misses == 0


def test_global_registry_has_expected_caches():
    import repro  # noqa: F401 -- ensure registrations ran

    for name in (
        "intern.conjunct",
        "isets.emptiness",
        "isets.normalize",
        "isets.redundancy",
        "isets.projection",
        "isets.setalg",
        "persist.compile",
    ):
        assert name in caches, name


def test_lru_cache_is_thread_safe_under_contention():
    cache = LRUCache("t.threads", maxsize=64)
    errors = []

    def worker(seed):
        try:
            for i in range(200):
                key = (seed * 7 + i) % 100
                cache.memoize(key, lambda k=key: k * 2)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    stats = cache.stats()
    assert stats.lookups == 8 * 200
    assert stats.size <= 64
