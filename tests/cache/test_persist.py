"""Persistent compile cache: fingerprints, round-trips, fault tolerance."""

import dataclasses
import pickle

import numpy as np
import pytest

from repro import compile_program
from repro.cache.persist import (
    FORMAT_VERSION,
    CompileCache,
    compute_fingerprint,
    default_cache_dir,
    options_fingerprint_fields,
)
from repro.core.options import CompilerOptions

PROGRAM = """
program persist
  parameter n
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i
    a(i) = 0.0
  end do
  do i = 2, n - 1
    a(i) = b(i-1) + b(i+1)
  end do
end
"""


# -- fingerprints ----------------------------------------------------------


def test_fingerprint_changes_on_source_edit():
    options = CompilerOptions()
    base = compute_fingerprint(PROGRAM, options)
    assert compute_fingerprint(PROGRAM, options) == base
    assert compute_fingerprint(PROGRAM + "\n", options) != base


def test_fingerprint_changes_on_every_semantic_option_field():
    base_options = CompilerOptions()
    base = compute_fingerprint(PROGRAM, base_options)
    flipped = {
        "coalesce": False,
        "inplace": False,
        "loop_split": True,
        "active_vp": False,
        "lift_guards": 0,
        "buffer_mode": "direct",
        "dataplane": "elements",
        "compute": "scalar",
    }
    semantic = set(options_fingerprint_fields(base_options))
    assert semantic == set(flipped), (
        "CompilerOptions grew a semantic field; extend this test so the "
        "fingerprint provably covers it"
    )
    for name, value in flipped.items():
        variant = dataclasses.replace(base_options, **{name: value})
        assert compute_fingerprint(PROGRAM, variant) != base, name


def test_fingerprint_ignores_cache_control_fields():
    base = compute_fingerprint(PROGRAM, CompilerOptions())
    assert compute_fingerprint(
        PROGRAM, CompilerOptions(caching="off", cache_dir="/elsewhere")
    ) == base


def test_fingerprint_changes_on_version_bump():
    options = CompilerOptions()
    assert compute_fingerprint(PROGRAM, options, version="1.0.0") != \
        compute_fingerprint(PROGRAM, options, version="1.0.1")


def test_default_cache_dir_honours_env(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
    assert default_cache_dir() == "/tmp/somewhere"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert default_cache_dir().endswith("repro-dhpf")


# -- store / load ----------------------------------------------------------


def test_compile_warm_start_round_trip(tmp_path):
    options = CompilerOptions(cache_dir=str(tmp_path))
    cold = compile_program(PROGRAM, options)
    assert not cold.cache_hit
    assert CompileCache(str(tmp_path)).stats()["entries"] == 1
    warm = compile_program(PROGRAM, options)
    assert warm.cache_hit
    assert warm.source == cold.source
    assert warm.phases.total_time() > 0  # wall_total survives pickling


def test_source_edit_misses_the_cache(tmp_path):
    options = CompilerOptions(cache_dir=str(tmp_path))
    compile_program(PROGRAM, options)
    edited = PROGRAM.replace("a(i) = 0.0", "a(i) = 1.0")
    recompiled = compile_program(edited, options)
    assert not recompiled.cache_hit
    assert CompileCache(str(tmp_path)).stats()["entries"] == 2


def test_option_change_misses_the_cache(tmp_path):
    compile_program(PROGRAM, CompilerOptions(cache_dir=str(tmp_path)))
    recompiled = compile_program(
        PROGRAM,
        CompilerOptions(cache_dir=str(tmp_path), coalesce=False),
    )
    assert not recompiled.cache_hit


def test_corrupted_artifact_falls_back_to_cold_compile(tmp_path):
    options = CompilerOptions(cache_dir=str(tmp_path))
    compile_program(PROGRAM, options)
    cache = CompileCache(str(tmp_path))
    fingerprint = compute_fingerprint(PROGRAM, options)
    path = cache.path_for(fingerprint)
    path.write_bytes(b"not a pickle at all")
    recompiled = compile_program(PROGRAM, options)
    assert not recompiled.cache_hit
    # The bad artifact was unlinked and replaced by the fresh store.
    assert pickle.loads(path.read_bytes())["fingerprint"] == fingerprint
    assert compile_program(PROGRAM, options).cache_hit


def test_truncated_artifact_falls_back_to_cold_compile(tmp_path):
    options = CompilerOptions(cache_dir=str(tmp_path))
    compile_program(PROGRAM, options)
    cache = CompileCache(str(tmp_path))
    path = cache.path_for(compute_fingerprint(PROGRAM, options))
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    recompiled = compile_program(PROGRAM, options)
    assert not recompiled.cache_hit
    assert recompiled.source


def test_wrong_format_version_is_a_miss(tmp_path):
    options = CompilerOptions(cache_dir=str(tmp_path))
    compiled = compile_program(PROGRAM, options)
    cache = CompileCache(str(tmp_path))
    fingerprint = compute_fingerprint(PROGRAM, options)
    path = cache.path_for(fingerprint)
    payload = {
        "format": FORMAT_VERSION + 1,
        "fingerprint": fingerprint,
        "compiled": compiled,
    }
    path.write_bytes(pickle.dumps(payload))
    assert cache.load(fingerprint) is None
    assert not path.exists()  # stale artifact dropped


def test_stats_and_clear(tmp_path):
    cache = CompileCache(str(tmp_path / "fresh"))
    assert cache.stats() == {
        "dir": str(tmp_path / "fresh"), "entries": 0, "bytes": 0,
    }
    options = CompilerOptions(cache_dir=str(tmp_path / "fresh"))
    compile_program(PROGRAM, options)
    stats = cache.stats()
    assert stats["entries"] == 1 and stats["bytes"] > 0
    assert cache.clear() == 1
    assert cache.stats()["entries"] == 0
    assert cache.clear() == 0  # idempotent


# -- artifact round-trip across all execution backends ---------------------


@pytest.mark.parametrize("backend", ["threads", "mp", "inproc-seq"])
def test_cached_artifact_runs_identically(tmp_path, backend):
    options = CompilerOptions(cache_dir=str(tmp_path))
    cold = compile_program(PROGRAM, options)
    warm = compile_program(PROGRAM, options)
    assert warm.cache_hit
    params = {"n": 17}
    ref = cold.run(params=params, nprocs=2, backend="inproc-seq")
    out = warm.run(params=params, nprocs=2, backend=backend)
    for rank in range(2):
        for name, expected in ref.results[rank].arrays.items():
            np.testing.assert_array_equal(
                out.results[rank].arrays[name], expected, err_msg=name
            )
        assert out.results[rank].scalars == ref.results[rank].scalars
