"""Unit tests for the Figure 3 communication-set equations."""

from repro.core.commsets import compute_comm_sets
from repro.core.context import collect_contexts
from repro.core.cp import resolve_cp
from repro.core.events import build_events
from repro.hpf import DataMapping
from repro.isets import count_points, enumerate_points, parse_set
from repro.lang import parse_program


def _comm_sets(src):
    program = parse_program(src)
    mapping = DataMapping(program)
    contexts = collect_contexts(program, program.main)
    cps = [resolve_cp(mapping, c) for c in contexts]
    events = build_events(mapping, cps)
    return mapping, [
        (event, compute_comm_sets(event.event)) for event in events
    ]


SHIFT = """
program shift
  real a(100), b(100)
  processors p(4)
  template t(100)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 2, 100
    a(i) = b(i-1)
  end do
end
"""


class TestShiftPattern:
    def test_send_is_boundary_element(self):
        mapping, results = _comm_sets(SHIFT)
        (event, sets), = results
        # proc 1 (owns 26..50) sends b(50) to proc 2
        send = sets.send_comm_map.partial_evaluate({"my_p_0": 1})
        pairs = [
            (p, b)
            for (p,) in enumerate_points(send.domain())
            for (b,) in enumerate_points(
                send.fix_input({send.in_dims[0]: p}).range()
            )
        ]
        assert pairs == [(2, 50)]

    def test_recv_is_neighbor_boundary(self):
        mapping, results = _comm_sets(SHIFT)
        (event, sets), = results
        recv = sets.recv_comm_map.partial_evaluate({"my_p_0": 2})
        points = enumerate_points(recv.range())
        assert points == [(50,)]

    def test_nl_data_set_matches_definition(self):
        mapping, results = _comm_sets(SHIFT)
        (event, sets), = results
        # proc 0 owns 1..25, reads b(1..99) restricted to its iterations:
        # reads b(i-1) for i in 26..50 → wait, proc 0 executes i in 2..25,
        # reading b(1..24): all local → empty for p0; p1 reads b(25) nonloc.
        nl = sets.nl_data_set["read"]
        assert enumerate_points(
            nl.partial_evaluate({"my_p_0": 0})
        ) == []
        assert enumerate_points(
            nl.partial_evaluate({"my_p_0": 1})
        ) == [(25,)]

    def test_first_processor_receives_nothing(self):
        mapping, results = _comm_sets(SHIFT)
        (event, sets), = results
        recv = sets.recv_comm_map.partial_evaluate({"my_p_0": 0})
        assert recv.is_empty()

    def test_last_processor_sends_nothing(self):
        mapping, results = _comm_sets(SHIFT)
        (event, sets), = results
        send = sets.send_comm_map.partial_evaluate({"my_p_0": 3})
        assert send.is_empty()


class TestCoalescedStencil:
    SRC = """
program st
  real a(100), b(100)
  processors p(4)
  template t(100)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 2, 99
    a(i) = b(i-1) + b(i+1) + b(i)
  end do
end
"""

    def test_single_event_both_directions(self):
        mapping, results = _comm_sets(self.SRC)
        assert len(results) == 1
        (event, sets), = results
        send = sets.send_comm_map.partial_evaluate({"my_p_0": 1})
        # proc 1 sends b(26) left and b(50) right
        sent = sorted(
            enumerate_points(send.range())
        )
        assert sent == [(26,), (50,)]

    def test_no_self_communication(self):
        mapping, results = _comm_sets(self.SRC)
        (event, sets), = results
        send = sets.send_comm_map
        # the partner dim can never equal my_p_0
        diag = send.constrain(
            parse_set("{[q] : q = my_p_0}")
            .conjuncts[0].constraints
        ) if False else None
        send_fixed = send.partial_evaluate({"my_p_0": 1})
        partners = enumerate_points(send_fixed.domain())
        assert (1,) not in partners


class TestNonOwnerComputesWrites:
    SRC = """
program w
  real a(100), b(100)
  processors p(4)
  template t(100)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, 99
    on_home b(i)
    a(i+1) = b(i)
  end do
end
"""

    def test_write_updates_flow_to_owner(self):
        mapping, results = _comm_sets(self.SRC)
        (event, sets), = results
        assert event.when == "after"
        # executor of i=25 is owner of b(25) = p0; it writes a(26) owned
        # by p1: p0 sends a(26) to p1.
        send = sets.send_comm_map.partial_evaluate({"my_p_0": 0})
        points = enumerate_points(send.range())
        assert points == [(26,)]
        recv = sets.recv_comm_map.partial_evaluate({"my_p_0": 1})
        assert (26,) in enumerate_points(recv.range())
