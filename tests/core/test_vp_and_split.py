"""Unit tests for active-VP sets (Figure 5) and loop splitting (Figure 4)."""

from repro.core.commsets import compute_comm_sets
from repro.core.context import collect_contexts
from repro.core.cp import resolve_cp
from repro.core.events import build_events
from repro.core.loopsplit import compute_split_sets, reference_needs_checks
from repro.core.vp import busy_vp_set, compute_active_vp_sets
from repro.hpf import DataMapping
from repro.isets import enumerate_points, parse_set
from repro.lang import parse_program

GAUSS_FIG5 = """
program gauss
  parameter pivot, np1, np2
  real a(100,100)
  processors pa(np1, np2)
  template t(100,100)
  align a(i,j) with t(i,j)
  distribute t(cyclic, cyclic) onto pa
  do i = pivot + 1, 100
    do j = pivot + 1, 100
      on_home a(i,j)
      a(i,j) = a(i,j) + a(pivot, j)
    end do
  end do
end
"""


def _gauss():
    program = parse_program(GAUSS_FIG5)
    mapping = DataMapping(program)
    contexts = collect_contexts(program, program.main)
    cps = [resolve_cp(mapping, c) for c in contexts]
    events = build_events(mapping, cps)
    return mapping, cps, events


class TestFigure5:
    def test_busy_vp_set(self):
        mapping, cps, events = _gauss()
        busy = busy_vp_set(cps)
        # Paper Fig 5(c): busyVPSet = {[v1,v2] : PIVOT < v1,v2 <= 100},
        # within the template's valid coordinate range.
        expected = parse_set(
            "{[v1,v2] : pivot + 1 <= v1 <= 100 and pivot + 1 <= v2 <= 100 "
            "and 1 <= v1 and 1 <= v2}"
        )
        assert busy.is_equal(expected)

    def test_active_send_is_pivot_row(self):
        mapping, cps, events = _gauss()
        active = compute_active_vp_sets(events[0].event)
        expected = parse_set(
            "{[v1,v2] : v1 = pivot and 1 <= v1 <= 100 and "
            "pivot + 1 <= v2 <= 100}"
        )
        assert active.active_send_vp.is_equal(expected)

    def test_active_recv_is_busy_set(self):
        mapping, cps, events = _gauss()
        active = compute_active_vp_sets(events[0].event)
        busy = busy_vp_set(cps)
        # within the valid template range they coincide
        valid = parse_set(
            "{[v1,v2] : 1 <= v1 <= 100 and 1 <= v2 <= 100}"
        )
        assert active.active_recv_vp.intersect(valid).is_equal(
            busy.intersect(valid)
        )


SPLIT_STENCIL = """
program st
  real a(100), b(100)
  processors p(4)
  template t(100)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 2, 99
    a(i) = b(i-1) + b(i+1)
  end do
end
"""


class TestFigure4:
    def _split(self):
        program = parse_program(SPLIT_STENCIL)
        mapping = DataMapping(program)
        contexts = collect_contexts(program, program.main)
        cps = [resolve_cp(mapping, c) for c in contexts]
        refs = [r for r in contexts[0].references()]
        return mapping, cps[0], compute_split_sets(
            cps[0], refs, mapping.layouts
        )

    def test_sections_partition_cp_iter_set(self):
        mapping, cp, split = self._split()
        env = {"my_p_0": 1}
        all_points = set(
            enumerate_points(split.cp_iter_set.partial_evaluate(env))
        )
        seen = set()
        for name, section in split.sections():
            pts = set(
                enumerate_points(section.partial_evaluate(env))
            )
            assert not (pts & seen), f"section {name} overlaps"
            seen |= pts
        assert seen == all_points

    def test_local_iters_are_interior(self):
        mapping, cp, split = self._split()
        # proc 1 owns 26..50; boundary iterations 26 and 50 are non-local
        local = enumerate_points(
            split.local_iters.partial_evaluate({"my_p_0": 1})
        )
        assert local == [(i,) for i in range(27, 50)]

    def test_nl_ro_is_boundary(self):
        mapping, cp, split = self._split()
        nl_ro = enumerate_points(
            split.nl_ro_iters.partial_evaluate({"my_p_0": 1})
        )
        assert nl_ro == [(26,), (50,)]

    def test_no_write_sections_for_owner_computes(self):
        mapping, cp, split = self._split()
        assert split.nl_wo_iters.partial_evaluate(
            {"my_p_0": 1}
        ).is_empty()
        assert split.nl_rw_iters.partial_evaluate(
            {"my_p_0": 1}
        ).is_empty()

    def test_splitting_worthwhile(self):
        mapping, cp, split = self._split()
        assert split.is_worthwhile()

    def test_reference_check_elimination(self):
        mapping, cp, split = self._split()
        b_minus = [
            (r, s)
            for r, s in split.local_iters_by_ref
            if not r.is_write and r.subscripts[0].constant == -1
        ][0][0]
        # in the local section no reference needs a buffer check
        assert not reference_needs_checks(
            split, b_minus, split.local_iters
        )
        # in the mixed non-local section, b(i-1) is local for i=50 but
        # non-local for i=26: checks needed
        assert reference_needs_checks(
            split, b_minus, split.nl_ro_iters
        )
