"""Unit tests for CP resolution, dependence analysis, and event placement."""

from repro.core.context import collect_contexts
from repro.core.cp import recognize_reduction, resolve_cp
from repro.core.depend import (
    carried_into,
    dependence_level,
    loop_independent_dependence,
)
from repro.core.events import build_events, is_potentially_nonlocal
from repro.hpf import DataMapping
from repro.isets import enumerate_points, parse_set
from repro.lang import parse_program


def _analyze(src):
    program = parse_program(src)
    mapping = DataMapping(program)
    contexts = collect_contexts(program, program.main)
    cps = [resolve_cp(mapping, c) for c in contexts]
    return program, mapping, contexts, cps


STENCIL = """
program s
  parameter n
  real a(n), b(n)
  processors p(4)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do iter = 1, 10
    do i = 2, n - 1
      a(i) = b(i-1) + b(i+1)
    end do
    do i = 2, n - 1
      b(i) = a(i)
    end do
  end do
end
"""


class TestCP:
    def test_owner_computes_default(self):
        _, mapping, contexts, cps = _analyze(STENCIL)
        cp = cps[0]
        assert not cp.replicated
        assert cp.terms[0].array == "a"

    def test_explicit_on_home_overrides(self):
        src = STENCIL.replace(
            "      a(i) = b(i-1) + b(i+1)",
            "      on_home b(i)\n      a(i) = b(i-1) + b(i+1)",
        )
        _, mapping, contexts, cps = _analyze(src)
        assert cps[0].terms[0].array == "b"

    def test_on_home_union_cp_map(self):
        src = """
program u
  real a(100), b(100)
  processors p(4)
  template t(100)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, 100
    on_home a(i) union b(i+1)
    a(i) = b(i)
  end do
end
"""
        _, mapping, contexts, cps = _analyze(src)
        # union CP: both a(i)'s owner and b(i+1)'s owner execute i.
        cp_map = cps[0].cp_map
        # block(100, P=4): i=25 owned by p0 via a, i+1=26 by p1 via b.
        executors = enumerate_points(
            cp_map.restrict_range(parse_set("{[i] : i = 25}")).domain()
        )
        assert executors == [(0,), (1,)]

    def test_scalar_assign_is_replicated(self):
        src = STENCIL.replace(
            "  do iter = 1, 10",
            "  scalar s\n  s = 1.0\n  do iter = 1, 10",
        )
        _, mapping, contexts, cps = _analyze(src)
        assert cps[0].replicated

    def test_reduction_recognition(self):
        src = STENCIL.replace(
            "      b(i) = a(i)",
            "      b(i) = a(i)\n      s = max(s, a(i))",
        ).replace("  do iter", "  scalar s\n  do iter")
        program, mapping, contexts, cps = _analyze(src)
        reductions = [cp for cp in cps if cp.reduction]
        assert len(reductions) == 1
        assert reductions[0].reduction == "max"
        assert not reductions[0].replicated  # partitioned like a's owner

    def test_plus_reduction(self):
        assert recognize_reduction  # imported
        src = STENCIL.replace(
            "      b(i) = a(i)",
            "      b(i) = a(i)\n      s = s + a(i)",
        ).replace("  do iter", "  scalar s\n  do iter")
        _, _, _, cps = _analyze(src)
        assert any(cp.reduction == "+" for cp in cps)


class TestDependence:
    def test_carried_dependence_level(self):
        program, mapping, contexts, cps = _analyze(STENCIL)
        write_ctx = contexts[1]  # b(i) = a(i)
        read_ctx = contexts[0]   # reads b(i-1)
        write_ref = write_ctx.write_ref()
        read_ref = [r for r in read_ctx.references() if not r.is_write][0]
        layout = mapping.layout("b")
        level = dependence_level(
            write_ctx, write_ref, read_ctx, read_ref, layout, 1
        )
        assert level == 0  # carried by the iter loop

    def test_no_dependence_between_different_arrays(self):
        program, mapping, contexts, cps = _analyze(STENCIL)
        a_write = contexts[0].write_ref()
        b_read = [r for r in contexts[0].references() if not r.is_write][0]
        assert dependence_level(
            contexts[0], a_write, contexts[0], b_read,
            mapping.layout("a"), 2,
        ) is None

    def test_loop_independent_dependence(self):
        program, mapping, contexts, cps = _analyze(STENCIL)
        # a written in nest 1, read in nest 2 at the same iter: independent
        a_write = contexts[0].write_ref()
        a_read = [
            r for r in contexts[1].references() if not r.is_write
        ][0]
        assert loop_independent_dependence(
            contexts[0], a_write, contexts[1], a_read,
            mapping.layout("a"), 1,
        )

    def test_deepest_carrying_level_for_recurrence(self):
        src = """
program r
  parameter n, nz
  real d(n,nz)
  processors p(4)
  template t(n,nz)
  align d(i,k) with t(i,k)
  distribute t(*, block) onto p
  do iter = 1, 4
    do k = 2, nz
      do i = 1, n
        d(i,k) = d(i,k) - 0.5 * d(i,k-1)
      end do
    end do
  end do
end
"""
        program, mapping, contexts, cps = _analyze(src)
        ctx = contexts[0]
        write = ctx.write_ref()
        read = [
            r for r in ctx.references()
            if not r.is_write and r.subscripts[1].constant == -1
        ][0]
        # carried by k (level 1), not just iter (level 0)
        assert carried_into(
            ctx, write, ctx, read, mapping.layout("d"), 3
        ) == 2


class TestEvents:
    def test_nonlocal_detection(self):
        program, mapping, contexts, cps = _analyze(STENCIL)
        read_refs = [
            r for r in contexts[0].references() if not r.is_write
        ]
        layout = mapping.layout("b")
        assert is_potentially_nonlocal(cps[0], read_refs[0], layout)
        a_write = contexts[0].write_ref()
        assert not is_potentially_nonlocal(
            cps[0], a_write, mapping.layout("a")
        )

    def test_events_coalesced_per_array_and_anchor(self):
        program, mapping, contexts, cps = _analyze(STENCIL)
        events = build_events(mapping, cps, coalesce=True)
        assert len(events) == 1  # both b reads coalesce into one event
        assert len(events[0].event.refs) == 2
        assert events[0].level == 1  # inside iter (carried by iter)

    def test_coalescing_disabled_splits_events(self):
        program, mapping, contexts, cps = _analyze(STENCIL)
        events = build_events(mapping, cps, coalesce=False)
        assert len(events) == 2

    def test_local_program_has_no_events(self):
        src = """
program local
  parameter n
  real a(n), b(n)
  processors p(4)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    a(i) = b(i) * 2
  end do
end
"""
        program, mapping, contexts, cps = _analyze(src)
        assert build_events(mapping, cps) == []
