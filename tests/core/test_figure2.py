"""Reproduction of the paper's Figure 2: primitive sets and mappings.

The program fragment, its layouts, the CP map for the ON_HOME directive,
and the executing processor's iteration set are checked against the values
printed in the paper (modulo the 0-based processor numbering we share with
it: ``0 <= p <= 3``).
"""

from repro.core.context import collect_contexts
from repro.core.cp import resolve_cp
from repro.hpf import DataMapping
from repro.isets import enumerate_points, parse_map, parse_set
from repro.lang import parse_program

FIGURE2 = """
program fig2
  parameter n
  real a(0:99,100), b(100,100)
  processors p(4)
  template t(100,100)
  align a(i,j) with t(i+1,j)
  align b(i,j) with t(*,i)
  distribute t(*,block) onto p
  do i = 1, n
    do j = 2, n+1
      on_home b(j-1,i)
      a(i,j) = b(j-1,i)
    end do
  end do
end
"""


def setup_module(module):
    module.program = parse_program(FIGURE2)
    module.mapping = DataMapping(module.program)
    module.contexts = collect_contexts(module.program, module.program.main)
    module.cp = resolve_cp(module.mapping, module.contexts[0])


def test_layout_a_matches_paper():
    # Paper: Layout_A = {[p] -> [a1,a2] : max(25p+1,1) <= a2 <= ...}
    # (the distributed template dim is t2 = j = a2; t1 = a1 + 1 collapsed).
    expected = parse_map(
        "{[p] -> [a1,a2] : 0 <= a1 <= 99 and "
        "25p + 1 <= a2 <= 25p + 25 and 1 <= a2 <= 100 and 0 <= p <= 3}"
    )
    assert mapping.layout("a").map.is_equal(expected)


def test_layout_b_matches_paper():
    # Paper: Layout_B = {[p] -> [b1,b2] : max(25p+1,1) <= b1 <= ... ,
    #                    1 <= b2 <= 100}
    expected = parse_map(
        "{[p] -> [b1,b2] : 25p + 1 <= b1 <= 25p + 25 and "
        "1 <= b1 <= 100 and 1 <= b2 <= 100 and 0 <= p <= 3}"
    )
    assert mapping.layout("b").map.is_equal(expected)


def test_loop_set_matches_paper():
    # Paper: loop = {[l1,l2] : 1 <= l1 <= N and 2 <= l2 <= N+1}
    iteration = contexts[0].iteration_set()
    expected = parse_set("{[l1,l2] : 1 <= l1 <= n and 2 <= l2 <= n + 1}")
    assert iteration.is_equal(expected)


def test_cp_ref_is_on_home_term():
    assert str(cp.terms[0].ref) == "b((j - 1),i)"


def test_cp_map_matches_paper():
    # Paper: CPMap = {[p] -> [l1,l2] : 1 <= l1 <= min(N,100) and
    #                 max(2, 25p+2) <= l2 <= min(N+1, 101, 25p+26)}
    expected = parse_map(
        "{[p] -> [l1,l2] : 1 <= l1 <= n and l1 <= 100 and "
        "2 <= l2 <= n + 1 and l2 <= 101 and "
        "25p + 2 <= l2 <= 25p + 26 and 0 <= p <= 3}"
    )
    assert cp.cp_map.is_equal(expected)


def test_processor_zero_iterations_concrete():
    # For N = 50, processor 0 executes l2 in 2..26, l1 in 1..50.
    iters = cp.cp_map.fix_input({cp.cp_map.in_dims[0]: 0}).range()
    points = enumerate_points(iters, {"n": 50})
    l1_values = sorted({l1 for l1, _ in points})
    l2_values = sorted({l2 for _, l2 in points})
    assert l1_values == list(range(1, 51))
    assert l2_values == list(range(2, 27))


def test_local_iterations_parameterized_by_my_symbol():
    local = cp.local_iterations
    assert "my_p_0" in local.parameters()
    points = enumerate_points(
        local.partial_evaluate({"my_p_0": 3}), {"n": 100}
    )
    l2_values = sorted({l2 for _, l2 in points})
    assert l2_values == list(range(77, 102))  # min(N+1,101,25p+26)
