"""Unit tests for in-place communication recognition (§3.3)."""

from repro.core.inplace import analyze_contiguity, evaluate_at_runtime
from repro.isets import Answer, parse_set

ARRAY_2D = parse_set("{[i,j] : 1 <= i <= 10 and 1 <= j <= 10}")


def test_full_column_block_is_contiguous():
    # dims leftmost-fastest (column major): full range in dim 0,
    # convex range in dim 1 → contiguous.
    comm = parse_set("{[i,j] : 1 <= i <= 10 and 3 <= j <= 5}")
    result = analyze_contiguity(comm, ARRAY_2D)
    assert result.answer is Answer.TRUE
    assert result.pivot_dim == 1


def test_partial_rows_not_contiguous():
    # partial range in dim 0 with several dim-1 values: not contiguous
    comm = parse_set("{[i,j] : 2 <= i <= 4 and 3 <= j <= 5}")
    result = analyze_contiguity(comm, ARRAY_2D)
    assert result.answer is Answer.FALSE


def test_partial_row_single_column_is_contiguous():
    comm = parse_set("{[i,j] : 2 <= i <= 4 and j = 5}")
    result = analyze_contiguity(comm, ARRAY_2D)
    assert result.answer is Answer.TRUE
    assert result.pivot_dim == 0


def test_single_element():
    comm = parse_set("{[i,j] : i = 2 and j = 5}")
    assert analyze_contiguity(comm, ARRAY_2D).answer is Answer.TRUE


def test_whole_array():
    assert analyze_contiguity(ARRAY_2D, ARRAY_2D).answer is Answer.TRUE


def test_empty_set_contiguous():
    comm = parse_set("{[i,j] : i >= 2 and i <= 1}")
    assert analyze_contiguity(comm, ARRAY_2D).answer is Answer.TRUE


def test_strided_column_not_contiguous():
    comm = parse_set(
        "{[i,j] : 1 <= i <= 10 and 2 <= j <= 8 and exists(a : j = 2a)}"
    )
    result = analyze_contiguity(comm, ARRAY_2D)
    assert result.answer is Answer.FALSE


def test_symbolic_runtime_check():
    array = parse_set("{[i,j] : 1 <= i <= n and 1 <= j <= n}")
    comm = parse_set("{[i,j] : lo <= i <= n and j = 5 and 1 <= i}")
    result = analyze_contiguity(comm, array)
    assert result.answer is Answer.UNKNOWN
    assert result.runtime_checks
    # at runtime with lo = 1 the set spans the full first dim: contiguous
    assert evaluate_at_runtime(result, {"lo": 1, "n": 10})
    # with lo = 3 it is a partial range but single column: also contiguous
    assert evaluate_at_runtime(result, {"lo": 3, "n": 10})


def test_symbolic_runtime_check_fails():
    array = parse_set("{[i,j] : 1 <= i <= n and 1 <= j <= n}")
    comm = parse_set(
        "{[i,j] : lo <= i <= n and 3 <= j <= 4 and 1 <= i}"
    )
    result = analyze_contiguity(comm, array)
    assert result.answer is Answer.UNKNOWN
    # lo = 2, n = 10: partial rows, two columns → not in place
    assert not evaluate_at_runtime(result, {"lo": 2, "n": 10})
    # lo = 1: full first dim, convex second → in place
    assert evaluate_at_runtime(result, {"lo": 1, "n": 10})


def test_multi_conjunct_defers_to_runtime():
    comm = parse_set("{[i,j] : i = 1 and j = 1 or i = 2 and j = 2}")
    result = analyze_contiguity(comm, ARRAY_2D)
    assert result.answer is Answer.UNKNOWN


def test_3d_pivot_middle():
    array = parse_set(
        "{[i,j,k] : 1 <= i <= 4 and 1 <= j <= 4 and 1 <= k <= 4}"
    )
    comm = parse_set(
        "{[i,j,k] : 1 <= i <= 4 and 2 <= j <= 3 and k = 2}"
    )
    result = analyze_contiguity(comm, array)
    assert result.answer is Answer.TRUE
    assert result.pivot_dim == 1
