"""Unit tests for the compiler driver and its instrumentation."""

import pytest

from repro import CompilerOptions, compile_program
from repro.core.phases import PhaseTimer
from repro.isets import NonAffineError
from repro.lang import SemanticError

STENCIL = """
program s
  parameter n
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do iter = 1, 3
    do i = 2, n - 1
      a(i) = b(i-1) + b(i+1)
    end do
    do i = 2, n - 1
      b(i) = a(i)
    end do
  end do
end
"""


class TestDriver:
    def test_compiled_program_structure(self):
        compiled = compile_program(STENCIL)
        assert "main" in compiled.analyses
        analysis = compiled.analyses["main"]
        assert len(analysis.cps) == 2
        assert len(analysis.events) == 1
        event = analysis.events[0]
        assert event.tag.startswith("main_ev")
        assert event.outer_iters is not None
        assert event.outer_iters.space.in_dims == ("iter",)

    def test_phase_timings_recorded(self):
        compiled = compile_program(STENCIL)
        report = dict(
            (name, seconds)
            for name, seconds, _ in compiled.phases.report()
        )
        for phase in (
            "parse", "data_mapping", "partitioning",
            "communication_generation", "codegen",
        ):
            assert phase in report
            assert report[phase] >= 0.0

    def test_phase_timer_nesting_and_format(self):
        timer = PhaseTimer()
        with timer.phase("outer"):
            with timer.phase("inner"):
                pass
        assert "outer/inner" in timer.totals
        table = timer.format_table("title")
        assert "title" in table and "outer" in table

    def test_loop_split_option_computes_sections(self):
        compiled = compile_program(
            STENCIL, CompilerOptions(loop_split=True)
        )
        assert compiled.analyses["main"].splits
        assert "loop splitting" in compiled.source

    def test_inplace_disabled_skips_analysis(self):
        compiled = compile_program(
            STENCIL, CompilerOptions(inplace=False)
        )
        for event in compiled.analyses["main"].events:
            assert event.inplace_send is None

    def test_ast_input_accepted(self):
        from repro.lang import parse_program

        compiled = compile_program(parse_program(STENCIL))
        assert compiled.source


class TestRejections:
    def test_nonaffine_subscript_rejected(self):
        src = STENCIL.replace("b(i-1)", "b(i*i)")
        with pytest.raises(Exception) as info:
            compile_program(src)
        assert isinstance(
            info.value, (NonAffineError, SemanticError, Exception)
        )

    def test_symbolic_loop_stride_rejected(self):
        src = STENCIL.replace(
            "do i = 2, n - 1\n      a(i)",
            "do i = 2, n - 1, n\n      a(i)",
        )
        with pytest.raises(SemanticError):
            compile_program(src)

    def test_unknown_template_rejected(self):
        src = STENCIL.replace("with t(i)", "with zz(i)", 1)
        with pytest.raises(SemanticError):
            compile_program(src)


class TestListing:
    def test_listing_reports_cps_and_events(self):
        compiled = compile_program(STENCIL)
        listing = compiled.listing()
        assert "ON_HOME a(i)" in listing
        assert "event main_ev0" in listing
        assert "send = {" in listing and "recv = {" in listing
        assert "in-place:" in listing

    def test_listing_reports_active_vps_for_cyclic(self):
        src = STENCIL.replace("distribute t(block)", "distribute t(cyclic)")
        compiled = compile_program(src)
        assert "activeSendVPSet" in compiled.listing()
