#!/usr/bin/env python
"""CI gate: persistent compile-cache round-trip.

Compiles a set of benchmark programs twice against one shared cache
directory and asserts, for each program:

* the second compile is served from the persistent cache (``cache_hit``);
* cold and warm artifacts emit **byte-identical** node programs;
* the ``caching="off"`` A/B path emits that same byte-identical program;
* the warm compile is faster than the cold one;
* kernel-qualified statements survive the round-trip: the warm
  artifact's ``kernel_report`` matches the cold one's (with at least
  one vectorized statement), and the two compute planes
  (``compute="kernels"`` / ``"scalar"``) key distinct cache entries.

It then boots the compile service in-process and gates the service
path: a submitted compile must produce an artifact byte-identical to
the local one, a resubmit must be a hot hit, and one run per backend
(threads / mp / inproc-seq) through the service must agree on traffic
and results.

Exits non-zero (with a diagnostic) on any violation.

Usage::

    PYTHONPATH=src python scripts/cache_roundtrip.py [--cache-dir DIR]
"""

import argparse
import sys
import tempfile
import time

from repro import compile_program
from repro.cache.manager import reset_caches
from repro.core.options import CompilerOptions
from repro.programs import sp_like

JACOBI_1D = """
program roundtrip
  parameter n
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i
    a(i) = 0.0
  end do
  do i = 2, n - 1
    a(i) = b(i-1) + b(i+1)
  end do
end
"""


def programs():
    return {
        "jacobi_1d": JACOBI_1D,
        "sp_small_fixed": sp_like(
            symbolic_procs=False, routines=1, nests_per_routine=2
        ),
        "sp_small_symbolic": sp_like(
            symbolic_procs=True, routines=1, nests_per_routine=1
        ),
    }


def check(name: str, source: str, cache_dir: str) -> None:
    options = CompilerOptions(cache_dir=cache_dir)

    reset_caches()
    t0 = time.perf_counter()
    cold = compile_program(source, options)
    cold_s = time.perf_counter() - t0
    if cold.cache_hit:
        raise AssertionError(f"{name}: first compile unexpectedly warm")

    t0 = time.perf_counter()
    warm = compile_program(source, options)
    warm_s = time.perf_counter() - t0
    if not warm.cache_hit:
        raise AssertionError(f"{name}: second compile missed the cache")
    if warm.source != cold.source:
        raise AssertionError(f"{name}: warm artifact differs from cold")
    if warm_s >= cold_s:
        raise AssertionError(
            f"{name}: warm compile not faster "
            f"({warm_s:.3f}s vs {cold_s:.3f}s cold)"
        )

    # The compute plane's qualification log is part of the artifact:
    # a warm hit must replay the same kernel_report the cold compile
    # produced, including its vectorized statements.
    cold_report = list(cold.module.kernel_report)
    warm_report = list(warm.module.kernel_report)
    if warm_report != cold_report:
        raise AssertionError(
            f"{name}: kernel_report changed across the cache round-trip"
        )
    vectorized = sum(
        1 for _, _, status, _ in warm_report if status == "vectorized"
    )
    if not vectorized:
        raise AssertionError(
            f"{name}: no kernel-qualified statement survived the warm hit"
        )

    uncached = compile_program(source, CompilerOptions(caching="off"))
    if uncached.source != cold.source:
        raise AssertionError(
            f"{name}: caching=off emitted a different program"
        )

    # The scalar plane keys its own cache entry: same source, other
    # compute option must not be served the kernels artifact.
    scalar = compile_program(
        source, CompilerOptions(cache_dir=cache_dir, compute="scalar")
    )
    if scalar.source == cold.source:
        raise AssertionError(
            f"{name}: scalar plane returned the kernels artifact"
        )
    if any(s == "vectorized" for _, _, s, _ in scalar.module.kernel_report):
        raise AssertionError(
            f"{name}: scalar plane artifact reports vectorized statements"
        )

    print(
        f"ok {name}: cold {cold_s:.2f}s, warm {warm_s * 1e3:.1f}ms "
        f"({cold_s / max(warm_s, 1e-9):.0f}x), {vectorized} kernel "
        f"stmt(s) replayed, caching=off identical, scalar plane keyed apart"
    )


def check_service(cache_dir: str) -> None:
    """The same byte-identity guarantee, taken through the service."""
    import threading

    from repro.service import ServiceClient, create_server
    from repro.service.protocol import sha256_text

    reset_caches()
    local_sha = sha256_text(
        compile_program(JACOBI_1D, CompilerOptions(caching="off")).source
    )

    server = create_server(port=0, cache_dir=cache_dir, nshards=4,
                           shard_capacity=32)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address
        with ServiceClient(host=host, port=port) as client:
            cold = client.compile(JACOBI_1D)
            if not cold.get("ok"):
                raise AssertionError(f"service: compile failed: {cold}")
            if cold["artifact_sha256"] != local_sha:
                raise AssertionError(
                    "service: submitted artifact differs from the "
                    "single-client compile"
                )
            warm = client.compile(JACOBI_1D)
            if warm["cache"] != "hot":
                raise AssertionError(
                    f"service: resubmit not served hot ({warm['cache']})"
                )
            if warm["artifact_sha256"] != local_sha:
                raise AssertionError(
                    "service: hot artifact differs from the cold one"
                )

            # One artifact, every backend: the served program must run
            # identically on each execution substrate.
            signatures = {}
            for backend in ("threads", "mp", "inproc-seq"):
                response = client.run(
                    JACOBI_1D, params={"n": 16}, nprocs=2,
                    backend=backend,
                )
                if not response.get("ok"):
                    raise AssertionError(
                        f"service: {backend} run failed: "
                        f"{response.get('error')}"
                    )
                if response["artifact_sha256"] != local_sha:
                    raise AssertionError(
                        f"service: {backend} ran a different artifact"
                    )
                outcome = response["outcome"]
                signatures[backend] = (
                    outcome["messages"],
                    outcome["payload_bytes"],
                    tuple(sorted(outcome["scalars"].items())),
                )
            if len(set(signatures.values())) != 1:
                raise AssertionError(
                    f"service: backends disagree: {signatures}"
                )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
    print(
        "ok service: submit byte-identical to local compile, resubmit "
        "hot, threads/mp/inproc-seq runs agree"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cache-dir", default=None,
                        help="shared cache directory (default: a tmp dir)")
    args = parser.parse_args(argv)
    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-cc-")
    print(f"cache dir: {cache_dir}")
    failures = 0
    for name, source in programs().items():
        try:
            check(name, source, cache_dir)
        except AssertionError as exc:
            print(f"FAIL {exc}", file=sys.stderr)
            failures += 1
    try:
        check_service(tempfile.mkdtemp(prefix="repro-svc-"))
    except AssertionError as exc:
        print(f"FAIL {exc}", file=sys.stderr)
        failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
