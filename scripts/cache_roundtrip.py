#!/usr/bin/env python
"""CI gate: persistent compile-cache round-trip.

Compiles a set of benchmark programs twice against one shared cache
directory and asserts, for each program:

* the second compile is served from the persistent cache (``cache_hit``);
* cold and warm artifacts emit **byte-identical** node programs;
* the ``caching="off"`` A/B path emits that same byte-identical program;
* the warm compile is faster than the cold one;
* kernel-qualified statements survive the round-trip: the warm
  artifact's ``kernel_report`` matches the cold one's (with at least
  one vectorized statement), and the two compute planes
  (``compute="kernels"`` / ``"scalar"``) key distinct cache entries.

It then runs the full-benchmark identity suite: each of the six
benchmark programs (jacobi, tomcatv, erlebacher, gauss, redblack,
sp_like) must compile — cold, warm, and on the ``caching="off"`` A/B
path — to a node program whose SHA-256 matches the pinned value below.
The pins freeze the artifact bytes across optimization work on the set
engine: any change to them means an optimization leaked into the
emitted representation and must either be fixed or consciously
re-pinned with a DESIGN.md justification.  The suite compiles the
programs in sequence inside one process, so order-dependent solver
state (fresh-name counters) that leaks into an artifact shows up as a
pin mismatch — this is how the redblack counter-nondeterminism was
caught and is kept fixed.

Finally it boots the compile service in-process and gates the service
path: a submitted compile must produce an artifact byte-identical to
the local one, a resubmit must be a hot hit, and one run per backend
(threads / mp / inproc-seq / taskgraph) through the service must agree
on traffic and results.

Exits non-zero (with a diagnostic) on any violation.

Usage::

    PYTHONPATH=src python scripts/cache_roundtrip.py [--cache-dir DIR]
    PYTHONPATH=src python scripts/cache_roundtrip.py --quick  # skip the
        six-benchmark identity suite (several minutes of compiles)
"""

import argparse
import hashlib
import os
import sys
import tempfile
import time

from repro import compile_program
from repro.cache.manager import reset_caches
from repro.core.options import CompilerOptions
from repro.programs import (
    erlebacher,
    gauss,
    jacobi,
    redblack,
    sp_like,
    tomcatv,
)

JACOBI_1D = """
program roundtrip
  parameter n
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i
    a(i) = 0.0
  end do
  do i = 2, n - 1
    a(i) = b(i-1) + b(i+1)
  end do
end
"""


def programs():
    return {
        "jacobi_1d": JACOBI_1D,
        "sp_small_fixed": sp_like(
            symbolic_procs=False, routines=1, nests_per_routine=2
        ),
        "sp_small_symbolic": sp_like(
            symbolic_procs=True, routines=1, nests_per_routine=1
        ),
    }


#: SHA-256 of the node program each benchmark must emit (every cache
#: mode).  Re-pinned with the disjointness pretest (DESIGN §14): when two
#: conjuncts' presolve windows prove them disjoint, subtraction returns
#: the minuend whole instead of a fan of prefix-decomposition fragments,
#: so disjoint unions reach code generation with fewer, simpler pieces —
#: a deliberate representation change (validated by the execution suite),
#: not a leak.  gauss is byte-identical to the pre-pretest artifact; the
#: other five changed only in piece decomposition.  redblack remains the
#: canonical artifact of the determinism fix (stride residues reduced mod
#: their modulus at emission).
BENCHMARK_SHAS = {
    "jacobi": (
        "39d0c86cc1855a069b92b771b54e0970a421741a768118854130cd8092c846c5"
    ),
    "tomcatv": (
        "3eccb9a254cdad0905f8e7536d6114fd7e0f6e4bdc2d33e4aa4aa2b92d5b0ed9"
    ),
    "erlebacher": (
        "450fe4d0e3fc68855df3f1eb421302ba89cdc4a4fe532a5192b2d702c67dfe97"
    ),
    "gauss": (
        "0f010d60990c227bece81aefe78891180a20021776ed140ec3163d6c9b388a81"
    ),
    "redblack": (
        "d467c831ee563965efcc8cf3da95ba3d96fadfe93b243ae23dcfd9e82f8bcec6"
    ),
    "sp_like": (
        "4852f94c4b15fb3f4af6bc90f1a2f064616223d091383d364b76dddced7d93b8"
    ),
}


def benchmark_sources():
    return {
        "gauss": gauss(),
        "tomcatv": tomcatv(),
        "erlebacher": erlebacher(),
        "redblack": redblack(),
        "jacobi": jacobi(),
        "sp_like": sp_like(),
    }


def check_benchmark(name: str, source: str, cache_dir: str) -> None:
    """Cold / warm / caching=off / presolve-off compiles all match the
    pinned sha.

    The last arm is the presolve byte-identity A/B (DESIGN §14): with
    ``REPRO_PRESOLVE=0`` *and* every cache bypassed, the compiler must
    emit the same bytes as the presolve-accelerated path — the presolve
    engine's verdicts may only short-circuit decisions, never change a
    representation.
    """
    expected = BENCHMARK_SHAS[name]
    options = CompilerOptions(cache_dir=cache_dir)
    reset_caches()
    t0 = time.perf_counter()
    cold = compile_program(source, options)
    cold_s = time.perf_counter() - t0
    sha = hashlib.sha256(cold.source.encode()).hexdigest()
    if sha != expected:
        raise AssertionError(
            f"{name}: cold artifact sha {sha[:12]}… != pinned "
            f"{expected[:12]}… — an optimization changed the emitted bytes"
        )
    warm = compile_program(source, options)
    if not warm.cache_hit or warm.source != cold.source:
        raise AssertionError(f"{name}: warm artifact differs from cold")
    t0 = time.perf_counter()
    uncached = compile_program(source, CompilerOptions(caching="off"))
    off_s = time.perf_counter() - t0
    if uncached.source != cold.source:
        raise AssertionError(
            f"{name}: caching=off emitted a different program"
        )
    os.environ["REPRO_PRESOLVE"] = "0"
    try:
        t0 = time.perf_counter()
        no_presolve = compile_program(source, CompilerOptions(caching="off"))
        np_s = time.perf_counter() - t0
    finally:
        del os.environ["REPRO_PRESOLVE"]
    if no_presolve.source != cold.source:
        raise AssertionError(
            f"{name}: presolve-off compile emitted a different program — "
            "a presolve verdict leaked into the representation"
        )
    print(
        f"ok benchmark {name}: sha pinned, cold {cold_s:.2f}s, "
        f"caching=off {off_s:.2f}s, presolve-off {np_s:.2f}s, "
        "all byte-identical"
    )


def check(name: str, source: str, cache_dir: str) -> None:
    options = CompilerOptions(cache_dir=cache_dir)

    reset_caches()
    t0 = time.perf_counter()
    cold = compile_program(source, options)
    cold_s = time.perf_counter() - t0
    if cold.cache_hit:
        raise AssertionError(f"{name}: first compile unexpectedly warm")

    t0 = time.perf_counter()
    warm = compile_program(source, options)
    warm_s = time.perf_counter() - t0
    if not warm.cache_hit:
        raise AssertionError(f"{name}: second compile missed the cache")
    if warm.source != cold.source:
        raise AssertionError(f"{name}: warm artifact differs from cold")
    if warm_s >= cold_s:
        raise AssertionError(
            f"{name}: warm compile not faster "
            f"({warm_s:.3f}s vs {cold_s:.3f}s cold)"
        )

    # The compute plane's qualification log is part of the artifact:
    # a warm hit must replay the same kernel_report the cold compile
    # produced, including its vectorized statements.
    cold_report = list(cold.module.kernel_report)
    warm_report = list(warm.module.kernel_report)
    if warm_report != cold_report:
        raise AssertionError(
            f"{name}: kernel_report changed across the cache round-trip"
        )
    vectorized = sum(
        1 for _, _, status, _ in warm_report if status == "vectorized"
    )
    if not vectorized:
        raise AssertionError(
            f"{name}: no kernel-qualified statement survived the warm hit"
        )

    uncached = compile_program(source, CompilerOptions(caching="off"))
    if uncached.source != cold.source:
        raise AssertionError(
            f"{name}: caching=off emitted a different program"
        )

    # The scalar plane keys its own cache entry: same source, other
    # compute option must not be served the kernels artifact.
    scalar = compile_program(
        source, CompilerOptions(cache_dir=cache_dir, compute="scalar")
    )
    if scalar.source == cold.source:
        raise AssertionError(
            f"{name}: scalar plane returned the kernels artifact"
        )
    if any(s == "vectorized" for _, _, s, _ in scalar.module.kernel_report):
        raise AssertionError(
            f"{name}: scalar plane artifact reports vectorized statements"
        )

    print(
        f"ok {name}: cold {cold_s:.2f}s, warm {warm_s * 1e3:.1f}ms "
        f"({cold_s / max(warm_s, 1e-9):.0f}x), {vectorized} kernel "
        f"stmt(s) replayed, caching=off identical, scalar plane keyed apart"
    )


def check_service(cache_dir: str) -> None:
    """The same byte-identity guarantee, taken through the service."""
    import threading

    from repro.service import ServiceClient, create_server
    from repro.service.protocol import sha256_text

    reset_caches()
    local_sha = sha256_text(
        compile_program(JACOBI_1D, CompilerOptions(caching="off")).source
    )

    server = create_server(port=0, cache_dir=cache_dir, nshards=4,
                           shard_capacity=32)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address
        with ServiceClient(host=host, port=port) as client:
            cold = client.compile(JACOBI_1D)
            if not cold.get("ok"):
                raise AssertionError(f"service: compile failed: {cold}")
            if cold["artifact_sha256"] != local_sha:
                raise AssertionError(
                    "service: submitted artifact differs from the "
                    "single-client compile"
                )
            warm = client.compile(JACOBI_1D)
            if warm["cache"] != "hot":
                raise AssertionError(
                    f"service: resubmit not served hot ({warm['cache']})"
                )
            if warm["artifact_sha256"] != local_sha:
                raise AssertionError(
                    "service: hot artifact differs from the cold one"
                )

            # One artifact, every backend: the served program must run
            # identically on each execution substrate.
            signatures = {}
            for backend in ("threads", "mp", "inproc-seq", "taskgraph"):
                response = client.run(
                    JACOBI_1D, params={"n": 16}, nprocs=2,
                    backend=backend,
                )
                if not response.get("ok"):
                    raise AssertionError(
                        f"service: {backend} run failed: "
                        f"{response.get('error')}"
                    )
                if response["artifact_sha256"] != local_sha:
                    raise AssertionError(
                        f"service: {backend} ran a different artifact"
                    )
                outcome = response["outcome"]
                signatures[backend] = (
                    outcome["messages"],
                    outcome["payload_bytes"],
                    tuple(sorted(outcome["scalars"].items())),
                )
            if len(set(signatures.values())) != 1:
                raise AssertionError(
                    f"service: backends disagree: {signatures}"
                )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
    print(
        "ok service: submit byte-identical to local compile, resubmit "
        "hot, threads/mp/inproc-seq/taskgraph runs agree"
    )


def check_pooled_service(cache_dir: str) -> None:
    """The pinned-sha gate, taken through the supervised worker pool.

    A pooled cold compile runs in a forked worker process and travels
    back over a pipe as a pickle — this asserts that detour changes not
    one byte: the jacobi benchmark artifact must still match its
    ``BENCHMARK_SHAS`` pin, and a graceful drain must leak no children.
    """
    import multiprocessing
    import threading

    from repro.service import ServiceClient, create_server

    reset_caches()
    server = create_server(port=0, cache_dir=cache_dir, nshards=4,
                           shard_capacity=32, workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        if not server.service.wait_ready(timeout_s=60.0):
            raise AssertionError("pooled service: workers never came up")
        host, port = server.server_address
        with ServiceClient(host=host, port=port) as client:
            cold = client.compile(jacobi())
            if not cold.get("ok"):
                raise AssertionError(
                    f"pooled service: compile failed: {cold}"
                )
            if cold["cache"] != "cold":
                raise AssertionError(
                    f"pooled service: expected a cold compile, got "
                    f"{cold['cache']!r}"
                )
            if cold["artifact_sha256"] != BENCHMARK_SHAS["jacobi"]:
                raise AssertionError(
                    "pooled service: jacobi artifact sha "
                    f"{cold['artifact_sha256'][:12]}… != pinned "
                    f"{BENCHMARK_SHAS['jacobi'][:12]}… — the pool "
                    "round-trip changed the emitted bytes"
                )
            warm = client.compile(jacobi())
            if warm["cache"] != "hot":
                raise AssertionError(
                    f"pooled service: resubmit not hot ({warm['cache']})"
                )
            if warm["artifact_sha256"] != cold["artifact_sha256"]:
                raise AssertionError(
                    "pooled service: hot artifact differs from cold"
                )
    finally:
        server.shutdown_gracefully(timeout_s=60.0)
        server.server_close()
        thread.join(timeout=10)
    leftover = multiprocessing.active_children()
    if leftover:
        raise AssertionError(
            f"pooled service: leaked worker processes: {leftover}"
        )
    print(
        "ok pooled service: worker-compiled jacobi matches the pinned "
        "sha, resubmit hot, drained with zero leaked children"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cache-dir", default=None,
                        help="shared cache directory (default: a tmp dir)")
    parser.add_argument("--quick", action="store_true",
                        help="skip the six-benchmark identity suite "
                             "(several minutes of full compiles)")
    args = parser.parse_args(argv)
    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-cc-")
    print(f"cache dir: {cache_dir}")
    failures = 0
    for name, source in programs().items():
        try:
            check(name, source, cache_dir)
        except AssertionError as exc:
            print(f"FAIL {exc}", file=sys.stderr)
            failures += 1
    if not args.quick:
        bench_cache = tempfile.mkdtemp(prefix="repro-bench-")
        for name, source in benchmark_sources().items():
            try:
                check_benchmark(name, source, bench_cache)
            except AssertionError as exc:
                print(f"FAIL {exc}", file=sys.stderr)
                failures += 1
    try:
        check_service(tempfile.mkdtemp(prefix="repro-svc-"))
    except AssertionError as exc:
        print(f"FAIL {exc}", file=sys.stderr)
        failures += 1
    try:
        check_pooled_service(tempfile.mkdtemp(prefix="repro-pool-"))
    except AssertionError as exc:
        print(f"FAIL {exc}", file=sys.stderr)
        failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
