#!/usr/bin/env python
"""Section 4: compiling once for a symbolic number of processors.

The paper's headline extension: HPF distributions with an unknown
processor count are undecidable in pure Presburger form (the block size
``B`` times the processor index ``p`` is a product of symbols), yet dHPF
compiles them by switching to the virtual-processor layout — *without
changing any optimization's set equations*.

This script compiles TOMCATV once with ``processors p(nprocs)`` and runs
the same node program on 1, 2, 4, and 8 simulated processors; it also
shows the paper's Table 1 observation that symbolic-P compilation costs
about the same as fixed-P.

Run:  python examples/symbolic_processors.py
"""

import time

from repro import compile_program, run_compiled
from repro.programs import tomcatv


def main() -> None:
    source_sym = tomcatv()
    source_fix = source_sym.replace(
        "processors p(nprocs)", "processors p(4)"
    )

    t0 = time.perf_counter()
    compiled_sym = compile_program(source_sym)
    t_sym = time.perf_counter() - t0
    t0 = time.perf_counter()
    compile_program(source_fix)
    t_fix = time.perf_counter() - t0
    print(f"compile time: symbolic P = {t_sym:.1f}s, fixed P=4 = "
          f"{t_fix:.1f}s  (ratio {t_sym / t_fix:.2f})")

    layout = compiled_sym.mapping.layout("x")
    print("\nVP-block layout (one active VP per processor, vm = B*m + 1):")
    print("  ", layout.map)

    print("\nOne compiled program, any processor count:")
    params = {"n": 64, "niter": 2}
    baseline = None
    for nprocs in (1, 2, 4, 8):
        outcome = run_compiled(compiled_sym, params=params, nprocs=nprocs)
        if baseline is None:
            baseline = outcome.predicted_time
        print(
            f"  p={nprocs}: validated; B = {outcome.env0['B_t_0']}, "
            f"predicted {outcome.predicted_time * 1e3:.2f} ms, "
            f"speedup {baseline / outcome.predicted_time:.2f}x"
        )


if __name__ == "__main__":
    main()
