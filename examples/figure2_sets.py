#!/usr/bin/env python
"""Paper Figure 2: construct the primitive sets and mappings.

Reproduces the paper's worked example — the code fragment with
``align A(i,j) with T(i+1,j)``, ``align B(i,j) with T(*,i)`` and
``distribute T(*,block) onto P(4)`` — and prints each primitive object
(Layout_A, Layout_B, the loop set, and the CPMap of the ON_HOME directive)
so they can be compared with the figure line by line.

Run:  python examples/figure2_sets.py
"""

from repro.core.context import collect_contexts
from repro.core.cp import resolve_cp
from repro.hpf import DataMapping
from repro.lang import parse_program

FIGURE2 = """
program fig2
  parameter n
  real a(0:99,100), b(100,100)
  processors p(4)
  template t(100,100)
  align a(i,j) with t(i+1,j)
  align b(i,j) with t(*,i)
  distribute t(*,block) onto p
  do i = 1, n
    do j = 2, n+1
      on_home b(j-1,i)
      a(i,j) = b(j-1,i)
    end do
  end do
end
"""


def main() -> None:
    program = parse_program(FIGURE2)
    mapping = DataMapping(program)

    print("proc     =", mapping.grids["p"].proc_set())
    print()
    print("Layout_A =", mapping.layout("a").map)
    print("  (paper: max(25p+1,1) <= a2 <= min(25p+25,100), "
          "0 <= a1 <= 99)")
    print()
    print("Layout_B =", mapping.layout("b").map)
    print("  (paper: max(25p+1,1) <= b1 <= min(25p+25,100), "
          "1 <= b2 <= 100)")
    print()

    context = collect_contexts(program, program.main)[0]
    print("loop     =", context.iteration_set())
    print("  (paper: 1 <= l1 <= N and 2 <= l2 <= N+1)")
    print()

    cp = resolve_cp(mapping, context)
    print("CP       =", cp.context.stmt.cp)
    print("CPMap    =", cp.cp_map)
    print("  (paper: 1 <= l1 <= min(N,100), "
          "max(2,25p+2) <= l2 <= min(N+1,101,25p+26))")
    print()
    print("CPMap({m}) — iterations of the executing processor:")
    print("         ", cp.local_iterations)


if __name__ == "__main__":
    main()
