#!/usr/bin/env python
"""Paper Figure 5: active virtual processors for Gaussian elimination.

The pivot-row update loop with a ``(CYCLIC, CYCLIC)`` distribution on a
symbolic ``PA(P1, P2)`` grid is the paper's showcase for the virtual-
processor model: block sizes and processor counts are unrepresentable
symbolically, so the analyses run on the virtual-processor (template)
domain, and the Figure 5 equations restrict code generation to the
*active* VPs:

* ``busyVPSet``        — VPs in the lower-right of the matrix compute;
* ``activeSendVPSet``  — only VPs owning the pivot row send;
* ``activeRecvVPSet``  — every busy VP receives.

The script then compiles and runs the full elimination with cyclic rows on
2 and 4 simulated processors, validating against the serial interpreter.

Run:  python examples/gauss_active_vps.py
"""

from repro import compile_program, run_compiled
from repro.core.context import collect_contexts
from repro.core.cp import resolve_cp
from repro.core.events import build_events
from repro.core.vp import busy_vp_set, compute_active_vp_sets
from repro.hpf import DataMapping
from repro.lang import parse_program
from repro.programs import gauss

FIGURE5 = """
program gauss5
  parameter pivot, np1, np2
  real a(100,100)
  processors pa(np1, np2)
  template t(100,100)
  align a(i,j) with t(i,j)
  distribute t(cyclic, cyclic) onto pa
  do i = pivot + 1, 100
    do j = pivot + 1, 100
      on_home a(i,j)
      a(i,j) = a(i,j) + a(pivot, j)
    end do
  end do
end
"""


def main() -> None:
    program = parse_program(FIGURE5)
    mapping = DataMapping(program)
    contexts = collect_contexts(program, program.main)
    cps = [resolve_cp(mapping, c) for c in contexts]
    events = build_events(mapping, cps)

    print("Layout (VP model: one VP per template element):")
    print("  ", mapping.layout("a").map)
    print()
    print("busyVPSet        =", busy_vp_set(cps))
    active = compute_active_vp_sets(events[0].event)
    print("activeSendVPSet  =", active.active_send_vp)
    print("  (paper: v1 = PIVOT, PIVOT < v2 <= 100 — the pivot row)")
    print("activeRecvVPSet  =", active.active_recv_vp)
    print("  (paper: equals busyVPSet)")

    print()
    print("Running full Gaussian elimination with cyclic rows:")
    compiled = compile_program(gauss())
    for nprocs in (2, 4):
        outcome = run_compiled(compiled, params={"n": 20}, nprocs=nprocs)
        print(
            f"  p={nprocs}: validated; pivot-row broadcasts = "
            f"{outcome.stats.total_messages} messages"
        )


if __name__ == "__main__":
    main()
