#!/usr/bin/env python
"""Quickstart: compile a mini-HPF stencil and run it on 4 simulated
processors.

The whole pipeline in one page:

1. write a data-parallel program with HPF directives;
2. ``compile_program`` runs the paper's integer-set analyses and emits an
   SPMD node program;
3. ``run_compiled`` executes it on a simulated message-passing machine,
   validates every element against the serial interpreter, and predicts
   execution time with a LogGP-style cost model.

Run:  python examples/quickstart.py
"""

from repro import compile_program, run_compiled

SOURCE = """
program quickstart
  parameter n, niter
  real u(n,n), v(n,n)
  scalar err
  processors p(nprocs)
  template t(n,n)
  align u(i,j) with t(i,j)
  align v(i,j) with t(i,j)
  distribute t(block, *) onto p

  do i = 1, n
    do j = 1, n
      v(i,j) = i + j * 0.5
      u(i,j) = 0.0
    end do
  end do
  do iter = 1, niter
    do i = 2, n-1
      do j = 2, n-1
        u(i,j) = 0.25 * (v(i-1,j) + v(i+1,j) + v(i,j-1) + v(i,j+1))
      end do
    end do
    err = 0.0
    do i = 2, n-1
      do j = 2, n-1
        err = max(err, abs(u(i,j) - v(i,j)))
      end do
    end do
    do i = 2, n-1
      do j = 2, n-1
        v(i,j) = u(i,j)
      end do
    end do
  end do
end
"""


def main() -> None:
    print("Compiling (symbolic processor count)...")
    compiled = compile_program(SOURCE)

    print("\n--- communication events found by the Figure 3 analysis ---")
    for analysis in compiled.analyses.values():
        for event in analysis.events:
            print(f"event {event.tag}: array {event.placed.event.array!r}, "
                  f"vectorized inside {event.placed.level} loop(s)")
            print(f"  SendCommMap(m) = {event.sets.send_comm_map}")

    print("\n--- running on simulated machines ---")
    params = {"n": 48, "niter": 3}
    baseline = None
    for nprocs in (1, 2, 4, 8):
        outcome = run_compiled(compiled, params=params, nprocs=nprocs)
        if baseline is None:
            baseline = outcome.predicted_time
        print(
            f"p={nprocs}: validated against serial reference; "
            f"messages={outcome.stats.total_messages}, "
            f"predicted time={outcome.predicted_time * 1e3:.2f} ms, "
            f"speedup={baseline / outcome.predicted_time:.2f}x"
        )
    print("\nconverged err =", outcome.results[0].scalars["err"])


if __name__ == "__main__":
    main()
