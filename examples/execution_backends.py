"""Execution backends: run the same compiled SPMD program three ways.

The compiler emits one node program; *how* the ranks execute is a runtime
choice (see ``src/repro/runtime/backends/``):

* ``threads``     — simulated machine, one thread per rank (default);
* ``mp``          — one OS process per rank, payloads through shared
                    memory: a real shared-nothing run with measured
                    wall-clock;
* ``inproc-seq``  — deterministic sequential scheduler, the golden
                    reference for debugging.

All three validate element-for-element against the serial interpreter;
only the measured timings differ in meaning.
"""

from repro import compile_program, run_compiled

SOURCE = """
program demo
  parameter n
  real a(n), b(n)
  scalar checksum
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i * 0.25
    a(i) = 0.0
  end do
  do i = 2, n - 1
    a(i) = b(i-1) + b(i+1)
  end do
  do i = 1, n
    checksum = checksum + a(i)
  end do
end
"""


def main() -> None:
    compiled = compile_program(SOURCE)
    print(f"{'backend':<12} {'wall (max rank)':>16} {'LogGP predicted':>16} "
          f"{'checksum':>12}")
    for backend in ("threads", "inproc-seq", "mp"):
        outcome = run_compiled(
            compiled, params={"n": 64}, nprocs=4, backend=backend
        )
        checksum = outcome.results[0].scalars["checksum"]
        print(
            f"{backend:<12} {outcome.max_rank_wall_s * 1e3:>13.3f} ms "
            f"{outcome.predicted_time * 1e3:>13.3f} ms {checksum:>12.2f}"
        )
    print("\nall backends validated against the serial interpreter")


if __name__ == "__main__":
    main()
