#!/usr/bin/env python
"""Paper Figure 4: non-local index-set splitting.

Splits a stencil's iterations into the four sections of Figure 4(a) and
shows the two benefits of §3.4:

* **buffer-access checks vanish** — in 'direct' buffer mode a reference to
  possibly-buffered data pays an ownership check per access, unless the
  section provably touches only one side;
* **communication overlaps computation** — the Figure 4(b) schedule sends,
  runs the local section, and only then receives.

Run:  python examples/loop_splitting.py
"""

from repro import CompilerOptions, CostModel, compile_program, run_compiled
from repro.core.context import collect_contexts
from repro.core.cp import resolve_cp
from repro.core.loopsplit import compute_split_sets
from repro.hpf import DataMapping
from repro.lang import parse_program

STENCIL = """
program split
  parameter n, niter
  real a(n), b(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    b(i) = i * 1.5
    a(i) = 0.0
  end do
  do iter = 1, niter
    do i = 2, n - 1
      a(i) = b(i-1) + b(i+1)
    end do
    do i = 2, n - 1
      b(i) = a(i)
    end do
  end do
end
"""


def main() -> None:
    program = parse_program(STENCIL)
    mapping = DataMapping(program)
    contexts = collect_contexts(program, program.main)
    # the stencil statement (after the two init statements)
    stencil_ctx = contexts[2]
    cp = resolve_cp(mapping, stencil_ctx)
    split = compute_split_sets(
        cp, stencil_ctx.references(), mapping.layouts
    )

    print("Figure 4(a) sections (symbolic, for the executing processor):")
    for name, section in split.sections():
        print(f"  {name:6s} = {section}")
    print()
    print("Concretely for processor 1 of 4 (owns 26..50 of 100):")
    from repro.isets import enumerate_points

    env = {"my_p_0": 26, "n": 100, "niter": 1, "B_t_0": 25, "nprocs": 4}
    for name, section in split.sections():
        pts = sorted({
            i for (_iter, i) in enumerate_points(
                section.partial_evaluate(env)
            )
        })
        shown = f"{pts[0]}..{pts[-1]}" if len(pts) > 2 else str(pts)
        print(f"  {name:6s} : {len(pts):3d} iterations  {shown}")

    print()
    print("Effect on generated code (4 processors, direct buffer mode):")
    params = {"n": 64, "niter": 4}
    for split_on in (False, True):
        options = CompilerOptions(
            loop_split=split_on, buffer_mode="direct"
        )
        compiled = compile_program(STENCIL, options)
        outcome = run_compiled(compiled, params=params, nprocs=4)
        print(
            f"  loop_split={split_on!s:5s}: buffer checks = "
            f"{outcome.stats.total_checks:4d}, predicted time = "
            f"{outcome.predicted_time * 1e6:.0f} us (validated)"
        )


if __name__ == "__main__":
    main()
