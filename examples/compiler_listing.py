#!/usr/bin/env python
"""Inspect what the compiler decided: CPs, events, and generated code.

Compiles a small pipeline code (a first-order recurrence across a
distributed dimension) and prints:

* the compilation listing — computation partitionings, communication
  events with their Figure 3 send/receive maps and in-place verdicts;
* the generated SPMD node program itself (plain Python).

Run:  python examples/compiler_listing.py
"""

from repro import compile_program

SOURCE = """
program pipeline
  parameter n, nz
  real d(n,nz)
  processors p(nprocs)
  template t(n,nz)
  align d(i,k) with t(i,k)
  distribute t(*, block) onto p

  do k = 1, nz
    do i = 1, n
      d(i,k) = i + 2 * k
    end do
  end do
  do k = 2, nz
    do i = 1, n
      d(i,k) = d(i,k) - 0.5 * d(i,k-1)
    end do
  end do
end
"""


def main() -> None:
    compiled = compile_program(SOURCE)

    print("=" * 72)
    print("COMPILATION LISTING")
    print("=" * 72)
    print(compiled.listing())

    print()
    print("=" * 72)
    print("GENERATED SPMD NODE PROGRAM")
    print("=" * 72)
    print(compiled.source)

    print("=" * 72)
    print("COMPILE-TIME PHASE BREAKDOWN (paper Table 1 instrumentation)")
    print("=" * 72)
    print(compiled.phases.format_table())


if __name__ == "__main__":
    main()
