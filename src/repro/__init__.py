"""repro: a reproduction of "Using Integer Sets for Data-Parallel Program
Analysis and Optimization" (Adve & Mellor-Crummey, PLDI 1998) — the Rice
dHPF compiler — as a pure-Python library.

Layered architecture:

* :mod:`repro.isets` — Omega-like Presburger set/map library (substrate);
* :mod:`repro.lang` — mini-HPF frontend and serial reference interpreter;
* :mod:`repro.hpf` — data-mapping semantics (ALIGN/DISTRIBUTE, VP model);
* :mod:`repro.core` — the paper's set-equation analyses and the driver;
* :mod:`repro.codegen` — SPMD node-program generation;
* :mod:`repro.runtime` — simulated message-passing machine + cost model;
* :mod:`repro.programs` — benchmark programs (JACOBI, TOMCATV, ...).

Quick start::

    from repro import compile_program, run_compiled
    compiled = compile_program(source_text)
    outcome = run_compiled(compiled, params={"n": 64}, nprocs=4)
    print(outcome.speedup)
"""

from .core.driver import CompiledProgram, compile_program
from .core.options import CompilerOptions
from .runtime.backends import backend_names, get_backend, register_backend
from .runtime.cost import CostModel
from .runtime.faults import FaultPlan
from .runtime.harness import RetryPolicy, RunOutcome, run_compiled
from .runtime.options import RuntimeOptions

__version__ = "1.0.0"

__all__ = [
    "CompiledProgram",
    "CompilerOptions",
    "CostModel",
    "FaultPlan",
    "RetryPolicy",
    "RunOutcome",
    "RuntimeOptions",
    "__version__",
    "backend_names",
    "compile_program",
    "get_backend",
    "register_backend",
    "run_compiled",
]
