"""Abstract syntax for the mini-HPF source language.

The language is a small Fortran-77-with-HPF-directives subset covering
everything the paper's analyses consume: multidimensional REAL arrays,
PROCESSORS / TEMPLATE / ALIGN / DISTRIBUTE directives, perfect and imperfect
DO nests with affine bounds, assignments with affine subscripts, IF
statements, and per-statement ``ON_HOME`` computation-partitioning
annotations (the paper's CP model, Section 3.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class for expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Num(Expr):
    value: float  # integer-valued Nums are used in index contexts

    def __str__(self) -> str:
        if float(self.value).is_integer():
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class Name(Expr):
    """A scalar variable, loop index, or symbolic program parameter."""

    ident: str

    def __str__(self) -> str:
        return self.ident


@dataclass(frozen=True)
class ArrayRef(Expr):
    array: str
    subscripts: Tuple[Expr, ...]

    def __str__(self) -> str:
        subs = ",".join(str(s) for s in self.subscripts)
        return f"{self.array}({subs})"


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # + - * / ** and comparisons < <= > >= == /=
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp(Expr):
    op: str  # '-' or 'not'
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class Call(Expr):
    """Intrinsic call: max, min, abs, sqrt, mod, exp."""

    func: str
    args: Tuple[Expr, ...]

    def __str__(self) -> str:
        args = ",".join(str(a) for a in self.args)
        return f"{self.func}({args})"


# ---------------------------------------------------------------------------
# ON_HOME computation partitionings (paper Section 3.1)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OnHomeTerm:
    """One ``ON_HOME A(f(i))`` term of a computation partitioning."""

    ref: ArrayRef

    def __str__(self) -> str:
        return f"ON_HOME {self.ref}"


@dataclass(frozen=True)
class ComputationPartitioning:
    """A union of ON_HOME terms (the paper's general CP model)."""

    terms: Tuple[OnHomeTerm, ...]

    def __str__(self) -> str:
        return " union ".join(str(t) for t in self.terms)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    __slots__ = ()


# itertools.count.__next__ is atomic, so concurrent parses (the compile
# service runs many client compiles in one process) cannot hand two
# statements of one program the same id the way the previous
# read-modify-write list cell could.
_stmt_counter = itertools.count(1)


def _next_stmt_id() -> int:
    return next(_stmt_counter)


@dataclass
class Assign(Stmt):
    lhs: Union[ArrayRef, Name]
    rhs: Expr
    cp: Optional[ComputationPartitioning] = None
    stmt_id: int = field(default_factory=_next_stmt_id)

    def __str__(self) -> str:
        return f"{self.lhs} = {self.rhs}"


@dataclass
class Do(Stmt):
    var: str
    lower: Expr
    upper: Expr
    step: Expr
    body: List[Stmt]
    stmt_id: int = field(default_factory=_next_stmt_id)

    def __str__(self) -> str:
        return f"do {self.var} = {self.lower}, {self.upper}"


@dataclass
class If(Stmt):
    cond: Expr
    then_body: List[Stmt]
    else_body: List[Stmt] = field(default_factory=list)
    stmt_id: int = field(default_factory=_next_stmt_id)

    def __str__(self) -> str:
        return f"if ({self.cond})"


@dataclass
class CallStmt(Stmt):
    """Call of another procedure of the program (by name)."""

    name: str
    args: Tuple[Expr, ...] = ()
    stmt_id: int = field(default_factory=_next_stmt_id)

    def __str__(self) -> str:
        return f"call {self.name}"


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

Extent = Tuple[Expr, Expr]  # (lower, upper), e.g. (0, 99) for A(0:99)


@dataclass
class ArrayDecl:
    name: str
    extents: List[Extent]

    @property
    def rank(self) -> int:
        return len(self.extents)


@dataclass
class ScalarDecl:
    name: str


@dataclass
class ParameterDecl:
    """A named integer program parameter (symbolic unless a value is set)."""

    name: str
    value: Optional[int] = None


@dataclass
class ProcessorsDecl:
    """``processors P(e1, ..., ek)``; extents may be symbolic exprs.

    The reserved symbol ``nprocs`` denotes number_of_processors().
    """

    name: str
    extents: List[Expr]

    @property
    def rank(self) -> int:
        return len(self.extents)


@dataclass
class TemplateDecl:
    name: str
    extents: List[Extent]

    @property
    def rank(self) -> int:
        return len(self.extents)


@dataclass
class AlignDecl:
    """``align A(i,j) with T(i+1, j)``.

    ``dummies`` are the align dummy variables; ``targets`` has one entry per
    template dimension: an affine Expr over the dummies, or None for '*'.
    """

    array: str
    dummies: List[str]
    template: str
    targets: List[Optional[Expr]]


DIST_BLOCK = "block"
DIST_CYCLIC = "cyclic"
DIST_COLLAPSED = "*"


@dataclass
class DistFormat:
    """One dimension of a DISTRIBUTE directive."""

    kind: str  # DIST_BLOCK, DIST_CYCLIC or DIST_COLLAPSED
    block_size: Optional[Expr] = None  # for cyclic(k)

    def __str__(self) -> str:
        if self.kind == DIST_CYCLIC and self.block_size is not None:
            return f"cyclic({self.block_size})"
        return self.kind


@dataclass
class DistributeDecl:
    template: str
    formats: List[DistFormat]
    processors: str


# ---------------------------------------------------------------------------
# Program
# ---------------------------------------------------------------------------

@dataclass
class Procedure:
    name: str
    body: List[Stmt]


@dataclass
class Program:
    """A whole mini-HPF program: declarations plus procedures.

    ``main`` is the procedure named 'main' or the first one declared.
    """

    name: str
    parameters: List[ParameterDecl] = field(default_factory=list)
    scalars: List[ScalarDecl] = field(default_factory=list)
    arrays: List[ArrayDecl] = field(default_factory=list)
    processors: List[ProcessorsDecl] = field(default_factory=list)
    templates: List[TemplateDecl] = field(default_factory=list)
    aligns: List[AlignDecl] = field(default_factory=list)
    distributes: List[DistributeDecl] = field(default_factory=list)
    procedures: List[Procedure] = field(default_factory=list)

    def procedure(self, name: str) -> Procedure:
        for procedure in self.procedures:
            if procedure.name == name:
                return procedure
        raise KeyError(f"no procedure named {name!r}")

    @property
    def main(self) -> Procedure:
        for procedure in self.procedures:
            if procedure.name == "main":
                return procedure
        return self.procedures[0]

    def array(self, name: str) -> ArrayDecl:
        for decl in self.arrays:
            if decl.name == name:
                return decl
        raise KeyError(f"no array named {name!r}")

    def template(self, name: str) -> TemplateDecl:
        for decl in self.templates:
            if decl.name == name:
                return decl
        raise KeyError(f"no template named {name!r}")

    def processors_decl(self, name: str) -> ProcessorsDecl:
        for decl in self.processors:
            if decl.name == name:
                return decl
        raise KeyError(f"no processors named {name!r}")

    def align_for(self, array: str) -> Optional[AlignDecl]:
        for decl in self.aligns:
            if decl.array == array:
                return decl
        return None

    def distribute_for(self, template: str) -> Optional[DistributeDecl]:
        for decl in self.distributes:
            if decl.template == template:
                return decl
        return None


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------

def walk_statements(body: Sequence[Stmt]):
    """Yield every statement in a body, depth first, pre-order."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, Do):
            yield from walk_statements(stmt.body)
        elif isinstance(stmt, If):
            yield from walk_statements(stmt.then_body)
            yield from walk_statements(stmt.else_body)


def expr_array_refs(expr: Expr):
    """Yield every ArrayRef inside an expression, left to right."""
    if isinstance(expr, ArrayRef):
        yield expr
        for sub in expr.subscripts:
            yield from expr_array_refs(sub)
    elif isinstance(expr, BinOp):
        yield from expr_array_refs(expr.left)
        yield from expr_array_refs(expr.right)
    elif isinstance(expr, UnOp):
        yield from expr_array_refs(expr.operand)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from expr_array_refs(arg)


def expr_names(expr: Expr):
    """Yield every Name inside an expression."""
    if isinstance(expr, Name):
        yield expr.ident
    elif isinstance(expr, ArrayRef):
        for sub in expr.subscripts:
            yield from expr_names(sub)
    elif isinstance(expr, BinOp):
        yield from expr_names(expr.left)
        yield from expr_names(expr.right)
    elif isinstance(expr, UnOp):
        yield from expr_names(expr.operand)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from expr_names(arg)
