"""Serial reference interpreter for mini-HPF programs.

Executes a :class:`~repro.lang.ast.Program` sequentially with numpy arrays,
ignoring all data-mapping directives.  The compiled SPMD code is validated
against this interpreter's results (every benchmark run does so before any
performance measurement).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from .ast import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    CallStmt,
    Do,
    Expr,
    If,
    Name,
    Num,
    Procedure,
    Program,
    Stmt,
    UnOp,
)
from .errors import SemanticError


class ArrayStorage:
    """A numpy array plus per-dimension lower bounds (Fortran style)."""

    __slots__ = ("data", "lbounds")

    def __init__(self, data: np.ndarray, lbounds: Tuple[int, ...]):
        self.data = data
        self.lbounds = lbounds

    def index(self, subscripts: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(s - lb for s, lb in zip(subscripts, self.lbounds))

    def get(self, subscripts: Tuple[int, ...]) -> float:
        return float(self.data[self.index(subscripts)])

    def set(self, subscripts: Tuple[int, ...], value: float) -> None:
        self.data[self.index(subscripts)] = value


class Interpreter:
    """Evaluates a program under a parameter binding."""

    def __init__(self, program: Program, params: Mapping[str, int]):
        self.program = program
        self.values: Dict[str, Union[int, float]] = {}
        for decl in program.parameters:
            if decl.name in params:
                self.values[decl.name] = int(params[decl.name])
            elif decl.value is not None:
                self.values[decl.name] = decl.value
            else:
                raise SemanticError(
                    f"parameter {decl.name} has no value; pass it in params"
                )
        for name, value in params.items():
            self.values.setdefault(name, int(value))
        for scalar in program.scalars:
            self.values.setdefault(scalar.name, 0.0)
        self.arrays: Dict[str, ArrayStorage] = {}
        for decl in program.arrays:
            lbounds = []
            shape = []
            for low, high in decl.extents:
                lo = self.int_eval(low)
                hi = self.int_eval(high)
                lbounds.append(lo)
                shape.append(hi - lo + 1)
            self.arrays[decl.name] = ArrayStorage(
                np.zeros(tuple(shape), dtype=np.float64), tuple(lbounds)
            )

    # -- expression evaluation ------------------------------------------------

    def int_eval(self, expr: Expr) -> int:
        value = self.eval(expr)
        if isinstance(value, float):
            if not value.is_integer():
                raise SemanticError(f"expected integer, got {value}")
            return int(value)
        return int(value)

    def eval(self, expr: Expr) -> Union[int, float]:
        if isinstance(expr, Num):
            value = expr.value
            if float(value).is_integer() and not isinstance(value, float):
                return int(value)
            return value
        if isinstance(expr, Name):
            if expr.ident not in self.values:
                raise SemanticError(f"undefined name {expr.ident!r}")
            return self.values[expr.ident]
        if isinstance(expr, ArrayRef):
            storage = self._storage(expr.array)
            subs = tuple(self.int_eval(s) for s in expr.subscripts)
            return storage.get(subs)
        if isinstance(expr, UnOp):
            value = self.eval(expr.operand)
            if expr.op == "-":
                return -value
            raise SemanticError(f"unknown unary op {expr.op!r}")
        if isinstance(expr, BinOp):
            return self._eval_binop(expr)
        if isinstance(expr, Call):
            return self._eval_call(expr)
        raise SemanticError(f"cannot evaluate {expr!r}")

    def _eval_binop(self, expr: BinOp) -> Union[int, float]:
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        op = expr.op
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                # Fortran integer division truncates toward zero.
                return int(math.trunc(left / right))
            return left / right
        if op == "**":
            return left ** right
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        if op == "==":
            return int(left == right)
        if op == "/=":
            return int(left != right)
        raise SemanticError(f"unknown operator {op!r}")

    def _eval_call(self, expr: Call) -> Union[int, float]:
        args = [self.eval(a) for a in expr.args]
        if expr.func == "max":
            return max(args)
        if expr.func == "min":
            return min(args)
        if expr.func == "abs":
            return abs(args[0])
        if expr.func == "sqrt":
            return math.sqrt(args[0])
        if expr.func == "exp":
            return math.exp(args[0])
        if expr.func == "mod":
            return args[0] % args[1]
        raise SemanticError(f"unknown intrinsic {expr.func!r}")

    def _storage(self, name: str) -> ArrayStorage:
        if name not in self.arrays:
            raise SemanticError(f"undefined array {name!r}")
        return self.arrays[name]

    # -- statement execution -----------------------------------------------------

    def run(self, procedure: Optional[str] = None) -> None:
        body = (
            self.program.main.body
            if procedure is None
            else self.program.procedure(procedure).body
        )
        self.exec_body(body)

    def exec_body(self, body: List[Stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            value = self.eval(stmt.rhs)
            if isinstance(stmt.lhs, ArrayRef):
                storage = self._storage(stmt.lhs.array)
                subs = tuple(self.int_eval(s) for s in stmt.lhs.subscripts)
                storage.set(subs, float(value))
            else:
                self.values[stmt.lhs.ident] = value
        elif isinstance(stmt, Do):
            lower = self.int_eval(stmt.lower)
            upper = self.int_eval(stmt.upper)
            step = self.int_eval(stmt.step)
            if step == 0:
                raise SemanticError("zero loop step")
            for value in range(lower, upper + (1 if step > 0 else -1), step):
                self.values[stmt.var] = value
                self.exec_body(stmt.body)
        elif isinstance(stmt, If):
            if self.eval(stmt.cond):
                self.exec_body(stmt.then_body)
            else:
                self.exec_body(stmt.else_body)
        elif isinstance(stmt, CallStmt):
            self.exec_body(self.program.procedure(stmt.name).body)
        else:
            raise SemanticError(f"cannot execute {stmt!r}")


def run_serial(
    program: Program, params: Mapping[str, int]
) -> Interpreter:
    """Run the whole program serially; returns the interpreter for results."""
    interp = Interpreter(program, params)
    interp.run()
    return interp
