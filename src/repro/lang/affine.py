"""Conversion of language expressions to affine :class:`LinExpr` form.

Subscripts, loop bounds, and alignment targets must be affine in the loop
indices and symbolic parameters for the set framework to represent them;
anything else raises :class:`NonAffineSubscriptError`, mirroring the
decidability boundary discussed in the paper's Section 4.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from ..isets import LinExpr
from .ast import ArrayRef, BinOp, Call, Expr, Name, Num, UnOp
from .errors import NonAffineSubscriptError


def to_affine(expr: Expr, integer_division_names: Optional[Set[str]] = None) -> LinExpr:
    """Convert an expression to a LinExpr over its free names.

    Division is only accepted when the result is exact over the integers
    (constant/constant, or every coefficient divisible).
    """
    if isinstance(expr, Num):
        if not float(expr.value).is_integer():
            raise NonAffineSubscriptError(
                f"non-integer constant {expr.value} in affine context"
            )
        return LinExpr.const(int(expr.value))
    if isinstance(expr, Name):
        return LinExpr.var(expr.ident)
    if isinstance(expr, UnOp):
        if expr.op == "-":
            return -to_affine(expr.operand)
        raise NonAffineSubscriptError(f"operator {expr.op!r} is not affine")
    if isinstance(expr, BinOp):
        if expr.op == "+":
            return to_affine(expr.left) + to_affine(expr.right)
        if expr.op == "-":
            return to_affine(expr.left) - to_affine(expr.right)
        if expr.op == "*":
            left = to_affine(expr.left)
            right = to_affine(expr.right)
            return left * right  # LinExpr raises NonAffineError on v*v
        if expr.op == "/":
            left = to_affine(expr.left)
            right = to_affine(expr.right)
            if not right.is_constant():
                raise NonAffineSubscriptError(
                    f"division by non-constant: {expr}"
                )
            try:
                return left.exact_div(right.constant)
            except ValueError as exc:
                raise NonAffineSubscriptError(str(exc)) from exc
        raise NonAffineSubscriptError(
            f"operator {expr.op!r} in affine context"
        )
    if isinstance(expr, (Call, ArrayRef)):
        raise NonAffineSubscriptError(f"{expr} is not affine")
    raise NonAffineSubscriptError(f"unsupported expression {expr!r}")


def is_affine(expr: Expr) -> bool:
    """True when :func:`to_affine` would succeed."""
    try:
        to_affine(expr)
        return True
    except Exception:
        return False
