"""Recursive-descent parser for the mini-HPF language.

Grammar sketch (statements are newline-terminated)::

    program   := 'program' NAME NL decl* proc* 'end'
    decl      := 'parameter' param (',' param)*
               | 'real' arrspec (',' arrspec)*
               | 'scalar' NAME (',' NAME)*
               | 'processors' NAME '(' expr (',' expr)* ')'
               | 'template' NAME '(' extent (',' extent)* ')'
               | 'align' NAME '(' dummies ')' 'with' NAME '(' tgt* ')'
               | 'distribute' NAME '(' fmt* ')' 'onto' NAME
    proc      := 'procedure' NAME NL stmt* 'end'   (or bare stmts = main)
    stmt      := 'do' NAME '=' expr ',' expr [',' expr] NL stmt* 'end' 'do'
               | 'if' '(' expr ')' 'then' NL stmt* ['else' NL stmt*]
                 'end' 'if'
               | 'on_home' ref ('union' ref)* NL     (annotates next stmt)
               | 'call' NAME NL
               | lvalue '=' expr NL

An ``on_home`` line attaches a :class:`ComputationPartitioning` to the next
assignment (the paper's CP directive, shown as ``! ON HOME B(j-1,i)`` in
Figure 2).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import (
    AlignDecl,
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    CallStmt,
    ComputationPartitioning,
    DistFormat,
    DistributeDecl,
    Do,
    Expr,
    If,
    Name,
    Num,
    OnHomeTerm,
    ParameterDecl,
    Procedure,
    ProcessorsDecl,
    Program,
    ScalarDecl,
    Stmt,
    TemplateDecl,
    UnOp,
)
from .errors import LangParseError
from .lexer import Token, tokenize

_INTRINSICS = {"max", "min", "abs", "sqrt", "mod", "exp"}


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.index = 0

    # -- token plumbing --------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.index += 1
        return token

    def accept(self, kind: str) -> Optional[Token]:
        if self.peek().kind == kind:
            return self.next()
        return None

    def expect(self, kind: str) -> Token:
        token = self.next()
        if token.kind != kind:
            raise LangParseError(
                f"line {token.line}: expected {kind!r}, got {token.text!r}"
            )
        return token

    def skip_newlines(self) -> None:
        while self.accept("newline"):
            pass

    def end_of_statement(self) -> None:
        token = self.peek()
        if token.kind == "eof":
            return
        self.expect("newline")
        self.skip_newlines()

    # -- program ---------------------------------------------------------------

    def parse_program(self) -> Program:
        self.skip_newlines()
        self.expect("program")
        name = self.expect("name").text
        program = Program(name=name)
        self.end_of_statement()
        while True:
            token = self.peek()
            if token.kind == "parameter":
                self._parse_parameters(program)
            elif token.kind in ("real", "integer"):
                self._parse_real(program)
            elif token.kind == "scalar":
                self._parse_scalars(program)
            elif token.kind == "processors":
                self._parse_processors(program)
            elif token.kind == "template":
                self._parse_template(program)
            elif token.kind == "align":
                self._parse_align(program)
            elif token.kind == "distribute":
                self._parse_distribute(program)
            else:
                break
            self.end_of_statement()
        # Procedures, or bare statements forming 'main'.
        while self.peek().kind == "procedure":
            self.next()
            proc_name = self.expect("name").text
            self.end_of_statement()
            body = self._parse_statements(("end",))
            self.expect("end")
            self.end_of_statement()
            program.procedures.append(Procedure(proc_name, body))
        if self.peek().kind != "end":
            body = self._parse_statements(("end",))
            program.procedures.insert(0, Procedure("main", body))
        self.expect("end")
        self.skip_newlines()
        self.expect("eof")
        if not program.procedures:
            program.procedures.append(Procedure("main", []))
        return program

    # -- declarations -------------------------------------------------------------

    def _parse_parameters(self, program: Program) -> None:
        self.expect("parameter")
        while True:
            name = self.expect("name").text
            value = None
            if self.accept("="):
                sign = -1 if self.accept("-") else 1
                value = sign * int(self.expect("int").text)
            program.parameters.append(ParameterDecl(name, value))
            if not self.accept(","):
                break

    def _parse_real(self, program: Program) -> None:
        self.next()  # real / integer
        while True:
            name = self.expect("name").text
            if self.peek().kind == "(":
                extents = self._parse_extents()
                program.arrays.append(ArrayDecl(name, extents))
            else:
                program.scalars.append(ScalarDecl(name))
            if not self.accept(","):
                break

    def _parse_scalars(self, program: Program) -> None:
        self.expect("scalar")
        while True:
            program.scalars.append(ScalarDecl(self.expect("name").text))
            if not self.accept(","):
                break

    def _parse_extents(self) -> List[Tuple[Expr, Expr]]:
        self.expect("(")
        extents: List[Tuple[Expr, Expr]] = []
        while True:
            first = self.parse_expr()
            if self.accept(":"):
                second = self.parse_expr()
                extents.append((first, second))
            else:
                extents.append((Num(1), first))
            if not self.accept(","):
                break
        self.expect(")")
        return extents

    def _parse_processors(self, program: Program) -> None:
        self.expect("processors")
        name = self.expect("name").text
        self.expect("(")
        extents = [self.parse_expr()]
        while self.accept(","):
            extents.append(self.parse_expr())
        self.expect(")")
        program.processors.append(ProcessorsDecl(name, extents))

    def _parse_template(self, program: Program) -> None:
        self.expect("template")
        name = self.expect("name").text
        extents = self._parse_extents()
        program.templates.append(TemplateDecl(name, extents))

    def _parse_align(self, program: Program) -> None:
        self.expect("align")
        array = self.expect("name").text
        self.expect("(")
        dummies = [self.expect("name").text]
        while self.accept(","):
            dummies.append(self.expect("name").text)
        self.expect(")")
        self.expect("with")
        template = self.expect("name").text
        self.expect("(")
        targets: List[Optional[Expr]] = []
        while True:
            if self.accept("*"):
                targets.append(None)
            else:
                targets.append(self.parse_expr())
            if not self.accept(","):
                break
        self.expect(")")
        program.aligns.append(AlignDecl(array, dummies, template, targets))

    def _parse_distribute(self, program: Program) -> None:
        self.expect("distribute")
        template = self.expect("name").text
        self.expect("(")
        formats: List[DistFormat] = []
        while True:
            if self.accept("*"):
                formats.append(DistFormat("*"))
            elif self.accept("block"):
                formats.append(DistFormat("block"))
            elif self.accept("cyclic"):
                block_size = None
                if self.accept("("):
                    block_size = self.parse_expr()
                    self.expect(")")
                formats.append(DistFormat("cyclic", block_size))
            else:
                token = self.peek()
                raise LangParseError(
                    f"line {token.line}: bad distribution format "
                    f"{token.text!r}"
                )
            if not self.accept(","):
                break
        self.expect(")")
        self.expect("onto")
        processors = self.expect("name").text
        program.distributes.append(
            DistributeDecl(template, formats, processors)
        )

    # -- statements ------------------------------------------------------------------

    def _parse_statements(self, stop_kinds: Tuple[str, ...]) -> List[Stmt]:
        body: List[Stmt] = []
        pending_cp: Optional[ComputationPartitioning] = None
        self.skip_newlines()
        while self.peek().kind not in stop_kinds + ("eof", "else"):
            token = self.peek()
            if token.kind == "on_home":
                pending_cp = self._parse_on_home()
                continue
            stmt = self._parse_statement()
            if pending_cp is not None:
                if isinstance(stmt, Assign):
                    stmt.cp = pending_cp
                else:
                    raise LangParseError(
                        f"line {token.line}: on_home must precede an "
                        f"assignment"
                    )
                pending_cp = None
            body.append(stmt)
            self.skip_newlines()
        if pending_cp is not None:
            raise LangParseError("dangling on_home directive")
        return body

    def _parse_on_home(self) -> ComputationPartitioning:
        self.expect("on_home")
        terms = [OnHomeTerm(self._parse_array_ref())]
        while self.accept("union"):
            terms.append(OnHomeTerm(self._parse_array_ref()))
        self.end_of_statement()
        return ComputationPartitioning(tuple(terms))

    def _parse_array_ref(self) -> ArrayRef:
        name = self.expect("name").text
        self.expect("(")
        subs = [self.parse_expr()]
        while self.accept(","):
            subs.append(self.parse_expr())
        self.expect(")")
        return ArrayRef(name, tuple(subs))

    def _parse_statement(self) -> Stmt:
        token = self.peek()
        if token.kind == "do":
            return self._parse_do()
        if token.kind == "if":
            return self._parse_if()
        if token.kind == "call":
            self.next()
            name = self.expect("name").text
            self.end_of_statement()
            return CallStmt(name)
        return self._parse_assign()

    def _parse_do(self) -> Do:
        self.expect("do")
        var = self.expect("name").text
        self.expect("=")
        lower = self.parse_expr()
        self.expect(",")
        upper = self.parse_expr()
        step: Expr = Num(1)
        if self.accept(","):
            step = self.parse_expr()
        self.end_of_statement()
        body = self._parse_statements(("end", "enddo"))
        if not self.accept("enddo"):
            self.expect("end")
            self.expect("do")
        self.end_of_statement()
        return Do(var, lower, upper, step, body)

    def _parse_if(self) -> If:
        self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        self.expect("then")
        self.end_of_statement()
        then_body = self._parse_statements(("end", "endif", "else"))
        else_body: List[Stmt] = []
        if self.accept("else"):
            self.end_of_statement()
            else_body = self._parse_statements(("end", "endif"))
        if not self.accept("endif"):
            self.expect("end")
            self.expect("if")
        self.end_of_statement()
        return If(cond, then_body, else_body)

    def _parse_assign(self) -> Assign:
        name = self.expect("name").text
        lhs: Expr
        if self.peek().kind == "(":
            self.index -= 1
            lhs = self._parse_array_ref()
        else:
            lhs = Name(name)
        self.expect("=")
        rhs = self.parse_expr()
        self.end_of_statement()
        return Assign(lhs, rhs)

    # -- expressions -------------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        token = self.peek()
        if token.kind in ("<", "<=", ">", ">=", "==", "/="):
            op = self.next().kind
            right = self._parse_additive()
            return BinOp(op, left, right)
        return left

    def _parse_additive(self) -> Expr:
        expr = self._parse_multiplicative()
        while self.peek().kind in ("+", "-"):
            op = self.next().kind
            right = self._parse_multiplicative()
            expr = BinOp(op, expr, right)
        return expr

    def _parse_multiplicative(self) -> Expr:
        expr = self._parse_unary()
        while self.peek().kind in ("*", "/"):
            op = self.next().kind
            right = self._parse_unary()
            expr = BinOp(op, expr, right)
        return expr

    def _parse_unary(self) -> Expr:
        if self.accept("-"):
            return UnOp("-", self._parse_unary())
        if self.accept("+"):
            return self._parse_unary()
        return self._parse_power()

    def _parse_power(self) -> Expr:
        base = self._parse_primary()
        if self.peek().kind == "**":
            self.next()
            exponent = self._parse_unary()
            return BinOp("**", base, exponent)
        return base

    def _parse_primary(self) -> Expr:
        token = self.next()
        if token.kind == "int":
            return Num(int(token.text))
        if token.kind == "float":
            return Num(float(token.text.replace("d", "e").replace("D", "e")))
        if token.kind == "(":
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if token.kind == "name":
            if self.peek().kind == "(":
                self.next()
                args = [self.parse_expr()]
                while self.accept(","):
                    args.append(self.parse_expr())
                self.expect(")")
                if token.text.lower() in _INTRINSICS:
                    return Call(token.text.lower(), tuple(args))
                return ArrayRef(token.text, tuple(args))
            return Name(token.text)
        raise LangParseError(
            f"line {token.line}: unexpected token {token.text!r}"
        )


def parse_program(source: str) -> Program:
    """Parse mini-HPF source text into a :class:`Program`."""
    return Parser(source).parse_program()
