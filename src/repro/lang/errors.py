"""Errors raised by the mini-HPF frontend."""


class LangError(Exception):
    """Base class for frontend errors."""


class LangParseError(LangError):
    """Source text could not be parsed."""


class SemanticError(LangError):
    """The program is structurally invalid (unknown names, rank errors...)."""


class NonAffineSubscriptError(LangError):
    """A subscript is not affine in the loop indices and parameters."""
