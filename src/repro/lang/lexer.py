"""Tokenizer for the mini-HPF language.

Line-oriented (statements end at newline), Fortran-flavoured: ``!`` starts a
comment, keywords are lowercase, relational operators use symbols
(``< <= > >= == /=``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from .errors import LangParseError

_TOKEN_RE = re.compile(
    r"(?P<float>\d+\.\d*(?:[eEdD][-+]?\d+)?|\.\d+(?:[eEdD][-+]?\d+)?"
    r"|\d+[eEdD][-+]?\d+)"
    r"|(?P<int>\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>\*\*|<=|>=|==|/=|[-+*/=<>(),:])"
    r"|(?P<ws>[ \t]+)"
    r"|(?P<comment>![^\n]*)"
    r"|(?P<newline>\n)"
)

KEYWORDS = {
    "program", "end", "do", "if", "then", "else", "endif", "enddo",
    "parameter", "real", "integer", "scalar", "processors", "template",
    "align", "with", "distribute", "onto", "on_home", "union",
    "procedure", "call", "block", "cyclic",
}


@dataclass(frozen=True)
class Token:
    kind: str  # 'int', 'float', 'name', keyword, operator, 'newline', 'eof'
    text: str
    line: int


def tokenize(source: str) -> List[Token]:
    """Tokenize; raises :class:`LangParseError` on illegal characters."""
    tokens: List[Token] = []
    line = 1
    pos = 0
    if not source.endswith("\n"):
        source += "\n"
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise LangParseError(
                f"line {line}: unexpected character {source[pos]!r}"
            )
        pos = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind in ("ws", "comment"):
            continue
        if kind == "newline":
            if tokens and tokens[-1].kind != "newline":
                tokens.append(Token("newline", "\n", line))
            line += 1
            continue
        if kind == "name":
            lowered = text.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(lowered, text, line))
            else:
                tokens.append(Token("name", text, line))
        elif kind == "op":
            tokens.append(Token(text, text, line))
        else:
            tokens.append(Token(kind, text, line))
    tokens.append(Token("eof", "", line))
    return tokens
