"""Linear (affine) integer expressions over named variables.

A :class:`LinExpr` is an immutable mapping ``{var_name: coeff}`` plus an
integer constant.  Variables are plain strings; the distinction between tuple
variables, existential (wildcard) variables and symbolic constants is made by
the enclosing conjunct/set, not by the expression itself.

Coefficients are Python ints, so expressions are exact at any magnitude.
Attempting to multiply two expressions that both contain variables raises
:class:`~repro.isets.errors.NonAffineError` — the decidability boundary of
the whole framework (paper, Section 4).

Construction is the single hottest code path of the compiler (tens of
millions of instances per cold compile), so the internals are tuned: the
public constructor takes a ``dict`` fast path (the ``typing.Mapping``
instance check used to cost more than the arithmetic itself), arithmetic
goes through the trusted :meth:`_raw` constructor that skips re-cleaning,
and both the hash and the sorted term tuple are computed lazily and cached.
"""

from __future__ import annotations

import math
from collections.abc import Mapping as _AbcMapping
from typing import Dict, Iterable, Mapping, Tuple, Union

from .errors import NonAffineError

ExprLike = Union["LinExpr", int, str]


def _as_expr(value: ExprLike) -> "LinExpr":
    """Coerce an int (constant) or str (variable) to a :class:`LinExpr`."""
    if isinstance(value, LinExpr):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("cannot coerce bool to LinExpr")
    if isinstance(value, int):
        return LinExpr._raw({}, value)
    if isinstance(value, str):
        return LinExpr._raw({value: 1}, 0)
    raise TypeError(f"cannot coerce {value!r} to LinExpr")


class LinExpr:
    """An affine integer expression ``sum(coeff_i * var_i) + const``."""

    __slots__ = ("_coeffs", "_const", "_hash", "_terms")

    def __init__(self, coeffs: Mapping[str, int] = (), const: int = 0):
        cleaned: Dict[str, int] = {}
        if type(coeffs) is dict:
            items = coeffs.items()
        elif isinstance(coeffs, _AbcMapping):
            items = coeffs.items()
        else:
            items = coeffs
        for name, coeff in items:
            if coeff:
                cleaned[name] = cleaned.get(name, 0) + coeff
                if cleaned[name] == 0:
                    del cleaned[name]
        self._coeffs: Dict[str, int] = cleaned
        self._const = const
        self._hash = None
        self._terms = None

    @classmethod
    def _raw(cls, coeffs: Dict[str, int], const: int) -> "LinExpr":
        """Trusted constructor: ``coeffs`` must be a zero-free dict the
        caller relinquishes ownership of."""
        self = object.__new__(cls)
        self._coeffs = coeffs
        self._const = const
        self._hash = None
        self._terms = None
        return self

    # -- pickling ----------------------------------------------------------
    # The cached hash depends on the per-process string hash seed, so it
    # must never travel inside pickled compile artifacts.

    def __getstate__(self):
        return (self._coeffs, self._const)

    def __setstate__(self, state):
        self._coeffs, self._const = state
        self._hash = None
        self._terms = None

    # -- constructors ------------------------------------------------------

    @staticmethod
    def var(name: str) -> "LinExpr":
        """The expression consisting of a single variable."""
        return LinExpr._raw({name: 1}, 0)

    @staticmethod
    def const(value: int) -> "LinExpr":
        """A constant expression."""
        return LinExpr._raw({}, value)

    # -- accessors ---------------------------------------------------------

    @property
    def constant(self) -> int:
        return self._const

    def coeff(self, name: str) -> int:
        """Coefficient of ``name`` (0 if absent)."""
        return self._coeffs.get(name, 0)

    def variables(self) -> Tuple[str, ...]:
        """Variable names with nonzero coefficient, sorted."""
        return tuple(name for name, _coeff in self.terms())

    def terms(self) -> Tuple[Tuple[str, int], ...]:
        """``(var, coeff)`` pairs in sorted order (cached)."""
        cached = self._terms
        if cached is None:
            coeffs = self._coeffs
            cached = self._terms = tuple(
                (name, coeffs[name]) for name in sorted(coeffs)
            )
        return cached

    def is_constant(self) -> bool:
        return not self._coeffs

    def content(self) -> int:
        """GCD of the variable coefficients (0 for constant expressions)."""
        g = 0
        for coeff in self._coeffs.values():
            g = math.gcd(g, abs(coeff))
        return g

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: ExprLike) -> "LinExpr":
        other = _as_expr(other)
        coeffs = dict(self._coeffs)
        get = coeffs.get
        for name, coeff in other._coeffs.items():
            total = get(name, 0) + coeff
            if total:
                coeffs[name] = total
            elif name in coeffs:
                del coeffs[name]
        return LinExpr._raw(coeffs, self._const + other._const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr._raw(
            {n: -c for n, c in self._coeffs.items()}, -self._const
        )

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self + (-_as_expr(other))

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return _as_expr(other) + (-self)

    def __mul__(self, other: ExprLike) -> "LinExpr":
        other = _as_expr(other)
        if not other.is_constant() and not self.is_constant():
            raise NonAffineError(
                f"product of two non-constant expressions: "
                f"({self}) * ({other})"
            )
        if other.is_constant():
            return self.scaled(other._const)
        return other * self

    __rmul__ = __mul__

    def scaled(self, factor: int) -> "LinExpr":
        """Multiply every coefficient and the constant by ``factor``."""
        if factor == 0:
            return LinExpr._raw({}, 0)
        return LinExpr._raw(
            {n: c * factor for n, c in self._coeffs.items()},
            self._const * factor,
        )

    def reduced_mod(self, modulus: int) -> "LinExpr":
        """Canonical representative of this expression modulo ``modulus``:
        every coefficient and the constant reduced into ``[0, modulus)``.

        Since ``(c mod k)·x ≡ c·x (mod k)``, the result is congruent to
        ``self`` for every integer assignment — the right normal form for
        stride-alignment bases and divisibility guards, where only the
        residue class is meaningful.  Emitting this form makes generated
        code independent of which congruent representative the solver
        happened to produce (e.g. of the global fresh-name counter state).
        """
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        coeffs = {}
        for name, coeff in self._coeffs.items():
            residue = coeff % modulus
            if residue:
                coeffs[name] = residue
        return LinExpr._raw(coeffs, self._const % modulus)

    def exact_div(self, divisor: int) -> "LinExpr":
        """Divide by ``divisor``; every coefficient must be divisible."""
        if divisor == 0:
            raise ZeroDivisionError("exact_div by zero")
        coeffs = {}
        for name, coeff in self._coeffs.items():
            if coeff % divisor:
                raise ValueError(f"{self} not divisible by {divisor}")
            coeffs[name] = coeff // divisor
        if self._const % divisor:
            raise ValueError(f"{self} not divisible by {divisor}")
        return LinExpr._raw(coeffs, self._const // divisor)

    # -- substitution & renaming -------------------------------------------

    def substitute(self, name: str, replacement: ExprLike) -> "LinExpr":
        """Replace ``name`` by ``replacement`` (an affine expression)."""
        coeff = self._coeffs.get(name, 0)
        if coeff == 0:
            return self
        rest = {n: c for n, c in self._coeffs.items() if n != name}
        return LinExpr._raw(rest, self._const) + _as_expr(
            replacement
        ).scaled(coeff)

    def rename(self, mapping: Mapping[str, str]) -> "LinExpr":
        """Rename variables according to ``mapping`` (missing names kept)."""
        coeffs: Dict[str, int] = {}
        get = coeffs.get
        for name, coeff in self._coeffs.items():
            new = mapping.get(name, name)
            total = get(new, 0) + coeff
            if total:
                coeffs[new] = total
            elif new in coeffs:
                del coeffs[new]
        return LinExpr._raw(coeffs, self._const)

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under a full assignment of the variables."""
        total = self._const
        for name, coeff in self._coeffs.items():
            total += coeff * env[name]
        return total

    def partial_evaluate(self, env: Mapping[str, int]) -> "LinExpr":
        """Substitute the variables present in ``env``; others remain."""
        const = self._const
        coeffs: Dict[str, int] = {}
        for name, coeff in self._coeffs.items():
            if name in env:
                const += coeff * env[name]
            else:
                coeffs[name] = coeff
        return LinExpr._raw(coeffs, const)

    # -- comparison / hashing -----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self._coeffs == other._coeffs and self._const == other._const

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash((frozenset(self._coeffs.items()),
                                   self._const))
        return h

    def __bool__(self) -> bool:
        return bool(self._coeffs) or self._const != 0

    # -- printing -------------------------------------------------------------

    def __str__(self) -> str:
        parts = []
        for name, coeff in self.terms():
            if coeff == 1:
                term = name
            elif coeff == -1:
                term = f"-{name}"
            else:
                term = f"{coeff}{name}"
            if parts and not term.startswith("-"):
                parts.append(f"+ {term}")
            elif parts:
                parts.append(f"- {term[1:]}")
            else:
                parts.append(term)
        if self._const or not parts:
            if parts:
                sign = "+" if self._const >= 0 else "-"
                parts.append(f"{sign} {abs(self._const)}")
            else:
                parts.append(str(self._const))
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"LinExpr({self})"


def lin_sum(exprs: Iterable[ExprLike]) -> LinExpr:
    """Sum an iterable of expression-likes."""
    total = LinExpr.const(0)
    for expr in exprs:
        total = total + expr
    return total
