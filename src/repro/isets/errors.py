"""Exceptions raised by the integer-set library.

The error hierarchy mirrors the decidability boundary discussed in Section 4
of the paper: affine constraints with integer constant coefficients are
representable; products of symbolic terms are not, and attempting to build
one raises :class:`NonAffineError` so callers (the HPF layout layer) can fall
back to the virtual-processor model instead of silently approximating.
"""


class IntegerSetError(Exception):
    """Base class for all errors raised by :mod:`repro.isets`."""


class NonAffineError(IntegerSetError):
    """A constraint would require a product of two symbolic quantities.

    This is the fundamental limitation of Presburger arithmetic that the
    paper's virtual-processor extension (Section 4) exists to work around.
    """


class SpaceMismatchError(IntegerSetError):
    """Two objects with incompatible tuple spaces were combined."""


class InexactOperationError(IntegerSetError):
    """An operation could not be performed exactly.

    Raised (rather than over-approximating) when, e.g., a set difference
    would require negating an existentially quantified conjunct that is not
    in stride form.
    """


class CodegenError(IntegerSetError):
    """Loop code could not be generated from a set."""


class ParseError(IntegerSetError):
    """A set/map expression in Omega-like notation could not be parsed."""
