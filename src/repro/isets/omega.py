"""Core Omega-test algorithms: equality solving, exact projection, emptiness.

This module implements, over :class:`~repro.isets.conjunct.Conjunct`:

* **Equality elimination** in the style of Pugh's Omega test — unit-coefficient
  substitution plus the symmetric-modulus substitution that shrinks
  coefficients until a wildcard can be substituted away exactly.
* **Fourier–Motzkin elimination with integer exactness**: the real shadow is
  used when exact (one of each bound pair has a unit coefficient); otherwise
  the result is the *dark shadow* unioned with the standard *splinter*
  equalities, which is Pugh's exact integer projection.
* **Emptiness testing** by exact elimination of all variables.

These are the algorithms the paper relies on via the Omega library
(references [17] and [25] in the paper).
"""

from __future__ import annotations

import itertools
import os
from typing import Dict, List, Optional, Sequence, Set, Tuple

from time import perf_counter as _clock

from ..cache.manager import caches
from . import parallel
from .bounds import (
    interval_implied,
    interval_width,
    presolve_conjunct,
    presolve_enabled,
)
from .constraint import EQ, GEQ, Constraint, ceil_div, floor_div
from .conjunct import Conjunct
from .errors import InexactOperationError
from .linexpr import LinExpr
from .profile import active_profiler, record_event
from .space import fresh_name

# Safety valve: exact projection of pathological conjuncts can splinter; the
# paper reports such cases do not arise in practice for compiler-generated
# sets, and we keep a generous cap so a genuine pathology fails loudly.
MAX_SPLINTERS = 512
_MAX_EQ_ITERATIONS = 200

# Memoization of the pure conjunct-level operations (see repro.cache).
# Emptiness is keyed alpha-canonically (a bool cannot observe wildcard
# names); every other cache is keyed on the *exact* structure — constraint
# order and wildcard names included — so a hit replays the byte-identical
# result a fresh computation would produce.
_EMPTINESS = caches.register("isets.emptiness", maxsize=200_000)
_NORMALIZE = caches.register("isets.normalize", maxsize=100_000)
_REDUNDANCY = caches.register("isets.redundancy", maxsize=100_000)
_PROJECTION = caches.register("isets.projection", maxsize=50_000)
# Witness hints for the corner probe in ``_quick_feasibility``: keyed on
# the *shape* of the multi-variable constraint system (coefficient
# patterns, constants abstracted away), valued with the last corner that
# certified nonemptiness.  Entries are hints, not answers — every reuse
# is re-verified against the actual constraints — so unlike the memo
# caches above a stale or colliding entry can cost a probe, never
# soundness.  LRU-capped (``REPRO_WITNESS_CACHE_SIZE``, default 8192);
# stores/evictions surface as ``witness.stored`` / ``witness.evicted``
# profiler events and in the ``isets.witness`` row of the service
# ``/stats`` cache aggregate.


def _witness_cache_size() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_WITNESS_CACHE_SIZE", "8192")))
    except ValueError:
        return 8_192


_WITNESS = caches.register("isets.witness", maxsize=_witness_cache_size())


class _ExactKey:
    """Order-exact memo key with a cached hash.

    A raw ``(constraints, wildcards)`` tuple re-hashes every constraint on
    every dict operation (tuples do not cache their hash); compile
    workloads do hundreds of thousands of memo lookups against conjuncts
    with dozens of constraints, so the re-hash showed up as millions of
    ``Constraint.__hash__`` calls in profiles.  The wrapper hashes once
    and is cached on the conjunct itself.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: tuple):
        self.value = value
        self._hash = hash(value)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return self is other or (
            type(other) is _ExactKey and self.value == other.value
        )


def _exact_key(conjunct: Conjunct) -> _ExactKey:
    try:
        return conjunct._ekey
    except AttributeError:
        key = _ExactKey((conjunct.constraints, conjunct.wildcards))
        conjunct._ekey = key
        return key


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------

def normalize(conjunct: Conjunct) -> Optional[Conjunct]:
    """Drop tautologies and duplicates; detect structural falsity.

    Also pairs ``e >= 0`` with ``-e >= 0`` into the equality ``e == 0``, and
    detects single-variable contradictions (``x >= a`` with ``x <= a - 1``).
    Returns ``None`` when the conjunct is unsatisfiable on structural
    grounds.
    """
    profiler = active_profiler()
    if profiler is None:
        if not caches.enabled:
            return _normalize_uncached(conjunct)
        return _NORMALIZE.memoize(
            _exact_key(conjunct), lambda: _normalize_uncached(conjunct)
        )
    start = _clock()
    if not caches.enabled:
        result = _normalize_uncached(conjunct)
    else:
        result = _NORMALIZE.memoize(
            _exact_key(conjunct), lambda: _normalize_uncached(conjunct)
        )
    profiler.record(
        "normalize",
        _clock() - start,
        len(conjunct.constraints),
        0 if result is None else len(result.constraints),
    )
    return result


def _normalize_uncached(conjunct: Conjunct) -> Optional[Conjunct]:
    seen: Set[Constraint] = set()
    result: List[Constraint] = []
    for constraint in conjunct.constraints:
        false, tautology, _, _ = constraint.classify()
        if false:
            return None
        if tautology or constraint in seen:
            continue
        seen.add(constraint)
        result.append(constraint)

    # Pair e >= 0 with -e - k >= 0 (k >= 0): implies -k >= e >= 0.  The
    # partner scan is indexed by variable part (the per-pair LinExpr
    # construction used to be quadratic and dominated normalize).
    by_part: Dict[tuple, List[int]] = {}
    geq_info: List[Optional[Tuple[tuple, tuple]]] = []
    for index, constraint in enumerate(result):
        if constraint.kind != GEQ:
            geq_info.append(None)
            continue
        terms = constraint.expr.terms()
        negated = tuple((n, -c) for n, c in terms)
        geq_info.append((terms, negated))
        by_part.setdefault(terms, []).append(index)

    upgraded: List[Constraint] = []
    consumed: Set[int] = set()
    for index, constraint in enumerate(result):
        info = geq_info[index]
        if info is None or index in consumed:
            continue
        # First (in result order) non-consumed constraint -e + c >= 0 with
        # the negated variable part — same partner the linear scan found.
        partner = None
        for candidate in by_part.get(info[1], ()):
            if candidate != index and candidate not in consumed:
                partner = candidate
                break
        if partner is None:
            continue
        # constraint: v + c1 >= 0; partner: -v + c2 >= 0
        # -c1 <= v <= c2  (v is the variable part)
        c1 = constraint.expr.constant
        c2 = result[partner].expr.constant
        if -c1 > c2:
            return None
        if -c1 == c2:
            consumed.add(index)
            consumed.add(partner)
            upgraded.append(Constraint(constraint.expr, EQ))

    final = [
        c for i, c in enumerate(result) if i not in consumed
    ] + upgraded
    # Deduplicate again (upgrades can collide with existing equalities).
    deduped: List[Constraint] = []
    seen = set()
    for constraint in final:
        false, tautology, _, _ = constraint.classify()
        if false:
            return None
        if tautology or constraint in seen:
            continue
        seen.add(constraint)
        deduped.append(constraint)
    used_wildcards = tuple(
        w
        for w in conjunct.wildcards
        if any(c.coeff(w) for c in deduped)
    )
    return Conjunct(deduped, used_wildcards)


# ---------------------------------------------------------------------------
# Equality elimination
# ---------------------------------------------------------------------------

def _symmetric_mod(a: int, m: int) -> int:
    """Pugh's mod-hat: residue of ``a`` modulo ``m`` in ``(-m/2, m/2]``."""
    r = a % m
    if r > m // 2:
        r -= m
    return r


def _resolving_vars(conjunct: Conjunct, equality: Constraint) -> List[str]:
    """Unit-coefficient variables of ``equality`` occurring in no other
    constraint — the equality merely *defines* such a variable."""
    found = []
    for var in equality.variables():
        if abs(equality.coeff(var)) != 1:
            continue
        elsewhere = any(
            c is not equality and c.coeff(var)
            for c in conjunct.constraints
        )
        if not elsewhere:
            found.append(var)
    return found


def solve_equalities(
    conjunct: Conjunct, protected: Set[str]
) -> Optional[Conjunct]:
    """Reduce the equality system exactly (Omega-test equality phase).

    * A unit-coefficient **wildcard** is substituted away entirely.
    * A unit-coefficient **protected** variable occurring in other
      constraints is substituted into those constraints; its defining
      equality is kept (in solved form).
    * Otherwise Pugh's symmetric-modulus substitution shrinks coefficients
      until one of the above applies.

    Returns ``None`` if an infeasibility is detected.
    """
    current = normalize(conjunct)
    for _ in range(_MAX_EQ_ITERATIONS):
        if current is None:
            return None
        action = _pick_equality_action(current, protected)
        if action is None:
            return current
        kind, equality, var = action
        if kind == "drop":
            # exists(var): var = expr ∧ rest  ≡  rest  when var ∉ rest.
            remaining = tuple(
                c for c in current.constraints if c is not equality
            )
            current = normalize(
                Conjunct(remaining, current.wildcards).drop_wildcard(var)
            )
        elif kind == "substitute":
            coeff = equality.coeff(var)
            rest = equality.expr.substitute(var, 0)
            replacement = rest.scaled(-1) if coeff == 1 else rest
            current = normalize(current.substitute(var, replacement))
        elif kind == "define":
            coeff = equality.coeff(var)
            rest = equality.expr.substitute(var, 0)
            replacement = rest.scaled(-1) if coeff == 1 else rest
            others = tuple(
                c.substitute(var, replacement) if c is not equality else c
                for c in current.constraints
            )
            current = normalize(Conjunct(others, current.wildcards))
        else:
            current = _mod_reduce(current, equality, var)
            current = normalize(current) if current is not None else None
    raise InexactOperationError(
        "equality elimination did not terminate within the iteration cap"
    )


def _pick_equality_action(
    conjunct: Conjunct, protected: Set[str]
) -> Optional[Tuple[str, Constraint, str]]:
    """Choose the next equality-processing step, or None at fixpoint."""
    mod_candidate: Optional[Tuple[str, Constraint, str]] = None
    mod_coeff = None
    define_candidate: Optional[Tuple[str, Constraint, str]] = None
    for equality in conjunct.equalities():
        # An unprotected unit variable substitutes away outright — strictly
        # reduces the variable count, so it is always safe progress, even
        # when the equality is also in resolved (definition) form.
        for var in equality.variables():
            if var not in protected and abs(equality.coeff(var)) == 1:
                return ("substitute", equality, var)
        resolving = _resolving_vars(conjunct, equality)
        if resolving:
            droppable = [v for v in resolving if v not in protected]
            if droppable:
                return ("drop", equality, droppable[0])
            continue
        for var in equality.variables():
            coeff = abs(equality.coeff(var))
            if var not in protected:
                if mod_coeff is None or coeff < mod_coeff:
                    mod_candidate = ("modreduce", equality, var)
                    mod_coeff = coeff
            elif coeff == 1 and define_candidate is None:
                define_candidate = ("define", equality, var)
    if define_candidate is not None:
        return define_candidate
    return mod_candidate


def _mod_reduce(
    conjunct: Conjunct, equality: Constraint, var: str
) -> Optional[Conjunct]:
    """Pugh's symmetric-modulus substitution shrinking coefficients.

    Rewrites ``var`` in terms of a fresh wildcard ``sigma`` such that the
    system is equisatisfiable and the coefficient magnitudes in the equality
    strictly decrease, guaranteeing termination of ``solve_equalities``.
    """
    a_k = equality.coeff(var)
    expr = equality.expr if a_k > 0 else -equality.expr
    a_k = abs(a_k)
    m = a_k + 1
    sigma = fresh_name("s")
    # var = sum(mod-hat coeffs) x_i + mod-hat const - m*sigma  (i != var),
    # derived from the equality taken modulo m (mod-hat(a_k, m) == -1).
    replacement = LinExpr({sigma: -m}, _symmetric_mod(expr.constant, m))
    for name, coeff in expr.terms():
        if name == var:
            continue
        replacement = replacement + LinExpr(
            {name: _symmetric_mod(coeff, m)}, 0
        )
    updated = conjunct.substitute(var, replacement)
    return updated.with_wildcards([sigma])


# ---------------------------------------------------------------------------
# Fourier–Motzkin with integer exactness
# ---------------------------------------------------------------------------

def eliminate_variable(
    conjunct: Conjunct,
    var: str,
    approximate: bool = False,
) -> List[Conjunct]:
    """Exactly project ``var`` out of ``conjunct`` (a union may result).

    ``var`` is treated as existential.  When ``approximate`` is true the real
    shadow is returned even when inexact (an over-approximation), which some
    callers (bound computation for code generation, where guards re-check
    membership) can tolerate.
    """
    prepared = solve_equalities(
        conjunct,
        protected=set(conjunct.variables()) - {var} - set(conjunct.wildcards),
    )
    if prepared is None:
        return []
    if not prepared.uses(var):
        return [prepared.drop_wildcard(var)]
    # ``var`` may still sit in an equality (with |coeff| > 1); try to force
    # elimination treating var as the only unprotected variable.
    if any(eq.coeff(var) for eq in prepared.equalities()):
        prepared = solve_equalities(
            prepared, protected=set(prepared.variables()) - {var}
        )
        if prepared is None:
            return []
        if not prepared.uses(var):
            return [prepared.drop_wildcard(var)]
        if any(eq.coeff(var) for eq in prepared.equalities()):
            # Resolved stride form (e.g. ``i = 2*var + 1``): var cannot be
            # eliminated from the representation; keeping it existential is
            # semantically the projection.
            if var in prepared.wildcards:
                return [prepared]
            return [prepared.with_wildcards([var])]

    # Presolve pinning: when interval propagation proves the system forces
    # ``var == v``, substitution *is* the exact projection —
    # ``exists var: C  ==  C[var := v]`` — with none of the quadratic
    # Fourier–Motzkin fill (and no splinters, even for non-unit
    # coefficients).  This is a representation-carrying rewrite: the
    # substituted constraint list generally differs from the
    # shadow-combination list, so it sits behind the byte-identity gate in
    # ``scripts/cache_roundtrip.py`` (DESIGN §14) and behind the presolve
    # kill switch.
    if presolve_enabled():
        pre = presolve_conjunct(prepared)
        if not pre.empty:
            value = pre.pinned.get(var)
            if value is not None:
                record_event("presolve.pin_eliminated")
                pinned = normalize(
                    prepared.substitute(var, LinExpr((), value))
                )
                if pinned is None:
                    return []
                return [pinned.drop_wildcard(var)]

    survivors: List[Constraint] = []
    lowers: List[Tuple[int, LinExpr]] = []  # b*var >= beta
    uppers: List[Tuple[int, LinExpr]] = []  # a*var <= alpha
    for constraint in prepared.constraints:
        coeff = constraint.coeff(var)
        if coeff == 0:
            survivors.append(constraint)
            continue
        assert not constraint.is_equality, "equalities handled above"
        rest = constraint.expr.substitute(var, 0)
        if coeff > 0:
            lowers.append((coeff, -rest))
        else:
            uppers.append((-coeff, rest))

    remaining_wildcards = tuple(
        w for w in prepared.wildcards if w != var
    )
    if not lowers or not uppers:
        result = normalize(Conjunct(survivors, remaining_wildcards))
        return [result] if result is not None else []

    exact = all(b == 1 or a == 1 for b, _ in lowers for a, _ in uppers)
    shadows: List[Constraint] = []
    dark_shadows: List[Constraint] = []
    for (b, beta), (a, alpha) in itertools.product(lowers, uppers):
        real = alpha.scaled(b) - beta.scaled(a)
        shadows.append(Constraint(real, GEQ))
        dark_shadows.append(Constraint(real - (a - 1) * (b - 1), GEQ))

    if exact or approximate:
        result = normalize(Conjunct(survivors + shadows, remaining_wildcards))
        return [result] if result is not None else []

    results: List[Conjunct] = []
    dark = normalize(
        Conjunct(survivors + dark_shadows, remaining_wildcards)
    )
    if dark is not None:
        results.append(dark)
    # Splinters: if an integer point lies in the real but not the dark
    # shadow, then for some lower bound b*var >= beta we have
    # b*var <= beta + (a_max*b - a_max - b) / a_max  (Pugh 1992).
    a_max = max(a for a, _ in uppers)
    total = 0
    for b, beta in lowers:
        top = (a_max * b - a_max - b) // a_max
        for i in range(top + 1):
            total += 1
            if total > MAX_SPLINTERS:
                raise InexactOperationError(
                    f"projection of {var} exceeded {MAX_SPLINTERS} splinters"
                )
            pinned = prepared.with_constraints(
                [Constraint(LinExpr({var: b}) - beta - i, EQ)]
            )
            results.extend(eliminate_variable(pinned, var))
    return results


def project_out(
    conjunct: Conjunct,
    names: Sequence[str],
    approximate: bool = False,
    order: str = "given",
) -> List[Conjunct]:
    """Project several variables out of a conjunct, exactly; memoized.

    ``order="given"`` eliminates in the caller's sequence — deterministic
    and byte-stable, required on every path whose conjuncts can reach
    emitted artifacts.  ``order="least_fill"`` re-picks the cheapest
    variable before each elimination step (minimal Fourier–Motzkin fill);
    the result denotes the same set but may list different constraints, so
    it is only for consumers that observe semantics (emptiness, membership,
    bounds), not representation.
    """
    profiler = active_profiler()
    if profiler is None:
        if not caches.enabled:
            return _project_out_uncached(conjunct, names, approximate, order)
        key = (_exact_key(conjunct), tuple(names), approximate, order)
        cached = _PROJECTION.memoize(
            key,
            lambda: _project_out_uncached(conjunct, names, approximate, order),
        )
        return list(cached)
    start = _clock()
    if not caches.enabled:
        result = _project_out_uncached(conjunct, names, approximate, order)
    else:
        key = (_exact_key(conjunct), tuple(names), approximate, order)
        result = list(_PROJECTION.memoize(
            key,
            lambda: _project_out_uncached(conjunct, names, approximate, order),
        ))
    profiler.record(
        "project_out",
        _clock() - start,
        len(conjunct.constraints),
        len(result),
    )
    return result


def _least_fill_choice(work: List[Conjunct], remaining: List[str]) -> str:
    """Pick the cheapest variable to eliminate next (least-fill ordering).

    Fourier–Motzkin replaces ``lowers × uppers`` bound pairs for the chosen
    variable with their combinations, so eliminating high-fill variables
    first multiplies the constraint count at every later step.  Score each
    candidate by its total fill across the current work list; a variable
    sitting in a unit-coefficient equality is free (substituted away).
    Ties resolve to the earliest name in ``remaining`` — deterministic.
    """
    if len(remaining) == 1:
        return remaining[0]
    best = remaining[0]
    best_score = None
    for name in remaining:
        score = 0
        for item in work:
            lowers = uppers = 0
            free = False
            for constraint in item.constraints:
                coeff = constraint.coeff(name)
                if coeff == 0:
                    continue
                if constraint.is_equality:
                    if abs(coeff) == 1:
                        free = True
                        break
                    lowers += 1
                    uppers += 1
                elif coeff > 0:
                    lowers += 1
                else:
                    uppers += 1
            if not free:
                score += lowers * uppers
        if best_score is None or score < best_score:
            best = name
            best_score = score
    return best


def _project_out_uncached(
    conjunct: Conjunct,
    names: Sequence[str],
    approximate: bool = False,
    order: str = "given",
) -> List[Conjunct]:
    work = [conjunct.with_wildcards(
        [n for n in names if n not in conjunct.wildcards]
    )]
    remaining = list(names)
    while remaining:
        if order == "least_fill":
            name = _least_fill_choice(work, remaining)
            if name != remaining[0]:
                record_event("project_out.least_fill_reorder")
        else:
            name = remaining[0]
        remaining.remove(name)
        next_work: List[Conjunct] = []
        for item in work:
            next_work.extend(eliminate_variable(item, name, approximate))
        work = next_work
    # Eliminating a dim through its stride equality can strand the witness
    # in inequalities only; such wildcards are cheaply FME-eliminable and
    # would otherwise break exact negation downstream.
    cleaned: List[Conjunct] = []
    stack = list(work)
    while stack:
        item = stack.pop()
        stranded = next(
            (
                w
                for w in item.wildcards
                if item.uses(w)
                and not any(
                    c.coeff(w) for c in item.equalities()
                )
            ),
            None,
        )
        if stranded is None:
            cleaned.append(item)
        else:
            stack.extend(eliminate_variable(item, stranded, approximate))
    return cleaned


# ---------------------------------------------------------------------------
# Emptiness
# ---------------------------------------------------------------------------

def _choose_elimination_var(
    conjunct: Conjunct,
    intervals: Optional[Dict[str, Tuple[Optional[int], Optional[int]]]] = None,
) -> str:
    """Pick the variable whose elimination is cheapest (exact first).

    This is least-fill ordering on the emptiness path: a unit equality is
    free, otherwise the ``lowers × uppers`` Fourier–Motzkin fill decides
    (inexact eliminations are penalized since they splinter).  When the
    presolve supplies propagated ``intervals``, equal-fill candidates break
    ties toward the tightest propagated window — eliminating a
    narrow-range variable keeps the shadow systems small and, on the
    splinter path, bounds the splinter count by the window width.
    Emptiness is a boolean, so reordering here can never perturb
    representations.
    """
    best_var = None
    best_score = None
    for var in conjunct.variables():
        lowers = uppers = 0
        exact = True
        in_equality = False
        for constraint in conjunct.constraints:
            coeff = constraint.coeff(var)
            if coeff == 0:
                continue
            if constraint.is_equality:
                in_equality = True
                if abs(coeff) == 1:
                    return var  # unit equality: free elimination
            elif coeff > 0:
                lowers += 1
                exact = exact and coeff == 1
            else:
                uppers += 1
                exact = exact and coeff == -1
        fill = lowers * uppers + (0 if exact or in_equality else 10_000)
        if intervals is None:
            width = None
        else:
            width = interval_width(intervals, var)
        score = (fill, width if width is not None else float("inf"))
        if best_score is None or score < best_score:
            best_var = var
            best_score = score
    assert best_var is not None
    return best_var


def _quick_feasibility(conjunct: Conjunct) -> Optional[bool]:
    """Cheap pre-tests before full omega elimination: ``True`` = provably
    empty, ``False`` = provably nonempty, ``None`` = unknown.

    Combines the GCD test (an equality whose coefficient GCD does not
    divide its constant has no integer solution — surfaced by
    ``Constraint.is_false``) with one round of per-variable interval
    propagation: single-variable constraints pin ``[lo, hi]`` windows, and
    every remaining constraint is bounded by interval arithmetic.  When all
    constraints are single-variable and the windows are consistent, the
    product of the windows contains an integer point, so the conjunct is
    provably *non*-empty without any elimination.

    Sound in both directions; never changes the result of the full test,
    only short-circuits it (emptiness is a boolean, so no representation
    can be perturbed).

    The interval propagation is the presolve engine's
    (:func:`~.bounds.presolve_conjunct`): single-variable constraints seed
    the windows, then fixpoint rounds over the multi-variable constraints
    tighten them (see DESIGN §14).  With presolve disabled
    (``REPRO_PRESOLVE=0``) a single seed-plus-check pass runs instead —
    the pre-presolve behaviour, kept as the A/B baseline for the
    byte-identity gate in ``scripts/cache_roundtrip.py``.
    """
    if presolve_enabled():
        pre = presolve_conjunct(conjunct)
        if pre.rounds:
            record_event("presolve.rounds", pre.rounds)
        if pre.tightened:
            record_event("presolve.tightened", pre.tightened)
        if pre.empty:
            record_event("presolve.empty")
            record_event(
                "fastpath.gcd_empty"
                if pre.reason == "gcd"
                else "fastpath.interval_empty"
            )
            return True
        if pre.pinned:
            record_event("presolve.pinned", len(pre.pinned))
        bounds = pre.intervals
        multi = list(pre.multi)
    else:
        bounds = {}
        multi = []
        for constraint in conjunct.constraints:
            if constraint.is_false():
                record_event("fastpath.gcd_empty")
                return True
            if constraint.is_tautology():
                continue
            terms = constraint.expr.terms()
            if len(terms) != 1:
                multi.append(constraint)
                continue
            (var, coeff), = terms
            const = constraint.expr.constant
            lo, hi = bounds.get(var, (None, None))
            if constraint.kind == EQ:
                # coeff*var + const == 0; construction divides the content
                # out when it divides const, so a remainder means infeasible.
                if const % coeff:
                    record_event("fastpath.gcd_empty")
                    return True
                value = -const // coeff
                if (lo is not None and value < lo) or (
                    hi is not None and value > hi
                ):
                    record_event("fastpath.interval_empty")
                    return True
                bounds[var] = (value, value)
            elif coeff > 0:
                new_lo = ceil_div(-const, coeff)
                if hi is not None and new_lo > hi:
                    record_event("fastpath.interval_empty")
                    return True
                bounds[var] = (
                    new_lo if lo is None else max(lo, new_lo), hi
                )
            else:
                new_hi = floor_div(const, -coeff)
                if lo is not None and new_hi < lo:
                    record_event("fastpath.interval_empty")
                    return True
                bounds[var] = (
                    lo, new_hi if hi is None else min(hi, new_hi)
                )
        for constraint in multi:
            max_val = min_val = constraint.expr.constant
            max_unbounded = min_unbounded = False
            for var, coeff in constraint.expr.terms():
                lo, hi = bounds.get(var, (None, None))
                if coeff > 0:
                    if hi is None:
                        max_unbounded = True
                    else:
                        max_val += coeff * hi
                    if lo is None:
                        min_unbounded = True
                    else:
                        min_val += coeff * lo
                else:
                    if lo is None:
                        max_unbounded = True
                    else:
                        max_val += coeff * lo
                    if hi is None:
                        min_unbounded = True
                    else:
                        min_val += coeff * hi
            if not max_unbounded and max_val < 0:
                record_event("fastpath.interval_empty")
                return True
            if (
                constraint.kind == EQ
                and not min_unbounded
                and min_val > 0
            ):
                record_event("fastpath.interval_empty")
                return True
    if not multi:
        # Independent windows, each nonempty: pick any point per variable.
        record_event("fastpath.interval_nonempty")
        return False
    if not any(c.kind == EQ for c in multi):
        # Witness probe: the lower corner of the interval box satisfies
        # every single-variable constraint by construction; if it happens
        # to satisfy the multi-variable inequalities too, the conjunct is
        # certified nonempty without any elimination.  Systems emitted by
        # the same compiler path recur with identical coefficient shapes
        # and only the constants shifted, so the corner that worked last
        # time is tried first (``_WITNESS``); a cached corner must pass
        # both the interval windows and the multi-variable constraints
        # before it is trusted.
        index: Dict[str, int] = {}
        shape = []
        for constraint in multi:
            row = []
            for var, coeff in constraint.expr.terms():
                slot = index.get(var)
                if slot is None:
                    slot = index[var] = len(index)
                row.append((slot, coeff))
            shape.append(tuple(row))
        shape_key = tuple(shape)
        order = list(index)  # insertion order matches the slot numbers
        if caches.enabled:
            found, cached = _WITNESS.lookup(shape_key)
            if found:
                env = dict(zip(order, cached))
                if all(
                    _in_window(bounds.get(var, (None, None)), value)
                    for var, value in env.items()
                ) and all(c.expr.evaluate(env) >= 0 for c in multi):
                    record_event("fastpath.witness_cache_hit")
                    return False
        env = {}
        for var in order:
            lo, hi = bounds.get(var, (None, None))
            if lo is not None:
                env[var] = lo
            elif hi is not None:
                env[var] = hi
            else:
                env[var] = 0
        if all(c.expr.evaluate(env) >= 0 for c in multi):
            record_event("fastpath.corner_nonempty")
            if caches.enabled:
                evicted = _WITNESS.put(
                    shape_key, tuple(env[var] for var in order)
                )
                record_event("witness.stored")
                if evicted:
                    record_event("witness.evicted", evicted)
            return False
        if _repair_walk(env, bounds, multi):
            record_event("fastpath.repair_nonempty")
            if caches.enabled:
                evicted = _WITNESS.put(
                    shape_key, tuple(env[var] for var in order)
                )
                record_event("witness.stored")
                if evicted:
                    record_event("witness.evicted", evicted)
            return False
    return None


def _repair_walk(
    env: Dict[str, int],
    bounds: Dict[str, Tuple[Optional[int], Optional[int]]],
    multi: Sequence[Constraint],
) -> bool:
    """Min-conflicts walk from the corner point toward a witness.

    Repeatedly takes a violated inequality and moves one of its variables
    inside its interval window just far enough to satisfy it (or to the
    window edge when the full fix does not fit).  Every intermediate point
    respects the windows, so a point satisfying all multi-variable
    constraints is a genuine integer witness — the walk can only certify
    *non*-emptiness, never emptiness, and a step budget bounds the cost on
    systems where it ping-pongs.  Mutates ``env`` in place so the caller
    can cache the witness it finds.

    The budget is a small constant: measured on the benchmark suite every
    walk that succeeds does so within five steps, while walks on actually
    empty systems always exhaust whatever budget they are given — so a
    longer leash only makes the (majority) failure case linearly more
    expensive without rescuing additional witnesses.
    """
    budget = 6
    for _ in range(budget):
        violated = None
        for constraint in multi:
            value = constraint.expr.evaluate(env)
            if value < 0:
                violated = constraint
                deficit = -value
                break
        if violated is None:
            return True
        moved = False
        partial = None
        for var, coeff in violated.expr.terms():
            lo, hi = bounds.get(var, _NO_WINDOW)
            current = env[var]
            if coeff > 0:
                need = current + -(-deficit // coeff)  # ceil
                if hi is None or need <= hi:
                    env[var] = need
                    moved = True
                    break
                if partial is None and hi > current:
                    partial = (var, hi)
            else:
                need = current - -(-deficit // -coeff)
                if lo is None or need >= lo:
                    env[var] = need
                    moved = True
                    break
                if partial is None and lo < current:
                    partial = (var, lo)
        if not moved:
            if partial is None:
                return False
            env[partial[0]] = partial[1]
    return False


_NO_WINDOW: Tuple[Optional[int], Optional[int]] = (None, None)


def _in_window(window: Tuple[Optional[int], Optional[int]],
               value: int) -> bool:
    """``value`` lies inside the (possibly half-open) interval window."""
    lo, hi = window
    if lo is not None and value < lo:
        return False
    return hi is None or value <= hi


def is_empty_conjunct(conjunct: Conjunct) -> bool:
    """Exact integer emptiness test (all variables existential); memoized.

    Keyed on the alpha-canonical :meth:`Conjunct.key` (emptiness is
    invariant under wildcard renaming), LRU-bounded and counted in the
    ``isets.emptiness`` cache — this replaced a module-global dict that
    grew to 200k entries, never evicted, and leaked state across tests.
    """
    profiler = active_profiler()
    if profiler is None:
        if not caches.enabled:
            return _is_empty_conjunct_uncached(conjunct)
        return _EMPTINESS.memoize(
            conjunct.key(), lambda: _is_empty_conjunct_uncached(conjunct)
        )
    start = _clock()
    if not caches.enabled:
        result = _is_empty_conjunct_uncached(conjunct)
    else:
        result = _EMPTINESS.memoize(
            conjunct.key(), lambda: _is_empty_conjunct_uncached(conjunct)
        )
    profiler.record(
        "is_empty_conjunct",
        _clock() - start,
        len(conjunct.constraints),
    )
    return result


def _is_empty_conjunct_uncached(conjunct: Conjunct) -> bool:
    work: List[Conjunct] = [conjunct]
    while work:
        item = work.pop()
        quick = _quick_feasibility(item)
        if quick is not None:
            if quick:
                continue
            return False
        current = solve_equalities(item, protected=set())
        if current is None:
            continue
        # Equality solving tightens the system; re-run the cheap tests
        # before committing to a Fourier–Motzkin elimination round.
        quick = _quick_feasibility(current)
        if quick is not None:
            if quick:
                continue
            return False
        intervals = None
        if presolve_enabled():
            pre = presolve_conjunct(current)
            if pre.empty:
                continue
            # Presolve-pinned variables are implied equalities: the system
            # forces var == v, so substituting is an exact elimination that
            # skips Fourier–Motzkin entirely (emptiness is preserved —
            # every solution of the pinned system extends the original).
            if pre.pinned:
                pinned = current
                for var in sorted(pre.pinned):
                    pinned = pinned.substitute(
                        var, LinExpr((), pre.pinned[var])
                    )
                record_event("presolve.pin_eliminated", len(pre.pinned))
                reduced = normalize(pinned)
                if reduced is None:
                    continue
                work.append(reduced)
                continue
            intervals = pre.intervals
        variables = current.variables()
        if not variables:
            if all(c.holds({}) for c in current.constraints):
                return False
            continue
        var = _choose_elimination_var(current, intervals)
        work.extend(eliminate_variable(current, var))
    return True


# ---------------------------------------------------------------------------
# Redundancy / gist
# ---------------------------------------------------------------------------

def constraint_redundant(conjunct: Conjunct, constraint: Constraint) -> bool:
    """True if ``conjunct`` implies ``constraint``; memoized.

    Keyed exactly (the constraint may mention the conjunct's wildcards, so
    alpha-canonical keys would conflate different queries).
    """
    profiler = active_profiler()
    if profiler is None:
        if not caches.enabled:
            return _constraint_redundant_uncached(conjunct, constraint)
        key = (_exact_key(conjunct), constraint)
        return _REDUNDANCY.memoize(
            key, lambda: _constraint_redundant_uncached(conjunct, constraint)
        )
    start = _clock()
    if not caches.enabled:
        result = _constraint_redundant_uncached(conjunct, constraint)
    else:
        key = (_exact_key(conjunct), constraint)
        result = _REDUNDANCY.memoize(
            key, lambda: _constraint_redundant_uncached(conjunct, constraint)
        )
    profiler.record(
        "constraint_redundant",
        _clock() - start,
        len(conjunct.constraints),
    )
    return result


def _syntactic_redundant(
    conjunct: Conjunct, constraint: Constraint
) -> bool:
    """Implication provable by inspection — no emptiness test needed.

    Covers the cases that dominate gisting in practice: the constraint is a
    tautology, literally present, a weakening of a present inequality with
    the same variable part (``e + c >= 0`` follows from ``e + c' >= 0``
    when ``c >= c'``), or pinned by a present equality over the same
    variable part (either orientation).  Constraints are content-normalized
    at construction, so proportional forms already coincide.  Sound
    one-way: ``True`` here implies the full test returns ``True``.
    """
    if constraint.is_tautology():
        return True
    expr = constraint.expr
    terms = expr.terms()
    const = expr.constant
    if constraint.kind == EQ:
        for present in conjunct.constraints:
            if present.kind == EQ and present.expr == expr:
                return True
        return False
    negated_terms = None
    for present in conjunct.constraints:
        present_terms = present.expr.terms()
        if present.kind == GEQ:
            if present_terms == terms and present.expr.constant <= const:
                return True
        else:
            # e + c' == 0 pins the variable part to -c'.
            if present_terms == terms and const >= present.expr.constant:
                return True
            if negated_terms is None:
                negated_terms = tuple((n, -c) for n, c in terms)
            if (
                present_terms == negated_terms
                and present.expr.constant + const >= 0
            ):
                return True
    return False


def _constraint_redundant_uncached(
    conjunct: Conjunct, constraint: Constraint
) -> bool:
    if _syntactic_redundant(conjunct, constraint):
        record_event("fastpath.syntactic_redundant")
        return True
    # Presolve prescreen: the propagated interval box contains every
    # solution of ``conjunct``, so an inequality that is nonnegative over
    # the whole box is implied — no negated-clause emptiness test needed.
    # One-way (False means "unknown"), so the full test below stays the
    # decision procedure.
    if presolve_enabled():
        pre = presolve_conjunct(conjunct)
        if not pre.empty and interval_implied(pre.intervals, constraint):
            record_event("presolve.implied")
            return True
    return all(
        is_empty_conjunct(conjunct.with_constraints([clause]))
        for clause in constraint.negated()
    )


def remove_redundancies(conjunct: Conjunct) -> Optional[Conjunct]:
    """Drop inequalities implied by the remaining constraints; memoized
    (exact key — the result keeps the input's wildcard names)."""
    profiler = active_profiler()
    if profiler is None:
        if not caches.enabled:
            return _remove_redundancies_uncached(conjunct)
        return _REDUNDANCY.memoize(
            (_exact_key(conjunct), None),
            lambda: _remove_redundancies_uncached(conjunct),
        )
    start = _clock()
    if not caches.enabled:
        result = _remove_redundancies_uncached(conjunct)
    else:
        result = _REDUNDANCY.memoize(
            (_exact_key(conjunct), None),
            lambda: _remove_redundancies_uncached(conjunct),
        )
    profiler.record(
        "remove_redundancies",
        _clock() - start,
        len(conjunct.constraints),
        0 if result is None else len(result.constraints),
    )
    return result


def _remove_redundancies_uncached(conjunct: Conjunct) -> Optional[Conjunct]:
    current = normalize(conjunct)
    if current is None:
        return None
    kept: List[Constraint] = list(current.constraints)
    # Parallel prescreen (off unless REPRO_SET_THREADS >= 2): test every
    # inequality against *all* the others at once.  A candidate not implied
    # by the full remainder cannot be implied by any weaker remainder the
    # sequential sweep will test it against, so it is definitely kept and
    # its in-loop query can be skipped.  Implication against a superset is
    # inconclusive for *dropping*, so implied candidates still go through
    # the order-dependent loop — the output is exactly the sequential one.
    definitely_kept: Set[int] = set()
    candidates = [
        (index, constraint)
        for index, constraint in enumerate(kept)
        if not constraint.is_equality
    ]
    if parallel.pool_size() >= 2 and len(candidates) >= 2:
        flags = parallel.query_map(
            "rmred",
            candidates,
            lambda pair: constraint_redundant(
                Conjunct(
                    kept[:pair[0]] + kept[pair[0] + 1:], current.wildcards
                ),
                pair[1],
            ),
        )
        definitely_kept = {
            index
            for (index, _), implied in zip(candidates, flags)
            if not implied
        }
        if definitely_kept:
            record_event(
                "parallel.definitely_kept", len(definitely_kept)
            )
    index = 0
    position = {id(c): i for i, c in enumerate(kept)}
    while index < len(kept):
        candidate = kept[index]
        if candidate.is_equality or position[id(candidate)] in definitely_kept:
            index += 1
            continue
        rest = Conjunct(
            kept[:index] + kept[index + 1:], current.wildcards
        )
        if constraint_redundant(rest, candidate):
            kept.pop(index)
        else:
            index += 1
    return normalize(Conjunct(kept, current.wildcards))


def _syntactic_index(
    constraints: Sequence[Constraint],
) -> Tuple[Dict[Tuple, int], Dict[Tuple, List[int]]]:
    """Index a conjunct's constraints by variable part for batched
    syntactic screening: ``geq_min`` maps an inequality's term tuple to
    its smallest (tightest-implied) constant, ``eq_consts`` maps an
    equality's term tuple to every pinned constant."""
    geq_min: Dict[Tuple, int] = {}
    eq_consts: Dict[Tuple, List[int]] = {}
    for constraint in constraints:
        _index_add(geq_min, eq_consts, constraint)
    return geq_min, eq_consts


def _index_add(
    geq_min: Dict[Tuple, int],
    eq_consts: Dict[Tuple, List[int]],
    constraint: Constraint,
) -> None:
    terms = constraint.expr.terms()
    const = constraint.expr.constant
    if constraint.kind == EQ:
        eq_consts.setdefault(terms, []).append(const)
    else:
        best = geq_min.get(terms)
        if best is None or const < best:
            geq_min[terms] = const


def _index_implies(
    geq_min: Dict[Tuple, int],
    eq_consts: Dict[Tuple, List[int]],
    constraint: Constraint,
) -> bool:
    """Dictionary-lookup form of :func:`_syntactic_redundant` — decides
    the same implications (tautology, literal presence, weakening of a
    present inequality, pinned by a present equality in either
    orientation) without rescanning the context."""
    if constraint.is_tautology():
        return True
    terms = constraint.expr.terms()
    const = constraint.expr.constant
    if constraint.kind == EQ:
        return const in eq_consts.get(terms, ())
    best = geq_min.get(terms)
    if best is not None and best <= const:
        return True
    pinned = eq_consts.get(terms)
    if pinned and min(pinned) <= const:
        return True
    negated = tuple((name, -coeff) for name, coeff in terms)
    pinned = eq_consts.get(negated)
    if pinned and max(pinned) >= -const:
        return True
    return False


def incremental_redundancies(
    base: Conjunct, fresh: Sequence[Constraint]
) -> List[Constraint]:
    """Incremental redundancy removal against an established context.

    ``base`` is taken as given (its constraints are *not* re-examined);
    only the ``fresh`` constraints — the ones touched by the last
    operation — are tested, in order, each against ``base`` plus the
    previously kept ones.  This is the workhorse of gisting: after a set
    operation touches a conjunct, the untouched context never needs
    re-proving, so redundancy work scales with the delta, not the system.

    Queries are *batched per conjunct*: one pass over ``base`` builds a
    syntactic-implication index (variable part → tightest constant), so
    each fresh constraint is screened with O(1) lookups instead of the
    per-constraint context rescan that made this the dominant
    ``--profile-sets`` entry.  The screen decides exactly what
    :func:`_syntactic_redundant` decides.  A second, presolve-backed
    screen drops constraints that are nonnegative over ``base``'s
    propagated interval box (implied by ``base`` alone, hence by ``base``
    plus anything kept); only survivors pay the memoized emptiness-based
    implication test.  With ``REPRO_SET_THREADS >= 2``, those survivor
    queries are additionally prescreened in parallel against ``base``
    alone — implication by ``base`` is monotone in the context, so a
    parallel "drop" is exactly a sequential "drop", and the order-
    dependent loop below only runs for constraints the prescreen could
    not decide.  The kept list is byte-for-byte the sequential one.
    """
    profiler = active_profiler()
    start = _clock() if profiler is not None else 0.0
    geq_min, eq_consts = _syntactic_index(base.constraints)
    intervals = None
    if presolve_enabled():
        pre = presolve_conjunct(base)
        if not pre.empty:
            intervals = pre.intervals
    prescreen: Dict[Constraint, bool] = {}
    if parallel.pool_size() >= 2:
        undecided = [
            constraint
            for constraint in fresh
            if not _index_implies(geq_min, eq_consts, constraint)
            and not (
                intervals is not None
                and interval_implied(intervals, constraint)
            )
        ]
        if len(undecided) >= 2:
            flags = parallel.query_map(
                "incred",
                undecided,
                lambda c: constraint_redundant(base, c),
            )
            prescreen = dict(zip(undecided, flags))
    kept: List[Constraint] = []
    for constraint in fresh:
        if _index_implies(geq_min, eq_consts, constraint):
            record_event("fastpath.batched_syntactic")
            continue
        if intervals is not None and interval_implied(intervals, constraint):
            record_event("presolve.implied")
            continue
        if prescreen.get(constraint):
            record_event("parallel.prescreen_drop")
            continue
        if not constraint_redundant(
            base.with_constraints(kept), constraint
        ):
            kept.append(constraint)
            _index_add(geq_min, eq_consts, constraint)
    if profiler is not None:
        profiler.record(
            "incremental_redundancies",
            _clock() - start,
            len(fresh),
            len(kept),
        )
    return kept


def gist_conjunct(
    conjunct: Conjunct, context: Conjunct
) -> Optional[Conjunct]:
    """Constraints of ``conjunct`` not already implied by ``context``.

    The result, conjoined with ``context``, equals ``conjunct ∧ context``.
    """
    simplified = normalize(conjunct)
    if simplified is None:
        return None
    base = context.conjoin(Conjunct((), simplified.wildcards))
    kept = incremental_redundancies(base, simplified.constraints)
    return Conjunct(kept, simplified.wildcards)
