"""Core Omega-test algorithms: equality solving, exact projection, emptiness.

This module implements, over :class:`~repro.isets.conjunct.Conjunct`:

* **Equality elimination** in the style of Pugh's Omega test — unit-coefficient
  substitution plus the symmetric-modulus substitution that shrinks
  coefficients until a wildcard can be substituted away exactly.
* **Fourier–Motzkin elimination with integer exactness**: the real shadow is
  used when exact (one of each bound pair has a unit coefficient); otherwise
  the result is the *dark shadow* unioned with the standard *splinter*
  equalities, which is Pugh's exact integer projection.
* **Emptiness testing** by exact elimination of all variables.

These are the algorithms the paper relies on via the Omega library
(references [17] and [25] in the paper).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..cache.manager import caches
from .constraint import EQ, GEQ, Constraint, ceil_div, floor_div
from .conjunct import Conjunct
from .errors import InexactOperationError
from .linexpr import LinExpr
from .space import fresh_name

# Safety valve: exact projection of pathological conjuncts can splinter; the
# paper reports such cases do not arise in practice for compiler-generated
# sets, and we keep a generous cap so a genuine pathology fails loudly.
MAX_SPLINTERS = 512
_MAX_EQ_ITERATIONS = 200

# Memoization of the pure conjunct-level operations (see repro.cache).
# Emptiness is keyed alpha-canonically (a bool cannot observe wildcard
# names); every other cache is keyed on the *exact* structure — constraint
# order and wildcard names included — so a hit replays the byte-identical
# result a fresh computation would produce.
_EMPTINESS = caches.register("isets.emptiness", maxsize=200_000)
_NORMALIZE = caches.register("isets.normalize", maxsize=100_000)
_REDUNDANCY = caches.register("isets.redundancy", maxsize=100_000)
_PROJECTION = caches.register("isets.projection", maxsize=50_000)


def _exact_key(conjunct: Conjunct) -> tuple:
    return (conjunct.constraints, conjunct.wildcards)


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------

def normalize(conjunct: Conjunct) -> Optional[Conjunct]:
    """Drop tautologies and duplicates; detect structural falsity.

    Also pairs ``e >= 0`` with ``-e >= 0`` into the equality ``e == 0``, and
    detects single-variable contradictions (``x >= a`` with ``x <= a - 1``).
    Returns ``None`` when the conjunct is unsatisfiable on structural
    grounds.
    """
    if not caches.enabled:
        return _normalize_uncached(conjunct)
    return _NORMALIZE.memoize(
        _exact_key(conjunct), lambda: _normalize_uncached(conjunct)
    )


def _normalize_uncached(conjunct: Conjunct) -> Optional[Conjunct]:
    seen: Set[Constraint] = set()
    geqs: Dict[LinExpr, Constraint] = {}
    result: List[Constraint] = []
    for constraint in conjunct.constraints:
        if constraint.is_false():
            return None
        if constraint.is_tautology() or constraint in seen:
            continue
        seen.add(constraint)
        result.append(constraint)
        if constraint.kind == GEQ:
            geqs[constraint.expr] = constraint

    # Pair e >= 0 with -e - k >= 0 (k >= 0): implies -k >= e >= 0.
    upgraded: List[Constraint] = []
    consumed: Set[Constraint] = set()
    for constraint in result:
        if constraint.kind != GEQ or constraint in consumed:
            continue
        # Look for a constraint -e + c >= 0 with the same variable part.
        negated_vars = LinExpr(
            {n: -c for n, c in constraint.expr.terms()}, 0
        )
        for other in result:
            if other.kind != GEQ or other is constraint or other in consumed:
                continue
            if LinExpr(dict(other.expr.terms()), 0) == negated_vars:
                # constraint: v + c1 >= 0; other: -v + c2 >= 0
                # -c1 <= v <= c2  (v is the variable part)
                c1 = constraint.expr.constant
                c2 = other.expr.constant
                if -c1 > c2:
                    return None
                if -c1 == c2:
                    consumed.add(constraint)
                    consumed.add(other)
                    upgraded.append(Constraint(constraint.expr, EQ))
                break

    final = [c for c in result if c not in consumed] + upgraded
    # Deduplicate again (upgrades can collide with existing equalities).
    deduped: List[Constraint] = []
    seen = set()
    for constraint in final:
        if constraint.is_false():
            return None
        if constraint.is_tautology() or constraint in seen:
            continue
        seen.add(constraint)
        deduped.append(constraint)
    used_wildcards = tuple(
        w
        for w in conjunct.wildcards
        if any(c.coeff(w) for c in deduped)
    )
    return Conjunct(deduped, used_wildcards)


# ---------------------------------------------------------------------------
# Equality elimination
# ---------------------------------------------------------------------------

def _symmetric_mod(a: int, m: int) -> int:
    """Pugh's mod-hat: residue of ``a`` modulo ``m`` in ``(-m/2, m/2]``."""
    r = a % m
    if r > m // 2:
        r -= m
    return r


def _resolving_vars(conjunct: Conjunct, equality: Constraint) -> List[str]:
    """Unit-coefficient variables of ``equality`` occurring in no other
    constraint — the equality merely *defines* such a variable."""
    found = []
    for var in equality.variables():
        if abs(equality.coeff(var)) != 1:
            continue
        elsewhere = any(
            c is not equality and c.coeff(var)
            for c in conjunct.constraints
        )
        if not elsewhere:
            found.append(var)
    return found


def solve_equalities(
    conjunct: Conjunct, protected: Set[str]
) -> Optional[Conjunct]:
    """Reduce the equality system exactly (Omega-test equality phase).

    * A unit-coefficient **wildcard** is substituted away entirely.
    * A unit-coefficient **protected** variable occurring in other
      constraints is substituted into those constraints; its defining
      equality is kept (in solved form).
    * Otherwise Pugh's symmetric-modulus substitution shrinks coefficients
      until one of the above applies.

    Returns ``None`` if an infeasibility is detected.
    """
    current = normalize(conjunct)
    for _ in range(_MAX_EQ_ITERATIONS):
        if current is None:
            return None
        action = _pick_equality_action(current, protected)
        if action is None:
            return current
        kind, equality, var = action
        if kind == "drop":
            # exists(var): var = expr ∧ rest  ≡  rest  when var ∉ rest.
            remaining = tuple(
                c for c in current.constraints if c is not equality
            )
            current = normalize(
                Conjunct(remaining, current.wildcards).drop_wildcard(var)
            )
        elif kind == "substitute":
            coeff = equality.coeff(var)
            rest = equality.expr.substitute(var, 0)
            replacement = rest.scaled(-1) if coeff == 1 else rest
            current = normalize(current.substitute(var, replacement))
        elif kind == "define":
            coeff = equality.coeff(var)
            rest = equality.expr.substitute(var, 0)
            replacement = rest.scaled(-1) if coeff == 1 else rest
            others = tuple(
                c.substitute(var, replacement) if c is not equality else c
                for c in current.constraints
            )
            current = normalize(Conjunct(others, current.wildcards))
        else:
            current = _mod_reduce(current, equality, var)
            current = normalize(current) if current is not None else None
    raise InexactOperationError(
        "equality elimination did not terminate within the iteration cap"
    )


def _pick_equality_action(
    conjunct: Conjunct, protected: Set[str]
) -> Optional[Tuple[str, Constraint, str]]:
    """Choose the next equality-processing step, or None at fixpoint."""
    mod_candidate: Optional[Tuple[str, Constraint, str]] = None
    mod_coeff = None
    define_candidate: Optional[Tuple[str, Constraint, str]] = None
    for equality in conjunct.equalities():
        # An unprotected unit variable substitutes away outright — strictly
        # reduces the variable count, so it is always safe progress, even
        # when the equality is also in resolved (definition) form.
        for var in equality.variables():
            if var not in protected and abs(equality.coeff(var)) == 1:
                return ("substitute", equality, var)
        resolving = _resolving_vars(conjunct, equality)
        if resolving:
            droppable = [v for v in resolving if v not in protected]
            if droppable:
                return ("drop", equality, droppable[0])
            continue
        for var in equality.variables():
            coeff = abs(equality.coeff(var))
            if var not in protected:
                if mod_coeff is None or coeff < mod_coeff:
                    mod_candidate = ("modreduce", equality, var)
                    mod_coeff = coeff
            elif coeff == 1 and define_candidate is None:
                define_candidate = ("define", equality, var)
    if define_candidate is not None:
        return define_candidate
    return mod_candidate


def _mod_reduce(
    conjunct: Conjunct, equality: Constraint, var: str
) -> Optional[Conjunct]:
    """Pugh's symmetric-modulus substitution shrinking coefficients.

    Rewrites ``var`` in terms of a fresh wildcard ``sigma`` such that the
    system is equisatisfiable and the coefficient magnitudes in the equality
    strictly decrease, guaranteeing termination of ``solve_equalities``.
    """
    a_k = equality.coeff(var)
    expr = equality.expr if a_k > 0 else -equality.expr
    a_k = abs(a_k)
    m = a_k + 1
    sigma = fresh_name("s")
    # var = sum(mod-hat coeffs) x_i + mod-hat const - m*sigma  (i != var),
    # derived from the equality taken modulo m (mod-hat(a_k, m) == -1).
    replacement = LinExpr({sigma: -m}, _symmetric_mod(expr.constant, m))
    for name, coeff in expr.terms():
        if name == var:
            continue
        replacement = replacement + LinExpr(
            {name: _symmetric_mod(coeff, m)}, 0
        )
    updated = conjunct.substitute(var, replacement)
    return updated.with_wildcards([sigma])


# ---------------------------------------------------------------------------
# Fourier–Motzkin with integer exactness
# ---------------------------------------------------------------------------

def eliminate_variable(
    conjunct: Conjunct,
    var: str,
    approximate: bool = False,
) -> List[Conjunct]:
    """Exactly project ``var`` out of ``conjunct`` (a union may result).

    ``var`` is treated as existential.  When ``approximate`` is true the real
    shadow is returned even when inexact (an over-approximation), which some
    callers (bound computation for code generation, where guards re-check
    membership) can tolerate.
    """
    prepared = solve_equalities(
        conjunct,
        protected=set(conjunct.variables()) - {var} - set(conjunct.wildcards),
    )
    if prepared is None:
        return []
    if not prepared.uses(var):
        return [prepared.drop_wildcard(var)]
    # ``var`` may still sit in an equality (with |coeff| > 1); try to force
    # elimination treating var as the only unprotected variable.
    if any(eq.coeff(var) for eq in prepared.equalities()):
        prepared = solve_equalities(
            prepared, protected=set(prepared.variables()) - {var}
        )
        if prepared is None:
            return []
        if not prepared.uses(var):
            return [prepared.drop_wildcard(var)]
        if any(eq.coeff(var) for eq in prepared.equalities()):
            # Resolved stride form (e.g. ``i = 2*var + 1``): var cannot be
            # eliminated from the representation; keeping it existential is
            # semantically the projection.
            if var in prepared.wildcards:
                return [prepared]
            return [prepared.with_wildcards([var])]

    survivors: List[Constraint] = []
    lowers: List[Tuple[int, LinExpr]] = []  # b*var >= beta
    uppers: List[Tuple[int, LinExpr]] = []  # a*var <= alpha
    for constraint in prepared.constraints:
        coeff = constraint.coeff(var)
        if coeff == 0:
            survivors.append(constraint)
            continue
        assert not constraint.is_equality, "equalities handled above"
        rest = constraint.expr.substitute(var, 0)
        if coeff > 0:
            lowers.append((coeff, -rest))
        else:
            uppers.append((-coeff, rest))

    remaining_wildcards = tuple(
        w for w in prepared.wildcards if w != var
    )
    if not lowers or not uppers:
        result = normalize(Conjunct(survivors, remaining_wildcards))
        return [result] if result is not None else []

    exact = all(b == 1 or a == 1 for b, _ in lowers for a, _ in uppers)
    shadows: List[Constraint] = []
    dark_shadows: List[Constraint] = []
    for (b, beta), (a, alpha) in itertools.product(lowers, uppers):
        real = alpha.scaled(b) - beta.scaled(a)
        shadows.append(Constraint(real, GEQ))
        dark_shadows.append(Constraint(real - (a - 1) * (b - 1), GEQ))

    if exact or approximate:
        result = normalize(Conjunct(survivors + shadows, remaining_wildcards))
        return [result] if result is not None else []

    results: List[Conjunct] = []
    dark = normalize(
        Conjunct(survivors + dark_shadows, remaining_wildcards)
    )
    if dark is not None:
        results.append(dark)
    # Splinters: if an integer point lies in the real but not the dark
    # shadow, then for some lower bound b*var >= beta we have
    # b*var <= beta + (a_max*b - a_max - b) / a_max  (Pugh 1992).
    a_max = max(a for a, _ in uppers)
    total = 0
    for b, beta in lowers:
        top = (a_max * b - a_max - b) // a_max
        for i in range(top + 1):
            total += 1
            if total > MAX_SPLINTERS:
                raise InexactOperationError(
                    f"projection of {var} exceeded {MAX_SPLINTERS} splinters"
                )
            pinned = prepared.with_constraints(
                [Constraint(LinExpr({var: b}) - beta - i, EQ)]
            )
            results.extend(eliminate_variable(pinned, var))
    return results


def project_out(
    conjunct: Conjunct,
    names: Sequence[str],
    approximate: bool = False,
) -> List[Conjunct]:
    """Project several variables out of a conjunct, exactly; memoized."""
    if not caches.enabled:
        return _project_out_uncached(conjunct, names, approximate)
    key = (_exact_key(conjunct), tuple(names), approximate)
    cached = _PROJECTION.memoize(
        key, lambda: _project_out_uncached(conjunct, names, approximate)
    )
    return list(cached)


def _project_out_uncached(
    conjunct: Conjunct,
    names: Sequence[str],
    approximate: bool = False,
) -> List[Conjunct]:
    work = [conjunct.with_wildcards(
        [n for n in names if n not in conjunct.wildcards]
    )]
    for name in names:
        next_work: List[Conjunct] = []
        for item in work:
            next_work.extend(eliminate_variable(item, name, approximate))
        work = next_work
    # Eliminating a dim through its stride equality can strand the witness
    # in inequalities only; such wildcards are cheaply FME-eliminable and
    # would otherwise break exact negation downstream.
    cleaned: List[Conjunct] = []
    stack = list(work)
    while stack:
        item = stack.pop()
        stranded = next(
            (
                w
                for w in item.wildcards
                if item.uses(w)
                and not any(
                    c.coeff(w) for c in item.equalities()
                )
            ),
            None,
        )
        if stranded is None:
            cleaned.append(item)
        else:
            stack.extend(eliminate_variable(item, stranded, approximate))
    return cleaned


# ---------------------------------------------------------------------------
# Emptiness
# ---------------------------------------------------------------------------

def _choose_elimination_var(conjunct: Conjunct) -> str:
    """Pick the variable whose elimination is cheapest (exact first)."""
    best_var = None
    best_score = None
    for var in conjunct.variables():
        lowers = uppers = 0
        exact = True
        in_equality = False
        for constraint in conjunct.constraints:
            coeff = constraint.coeff(var)
            if coeff == 0:
                continue
            if constraint.is_equality:
                in_equality = True
                if abs(coeff) == 1:
                    return var  # unit equality: free elimination
            elif coeff > 0:
                lowers += 1
                exact = exact and coeff == 1
            else:
                uppers += 1
                exact = exact and coeff == -1
        score = lowers * uppers + (0 if exact or in_equality else 10_000)
        if best_score is None or score < best_score:
            best_var = var
            best_score = score
    assert best_var is not None
    return best_var


def is_empty_conjunct(conjunct: Conjunct) -> bool:
    """Exact integer emptiness test (all variables existential); memoized.

    Keyed on the alpha-canonical :meth:`Conjunct.key` (emptiness is
    invariant under wildcard renaming), LRU-bounded and counted in the
    ``isets.emptiness`` cache — this replaced a module-global dict that
    grew to 200k entries, never evicted, and leaked state across tests.
    """
    if not caches.enabled:
        return _is_empty_conjunct_uncached(conjunct)
    return _EMPTINESS.memoize(
        conjunct.key(), lambda: _is_empty_conjunct_uncached(conjunct)
    )


def _is_empty_conjunct_uncached(conjunct: Conjunct) -> bool:
    work: List[Conjunct] = [conjunct]
    while work:
        current = solve_equalities(work.pop(), protected=set())
        if current is None:
            continue
        variables = current.variables()
        if not variables:
            if all(c.holds({}) for c in current.constraints):
                return False
            continue
        var = _choose_elimination_var(current)
        work.extend(eliminate_variable(current, var))
    return True


# ---------------------------------------------------------------------------
# Redundancy / gist
# ---------------------------------------------------------------------------

def constraint_redundant(conjunct: Conjunct, constraint: Constraint) -> bool:
    """True if ``conjunct`` implies ``constraint``; memoized.

    Keyed exactly (the constraint may mention the conjunct's wildcards, so
    alpha-canonical keys would conflate different queries).
    """
    if not caches.enabled:
        return _constraint_redundant_uncached(conjunct, constraint)
    key = (_exact_key(conjunct), constraint)
    return _REDUNDANCY.memoize(
        key, lambda: _constraint_redundant_uncached(conjunct, constraint)
    )


def _constraint_redundant_uncached(
    conjunct: Conjunct, constraint: Constraint
) -> bool:
    return all(
        is_empty_conjunct(conjunct.with_constraints([clause]))
        for clause in constraint.negated()
    )


def remove_redundancies(conjunct: Conjunct) -> Optional[Conjunct]:
    """Drop inequalities implied by the remaining constraints; memoized
    (exact key — the result keeps the input's wildcard names)."""
    if not caches.enabled:
        return _remove_redundancies_uncached(conjunct)
    return _REDUNDANCY.memoize(
        (_exact_key(conjunct), None),
        lambda: _remove_redundancies_uncached(conjunct),
    )


def _remove_redundancies_uncached(conjunct: Conjunct) -> Optional[Conjunct]:
    current = normalize(conjunct)
    if current is None:
        return None
    kept: List[Constraint] = list(current.constraints)
    index = 0
    while index < len(kept):
        candidate = kept[index]
        if candidate.is_equality:
            index += 1
            continue
        rest = Conjunct(
            kept[:index] + kept[index + 1:], current.wildcards
        )
        if constraint_redundant(rest, candidate):
            kept.pop(index)
        else:
            index += 1
    return normalize(Conjunct(kept, current.wildcards))


def gist_conjunct(
    conjunct: Conjunct, context: Conjunct
) -> Optional[Conjunct]:
    """Constraints of ``conjunct`` not already implied by ``context``.

    The result, conjoined with ``context``, equals ``conjunct ∧ context``.
    """
    simplified = normalize(conjunct)
    if simplified is None:
        return None
    kept: List[Constraint] = []
    base = context.conjoin(Conjunct((), simplified.wildcards))
    for constraint in simplified.constraints:
        if not constraint_redundant(
            base.with_constraints(kept), constraint
        ):
            kept.append(constraint)
    return Conjunct(kept, simplified.wildcards)
