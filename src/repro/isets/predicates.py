"""Set predicates used by the in-place communication analysis (paper §3.3).

The paper reduces the question "is this communication set contiguous in
memory?" to per-dimension predicates, each of which reduces to a
satisfiability test:

* ``IsConvex(S)`` for a rank-1 set ``S``: there is no hole, i.e. the set
  ``{(x,y,z) : x ∈ S, z ∈ S, x < y < z, y ∉ S}`` is empty.
* ``IsSingleton(S)`` for a rank-1 set: ``{(x,y) : x ∈ S, y ∈ S, x < y}`` is
  empty (and the set is nonempty).
* ``SpansFullRange(C, A)`` per dimension: the projections coincide.

Each predicate returns a three-valued answer: when symbolic constants make
the question undecidable at compile time, the *violation set* is returned so
a run-time check can be synthesized from it (Section 3.3's combined
compile-time/run-time algorithm).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from .constraint import Constraint
from .errors import SpaceMismatchError
from .linexpr import LinExpr
from .ops import IntegerSet
from .space import Space, fresh_name


class Answer(enum.Enum):
    """Three-valued compile-time answer."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        raise TypeError("Answer is three-valued; compare explicitly")


@dataclass
class PredicateResult:
    """Outcome of a compile-time predicate.

    ``violations`` is the set of parameter-dependent counterexamples; it is
    empty exactly when the predicate is provably TRUE.  When the answer is
    UNKNOWN, a run-time check can test emptiness of ``violations`` under the
    actual parameter values.
    """

    answer: Answer
    violations: Optional[IntegerSet] = None


def _classify(violations: IntegerSet) -> PredicateResult:
    if violations.is_empty():
        return PredicateResult(Answer.TRUE, violations)
    if not violations.parameters():
        return PredicateResult(Answer.FALSE, violations)
    return PredicateResult(Answer.UNKNOWN, violations)


def _renamed_copy(subset: IntegerSet, new_dim: str) -> IntegerSet:
    if subset.space.arity_in != 1:
        raise SpaceMismatchError("predicate requires a rank-1 set")
    old = subset.space.in_dims[0]
    renamed = [
        c.rename_wildcards_apart().rename({old: new_dim})
        for c in subset.conjuncts
    ]
    return IntegerSet(Space([new_dim]), renamed)


def is_convex_1d(subset: IntegerSet) -> PredicateResult:
    """No integer holes between members of a rank-1 set."""
    x, y, z = fresh_name("x"), fresh_name("y"), fresh_name("z")
    space = [x, y, z]
    in_x = _embed(subset, space, x)
    in_z = _embed(subset, space, z)
    in_y = _embed(subset, space, y)
    between = IntegerSet.from_constraints(
        space,
        [
            Constraint.lt(LinExpr.var(x), LinExpr.var(y)),
            Constraint.lt(LinExpr.var(y), LinExpr.var(z)),
        ],
    )
    violations = in_x.intersect(in_z).intersect(between).subtract(in_y)
    return _classify(violations)


def is_singleton_1d(subset: IntegerSet) -> PredicateResult:
    """At most one member (two distinct members form a violation)."""
    x, y = fresh_name("x"), fresh_name("y")
    space = [x, y]
    in_x = _embed(subset, space, x)
    in_y = _embed(subset, space, y)
    apart = IntegerSet.from_constraints(
        space, [Constraint.lt(LinExpr.var(x), LinExpr.var(y))]
    )
    violations = in_x.intersect(in_y).intersect(apart)
    return _classify(violations)


def spans_full_range(
    candidate: IntegerSet, full: IntegerSet
) -> PredicateResult:
    """Rank-1 ``candidate`` covers all of rank-1 ``full``."""
    dim = fresh_name("d")
    cand = _renamed_copy(candidate, dim)
    whole = _renamed_copy(full, dim)
    violations = whole.subtract(cand)
    return _classify(violations)


def _embed(subset: IntegerSet, dims, which: str) -> IntegerSet:
    """Rank-1 set reinterpreted over ``dims`` constraining dim ``which``."""
    renamed = _renamed_copy(subset, which)
    return IntegerSet(Space(dims), renamed.conjuncts)


def projection(subset: IntegerSet, dim_index: int) -> IntegerSet:
    """The paper's ``S<i>``: range of the set in dimension ``dim_index``."""
    dims = subset.space.in_dims
    return subset.project_onto([dims[dim_index]])
