"""Omega-like integer set/map library — the substrate of the framework.

This package provides, in pure Python, the subset of the Omega library's
functionality the paper relies on: Presburger sets and maps (unions of
existentially quantified affine conjuncts), exact integer projection and
emptiness (Pugh's Omega test), the set algebra of the paper's Appendix A,
and loop code generation from sets.
"""

from .constraint import Constraint, ceil_div, floor_div
from .conjunct import Conjunct, stride_constraint
from .errors import (
    CodegenError,
    InexactOperationError,
    IntegerSetError,
    NonAffineError,
    ParseError,
    SpaceMismatchError,
)
from .linexpr import LinExpr, lin_sum
from .bounds import SymbolicBound, ground_range, inequality_projection
from .loopgen import (
    GuardNode,
    LoopNode,
    SeqNode,
    StmtNode,
    generate_loops,
    run_loops,
)
from .mmcodegen import codegen as mm_codegen
from .ops import IntegerMap, IntegerSet, disjoint_subtract, split_disjoint
from .parse import parse_map, parse_set
from .points import (
    UnboundedSetError,
    brute_force_points,
    count_points,
    enumerate_points,
    sample_point,
)
from .predicates import (
    Answer,
    PredicateResult,
    is_convex_1d,
    is_singleton_1d,
    projection,
    spans_full_range,
)
from .space import Space, fresh_name

__all__ = [
    "Answer",
    "GuardNode",
    "LoopNode",
    "SeqNode",
    "StmtNode",
    "SymbolicBound",
    "disjoint_subtract",
    "generate_loops",
    "ground_range",
    "inequality_projection",
    "mm_codegen",
    "run_loops",
    "split_disjoint",
    "CodegenError",
    "Conjunct",
    "Constraint",
    "InexactOperationError",
    "IntegerMap",
    "IntegerSet",
    "IntegerSetError",
    "LinExpr",
    "NonAffineError",
    "ParseError",
    "PredicateResult",
    "Space",
    "SpaceMismatchError",
    "UnboundedSetError",
    "brute_force_points",
    "ceil_div",
    "count_points",
    "enumerate_points",
    "floor_div",
    "fresh_name",
    "is_convex_1d",
    "is_singleton_1d",
    "lin_sum",
    "parse_map",
    "parse_set",
    "projection",
    "sample_point",
    "spans_full_range",
    "stride_constraint",
]
