"""Point enumeration for integer sets under concrete parameter bindings.

Enumeration is used by the test suites (to compare the symbolic algebra
against brute force) and by the runtime when it needs explicit data tuples
(e.g. building the index lists of a packed message).  Generated SPMD code
does *not* enumerate: it runs loop nests produced by
:mod:`repro.isets.loopgen`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .bounds import ground_range
from .conjunct import Conjunct
from .errors import IntegerSetError
from .omega import is_empty_conjunct, normalize
from .ops import IntegerSet


class UnboundedSetError(IntegerSetError):
    """Enumeration was asked for a set with an unbounded dimension."""


def _conjunct_points(
    conjunct: Conjunct, dims: Sequence[str]
) -> Iterator[Tuple[int, ...]]:
    simplified = normalize(conjunct)
    if simplified is None:
        return
    if not dims:
        if not is_empty_conjunct(simplified):
            yield ()
        return
    head, tail = dims[0], dims[1:]
    lower, upper = ground_range(simplified, head)
    if lower is None or upper is None:
        raise UnboundedSetError(
            f"dimension {head!r} is not bounded; bind parameters first"
        )
    if lower > upper:
        return
    for value in range(lower, upper + 1):
        pinned = normalize(simplified.partial_evaluate({head: value}))
        if pinned is None:
            continue
        for rest in _conjunct_points(pinned, tail):
            yield (value,) + rest


def enumerate_points(
    subset: IntegerSet, env: Optional[Mapping[str, int]] = None
) -> List[Tuple[int, ...]]:
    """All tuples of ``subset`` under parameters ``env``, sorted, deduped.

    Raises :class:`UnboundedSetError` when a dimension is unbounded (for
    instance when a required symbolic constant was not bound).
    """
    binding = dict(env or {})
    points = set()
    for conjunct in subset.conjuncts:
        grounded = conjunct.partial_evaluate(binding)
        points.update(_conjunct_points(grounded, subset.space.in_dims))
    return sorted(points)


def count_points(
    subset: IntegerSet, env: Optional[Mapping[str, int]] = None
) -> int:
    """Number of distinct tuples in ``subset`` under ``env``."""
    return len(enumerate_points(subset, env))


def sample_point(
    subset: IntegerSet, env: Optional[Mapping[str, int]] = None
) -> Optional[Tuple[int, ...]]:
    """Some tuple of the set, or ``None`` if empty."""
    binding = dict(env or {})
    for conjunct in subset.conjuncts:
        grounded = conjunct.partial_evaluate(binding)
        for point in _conjunct_points(grounded, subset.space.in_dims):
            return point
    return None


def brute_force_points(
    subset: IntegerSet,
    box: Mapping[str, Tuple[int, int]],
    env: Optional[Mapping[str, int]] = None,
) -> List[Tuple[int, ...]]:
    """Reference enumeration by exhaustive membership over a box.

    Used by property-based tests to validate the symbolic algebra.
    """
    dims = subset.space.in_dims
    ranges = [range(box[d][0], box[d][1] + 1) for d in dims]
    result = []
    for point in itertools.product(*ranges):
        if subset.contains(point, env):
            result.append(point)
    return result
