"""Conjunctions of affine constraints with existential (wildcard) variables.

A :class:`Conjunct` denotes ``exists(wildcards) : c_1 and ... and c_n``.
Wildcards arise from projection and from stride constraints such as
``exists a : i = 4a + 1``.  A Presburger set or map is a finite union of
conjuncts over a common :class:`~repro.isets.space.Space`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from .constraint import Constraint
from .linexpr import ExprLike, LinExpr
from .space import fresh_name


class Conjunct:
    """An existentially quantified conjunction of affine constraints."""

    # ``_key`` caches the alpha-canonical dedup key; ``_ekey`` the
    # order-exact memo key (a hash-caching wrapper built by omega.py);
    # ``_presolve`` the per-object presolve verdict (bounds.py).
    __slots__ = ("constraints", "wildcards", "_key", "_ekey", "_presolve")

    def __init__(
        self,
        constraints: Iterable[Constraint] = (),
        wildcards: Iterable[str] = (),
    ):
        self.constraints: Tuple[Constraint, ...] = tuple(constraints)
        self.wildcards: Tuple[str, ...] = tuple(wildcards)

    # -- basic queries -------------------------------------------------------

    def variables(self) -> Tuple[str, ...]:
        """All variables (including wildcards) mentioned, sorted."""
        names = set()
        for constraint in self.constraints:
            names.update(constraint.variables())
        return tuple(sorted(names))

    def free_variables(self) -> Tuple[str, ...]:
        """Variables mentioned that are not wildcards."""
        wild = set(self.wildcards)
        return tuple(v for v in self.variables() if v not in wild)

    def equalities(self) -> Tuple[Constraint, ...]:
        return tuple(c for c in self.constraints if c.is_equality)

    def inequalities(self) -> Tuple[Constraint, ...]:
        return tuple(c for c in self.constraints if not c.is_equality)

    def is_trivially_false(self) -> bool:
        return any(c.is_false() for c in self.constraints)

    def uses(self, name: str) -> bool:
        return any(c.coeff(name) for c in self.constraints)

    # -- construction helpers ---------------------------------------------------

    def with_constraints(self, extra: Iterable[Constraint]) -> "Conjunct":
        return Conjunct(self.constraints + tuple(extra), self.wildcards)

    def with_wildcards(self, extra: Iterable[str]) -> "Conjunct":
        return Conjunct(self.constraints, self.wildcards + tuple(extra))

    def drop_wildcard(self, name: str) -> "Conjunct":
        return Conjunct(
            self.constraints, tuple(w for w in self.wildcards if w != name)
        )

    def conjoin(self, other: "Conjunct") -> "Conjunct":
        """Conjunction; ``other``'s wildcards are renamed apart first."""
        other = other.rename_wildcards_apart()
        return Conjunct(
            self.constraints + other.constraints,
            self.wildcards + other.wildcards,
        )

    def rename_wildcards_apart(self) -> "Conjunct":
        """Give every wildcard a globally fresh name."""
        if not self.wildcards:
            return self
        renaming = {w: fresh_name("e") for w in self.wildcards}
        return self.rename(renaming)

    # -- transformation -----------------------------------------------------------

    def rename(self, mapping: Mapping[str, str]) -> "Conjunct":
        return Conjunct(
            tuple(c.rename(mapping) for c in self.constraints),
            tuple(mapping.get(w, w) for w in self.wildcards),
        )

    def substitute(self, name: str, replacement: ExprLike) -> "Conjunct":
        """Substitute ``name`` everywhere; drops it from the wildcard list."""
        return Conjunct(
            tuple(c.substitute(name, replacement) for c in self.constraints),
            tuple(w for w in self.wildcards if w != name),
        )

    def partial_evaluate(self, env: Mapping[str, int]) -> "Conjunct":
        constraints = tuple(
            Constraint(c.expr.partial_evaluate(env), c.kind)
            for c in self.constraints
        )
        wildcards = tuple(w for w in self.wildcards if w not in env)
        return Conjunct(constraints, wildcards)

    # -- evaluation ------------------------------------------------------------------

    def holds(self, env: Mapping[str, int]) -> bool:
        """Membership test under a *complete* assignment of free variables.

        Wildcard satisfiability is decided exactly via the Omega-test
        emptiness check on the residual system.
        """
        residual = self.partial_evaluate(env)
        if not residual.wildcards:
            return all(c.holds({}) for c in residual.constraints)
        from .omega import is_empty_conjunct  # local import to avoid a cycle

        return not is_empty_conjunct(residual)

    # -- equality / printing ------------------------------------------------------------

    def key(self) -> Tuple:
        """Structural key used for deduplication (wildcards canonicalized).

        Computed lazily and cached on the instance — conjuncts are
        immutable, and equality/hashing/memoization all funnel through
        this key, so recomputing the wildcard canonicalization every time
        dominated profile traces before caching.
        """
        try:
            return self._key
        except AttributeError:
            pass
        if not self.wildcards:
            key = (frozenset(self.constraints), 0)
        else:
            renaming = {
                w: f"_w{i}" for i, w in enumerate(sorted(self.wildcards))
            }
            canon = self.rename(renaming)
            key = (frozenset(canon.constraints), len(self.wildcards))
        self._key = key
        return key

    def __getstate__(self):
        return (self.constraints, self.wildcards)

    def __setstate__(self, state):
        self.constraints, self.wildcards = state

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Conjunct):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __str__(self) -> str:
        body = " and ".join(str(c) for c in self.constraints) or "true"
        if self.wildcards:
            names = ",".join(self.wildcards)
            return f"exists({names}: {body})"
        return body

    def __repr__(self) -> str:
        return f"Conjunct({self})"


def stride_constraint(
    var: ExprLike, modulus: int, offset: ExprLike = 0
) -> Tuple[Constraint, str]:
    """Build ``var ≡ offset (mod modulus)`` as an equality with a wildcard.

    Returns ``(constraint, wildcard_name)`` where the constraint reads
    ``var - offset - modulus * wildcard == 0``.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    wildcard = fresh_name("a")
    expr = (
        LinExpr.var(wildcard).scaled(modulus)
        + offset
        - var
    )
    return Constraint(expr, "=="), wildcard
