"""Loop-nest generation from integer sets (scanning polyhedra).

Given a set over ordered dims ``[i1, .., in]``, :func:`generate_loops`
produces a loop AST that enumerates its points in lexicographic order:

* per-level bounds are computed by relaxed Fourier–Motzkin projection; any
  looseness introduced by the relaxation only produces zero-trip inner
  loops, never wrong points, because every original constraint is enforced
  as a bound at the level of its deepest dimension (integer ceil/floor
  division in :class:`~repro.isets.bounds.SymbolicBound` covers
  divisibility from non-unit equality coefficients);
* stride constraints ``exists(a : i = k*a + base)`` become loop steps with
  aligned lower bounds;
* constraints mentioning no dims at all (parameter preconditions) become a
  guard around the nest.

This is the code-generation service the paper obtains from the Omega
library's ``Codegen`` (Appendix A/B); the multiple-mappings variant lives in
:mod:`repro.isets.mmcodegen`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .bounds import (
    SymbolicBound,
    extract_bounds,
    relax_equalities,
    _fme_step,
)
from .constraint import Constraint
from .conjunct import Conjunct
from .errors import CodegenError
from .linexpr import LinExpr
from .omega import solve_equalities
from .ops import IntegerSet, _pivot_wildcard, split_disjoint


# ---------------------------------------------------------------------------
# Loop AST
# ---------------------------------------------------------------------------

@dataclass
class LoopNode:
    """``for var = max(lowers) .. min(uppers) step`` (aligned when strided).

    When ``stride > 1``, iteration starts at the smallest value that is
    ``>= max(lowers)`` and congruent to ``align_base`` modulo ``stride``.
    """

    var: str
    lowers: List[SymbolicBound]
    uppers: List[SymbolicBound]
    stride: int = 1
    align_base: Optional[LinExpr] = None
    body: List[Any] = field(default_factory=list)


@dataclass
class GuardNode:
    """``if all(constraints) and all(expr ≡ 0 mod m) : body``.

    ``mods`` carries divisibility tests arising from stride equalities
    beyond the first on a dimension (``exists w: k*w = expr``).
    ``alternatives``, when nonempty, additionally requires membership in
    *some* listed conjunct (a disjunctive guard; conjuncts may carry
    wildcards and are evaluated exactly).
    """

    constraints: List[Constraint]
    body: List[Any] = field(default_factory=list)
    mods: List[Tuple[LinExpr, int]] = field(default_factory=list)
    alternatives: List[Conjunct] = field(default_factory=list)


@dataclass
class StmtNode:
    """A leaf carrying an opaque payload supplied by the caller."""

    payload: Any


@dataclass
class SeqNode:
    """Sequential composition of loop fragments."""

    children: List[Any] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Stride detection
# ---------------------------------------------------------------------------

@dataclass
class _StrideInfo:
    dim: str
    modulus: int
    base: LinExpr  # expression over outer dims / parameters


def _detect_strides(
    conjunct: Conjunct, dims: Sequence[str]
) -> Tuple[List[Constraint], Dict[str, _StrideInfo], List[Tuple[LinExpr, int, int]]]:
    """Split off stride equalities.

    Returns ``(remaining_constraints, strides, mod_guards)``:

    * the *first* stride equality per dimension becomes a loop step
      (modulus = gcd of its wildcard coefficients, which is exact by
      Bezout since the wildcards occur nowhere else after pivoting);
    * further stride equalities on the same dim, and parameter-only
      divisibility constraints, become runtime modulus guards
      ``(expr, modulus, level)``, placed just inside loop ``level``.
    """
    import math as _math

    prepared = conjunct
    for wildcard in conjunct.wildcards:
        prepared = _pivot_wildcard(prepared, wildcard)
    depth = {d: k for k, d in enumerate(dims)}
    strides: Dict[str, _StrideInfo] = {}
    remaining: List[Constraint] = []
    mod_guards: List[Tuple[LinExpr, int, int]] = []
    for constraint in prepared.constraints:
        wilds = [w for w in prepared.wildcards if constraint.coeff(w)]
        if not wilds:
            remaining.append(constraint)
            continue
        if not constraint.is_equality:
            raise CodegenError(
                f"cannot scan wildcard constraint: {constraint}"
            )
        modulus = 0
        core = constraint.expr
        for w in wilds:
            modulus = _math.gcd(modulus, abs(constraint.coeff(w)))
            core = core.substitute(w, 0)
        in_dims = [v for v in core.variables() if v in depth]
        if not in_dims:
            # Parameter-only divisibility, e.g. exists(a : N = 2a).
            mod_guards.append((core.reduced_mod(modulus), modulus, 0))
            continue
        innermost = max(in_dims, key=lambda v: depth[v])
        coeff = core.coeff(innermost)
        if abs(coeff) != 1 or innermost in strides:
            # Second stride on this dim (or a non-unit coefficient): keep
            # it as an exact runtime divisibility guard at the dim's level.
            mod_guards.append(
                (core.reduced_mod(modulus), modulus, depth[innermost] + 1)
            )
            continue
        # core = c*innermost + R, c = ±1 → innermost ≡ -R/c (mod modulus).
        # The base is canonicalized mod the stride: emitted code only uses
        # its residue class, and the solver-produced representative is not
        # deterministic across process histories (fresh-name state).
        rest = core.substitute(innermost, 0)
        base = rest.scaled(-1) if coeff == 1 else rest
        strides[innermost] = _StrideInfo(
            innermost, modulus, base.reduced_mod(modulus)
        )
    return remaining, strides, mod_guards


# ---------------------------------------------------------------------------
# Nest construction
# ---------------------------------------------------------------------------

def _nest_for_conjunct(
    conjunct: Conjunct,
    dims: Sequence[str],
    body: List[Any],
    level_guards: Optional[Dict[int, List[Constraint]]] = None,
) -> List[Any]:
    """Build the loop spine for one conjunct around ``body``.

    ``level_guards[k]`` (0..len(dims)) are extra guard constraints placed
    just inside loop ``k`` (0 = outside all loops); callers use this for
    guard lifting.
    """
    protected = set(conjunct.free_variables())
    solved = solve_equalities(conjunct, protected)
    if solved is None:
        return []
    constraints, strides, mod_guards = _detect_strides(solved, dims)
    level_guards = level_guards or {}
    mods_by_level: Dict[int, List[Tuple[LinExpr, int]]] = {}
    for expr, modulus, level in mod_guards:
        mods_by_level.setdefault(level, []).append((expr, modulus))

    # Per-level constraint systems: level[k] mentions dims[0..k-1] only.
    levels: List[List[Constraint]] = [None] * (len(dims) + 1)
    system = relax_equalities(constraints)
    levels[len(dims)] = system
    for index in range(len(dims) - 1, -1, -1):
        system = _fme_step(system, dims[index])
        levels[index] = system

    current = body
    for index in range(len(dims) - 1, -1, -1):
        guards = [
            c for c in level_guards.get(index + 1, []) if not c.is_tautology()
        ]
        mods = mods_by_level.get(index + 1, [])
        if guards or mods:
            current = [
                GuardNode(_dedup_constraints(guards), current, mods)
            ]
        var = dims[index]
        lowers, uppers, _rest = extract_bounds(levels[index + 1], var)
        if not lowers or not uppers:
            raise CodegenError(
                f"dimension {var} of the scanned set is unbounded"
            )
        stride = strides.get(var)
        node = LoopNode(
            var=var,
            lowers=_dedup_bounds(lowers),
            uppers=_dedup_bounds(uppers),
            stride=stride.modulus if stride else 1,
            align_base=stride.base if stride else None,
            body=current,
        )
        current = [node]
    # Parameter-only guards (levels[0]) wrap the whole nest.
    outer_guards = [c for c in levels[0] if not c.is_tautology()]
    outer_guards += [
        c for c in level_guards.get(0, []) if not c.is_tautology()
    ]
    outer_mods = mods_by_level.get(0, [])
    if outer_guards or outer_mods:
        current = [
            GuardNode(_dedup_constraints(outer_guards), current, outer_mods)
        ]
    return current


def _dedup_bounds(bounds: List[SymbolicBound]) -> List[SymbolicBound]:
    seen = set()
    unique: List[SymbolicBound] = []
    for bound in bounds:
        key = (bound.expr, bound.divisor, bound.is_lower)
        if key not in seen:
            seen.add(key)
            unique.append(bound)
    return unique


def _dedup_constraints(constraints: List[Constraint]) -> List[Constraint]:
    seen = set()
    unique: List[Constraint] = []
    for constraint in constraints:
        if constraint not in seen:
            seen.add(constraint)
            unique.append(constraint)
    return unique


def run_loops(nodes: List[Any], env: Dict[str, int], on_stmt) -> None:
    """Execute a loop AST, calling ``on_stmt(payload, env)`` per statement.

    ``env`` must bind all symbolic constants; loop variables are bound as
    the nest executes.  This evaluator defines the AST's semantics and is
    used by tests to validate generated nests against point enumeration
    (the Python source emitter must agree with it).
    """
    for node in nodes:
        _run_node(node, env, on_stmt)


def _run_node(node: Any, env: Dict[str, int], on_stmt) -> None:
    if isinstance(node, StmtNode):
        on_stmt(node.payload, env)
    elif isinstance(node, SeqNode):
        run_loops(node.children, env, on_stmt)
    elif isinstance(node, GuardNode):
        passes = all(c.holds(env) for c in node.constraints) and all(
            expr.evaluate(env) % modulus == 0
            for expr, modulus in node.mods
        )
        if passes and node.alternatives:
            passes = any(alt.holds(env) for alt in node.alternatives)
        if passes:
            run_loops(node.body, env, on_stmt)
    elif isinstance(node, LoopNode):
        lower = max(b.evaluate(env) for b in node.lowers)
        upper = min(b.evaluate(env) for b in node.uppers)
        if node.stride > 1:
            base = node.align_base.evaluate(env)
            lower = lower + (base - lower) % node.stride
        for value in range(lower, upper + 1, node.stride):
            env[node.var] = value
            run_loops(node.body, env, on_stmt)
        env.pop(node.var, None)
    else:
        raise CodegenError(f"unknown loop AST node {node!r}")


def generate_loops(
    subset: IntegerSet,
    payload: Any,
    disjoint: bool = False,
) -> List[Any]:
    """Loop AST enumerating ``subset`` with ``StmtNode(payload)`` innermost.

    Set unions are made disjoint first (unless ``disjoint=True`` promises
    they already are) and yield one nest per piece, in order.
    """
    dims = subset.space.in_dims
    fragments: List[Any] = []
    if disjoint:
        pieces = [IntegerSet(subset.space, [c]) for c in subset.conjuncts]
    else:
        pieces = split_disjoint(subset.simplify())
    for piece in pieces:
        for conjunct in piece.conjuncts:
            fragments.extend(
                _nest_for_conjunct(conjunct, dims, [StmtNode(payload)])
            )
    return fragments
