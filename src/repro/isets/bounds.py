"""Bound extraction from conjuncts (used by enumeration and loop codegen).

``inequality_projection`` relaxes equalities into inequality pairs and runs
plain (real-shadow) Fourier–Motzkin to eliminate every variable except a
chosen kept set.  The result over-approximates the true projection, which is
safe for *bounds*: loop-nest generation re-checks exact membership with the
innermost constraints/guards, and point enumeration re-checks membership per
candidate.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .constraint import GEQ, Constraint, ceil_div, floor_div
from .conjunct import Conjunct
from .linexpr import LinExpr


def relax_equalities(constraints: Iterable[Constraint]) -> List[Constraint]:
    """Replace each equality ``e == 0`` by ``e >= 0`` and ``-e >= 0``."""
    relaxed: List[Constraint] = []
    for constraint in constraints:
        if constraint.is_equality:
            relaxed.append(Constraint(constraint.expr, GEQ))
            relaxed.append(Constraint(-constraint.expr, GEQ))
        else:
            relaxed.append(constraint)
    return relaxed


def _fme_step(
    constraints: List[Constraint], var: str
) -> List[Constraint]:
    survivors: List[Constraint] = []
    lowers: List[Tuple[int, LinExpr]] = []
    uppers: List[Tuple[int, LinExpr]] = []
    for constraint in constraints:
        coeff = constraint.coeff(var)
        if coeff == 0:
            survivors.append(constraint)
        elif coeff > 0:
            lowers.append((coeff, -constraint.expr.substitute(var, 0)))
        else:
            uppers.append((-coeff, constraint.expr.substitute(var, 0)))
    for (b, beta), (a, alpha) in itertools.product(lowers, uppers):
        shadow = Constraint(alpha.scaled(b) - beta.scaled(a), GEQ)
        if not shadow.is_tautology():
            survivors.append(shadow)
    # Deduplicate to keep the constraint count in check.
    seen: Set[Constraint] = set()
    unique = []
    for constraint in survivors:
        if constraint not in seen:
            seen.add(constraint)
            unique.append(constraint)
    return unique


def inequality_projection(
    conjunct: Conjunct, keep: Set[str]
) -> List[Constraint]:
    """Relaxed FME projection keeping only variables in ``keep``.

    The returned inequalities mention only ``keep`` variables and are implied
    by the conjunct (an over-approximation of its projection).
    """
    constraints = relax_equalities(conjunct.constraints)
    victims = [v for v in conjunct.variables() if v not in keep]
    for var in victims:
        constraints = _fme_step(constraints, var)
    return constraints


class SymbolicBound:
    """A one-sided bound ``var >= ceil(expr / divisor)`` (or floor for ub)."""

    __slots__ = ("expr", "divisor", "is_lower")

    def __init__(self, expr: LinExpr, divisor: int, is_lower: bool):
        if divisor <= 0:
            raise ValueError("divisor must be positive")
        self.expr = expr
        self.divisor = divisor
        self.is_lower = is_lower

    def ground_value(self) -> Optional[int]:
        if not self.expr.is_constant():
            return None
        if self.is_lower:
            return ceil_div(self.expr.constant, self.divisor)
        return floor_div(self.expr.constant, self.divisor)

    def evaluate(self, env: Dict[str, int]) -> int:
        value = self.expr.evaluate(env)
        if self.is_lower:
            return ceil_div(value, self.divisor)
        return floor_div(value, self.divisor)

    def __str__(self) -> str:
        func = "ceil" if self.is_lower else "floor"
        if self.divisor == 1:
            return str(self.expr)
        return f"{func}(({self.expr})/{self.divisor})"

    def __repr__(self) -> str:
        side = "lb" if self.is_lower else "ub"
        return f"SymbolicBound<{side}: {self}>"


def extract_bounds(
    constraints: Iterable[Constraint], var: str
) -> Tuple[List[SymbolicBound], List[SymbolicBound], List[Constraint]]:
    """Split constraints into lower bounds on ``var``, upper bounds, rest."""
    lowers: List[SymbolicBound] = []
    uppers: List[SymbolicBound] = []
    rest: List[Constraint] = []
    for constraint in constraints:
        coeff = constraint.coeff(var)
        if coeff == 0:
            rest.append(constraint)
            continue
        other = constraint.expr.substitute(var, 0)
        if constraint.is_equality:
            # coeff*var + other == 0: both a lower and an upper bound.
            if coeff > 0:
                lowers.append(SymbolicBound(-other, coeff, True))
                uppers.append(SymbolicBound(-other, coeff, False))
            else:
                lowers.append(SymbolicBound(other, -coeff, True))
                uppers.append(SymbolicBound(other, -coeff, False))
        elif coeff > 0:  # coeff*var >= -other
            lowers.append(SymbolicBound(-other, coeff, True))
        else:  # (-coeff)*var <= other
            uppers.append(SymbolicBound(other, -coeff, False))
    return lowers, uppers, rest


def ground_range(
    conjunct: Conjunct, var: str
) -> Tuple[Optional[int], Optional[int]]:
    """Concrete [lo, hi] range of ``var`` implied by the conjunct.

    All other variables are FME-eliminated first (relaxed projection), so
    stride witnesses and symbolic constants must already be substituted for
    the result to be ground.  Returns ``(None, None)`` when unbounded.
    """
    constraints = inequality_projection(conjunct, {var})
    lowers, uppers, _ = extract_bounds(constraints, var)
    lo: Optional[int] = None
    hi: Optional[int] = None
    for bound in lowers:
        value = bound.ground_value()
        if value is not None:
            lo = value if lo is None else max(lo, value)
    for bound in uppers:
        value = bound.ground_value()
        if value is not None:
            hi = value if hi is None else min(hi, value)
    return lo, hi
