"""Bound extraction from conjuncts (used by enumeration and loop codegen).

``inequality_projection`` relaxes equalities into inequality pairs and runs
plain (real-shadow) Fourier–Motzkin to eliminate every variable except a
chosen kept set.  The result over-approximates the true projection, which is
safe for *bounds*: loop-nest generation re-checks exact membership with the
innermost constraints/guards, and point enumeration re-checks membership per
candidate.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..cache.manager import caches
from .constraint import EQ, GEQ, Constraint, ceil_div, floor_div
from .conjunct import Conjunct
from .linexpr import LinExpr


def relax_equalities(constraints: Iterable[Constraint]) -> List[Constraint]:
    """Replace each equality ``e == 0`` by ``e >= 0`` and ``-e >= 0``."""
    relaxed: List[Constraint] = []
    for constraint in constraints:
        if constraint.is_equality:
            relaxed.append(Constraint(constraint.expr, GEQ))
            relaxed.append(Constraint(-constraint.expr, GEQ))
        else:
            relaxed.append(constraint)
    return relaxed


def _fme_step(
    constraints: List[Constraint], var: str
) -> List[Constraint]:
    survivors: List[Constraint] = []
    lowers: List[Tuple[int, LinExpr]] = []
    uppers: List[Tuple[int, LinExpr]] = []
    for constraint in constraints:
        coeff = constraint.coeff(var)
        if coeff == 0:
            survivors.append(constraint)
        elif coeff > 0:
            lowers.append((coeff, -constraint.expr.substitute(var, 0)))
        else:
            uppers.append((-coeff, constraint.expr.substitute(var, 0)))
    for (b, beta), (a, alpha) in itertools.product(lowers, uppers):
        shadow = Constraint(alpha.scaled(b) - beta.scaled(a), GEQ)
        if not shadow.is_tautology():
            survivors.append(shadow)
    # Deduplicate to keep the constraint count in check.
    seen: Set[Constraint] = set()
    unique = []
    for constraint in survivors:
        if constraint not in seen:
            seen.add(constraint)
            unique.append(constraint)
    return unique


def inequality_projection(
    conjunct: Conjunct, keep: Set[str]
) -> List[Constraint]:
    """Relaxed FME projection keeping only variables in ``keep``.

    The returned inequalities mention only ``keep`` variables and are implied
    by the conjunct (an over-approximation of its projection).
    """
    constraints = relax_equalities(conjunct.constraints)
    victims = [v for v in conjunct.variables() if v not in keep]
    for var in victims:
        constraints = _fme_step(constraints, var)
    return constraints


class SymbolicBound:
    """A one-sided bound ``var >= ceil(expr / divisor)`` (or floor for ub)."""

    __slots__ = ("expr", "divisor", "is_lower")

    def __init__(self, expr: LinExpr, divisor: int, is_lower: bool):
        if divisor <= 0:
            raise ValueError("divisor must be positive")
        self.expr = expr
        self.divisor = divisor
        self.is_lower = is_lower

    def ground_value(self) -> Optional[int]:
        if not self.expr.is_constant():
            return None
        if self.is_lower:
            return ceil_div(self.expr.constant, self.divisor)
        return floor_div(self.expr.constant, self.divisor)

    def evaluate(self, env: Dict[str, int]) -> int:
        value = self.expr.evaluate(env)
        if self.is_lower:
            return ceil_div(value, self.divisor)
        return floor_div(value, self.divisor)

    def __str__(self) -> str:
        func = "ceil" if self.is_lower else "floor"
        if self.divisor == 1:
            return str(self.expr)
        return f"{func}(({self.expr})/{self.divisor})"

    def __repr__(self) -> str:
        side = "lb" if self.is_lower else "ub"
        return f"SymbolicBound<{side}: {self}>"


def extract_bounds(
    constraints: Iterable[Constraint], var: str
) -> Tuple[List[SymbolicBound], List[SymbolicBound], List[Constraint]]:
    """Split constraints into lower bounds on ``var``, upper bounds, rest."""
    lowers: List[SymbolicBound] = []
    uppers: List[SymbolicBound] = []
    rest: List[Constraint] = []
    for constraint in constraints:
        coeff = constraint.coeff(var)
        if coeff == 0:
            rest.append(constraint)
            continue
        other = constraint.expr.substitute(var, 0)
        if constraint.is_equality:
            # coeff*var + other == 0: both a lower and an upper bound.
            if coeff > 0:
                lowers.append(SymbolicBound(-other, coeff, True))
                uppers.append(SymbolicBound(-other, coeff, False))
            else:
                lowers.append(SymbolicBound(other, -coeff, True))
                uppers.append(SymbolicBound(other, -coeff, False))
        elif coeff > 0:  # coeff*var >= -other
            lowers.append(SymbolicBound(-other, coeff, True))
        else:  # (-coeff)*var <= other
            uppers.append(SymbolicBound(other, -coeff, False))
    return lowers, uppers, rest


# ---------------------------------------------------------------------------
# Constraint-propagation presolve
# ---------------------------------------------------------------------------
#
# Iterative interval propagation over *multi-variable* constraints, the
# presolve discipline the MARS line of work (Ferry et al.) uses to keep
# exact-set pipelines tractable: for each constraint, bound one variable
# from the intervals of the others, to a fixpoint under a round cap and a
# per-conjunct work budget.  The propagated intervals are *implied* by the
# constraint system, so three sound uses follow:
#
# * a collapsed interval (``lo > hi``) proves the conjunct **empty**;
# * a width-0 interval **pins** its variable — the system implies
#   ``var == v``, so ``exists var: C  ==  C[var := v]`` exactly and the
#   variable can be substituted away without Fourier–Motzkin;
# * a constraint whose minimum over the interval box is ``>= 0`` is
#   **implied** by the system, so redundancy tests can drop it without an
#   emptiness query.
#
# All three are decision-level facts: using them on boolean paths
# (emptiness, redundancy) can never perturb a representation.  The pinning
# substitution is also used on the projection path (``eliminate_variable``),
# which *is* representation-carrying — `scripts/cache_roundtrip.py` gates
# that the six pinned benchmark artifacts stay byte-identical (DESIGN §14).

#: Fixpoint round cap: interval propagation tightens monotonically but a
#: chain like ``x <= y - 1, y <= x - 1`` only advances one unit per round,
#: so unbounded iteration could crawl.  Any cap is sound — intervals are
#: valid at every prefix of the fixpoint — and benchmark sweeps show the
#: useful tightenings land in the first two rounds (higher caps spend
#: their extra rounds crawling stride systems for no extra verdicts).
#: Overridable via ``REPRO_PRESOLVE_ROUNDS`` for tuning experiments.
PRESOLVE_MAX_ROUNDS = max(
    1, int(os.environ.get("REPRO_PRESOLVE_ROUNDS", "") or 2)
)

#: Per-conjunct work budget, counted in constraint-term visits across all
#: rounds.  A safety valve so one pathological conjunct cannot turn the
#: presolve itself into the hot spot; typical conjuncts (<= 64 constraints,
#: <= 8 variables) finish well under it.  Overridable via
#: ``REPRO_PRESOLVE_BUDGET``.
PRESOLVE_WORK_BUDGET = max(
    64, int(os.environ.get("REPRO_PRESOLVE_BUDGET", "") or 4096)
)

#: Shared default for window lookups (avoids a tuple allocation per get).
_UNBOUNDED: Tuple[Optional[int], Optional[int]] = (None, None)

#: Memoized presolve verdicts, keyed on the exact constraint tuple.  The
#: same context conjunct is re-presolved by every redundancy query against
#: it, so the hit rate on compile workloads is very high.
_PRESOLVE = caches.register("isets.presolve", maxsize=100_000)

_presolve_tls = threading.local()


def presolve_enabled() -> bool:
    """Presolve on/off switch (A/B gate for the byte-identity argument).

    Disabled process-wide by ``REPRO_PRESOLVE=0`` or per-thread via
    :func:`presolve_disabled` — used by ``scripts/cache_roundtrip.py`` to
    assert presolve-on and presolve-off compiles emit identical bytes.
    """
    if os.environ.get("REPRO_PRESOLVE", "1") == "0":
        return False
    return not getattr(_presolve_tls, "disabled", 0)


@contextmanager
def presolve_disabled() -> Iterator[None]:
    """Run the block with the presolve engine off (calling thread only)."""
    _presolve_tls.disabled = getattr(_presolve_tls, "disabled", 0) + 1
    try:
        yield
    finally:
        _presolve_tls.disabled -= 1


class PresolveResult:
    """Outcome of interval propagation over one constraint system.

    ``empty`` is a *sound* verdict: ``True`` only when the system provably
    has no integer solution (``reason`` says why: ``"gcd"`` for an
    indivisible equality, ``"interval"`` for a collapsed window or an
    unsatisfiable constraint over the window box).  ``intervals`` maps each
    variable to its implied ``(lo, hi)`` window (``None`` = unbounded on
    that side); ``pinned`` collects the width-0 windows.  ``multi`` is the
    tuple of multi-variable constraints (the corner-probe inputs);
    ``rounds`` and ``tightened`` count the propagation work done —
    surfaced as ``presolve.rounds`` / ``presolve.tightened``.
    ``form_lo``/``form_hi`` are the linear-form windows from the seed
    pass (canonical term-tuple -> bound), kept for the cross-system
    disjointness pretest (:func:`presolve_disjoint`).
    """

    __slots__ = (
        "empty", "reason", "intervals", "pinned", "multi",
        "rounds", "tightened", "form_lo", "form_hi",
    )

    def __init__(self, empty, reason, intervals, pinned, multi,
                 rounds, tightened, form_lo, form_hi):
        self.empty = empty
        self.reason = reason
        self.intervals = intervals
        self.pinned = pinned
        self.multi = multi
        self.rounds = rounds
        self.tightened = tightened
        self.form_lo = form_lo
        self.form_hi = form_hi


_EMPTY_DICT: Dict = {}


def _presolve_empty(reason: str, rounds: int, tightened: int
                    ) -> PresolveResult:
    return PresolveResult(
        True, reason, {}, {}, (), rounds, tightened,
        _EMPTY_DICT, _EMPTY_DICT,
    )


def presolve_constraints(
    constraints: Sequence[Constraint],
    max_rounds: int = PRESOLVE_MAX_ROUNDS,
    budget: int = PRESOLVE_WORK_BUDGET,
) -> PresolveResult:
    """Propagate integer intervals through a constraint system.

    Seed pass: single-variable constraints pin ``[lo, hi]`` windows (the
    GCD test fires via ``Constraint.is_false`` on the way).  Rounds: every
    multi-variable constraint ``sum(c_u * u) + k (>=|==) 0`` bounds each of
    its variables from the others' windows — with ``R`` the rest of the
    expression, ``c_v * v >= -R >= -R_max`` yields ``v >= ceil(-R_max /
    c_v)`` (and the mirrored forms), where ``R_max`` needs the upper window
    of positively- and the lower window of negatively-signed partners.
    Integer ceil/floor tightening is exact, so every derived window is
    implied by the system.
    """
    intervals: Dict[str, Tuple[Optional[int], Optional[int]]] = {}
    multi: List[Constraint] = []
    tightened = 0

    for constraint in constraints:
        false, tautology, terms, const = constraint.classify()
        if false:
            return _presolve_empty("gcd", 0, tightened)
        if tautology:
            continue
        if len(terms) != 1:
            multi.append(constraint)
            continue
        (var, coeff), = terms
        lo, hi = intervals.get(var, _UNBOUNDED)
        if constraint.kind == EQ:
            # coeff*var + const == 0; construction divides the content out
            # when it divides const, so a remainder here means infeasible.
            if const % coeff:
                return _presolve_empty("gcd", 0, tightened)
            value = -const // coeff
            if (lo is not None and value < lo) or (
                hi is not None and value > hi
            ):
                return _presolve_empty("interval", 0, tightened)
            intervals[var] = (value, value)
        elif coeff > 0:
            new_lo = ceil_div(-const, coeff)
            if hi is not None and new_lo > hi:
                return _presolve_empty("interval", 0, tightened)
            intervals[var] = (
                new_lo if lo is None else max(lo, new_lo), hi
            )
        else:
            new_hi = floor_div(const, -coeff)
            if lo is not None and new_hi < lo:
                return _presolve_empty("interval", 0, tightened)
            intervals[var] = (
                lo, new_hi if hi is None else min(hi, new_hi)
            )

    # Form-pair check: constraints sharing a variable part (up to sign)
    # window the linear form ``e_T`` directly — ``e_T + k >= 0`` gives
    # ``e_T >= -k`` and ``-e_T + k' >= 0`` gives ``e_T <= k'``.  A crossed
    # form window (``lo > hi``) proves emptiness that interval propagation
    # can *never* see: the variable box stays consistent while the two
    # half-planes share no point (``i+j <= 10`` against ``i+j >= 13``
    # settles the box at ``i, j in [3, 7]`` and crawls forever).  This is
    # the multi-variable analogue of normalize's bound pairing, decided
    # here before any propagation or elimination machinery runs.
    form_lo: Dict[tuple, int] = {}
    form_hi: Dict[tuple, int] = {}
    for constraint in multi:
        _, _, terms, const = constraint.classify()
        if terms[0][1] > 0:
            canon = terms
            flipped = False
        else:
            canon = tuple((name, -coeff) for name, coeff in terms)
            flipped = True
        lo = form_lo.get(canon)
        hi = form_hi.get(canon)
        if constraint.kind == EQ:
            value = const if flipped else -const
            new_lo = value if lo is None else max(lo, value)
            new_hi = value if hi is None else min(hi, value)
        elif not flipped:
            new_lo = -const if lo is None else max(lo, -const)
            new_hi = hi
        else:
            new_lo = lo
            new_hi = const if hi is None else min(hi, const)
        if new_lo is not None and new_hi is not None and new_lo > new_hi:
            return _presolve_empty("form", 0, tightened)
        if new_lo is not None:
            form_lo[canon] = new_lo
        if new_hi is not None:
            form_hi[canon] = new_hi

    rounds = 0
    work = 0
    pending = multi
    exhausted = False
    while pending and rounds < max_rounds and not exhausted:
        rounds += 1
        changed_vars: Set[str] = set()
        for constraint in pending:
            _, _, terms, const = constraint.classify()
            work += len(terms)
            if work > budget:
                exhausted = True
                break
            is_eq = constraint.kind == EQ

            # max of the expression over the window box; one missing
            # partner window is tolerated (it can still be bounded *by*
            # the others).
            total_max = const
            free_max: Optional[str] = None
            max_ok = True
            for var, coeff in terms:
                lo, hi = intervals.get(var, _UNBOUNDED)
                bound = hi if coeff > 0 else lo
                if bound is None:
                    if free_max is None:
                        free_max = var
                    else:
                        max_ok = False
                        break
                else:
                    total_max += coeff * bound
            if max_ok:
                if free_max is None and total_max < 0:
                    return _presolve_empty("interval", rounds, tightened)
                # R_max for a variable = max over the *other* terms (+
                # const): subtract the variable's own contribution, or
                # take the partial sum when it was the single unbounded
                # one — in which case it is the only tightenable target.
                if free_max is not None:
                    targets = ((free_max, constraint.coeff(free_max)),)
                else:
                    targets = terms
                for var, coeff in targets:
                    lo, hi = intervals.get(var, _UNBOUNDED)
                    if free_max is None:
                        own = hi if coeff > 0 else lo
                        r_max = total_max - coeff * own
                    else:
                        r_max = total_max
                    if coeff > 0:
                        new_lo = ceil_div(-r_max, coeff)
                        if lo is None or new_lo > lo:
                            if hi is not None and new_lo > hi:
                                return _presolve_empty(
                                    "interval", rounds, tightened
                                )
                            intervals[var] = (new_lo, hi)
                            tightened += 1
                            changed_vars.add(var)
                    else:
                        new_hi = floor_div(r_max, -coeff)
                        if hi is None or new_hi < hi:
                            if lo is not None and new_hi < lo:
                                return _presolve_empty(
                                    "interval", rounds, tightened
                                )
                            intervals[var] = (lo, new_hi)
                            tightened += 1
                            changed_vars.add(var)

            if not is_eq:
                continue
            # Equalities bound both sides: c_v*v = -R with R >= R_min
            # gives the mirrored window edge.
            total_min = const
            free_min: Optional[str] = None
            min_ok = True
            for var, coeff in terms:
                lo, hi = intervals.get(var, _UNBOUNDED)
                bound = lo if coeff > 0 else hi
                if bound is None:
                    if free_min is None:
                        free_min = var
                    else:
                        min_ok = False
                        break
                else:
                    total_min += coeff * bound
            if not min_ok:
                continue
            if free_min is None and total_min > 0:
                return _presolve_empty("interval", rounds, tightened)
            if free_min is not None:
                targets = ((free_min, constraint.coeff(free_min)),)
            else:
                targets = terms
            for var, coeff in targets:
                lo, hi = intervals.get(var, _UNBOUNDED)
                if free_min is None:
                    own = lo if coeff > 0 else hi
                    r_min = total_min - coeff * own
                else:
                    r_min = total_min
                if coeff > 0:
                    new_hi = floor_div(-r_min, coeff)
                    if hi is None or new_hi < hi:
                        if lo is not None and new_hi < lo:
                            return _presolve_empty(
                                "interval", rounds, tightened
                            )
                        intervals[var] = (lo, new_hi)
                        tightened += 1
                        changed_vars.add(var)
                else:
                    # a*var >= R with a = -coeff > 0 and R >= r_min.
                    new_lo = ceil_div(r_min, -coeff)
                    if lo is None or new_lo > lo:
                        if hi is not None and new_lo > hi:
                            return _presolve_empty(
                                "interval", rounds, tightened
                            )
                        intervals[var] = (new_lo, hi)
                        tightened += 1
                        changed_vars.add(var)

        if not changed_vars or exhausted:
            break
        # Worklist: only constraints touching a just-changed variable can
        # tighten anything next round.
        pending = [
            c
            for c in multi
            if any(name in changed_vars for name, _ in c.expr.terms())
        ]

    pinned = {
        var: lo
        for var, (lo, hi) in intervals.items()
        if lo is not None and lo == hi
    }
    return PresolveResult(
        False, None, intervals, pinned, tuple(multi), rounds, tightened,
        form_lo, form_hi,
    )


def presolve_conjunct(conjunct: Conjunct) -> PresolveResult:
    """Memoized :func:`presolve_constraints` over a conjunct's system.

    Two levels: a slot on the conjunct object itself (every redundancy
    query against a context re-presolves it, and the repeat calls hit the
    same object — the slot avoids even hashing the constraint tuple), then
    the shared LRU keyed on the exact constraint tuple (wildcard names
    participate via the constraints themselves).  The result is a pure
    function of the key.
    """
    if not caches.enabled:
        return presolve_constraints(conjunct.constraints)
    try:
        return conjunct._presolve
    except AttributeError:
        pass
    result = _PRESOLVE.memoize(
        conjunct.constraints,
        lambda: presolve_constraints(conjunct.constraints),
    )
    conjunct._presolve = result
    return result


def presolve_disjoint(a: Conjunct, b: Conjunct) -> bool:
    """``True`` when ``a`` and ``b`` provably share no integer point.

    Compares the two conjuncts' propagated variable windows and linear-form
    windows: a variable (or form) that must be ``>= lo`` throughout ``a``
    but ``<= hi < lo`` throughout ``b`` separates the two systems.  Sound
    one-way (``False`` = unknown).  Wildcard variables are skipped — the
    same name denotes *different* quantified variables on each side —
    and forms mentioning them likewise.

    This is the pretest behind ``disjoint_subtract``'s identity fast path:
    pieces of a disjoint decomposition mostly cover disjoint index
    sub-domains, so ``a - b = a`` far more often than not, and proving it
    from two memoized presolves is orders of magnitude cheaper than the
    gist-and-negate machinery.
    """
    pa = presolve_conjunct(a)
    pb = presolve_conjunct(b)
    if pa.empty or pb.empty:
        return True
    skip = set(a.wildcards)
    skip.update(b.wildcards)
    b_intervals = pb.intervals
    for var, (lo, hi) in pa.intervals.items():
        if var in skip:
            continue
        blo, bhi = b_intervals.get(var, _UNBOUNDED)
        if blo is not None and hi is not None and blo > hi:
            return True
        if bhi is not None and lo is not None and lo > bhi:
            return True
    if pa.form_lo or pb.form_lo:
        for first, second in ((pa, pb), (pb, pa)):
            form_hi = second.form_hi
            if not form_hi:
                continue
            for canon, lo in first.form_lo.items():
                hi = form_hi.get(canon)
                if (
                    hi is not None
                    and lo > hi
                    and not any(name in skip for name, _ in canon)
                ):
                    return True
    return False


def interval_implied(
    intervals: Dict[str, Tuple[Optional[int], Optional[int]]],
    constraint: Constraint,
) -> bool:
    """``constraint`` holds everywhere on the interval box.

    The box contains every solution of the system the intervals came from,
    so ``True`` means the system implies the constraint — a sound O(terms)
    replacement for the emptiness-based implication test.  Equalities are
    never decided here (the box would have to collapse onto the hyperplane,
    which the pinning path handles better).
    """
    if constraint.kind != GEQ:
        return False
    total = constraint.expr.constant
    for var, coeff in constraint.expr.terms():
        lo, hi = intervals.get(var, (None, None))
        bound = lo if coeff > 0 else hi
        if bound is None:
            return False
        total += coeff * bound
    return total >= 0


def interval_width(
    intervals: Dict[str, Tuple[Optional[int], Optional[int]]],
    var: str,
) -> Optional[int]:
    """Propagated window width of ``var`` (``None`` when unbounded)."""
    lo, hi = intervals.get(var, (None, None))
    if lo is None or hi is None:
        return None
    return hi - lo


def ground_range(
    conjunct: Conjunct, var: str
) -> Tuple[Optional[int], Optional[int]]:
    """Concrete [lo, hi] range of ``var`` implied by the conjunct.

    All other variables are FME-eliminated first (relaxed projection), so
    stride witnesses and symbolic constants must already be substituted for
    the result to be ground.  Returns ``(None, None)`` when unbounded.
    """
    constraints = inequality_projection(conjunct, {var})
    lowers, uppers, _ = extract_bounds(constraints, var)
    lo: Optional[int] = None
    hi: Optional[int] = None
    for bound in lowers:
        value = bound.ground_value()
        if value is not None:
            lo = value if lo is None else max(lo, value)
    for bound in uppers:
        value = bound.ground_value()
        if value is not None:
            hi = value if hi is None else min(hi, value)
    return lo, hi
