"""Multiple-mappings code generation (paper Appendix B, Section 5).

``codegen([(S1, stmt1), (S2, stmt2), ...], known=K)`` synthesizes a loop AST
that enumerates the tuples of the union ``S1 ∪ S2 ∪ ...`` in lexicographic
order, executing ``stmt_j`` at every tuple of ``S_j``; the same tuple in
several sets runs the statements in list order, which is the ordering the
KPR algorithm guarantees for statement groups.

Our implementation follows dHPF's usage pattern (statement groups within a
common scope):

1. compute the *disjoint disjunctive form* of the union;
2. generate one loop nest per disjoint piece;
3. inside each piece, guard each statement with the ``gist`` of its own
   iteration set relative to the piece (often empty, i.e. no guard);
4. factor constraints implied by ``known`` out of everything (the paper's
   trick of passing the enclosing scope's iteration set as ``Known`` to
   avoid re-checking guards at multiple levels);
5. ``lift_guards`` controls how many loop levels a guard may be hoisted
   out of (paper §5 "Limiting code replication": dHPF lifts guards one
   level for perfect nests but not out of loops containing communication).

Guards are attached at the deepest loop level they depend on, clamped by
``lift_guards``; this avoids the statement-duplication form of KPR lifting
(dHPF likewise disallows replication at procedure scope).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .conjunct import Conjunct
from .constraint import Constraint
from .errors import CodegenError
from .loopgen import (
    GuardNode,
    LoopNode,
    SeqNode,
    StmtNode,
    _nest_for_conjunct,
)
from .omega import gist_conjunct, is_empty_conjunct, normalize
from .ops import IntegerSet, split_disjoint


def _guard_depth(
    constraint: Constraint, dims: Sequence[str]
) -> int:
    """Index of the deepest dim the constraint mentions (-1 if none)."""
    depth = -1
    for index, dim in enumerate(dims):
        if constraint.coeff(dim):
            depth = index
    return depth


def codegen(
    mappings: Sequence[Tuple[IntegerSet, Any]],
    known: Optional[IntegerSet] = None,
    lift_guards: int = 1,
) -> List[Any]:
    """Generate a loop AST interleaving several statements (see module doc).

    ``known`` holds constraints guaranteed by the enclosing scope; they are
    stripped from all generated bounds and guards.  ``lift_guards`` limits
    how far out of the innermost level a guard may be placed (0 keeps all
    guards innermost).
    """
    if not mappings:
        return []
    dims = mappings[0][0].space.in_dims
    for subset, _ in mappings:
        if subset.space.in_dims != dims:
            raise CodegenError(
                "all iteration sets must share one tuple space"
            )
    known_conjunct = _known_conjunct(known, dims)

    # ``known`` prunes *guards* (statement residuals) only; loop bounds are
    # always generated so a fragment is self-contained.
    union = mappings[0][0]
    for subset, _ in mappings[1:]:
        union = union.union(subset)
    union = union.simplify()

    fragments: List[Any] = []
    for piece in split_disjoint(union):
        piece_conjunct = piece.conjuncts[0]
        residuals: List[Tuple[Any, object]] = []
        for subset, payload in mappings:
            residual = _stmt_guard(subset, piece_conjunct, known_conjunct)
            if residual is not None:
                residuals.append((payload, residual))
        if not residuals:
            continue

        # Guard constraints shared by every statement can be hoisted to
        # their natural depth (clamped by lift_guards) without duplicating
        # statements; the rest stay innermost around their statement.
        simple = [
            r for _, r in residuals
            if isinstance(r, Conjunct) and not r.wildcards
        ]
        common: List[Constraint] = []
        if len(simple) == len(residuals) and simple:
            candidate = list(simple[0].constraints)
            for residual in simple[1:]:
                present = set(residual.constraints)
                candidate = [c for c in candidate if c in present]
            common = candidate
        depth = len(dims)
        level_guards: Dict[int, List[Constraint]] = {}
        for constraint in common:
            natural = _guard_depth(constraint, dims) + 1
            level = max(natural, depth - lift_guards)
            level_guards.setdefault(level, []).append(constraint)

        body: List[Any] = []
        common_set = set(common)
        for payload, residual in residuals:
            if isinstance(residual, list):
                # Disjunctive within the piece: exact membership in any of
                # the statement's live conjuncts.
                body.append(
                    GuardNode([], [StmtNode(payload)],
                              alternatives=residual)
                )
                continue
            if residual.wildcards:
                body.append(
                    GuardNode([], [StmtNode(payload)],
                              alternatives=[residual])
                )
                continue
            own = [c for c in residual.constraints if c not in common_set]
            if own:
                body.append(GuardNode(own, [StmtNode(payload)]))
            else:
                body.append(StmtNode(payload))
        fragments.extend(
            _nest_for_conjunct(piece_conjunct, dims, body, level_guards)
        )
    return fragments


def _known_conjunct(
    known: Optional[IntegerSet], dims: Sequence[str]
) -> Conjunct:
    if known is None:
        return Conjunct()
    if len(known.conjuncts) > 1:
        raise CodegenError("known context must be a single conjunct")
    if not known.conjuncts:
        return Conjunct()
    renaming = dict(zip(known.space.in_dims, dims))
    return known.conjuncts[0].rename_wildcards_apart().rename(renaming)


def _stmt_guard(
    subset: IntegerSet,
    piece: Conjunct,
    known: Conjunct,
) -> Optional[Conjunct]:
    """Residual constraints under which the statement runs in this piece.

    Returns ``None`` when the statement's set does not meet the piece.
    The candidates are the statement's conjuncts intersected with the
    piece; the guard is the gist of the statement set relative to
    ``piece ∧ known``.  A union statement set inside one piece would need
    disjunctive guards; dHPF splits such statements into separate pieces,
    and so do we (the piece decomposition refines on every statement's
    conjuncts because the union was built from them).
    """
    context = piece.conjoin(known)
    live = [
        conjunct
        for conjunct in subset.conjuncts
        if not is_empty_conjunct(context.conjoin(conjunct))
    ]
    if not live:
        return None
    if len(live) == 1:
        return gist_conjunct(live[0], context)
    # Multiple live conjuncts within one disjoint piece: if one of them
    # covers the whole piece, no guard is needed; otherwise the guard is
    # disjunctive (membership in any live conjunct, evaluated exactly).
    residuals = [gist_conjunct(c, context) for c in live]
    if any(
        r is not None and not r.constraints and not r.wildcards
        for r in residuals
    ):
        return Conjunct()
    return [c.rename_wildcards_apart() for c in live]
