"""Affine constraints: equalities ``e == 0`` and inequalities ``e >= 0``.

Constraints are normalized on construction:

* the GCD of the coefficients is divided out — for inequalities the constant
  is *tightened* by floor-division, which is exact over the integers;
* an equality whose constant is not divisible by the coefficient GCD is
  marked structurally infeasible (``is_false`` on a ground constraint).
"""

from __future__ import annotations

import math
from typing import Mapping

from .linexpr import ExprLike, LinExpr, _as_expr

EQ = "=="
GEQ = ">="


class Constraint:
    """``expr == 0`` (kind EQ) or ``expr >= 0`` (kind GEQ)."""

    __slots__ = ("expr", "kind", "_hash", "_info")

    def __init__(self, expr: LinExpr, kind: str):
        if kind not in (EQ, GEQ):
            raise ValueError(f"bad constraint kind {kind!r}")
        content = expr.content()
        if content > 1:
            const = expr.constant
            coeffs = {n: c // content for n, c in expr.terms()}
            if kind == GEQ:
                expr = LinExpr._raw(coeffs, _floor_div(const, content))
            elif const % content == 0:
                expr = LinExpr._raw(coeffs, const // content)
            # else: keep as-is; an equality with indivisible constant is
            # unsatisfiable and detected by is_false / the equality solver.
        if kind == EQ and not expr.is_constant():
            # Canonical sign: first (sorted) variable has positive coefficient.
            first = expr.variables()[0]
            if expr.coeff(first) < 0:
                expr = -expr
        self.expr = expr
        self.kind = kind
        self._hash = None
        self._info = None

    # The cached hash is seeded per process (string hashing); keep it out of
    # pickled artifacts so cross-process loads rehash locally.

    def __getstate__(self):
        return (self.expr, self.kind)

    def __setstate__(self, state):
        self.expr, self.kind = state
        self._hash = None
        self._info = None

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def eq(lhs: ExprLike, rhs: ExprLike = 0) -> "Constraint":
        """``lhs == rhs``."""
        return Constraint(_as_expr(lhs) - _as_expr(rhs), EQ)

    @staticmethod
    def geq(lhs: ExprLike, rhs: ExprLike = 0) -> "Constraint":
        """``lhs >= rhs``."""
        return Constraint(_as_expr(lhs) - _as_expr(rhs), GEQ)

    @staticmethod
    def leq(lhs: ExprLike, rhs: ExprLike = 0) -> "Constraint":
        """``lhs <= rhs``."""
        return Constraint(_as_expr(rhs) - _as_expr(lhs), GEQ)

    @staticmethod
    def lt(lhs: ExprLike, rhs: ExprLike) -> "Constraint":
        """``lhs < rhs`` (i.e. ``lhs <= rhs - 1``)."""
        return Constraint(_as_expr(rhs) - _as_expr(lhs) - 1, GEQ)

    @staticmethod
    def gt(lhs: ExprLike, rhs: ExprLike) -> "Constraint":
        """``lhs > rhs``."""
        return Constraint(_as_expr(lhs) - _as_expr(rhs) - 1, GEQ)

    # -- queries --------------------------------------------------------------

    @property
    def is_equality(self) -> bool:
        return self.kind == EQ

    def is_tautology(self) -> bool:
        """Ground constraint that always holds."""
        if not self.expr.is_constant():
            return False
        if self.kind == EQ:
            return self.expr.constant == 0
        return self.expr.constant >= 0

    def is_false(self) -> bool:
        """Structurally unsatisfiable on its own."""
        if self.expr.is_constant():
            if self.kind == EQ:
                return self.expr.constant != 0
            return self.expr.constant < 0
        if self.kind == EQ:
            content = self.expr.content()
            return content > 1 and self.expr.constant % content != 0
        return False

    def classify(self) -> tuple:
        """``(is_false, is_tautology, terms, constant)``, cached.

        Presolve and normalization visit the same constraint objects
        thousands of times across overlapping conjuncts; bundling the four
        hot-path queries into one lazily cached tuple turns per-visit work
        into per-object work.
        """
        info = self._info
        if info is None:
            expr = self.expr
            info = self._info = (
                self.is_false(),
                self.is_tautology(),
                expr.terms(),
                expr.constant,
            )
        return info

    def coeff(self, name: str) -> int:
        return self.expr.coeff(name)

    def variables(self):
        return self.expr.variables()

    # -- transformation ---------------------------------------------------------

    def substitute(self, name: str, replacement: ExprLike) -> "Constraint":
        return Constraint(self.expr.substitute(name, replacement), self.kind)

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.kind)

    def negated(self):
        """Negate: returns a tuple of constraints whose *union* is ¬self.

        ``¬(e >= 0)`` is ``-e - 1 >= 0``; ``¬(e == 0)`` is
        ``e >= 1  ∪  -e >= 1``.
        """
        if self.kind == GEQ:
            return (Constraint(-self.expr - 1, GEQ),)
        return (
            Constraint(self.expr - 1, GEQ),
            Constraint(-self.expr - 1, GEQ),
        )

    def holds(self, env: Mapping[str, int]) -> bool:
        value = self.expr.evaluate(env)
        return value == 0 if self.kind == EQ else value >= 0

    # -- equality / printing ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self.kind == other.kind and self.expr == other.expr

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash((self.expr, self.kind))
        return h

    def __str__(self) -> str:
        op = "=" if self.kind == EQ else ">="
        # Move negative terms to the right-hand side for readability.
        pos = {}
        neg = {}
        for name, coeff in self.expr.terms():
            (pos if coeff > 0 else neg)[name] = abs(coeff)
        const = self.expr.constant
        lhs = LinExpr(pos, const if const > 0 else 0)
        rhs = LinExpr(neg, -const if const < 0 else 0)
        return f"{lhs} {op} {rhs}"

    def __repr__(self) -> str:
        return f"Constraint({self})"


def _floor_div(a: int, b: int) -> int:
    """Floor division for positive divisor (Python's // already floors)."""
    if b <= 0:
        raise ValueError("divisor must be positive")
    return a // b


def floor_div(a: int, b: int) -> int:
    """Mathematical floor(a / b) for nonzero b."""
    q, r = divmod(a, b)
    return q


def ceil_div(a: int, b: int) -> int:
    """Mathematical ceil(a / b) for nonzero b."""
    return -((-a) // b)


def gcd(a: int, b: int) -> int:
    return math.gcd(a, b)
