"""Parser for Omega-like set/map notation.

Accepted syntax (a pragmatic blend of Omega and isl notation)::

    { [i,j] : 1 <= i <= N and 2 <= j and exists(a : i = 2a + 1) }
    { [i,j] -> [p] : 25p + 1 <= j <= 25p + 25 and 0 <= p <= 3 }
    { [i] : i = 1 or i = N }

* Chains of relational operators are allowed: ``1 <= i < N+1``.
* ``2a`` is implicit multiplication (``2*a`` also accepted).
* ``or`` separates conjuncts; ``and`` (or ``&``) separates constraints.
* ``exists(vars : body)`` introduces wildcards scoped to its conjunct.
* Names not bound by the tuple(s) or an ``exists`` are symbolic constants.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from .constraint import Constraint
from .conjunct import Conjunct
from .errors import ParseError
from .linexpr import LinExpr
from .ops import IntegerMap, IntegerSet
from .space import Space, fresh_name

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<num>\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*'?)"
    r"|(?P<op><=|>=|==|!=|->|[-+*=<>{}\[\](),:&|])"
    r")"
)

_KEYWORDS = {"and", "or", "exists", "true", "false", "mod"}


class _Tokenizer:
    def __init__(self, text: str):
        self.tokens: List[Tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                if text[pos:].strip() == "":
                    break
                raise ParseError(
                    f"unexpected character {text[pos]!r} at position {pos}"
                )
            pos = match.end()
            if match.lastgroup == "num":
                self.tokens.append(("num", match.group("num")))
            elif match.lastgroup == "name":
                name = match.group("name")
                if name in _KEYWORDS:
                    self.tokens.append((name, name))
                else:
                    self.tokens.append(("name", name))
            else:
                self.tokens.append((match.group("op"), match.group("op")))
        self.index = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self.index += 1
        return token

    def expect(self, kind: str) -> str:
        token = self.next()
        if token[0] != kind:
            raise ParseError(f"expected {kind!r}, got {token[1]!r}")
        return token[1]

    def accept(self, kind: str) -> bool:
        token = self.peek()
        if token is not None and token[0] == kind:
            self.index += 1
            return True
        return False


class _Parser:
    def __init__(self, text: str):
        self.toks = _Tokenizer(text)

    # -- top level -----------------------------------------------------------

    def parse(self):
        self.toks.expect("{")
        in_dims = self._tuple()
        out_dims = None
        if self.toks.accept("->"):
            out_dims = self._tuple()
        conjuncts: List[Conjunct]
        if self.toks.accept(":"):
            conjuncts = self._formula()
        else:
            conjuncts = [Conjunct()]
        self.toks.expect("}")
        if self.toks.peek() is not None:
            raise ParseError(f"trailing input: {self.toks.peek()[1]!r}")
        if out_dims is None:
            return IntegerSet(Space(in_dims), conjuncts)
        return IntegerMap(Space(in_dims, out_dims), conjuncts)

    def _tuple(self) -> Tuple[str, ...]:
        self.toks.expect("[")
        names: List[str] = []
        if not self.toks.accept("]"):
            names.append(self.toks.expect("name"))
            while self.toks.accept(","):
                names.append(self.toks.expect("name"))
            self.toks.expect("]")
        return tuple(names)

    # -- formulas -------------------------------------------------------------

    def _formula(self) -> List[Conjunct]:
        conjuncts = [self._clause()]
        while self.toks.accept("or") or self.toks.accept("|"):
            self.toks.accept("|")
            conjuncts.append(self._clause())
        return conjuncts

    def _clause(self) -> Conjunct:
        constraints: List[Constraint] = []
        wildcards: List[str] = []
        self._atom(constraints, wildcards)
        while self.toks.accept("and") or self.toks.accept("&"):
            self.toks.accept("&")
            self._atom(constraints, wildcards)
        return Conjunct(constraints, wildcards)

    def _atom(
        self, constraints: List[Constraint], wildcards: List[str]
    ) -> None:
        token = self.toks.peek()
        if token is None:
            raise ParseError("unexpected end of formula")
        if token[0] == "true":
            self.toks.next()
            return
        if token[0] == "false":
            self.toks.next()
            constraints.append(Constraint.eq(LinExpr.const(1), 0))
            return
        if token[0] == "exists":
            self.toks.next()
            self.toks.expect("(")
            names = [self.toks.expect("name")]
            while self.toks.accept(","):
                names.append(self.toks.expect("name"))
            self.toks.expect(":")
            # Rename wildcards apart so nested/multiple exists never clash.
            renaming = {n: fresh_name(n) for n in names}
            inner_constraints: List[Constraint] = []
            self._chain(inner_constraints)
            while self.toks.accept("and") or self.toks.accept("&"):
                self._chain(inner_constraints)
            self.toks.expect(")")
            constraints.extend(
                c.rename(renaming) for c in inner_constraints
            )
            wildcards.extend(renaming.values())
            return
        self._chain(constraints)

    def _chain(self, constraints: List[Constraint]) -> None:
        relops = {"<=", "<", ">=", ">", "=", "=="}
        left = self._expr()
        token = self.toks.peek()
        if token is None or token[0] not in relops:
            raise ParseError("expected a relational operator")
        while token is not None and token[0] in relops:
            op = self.toks.next()[0]
            right = self._expr()
            constraints.append(self._relate(left, op, right))
            left = right
            token = self.toks.peek()

    def _relate(self, left: LinExpr, op: str, right: LinExpr) -> Constraint:
        if op in ("=", "=="):
            return Constraint.eq(left, right)
        if op == "<=":
            return Constraint.leq(left, right)
        if op == "<":
            return Constraint.lt(left, right)
        if op == ">=":
            return Constraint.geq(left, right)
        if op == ">":
            return Constraint.gt(left, right)
        raise ParseError(f"operator {op!r} is not supported (use set ops)")

    # -- affine expressions ------------------------------------------------------

    def _expr(self) -> LinExpr:
        expr = self._term()
        token = self.toks.peek()
        while token is not None and token[0] in ("+", "-"):
            op = self.toks.next()[0]
            term = self._term()
            expr = expr + term if op == "+" else expr - term
            token = self.toks.peek()
        return expr

    def _term(self) -> LinExpr:
        sign = 1
        while True:
            token = self.toks.peek()
            if token is not None and token[0] == "-":
                self.toks.next()
                sign = -sign
            elif token is not None and token[0] == "+":
                self.toks.next()
            else:
                break
        token = self.toks.next()
        if token[0] == "num":
            value = int(token[1])
            nxt = self.toks.peek()
            if nxt is not None and nxt[0] == "*":
                self.toks.next()
                factor = self._term()
                return factor.scaled(sign * value)
            if nxt is not None and nxt[0] == "name":
                name = self.toks.next()[1]
                return LinExpr({name: sign * value}, 0)
            if nxt is not None and nxt[0] == "(":
                self.toks.next()
                inner = self._expr()
                self.toks.expect(")")
                return inner.scaled(sign * value)
            return LinExpr.const(sign * value)
        if token[0] == "name":
            expr = LinExpr.var(token[1])
            nxt = self.toks.peek()
            if nxt is not None and nxt[0] == "*":
                self.toks.next()
                factor = self._term()
                return (expr * factor).scaled(sign)
            return expr.scaled(sign)
        if token[0] == "(":
            inner = self._expr()
            self.toks.expect(")")
            return inner.scaled(sign)
        raise ParseError(f"unexpected token {token[1]!r} in expression")


def parse_set(text: str) -> IntegerSet:
    """Parse an :class:`IntegerSet` from Omega-like notation."""
    result = _Parser(text).parse()
    if not isinstance(result, IntegerSet):
        raise ParseError("expected a set, found a map")
    return result


def parse_map(text: str) -> IntegerMap:
    """Parse an :class:`IntegerMap` from Omega-like notation."""
    result = _Parser(text).parse()
    if not isinstance(result, IntegerMap):
        raise ParseError("expected a map, found a set")
    return result
