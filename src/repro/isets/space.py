"""Tuple spaces for integer sets and maps.

A :class:`Space` records the ordered names of the input tuple dimensions and,
for maps, the output tuple dimensions.  Any variable appearing in a
constraint that is neither a tuple dimension nor a wildcard of its conjunct
is a *symbolic constant* (a free parameter such as ``N`` or ``P``), shared
globally by name as in the Omega library.

Binary operations align two spaces positionally: the second operand's tuple
variables are renamed to the first operand's, which is the behaviour the
paper's equations assume (e.g. intersecting ``loop`` sets built with
different index names).
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, Optional, Tuple

from .errors import SpaceMismatchError

_fresh_counter = itertools.count()

_fresh_tls = threading.local()


def fresh_name(stem: str = "e") -> str:
    """Return a globally fresh variable name.

    The ``$`` character cannot appear in parsed input, so fresh names can
    never collide with user-written dimension or parameter names.  Inside a
    :func:`scoped_fresh_names` block the name is drawn from the scope's own
    counter instead of the process-wide one.
    """
    scope = getattr(_fresh_tls, "scope", None)
    if scope is not None:
        tag, counter = scope
        return f"{stem}${tag}${next(counter)}"
    return f"{stem}${next(_fresh_counter)}"


@contextmanager
def scoped_fresh_names(tag: str) -> Iterator[None]:
    """Draw fresh names from a private, deterministic counter.

    Used by parallel query workers: a boolean query (emptiness, redundancy)
    may allocate wildcards internally, and letting worker threads race on
    the global counter would make the *main* path's allocations depend on
    thread scheduling — perturbing artifact bytes.  The scope's names embed
    ``tag`` (two ``$`` separators, so they still cannot collide with parsed
    input or global fresh names) and restart from 0, which is fine because
    boolean queries never leak names into results.  Thread-local; scopes
    nest, innermost wins.
    """
    previous = getattr(_fresh_tls, "scope", None)
    _fresh_tls.scope = (tag, itertools.count())
    try:
        yield
    finally:
        _fresh_tls.scope = previous


class Space:
    """The signature of a set (``out_dims is None``) or map."""

    __slots__ = ("in_dims", "out_dims")

    def __init__(
        self,
        in_dims: Iterable[str],
        out_dims: Optional[Iterable[str]] = None,
    ):
        self.in_dims: Tuple[str, ...] = tuple(in_dims)
        self.out_dims: Optional[Tuple[str, ...]] = (
            None if out_dims is None else tuple(out_dims)
        )
        names = list(self.in_dims) + list(self.out_dims or ())
        if len(set(names)) != len(names):
            raise SpaceMismatchError(f"duplicate dimension names in {self}")

    # -- queries -----------------------------------------------------------

    @property
    def is_map(self) -> bool:
        return self.out_dims is not None

    @property
    def arity_in(self) -> int:
        return len(self.in_dims)

    @property
    def arity_out(self) -> int:
        if self.out_dims is None:
            raise SpaceMismatchError("set space has no output tuple")
        return len(self.out_dims)

    def all_dims(self) -> Tuple[str, ...]:
        return self.in_dims + (self.out_dims or ())

    # -- alignment ---------------------------------------------------------

    def compatible_with(self, other: "Space") -> bool:
        """True if arities match (names may differ)."""
        if self.is_map != other.is_map:
            return False
        if len(self.in_dims) != len(other.in_dims):
            return False
        if self.is_map and len(self.out_dims) != len(other.out_dims):
            return False
        return True

    def alignment_renaming(self, other: "Space") -> Dict[str, str]:
        """Renaming that maps ``other``'s dims onto this space's dims."""
        if not self.compatible_with(other):
            raise SpaceMismatchError(
                f"cannot align space {other} with {self}"
            )
        renaming = dict(zip(other.in_dims, self.in_dims))
        if self.is_map:
            renaming.update(zip(other.out_dims, self.out_dims))
        return renaming

    # -- derived spaces ------------------------------------------------------

    def domain_space(self) -> "Space":
        return Space(self.in_dims)

    def range_space(self) -> "Space":
        if self.out_dims is None:
            raise SpaceMismatchError("set space has no range")
        return Space(self.out_dims)

    def reversed(self) -> "Space":
        if self.out_dims is None:
            raise SpaceMismatchError("cannot reverse a set space")
        return Space(self.out_dims, self.in_dims)

    def drop_dims(self, names: Iterable[str]) -> "Space":
        drop = set(names)
        in_dims = tuple(d for d in self.in_dims if d not in drop)
        out_dims = (
            None
            if self.out_dims is None
            else tuple(d for d in self.out_dims if d not in drop)
        )
        return Space(in_dims, out_dims)

    def rename(self, mapping: Dict[str, str]) -> "Space":
        in_dims = tuple(mapping.get(d, d) for d in self.in_dims)
        out_dims = (
            None
            if self.out_dims is None
            else tuple(mapping.get(d, d) for d in self.out_dims)
        )
        return Space(in_dims, out_dims)

    # -- equality / printing -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Space):
            return NotImplemented
        return self.in_dims == other.in_dims and self.out_dims == other.out_dims

    def __hash__(self) -> int:
        return hash((self.in_dims, self.out_dims))

    def __str__(self) -> str:
        ins = ",".join(self.in_dims)
        if self.out_dims is None:
            return f"[{ins}]"
        outs = ",".join(self.out_dims)
        return f"[{ins}] -> [{outs}]"

    def __repr__(self) -> str:
        return f"Space({self})"
