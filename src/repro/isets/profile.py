"""Set-engine profiler: per-operation counters, timings, size histograms.

The compile pipeline is a sequence of integer-set operations, and compile
time is dominated by a handful of them (``split_disjoint`` →
``constraint_redundant`` → ``is_empty_conjunct`` for the paper's Figure 3/4
equations on 2-D (BLOCK,BLOCK) layouts).  This module provides the
measurement layer that turns "jacobi is slow" into "374k redundancy queries
spent 390s in uncached emptiness eliminations":

* a :class:`SetOpProfiler` records, per operation, call counts, cumulative
  wall-clock seconds, the slowest single call, and log2-bucketed size
  histograms (conjunct counts for set-level ops, constraint counts for
  conjunct-level ops);
* named *event* counters track the algorithmic fast paths (GCD/interval
  emptiness pre-tests, syntactic redundancy hits, subsumption pruning) so
  their effect is visible rather than guessed;
* profilers attach per thread (:func:`profiled`), so concurrent service
  compiles account independently; snapshots merge for fleet-wide ``/stats``.

Overhead discipline: when no profiler is attached the instrumented call
sites pay one thread-local read and a ``None`` check — no clock reads, no
allocation.  Timings are *cumulative* (an op's seconds include the ops it
calls), like cProfile's cumtime; compare siblings, not parent to child.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

__all__ = [
    "SetOpProfiler",
    "active_profiler",
    "profiled",
    "record_event",
]

_tls = threading.local()


def active_profiler() -> Optional["SetOpProfiler"]:
    """The profiler attached to the calling thread, or ``None``."""
    return getattr(_tls, "profiler", None)


class _Profiled:
    """Context manager attaching a profiler to the calling thread."""

    __slots__ = ("profiler", "_previous")

    def __init__(self, profiler: Optional["SetOpProfiler"] = None):
        self.profiler = profiler if profiler is not None else SetOpProfiler()
        self._previous = None

    def __enter__(self) -> "SetOpProfiler":
        self._previous = getattr(_tls, "profiler", None)
        _tls.profiler = self.profiler
        return self.profiler

    def __exit__(self, *exc) -> None:
        _tls.profiler = self._previous


def profiled(profiler: Optional["SetOpProfiler"] = None) -> _Profiled:
    """``with profiled() as prof:`` — profile set ops on this thread."""
    return _Profiled(profiler)


def record_event(name: str, n: int = 1) -> None:
    """Count a named event (fast-path hit, pruning, ...) if profiling."""
    profiler = getattr(_tls, "profiler", None)
    if profiler is not None:
        profiler.count(name, n)


def _bucket(size: int) -> int:
    """Histogram bucket: the smallest power of two >= max(size, 1)."""
    return 1 << (max(size - 1, 0)).bit_length()


class _OpStats:
    """Counters for one operation."""

    __slots__ = (
        "calls", "seconds", "max_seconds",
        "size_in", "size_out", "max_in", "max_out",
    )

    def __init__(self):
        self.calls = 0
        self.seconds = 0.0
        self.max_seconds = 0.0
        self.size_in: Dict[int, int] = {}
        self.size_out: Dict[int, int] = {}
        self.max_in = 0
        self.max_out = 0


class SetOpProfiler:
    """Accumulates per-op counters; attach with :func:`profiled`.

    Not thread-safe by design — one profiler per compiling thread; use
    :meth:`merge_snapshot` to aggregate across threads/compiles.
    """

    __slots__ = ("ops", "events")

    def __init__(self):
        self.ops: Dict[str, _OpStats] = {}
        self.events: Dict[str, int] = {}

    # -- recording ---------------------------------------------------------

    def record(
        self,
        op: str,
        seconds: float,
        size_in: int,
        size_out: Optional[int] = None,
    ) -> None:
        stats = self.ops.get(op)
        if stats is None:
            stats = self.ops[op] = _OpStats()
        stats.calls += 1
        stats.seconds += seconds
        if seconds > stats.max_seconds:
            stats.max_seconds = seconds
        bucket = _bucket(size_in)
        stats.size_in[bucket] = stats.size_in.get(bucket, 0) + 1
        if size_in > stats.max_in:
            stats.max_in = size_in
        if size_out is not None:
            bucket = _bucket(size_out)
            stats.size_out[bucket] = stats.size_out.get(bucket, 0) + 1
            if size_out > stats.max_out:
                stats.max_out = size_out

    def count(self, name: str, n: int = 1) -> None:
        self.events[name] = self.events.get(name, 0) + n

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready dict of everything recorded so far."""
        ops = {}
        for name, stats in sorted(self.ops.items()):
            ops[name] = {
                "calls": stats.calls,
                "seconds": round(stats.seconds, 6),
                "max_seconds": round(stats.max_seconds, 6),
                "size_in": {
                    str(k): v for k, v in sorted(stats.size_in.items())
                },
                "size_out": {
                    str(k): v for k, v in sorted(stats.size_out.items())
                },
                "max_in": stats.max_in,
                "max_out": stats.max_out,
            }
        return {"ops": ops, "events": dict(sorted(self.events.items()))}

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` dict into this profiler (aggregation)."""
        for name, entry in (snapshot.get("ops") or {}).items():
            stats = self.ops.get(name)
            if stats is None:
                stats = self.ops[name] = _OpStats()
            stats.calls += entry.get("calls", 0)
            stats.seconds += entry.get("seconds", 0.0)
            stats.max_seconds = max(
                stats.max_seconds, entry.get("max_seconds", 0.0)
            )
            for key, value in (entry.get("size_in") or {}).items():
                bucket = int(key)
                stats.size_in[bucket] = stats.size_in.get(bucket, 0) + value
            for key, value in (entry.get("size_out") or {}).items():
                bucket = int(key)
                stats.size_out[bucket] = stats.size_out.get(bucket, 0) + value
            stats.max_in = max(stats.max_in, entry.get("max_in", 0))
            stats.max_out = max(stats.max_out, entry.get("max_out", 0))
        for name, value in (snapshot.get("events") or {}).items():
            self.events[name] = self.events.get(name, 0) + value

    def format_table(self, title: str = "set-engine profile") -> str:
        """Human-readable report (the ``--profile-sets`` output)."""
        lines = [title] if title else []
        lines.append(
            f"{'operation':24s} {'calls':>9s} {'seconds':>9s} "
            f"{'max ms':>8s} {'max in':>7s} {'max out':>8s}"
        )
        for name, stats in sorted(
            self.ops.items(), key=lambda kv: -kv[1].seconds
        ):
            lines.append(
                f"{name:24s} {stats.calls:9d} {stats.seconds:9.3f} "
                f"{stats.max_seconds * 1e3:8.2f} {stats.max_in:7d} "
                f"{stats.max_out:8d}"
            )
        interesting = [
            (name, stats) for name, stats in sorted(self.ops.items())
            if stats.size_in
        ]
        if interesting:
            lines.append("")
            lines.append("size distributions (log2 buckets: count at <= N)")
            for name, stats in interesting:
                dist = " ".join(
                    f"{k}:{v}" for k, v in sorted(stats.size_in.items())
                )
                lines.append(f"  {name:22s} in  {dist}")
                if stats.size_out:
                    dist = " ".join(
                        f"{k}:{v}" for k, v in sorted(stats.size_out.items())
                    )
                    lines.append(f"  {'':22s} out {dist}")
        if self.events:
            lines.append("")
            lines.append(f"{'event':40s} {'count':>10s}")
            for name, value in sorted(self.events.items()):
                lines.append(f"{name:40s} {value:10d}")
        return "\n".join(lines)


_clock = time.perf_counter


def timed(op: str, compute, size_in: int, size_of_result=None):
    """Run ``compute()`` under the active profiler (if any).

    ``size_of_result`` maps the result to its output size; ``None`` skips
    the output histogram.  When no profiler is attached this is a plain
    call — no clock reads.
    """
    profiler = getattr(_tls, "profiler", None)
    if profiler is None:
        return compute()
    start = _clock()
    result = compute()
    elapsed = _clock() - start
    profiler.record(
        op,
        elapsed,
        size_in,
        None if size_of_result is None else size_of_result(result),
    )
    return result
