"""Presburger integer sets and maps: the public algebra of the framework.

:class:`IntegerSet` and :class:`IntegerMap` are finite unions of
:class:`~repro.isets.conjunct.Conjunct` over a common
:class:`~repro.isets.space.Space`.  They provide the operation vocabulary the
paper's equations are written in: intersection, union, difference, domain,
range, composition, inverse, restriction and projection (paper Section 2 and
Appendix A).

Any variable that is neither a tuple dimension nor a wildcard is a *symbolic
constant* shared globally by name (``N``, ``P``, ``PIVOT``, ``myid``, ...).
"""

from __future__ import annotations

from typing import (
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from time import perf_counter as _clock

from ..cache.intern import intern_conjunct, presburger_key
from ..cache.manager import caches
from . import parallel
from .constraint import EQ, Constraint
from .conjunct import Conjunct
from .errors import InexactOperationError, SpaceMismatchError
from .bounds import presolve_disjoint
from .linexpr import ExprLike, LinExpr, _as_expr
from .omega import (
    gist_conjunct,
    is_empty_conjunct,
    normalize,
    project_out,
    remove_redundancies,
    solve_equalities,
)
from .profile import active_profiler, record_event
from .space import Space, fresh_name

# Memoized set algebra on identical operands (see repro.cache): keys are
# exact structural keys (class, space, ordered conjuncts — wildcard names
# included), so a cache hit returns precisely what recomputation would.
_SETALG = caches.register("isets.setalg", maxsize=20_000)


def _memoized_op(op: str, compute, *operands):
    if not caches.enabled:
        return compute()
    key = (op,) + tuple(presburger_key(v) for v in operands)
    return _SETALG.memoize(key, compute)


def _recorded_op(op: str, compute, size_in: int):
    """Run a set-level operation under the active profiler, if any.

    Sizes are conjunct counts (operand total in, result out)."""
    profiler = active_profiler()
    if profiler is None:
        return compute()
    start = _clock()
    result = compute()
    profiler.record(
        op, _clock() - start, size_in, len(result.conjuncts)
    )
    return result


def _prune_subsumed(conjuncts: List[Conjunct]) -> List[Conjunct]:
    """Drop disjuncts syntactically subsumed by another disjunct.

    If ``b``'s constraints are a subset of ``a``'s (both wildcard-free),
    then ``a ⊆ b`` as point sets and ``a`` is redundant in the union.
    Equal constraint sets keep the earliest occurrence.  Applied eagerly on
    the union/compose/subtract paths so disjunct counts stay minimal while
    intermediate results accumulate (the irredundant-representation
    discipline of Ferry/Derrien/Rajopadhye applied to our §5 pipeline).
    """
    if len(conjuncts) < 2:
        return conjuncts
    constraint_sets = [
        None if c.wildcards else frozenset(c.constraints)
        for c in conjuncts
    ]
    kept: List[Conjunct] = []
    for i, conjunct in enumerate(conjuncts):
        mine = constraint_sets[i]
        if mine is None:
            kept.append(conjunct)
            continue
        subsumed = False
        for j, theirs in enumerate(constraint_sets):
            if i == j or theirs is None:
                continue
            if theirs < mine or (theirs == mine and j < i):
                subsumed = True
                break
        if subsumed:
            record_event("fastpath.subsumed_pruned")
        else:
            kept.append(conjunct)
    return kept


class _Presburger:
    """Shared implementation of sets and maps (a union of conjuncts).

    Subclasses must be constructible as ``type(self)(space, conjuncts)``.
    """

    __slots__ = ("space", "conjuncts")

    def __init__(self, space: Space, conjuncts: Iterable[Conjunct] = ()):
        self.space = space
        cleaned: List[Conjunct] = []
        seen = set()
        for conjunct in conjuncts:
            simplified = normalize(conjunct)
            if simplified is None:
                continue
            key = simplified.key()
            if key in seen:
                continue
            seen.add(key)
            # Hash-consing: structurally identical conjuncts share one
            # canonical instance (and its lazily cached keys).
            cleaned.append(intern_conjunct(simplified))
        self.conjuncts: Tuple[Conjunct, ...] = tuple(cleaned)

    # -- interrogation -------------------------------------------------------

    def parameters(self) -> Tuple[str, ...]:
        """Free symbolic constants referenced by any conjunct."""
        dims = set(self.space.all_dims())
        names = set()
        for conjunct in self.conjuncts:
            names.update(
                v for v in conjunct.free_variables() if v not in dims
            )
        return tuple(sorted(names))

    def is_empty(self) -> bool:
        return all(is_empty_conjunct(c) for c in self.conjuncts)

    def is_obviously_universe(self) -> bool:
        return any(not c.constraints for c in self.conjuncts)

    # -- alignment -------------------------------------------------------------

    def _align_other(self, other: "_Presburger") -> "_Presburger":
        """Rename ``other``'s tuple dims onto this object's dims."""
        if other.space == self.space:
            return other
        renaming = self.space.alignment_renaming(other.space)
        captured = set(other.parameters()) & set(renaming.values())
        if captured:
            raise SpaceMismatchError(
                f"alignment would capture symbolic constants "
                f"{sorted(captured)}"
            )
        return other._rename_dims(renaming)

    def _rename_dims(self, renaming: Mapping[str, str]) -> "_Presburger":
        conjuncts = []
        for conjunct in self.conjuncts:
            safe = conjunct.rename_wildcards_apart()
            conjuncts.append(safe.rename(dict(renaming)))
        return type(self)(self.space.rename(dict(renaming)), conjuncts)

    # -- algebra (space-preserving) ------------------------------------------------

    def union(self, other: "_Presburger") -> "_Presburger":
        other = self._align_other(other)
        return _recorded_op(
            "set.union",
            lambda: type(self)(
                self.space,
                _prune_subsumed(list(self.conjuncts + other.conjuncts)),
            ),
            len(self.conjuncts) + len(other.conjuncts),
        )

    def intersect(self, other: "_Presburger") -> "_Presburger":
        other = self._align_other(other)
        return _recorded_op(
            "set.intersect",
            lambda: _memoized_op(
                "intersect", lambda: self._intersect_impl(other), self, other
            ),
            len(self.conjuncts) + len(other.conjuncts),
        )

    def _intersect_impl(self, other: "_Presburger") -> "_Presburger":
        conjuncts = [
            a.conjoin(b) for a in self.conjuncts for b in other.conjuncts
        ]
        return type(self)(self.space, conjuncts)

    def subtract(self, other: "_Presburger") -> "_Presburger":
        other = self._align_other(other)
        return _recorded_op(
            "set.subtract",
            lambda: _memoized_op(
                "subtract", lambda: self._subtract_impl(other), self, other
            ),
            len(self.conjuncts) + len(other.conjuncts),
        )

    def _subtract_impl(self, other: "_Presburger") -> "_Presburger":
        result = list(self.conjuncts)
        for conjunct in other.conjuncts:
            clauses: Optional[List[Conjunct]] = None
            pieces: List[Conjunct] = []
            for a in result:
                # Disjoint operands pass through whole: ``a - conjunct``
                # is ``a`` itself, with no complement fan-out to re-prune.
                if presolve_disjoint(a, conjunct):
                    record_event("fastpath.disjoint_pretest")
                    pieces.append(a)
                    continue
                if clauses is None:
                    clauses = _complement_conjunct(conjunct)
                for clause in clauses:
                    # A complement clause contradicting ``a``'s windows
                    # contributes an empty product — skipping it here
                    # keeps empty pieces out of the next round's fan-out.
                    if presolve_disjoint(a, clause):
                        record_event("fastpath.disjoint_pretest")
                        continue
                    merged = normalize(a.conjoin(clause))
                    if merged is not None and not merged.is_trivially_false():
                        pieces.append(merged)
            # Keep the working union minimal: subsumed pieces only multiply
            # the next round's complement products.
            result = _prune_subsumed(pieces)
        return type(self)(self.space, result)

    def constrain(self, constraints: Iterable[Constraint]) -> "_Presburger":
        """Conjoin extra constraints onto every conjunct."""
        extra = tuple(constraints)
        if not self.conjuncts:
            return type(self)(self.space, [])
        return type(self)(
            self.space, [c.with_constraints(extra) for c in self.conjuncts]
        )

    def partial_evaluate(self, env: Mapping[str, int]) -> "_Presburger":
        """Substitute integer values for symbolic constants."""
        bound_dims = [d for d in self.space.all_dims() if d in env]
        if bound_dims:
            raise SpaceMismatchError(
                f"cannot substitute tuple dims {bound_dims}; use fix_dims"
            )
        return type(self)(
            self.space,
            [c.partial_evaluate(env) for c in self.conjuncts],
        )

    # -- simplification -----------------------------------------------------------

    def simplify(self, full: bool = False) -> "_Presburger":
        """Normalize conjuncts, drop empty/duplicate/subsumed ones.

        With ``full=True`` also removes redundant inequalities within each
        conjunct — more expensive, used before code generation.  Memoized.
        """
        return _recorded_op(
            "set.simplify",
            lambda: _memoized_op(
                ("simplify", full), lambda: self._simplify_impl(full), self
            ),
            len(self.conjuncts),
        )

    def _simplify_impl(self, full: bool) -> "_Presburger":
        protected = set(self.space.all_dims()) | set(self.parameters())
        cleaned: List[Conjunct] = []
        for conjunct in self.conjuncts:
            solved = solve_equalities(conjunct, protected)
            if solved is None:
                continue
            # Eliminate wildcards exactly where possible (keeps stride
            # witnesses, removes FME-eliminable ones); may split pieces.
            pieces = (
                project_out(solved, list(solved.wildcards))
                if solved.wildcards
                else [solved]
            )
            for piece in pieces:
                if full:
                    piece = remove_redundancies(piece)
                    if piece is None:
                        continue
                if is_empty_conjunct(piece):
                    continue
                cleaned.append(piece)
        # Syntactic subsumption: if b's constraints are a subset of a's,
        # then a ⊆ b and a is redundant in the union.
        return type(self)(self.space, _prune_subsumed(cleaned))

    def gist(self, context: "_Presburger") -> "_Presburger":
        """Drop constraints implied by a context known to hold."""
        context = self._align_other(context)
        if len(context.conjuncts) != 1:
            raise InexactOperationError(
                "gist requires a one-conjunct context"
            )
        base = context.conjuncts[0]
        results = []
        for conjunct in self.conjuncts:
            g = gist_conjunct(conjunct, base)
            if g is not None:
                results.append(g)
        return type(self)(self.space, results)

    # -- comparisons -------------------------------------------------------------

    def is_subset(self, other: "_Presburger") -> bool:
        return self.subtract(other).is_empty()

    def is_equal(self, other: "_Presburger") -> bool:
        return self.is_subset(other) and other.is_subset(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Presburger):
            return NotImplemented
        if not self.space.compatible_with(other.space):
            return False
        return self.is_equal(other)

    def __hash__(self) -> int:  # structural, not semantic
        return hash((self.space, frozenset(c.key() for c in self.conjuncts)))

    # -- projection core ---------------------------------------------------------

    def _project_dims(self, names: Sequence[str]) -> List[Conjunct]:
        results: List[Conjunct] = []
        for conjunct in self.conjuncts:
            results.extend(project_out(conjunct, list(names)))
        return results

    # -- printing ------------------------------------------------------------------

    def _body_str(self) -> str:
        if not self.conjuncts:
            return "false"
        if len(self.conjuncts) == 1:
            return str(self.conjuncts[0])
        return " or ".join(f"({c})" for c in self.conjuncts)

    def __repr__(self) -> str:
        return str(self)


class IntegerSet(_Presburger):
    """A union of conjuncts over a single tuple space: ``{[i,j] : ...}``."""

    def __init__(
        self,
        space_or_dims: Union[Space, Sequence[str]],
        conjuncts: Iterable[Conjunct] = (),
    ):
        space = (
            space_or_dims
            if isinstance(space_or_dims, Space)
            else Space(space_or_dims)
        )
        if space.is_map:
            raise SpaceMismatchError("IntegerSet requires a set space")
        super().__init__(space, conjuncts)

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def universe(dims: Sequence[str]) -> "IntegerSet":
        return IntegerSet(Space(dims), [Conjunct()])

    @staticmethod
    def empty(dims: Sequence[str]) -> "IntegerSet":
        return IntegerSet(Space(dims), [])

    @staticmethod
    def from_constraints(
        dims: Sequence[str],
        constraints: Iterable[Constraint],
        wildcards: Iterable[str] = (),
    ) -> "IntegerSet":
        return IntegerSet(
            Space(dims), [Conjunct(tuple(constraints), tuple(wildcards))]
        )

    @property
    def dims(self) -> Tuple[str, ...]:
        return self.space.in_dims

    # -- projections ------------------------------------------------------------

    def project_out(self, *names: str) -> "IntegerSet":
        """Existentially eliminate the named dims (exactly)."""
        missing = [n for n in names if n not in self.space.in_dims]
        if missing:
            raise SpaceMismatchError(f"not dims of {self.space}: {missing}")
        conjuncts = self._project_dims(names)
        return IntegerSet(self.space.drop_dims(names), conjuncts)

    def project_onto(self, names: Sequence[str]) -> "IntegerSet":
        """Keep only the named dims, reordered as given."""
        if set(names) - set(self.space.in_dims):
            raise SpaceMismatchError("project_onto: unknown dim names")
        drop = [d for d in self.space.in_dims if d not in set(names)]
        projected = self.project_out(*drop)
        return IntegerSet(Space(tuple(names)), projected.conjuncts)

    # -- membership / slicing -----------------------------------------------------

    def contains(
        self, point: Sequence[int], env: Optional[Mapping[str, int]] = None
    ) -> bool:
        """Exact membership under parameter assignment ``env``."""
        if len(point) != self.space.arity_in:
            raise SpaceMismatchError("point arity mismatch")
        binding = dict(env or {})
        binding.update(zip(self.space.in_dims, point))
        return any(c.holds(binding) for c in self.conjuncts)

    def fix_dims(self, env: Mapping[str, ExprLike]) -> "IntegerSet":
        """Conjoin ``dim == value`` constraints (dims are kept)."""
        extra = [
            Constraint.eq(LinExpr.var(dim), _as_expr(value))
            for dim, value in env.items()
        ]
        return self.constrain(extra)

    def as_identity_map(self) -> "IntegerMap":
        """Lift to the identity map restricted to this set."""
        return IntegerMap.identity(self.space.in_dims).restrict_domain(self)

    def __str__(self) -> str:
        dims = ",".join(self.space.in_dims)
        return f"{{[{dims}] : {self._body_str()}}}"


class IntegerMap(_Presburger):
    """A union of conjuncts over an in/out space: ``{[i] -> [j] : ...}``."""

    def __init__(self, space: Space, conjuncts: Iterable[Conjunct] = ()):
        if not isinstance(space, Space) or not space.is_map:
            raise SpaceMismatchError("IntegerMap requires a map Space")
        super().__init__(space, conjuncts)

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def universe(
        in_dims: Sequence[str], out_dims: Sequence[str]
    ) -> "IntegerMap":
        return IntegerMap(Space(in_dims, out_dims), [Conjunct()])

    @staticmethod
    def empty(
        in_dims: Sequence[str], out_dims: Sequence[str]
    ) -> "IntegerMap":
        return IntegerMap(Space(in_dims, out_dims), [])

    @staticmethod
    def from_constraints(
        in_dims: Sequence[str],
        out_dims: Sequence[str],
        constraints: Iterable[Constraint],
        wildcards: Iterable[str] = (),
    ) -> "IntegerMap":
        return IntegerMap(
            Space(in_dims, out_dims),
            [Conjunct(tuple(constraints), tuple(wildcards))],
        )

    @staticmethod
    def identity(dims: Sequence[str]) -> "IntegerMap":
        out_dims = [f"{d}'" for d in dims]
        if len(set(out_dims) | set(dims)) != 2 * len(dims):
            out_dims = [fresh_name("o") for _ in dims]
        constraints = [
            Constraint.eq(LinExpr.var(i), LinExpr.var(o))
            for i, o in zip(dims, out_dims)
        ]
        return IntegerMap.from_constraints(dims, out_dims, constraints)

    @staticmethod
    def from_exprs(
        in_dims: Sequence[str],
        exprs: Sequence[ExprLike],
        out_dims: Optional[Sequence[str]] = None,
    ) -> "IntegerMap":
        """The graph of the affine function ``i -> exprs(i)``."""
        if out_dims is None:
            out_dims = [fresh_name("o") for _ in exprs]
        constraints = [
            Constraint.eq(LinExpr.var(o), _as_expr(e))
            for o, e in zip(out_dims, exprs)
        ]
        return IntegerMap.from_constraints(in_dims, out_dims, constraints)

    @property
    def in_dims(self) -> Tuple[str, ...]:
        return self.space.in_dims

    @property
    def out_dims(self) -> Tuple[str, ...]:
        return self.space.out_dims

    # -- map operations -----------------------------------------------------------

    def inverse(self) -> "IntegerMap":
        return IntegerMap(self.space.reversed(), self.conjuncts)

    def domain(self) -> IntegerSet:
        conjuncts = self._project_dims(self.space.out_dims)
        return IntegerSet(self.space.domain_space(), conjuncts)

    def range(self) -> IntegerSet:
        conjuncts = self._project_dims(self.space.in_dims)
        return IntegerSet(self.space.range_space(), conjuncts)

    def _aligned_set(
        self, subset: IntegerSet, dims: Sequence[str]
    ) -> IntegerSet:
        return IntegerSet(Space(dims), [])._align_other(subset)

    def restrict_domain(self, subset: IntegerSet) -> "IntegerMap":
        aligned = self._aligned_set(subset, self.space.in_dims)
        conjuncts = [
            a.conjoin(b)
            for a in self.conjuncts
            for b in aligned.conjuncts
        ]
        return IntegerMap(self.space, conjuncts)

    def restrict_range(self, subset: IntegerSet) -> "IntegerMap":
        aligned = self._aligned_set(subset, self.space.out_dims)
        conjuncts = [
            a.conjoin(b)
            for a in self.conjuncts
            for b in aligned.conjuncts
        ]
        return IntegerMap(self.space, conjuncts)

    def apply(self, subset: IntegerSet) -> IntegerSet:
        """Image of ``subset`` under the map."""
        return self.restrict_domain(subset).range()

    def preimage(self, subset: IntegerSet) -> IntegerSet:
        return self.restrict_range(subset).domain()

    def then(self, other: "IntegerMap") -> "IntegerMap":
        """Composition in pipeline order: apply ``self`` first, then ``other``.

        Matches the paper's ``R1 ∘ R2`` (Appendix A definition).
        """
        if self.space.arity_out != other.space.arity_in:
            raise SpaceMismatchError(
                f"cannot compose {self.space} with {other.space}"
            )
        return _recorded_op(
            "set.then",
            lambda: _memoized_op(
                "then", lambda: self._then_impl(other), self, other
            ),
            len(self.conjuncts) + len(other.conjuncts),
        )

    def _then_impl(self, other: "IntegerMap") -> "IntegerMap":
        mids = [fresh_name("m") for _ in self.space.out_dims]
        left_renaming = dict(zip(self.space.out_dims, mids))
        right_renaming = dict(zip(other.space.in_dims, mids))
        out_names = list(other.space.out_dims)
        taken = set(self.space.in_dims) | set(mids)
        for index, name in enumerate(out_names):
            if name in taken:
                out_names[index] = fresh_name("o")
            taken.add(out_names[index])
        for old, new in zip(other.space.out_dims, out_names):
            right_renaming[old] = new
        conjuncts = []
        for a in self.conjuncts:
            left = a.rename_wildcards_apart().rename(left_renaming)
            for b in other.conjuncts:
                right = b.rename_wildcards_apart().rename(right_renaming)
                merged = Conjunct(
                    left.constraints + right.constraints,
                    left.wildcards + right.wildcards,
                )
                conjuncts.extend(project_out(merged, mids))
        return IntegerMap(
            Space(self.space.in_dims, out_names), _prune_subsumed(conjuncts)
        )

    def compose(self, other: "IntegerMap") -> "IntegerMap":
        """Classical composition: apply ``other`` first, then ``self``."""
        return other.then(self)

    def fix_input(self, values: Mapping[str, ExprLike]) -> "IntegerMap":
        extra = [
            Constraint.eq(LinExpr.var(dim), _as_expr(value))
            for dim, value in values.items()
        ]
        return self.constrain(extra)

    def contains(
        self,
        in_point: Sequence[int],
        out_point: Sequence[int],
        env: Optional[Mapping[str, int]] = None,
    ) -> bool:
        binding = dict(env or {})
        binding.update(zip(self.space.in_dims, in_point))
        binding.update(zip(self.space.out_dims, out_point))
        return any(c.holds(binding) for c in self.conjuncts)

    def __str__(self) -> str:
        ins = ",".join(self.space.in_dims)
        outs = ",".join(self.space.out_dims)
        return f"{{[{ins}] -> [{outs}] : {self._body_str()}}}"


# ---------------------------------------------------------------------------
# Complementation (used by subtract)
# ---------------------------------------------------------------------------

def _pivot_wildcard(conjunct: Conjunct, wildcard: str) -> Conjunct:
    """Confine ``wildcard`` to a single defining equality.

    If the wildcard occurs in several constraints but one of them is an
    equality ``k*w + R == 0``, every other occurrence ``α*w + rest`` is
    rewritten exactly by scaling with ``|k|`` and substituting
    ``k*w = -R``.  Raises when no defining equality exists.
    """
    occurrences = [c for c in conjunct.constraints if c.coeff(wildcard)]
    if len(occurrences) <= 1:
        return conjunct
    pivot = next((c for c in occurrences if c.is_equality), None)
    if pivot is None:
        raise InexactOperationError(
            f"wildcard {wildcard} occurs only in inequalities; "
            f"cannot negate exactly"
        )
    k = pivot.coeff(wildcard)
    s_expr = -(pivot.expr.substitute(wildcard, 0))  # k*w == s_expr
    rewritten: List[Constraint] = []
    for constraint in conjunct.constraints:
        alpha = constraint.coeff(wildcard)
        if constraint is pivot or alpha == 0:
            rewritten.append(constraint)
            continue
        rest = constraint.expr.substitute(wildcard, 0)
        sign = 1 if k > 0 else -1
        new_expr = s_expr.scaled(sign * alpha) + rest.scaled(abs(k))
        rewritten.append(Constraint(new_expr, constraint.kind))
    return Conjunct(rewritten, conjunct.wildcards)


def _negation_groups(
    conjunct: Conjunct,
) -> List[Tuple[Conjunct, List[Conjunct]]]:
    """Per-constraint ``(positive, disjoint negation clauses)`` pairs.

    Wildcard-free constraints negate directly (the two clauses of a negated
    equality are disjoint).  A wildcard appearing in exactly one equality
    (stride form ``k*w = e``) negates into the other residues
    ``e ≡ r (mod k), r = 1..k-1`` — also pairwise disjoint.  Anything else
    raises :class:`InexactOperationError`; we never silently approximate.
    """
    prepared = solve_equalities(
        conjunct, protected=set(conjunct.free_variables())
    )
    if prepared is None:  # conjunct is empty
        return [(Conjunct([Constraint.eq(LinExpr.const(1), 0)]), [Conjunct()])]
    for wildcard in prepared.wildcards:
        prepared = _pivot_wildcard(prepared, wildcard)
    groups: List[Tuple[Conjunct, List[Conjunct]]] = []
    for constraint in prepared.constraints:
        wilds = [w for w in prepared.wildcards if constraint.coeff(w)]
        if not wilds:
            negations = [Conjunct([n]) for n in constraint.negated()]
            groups.append((Conjunct([constraint]), negations))
            continue
        if len(wilds) > 1 or not constraint.is_equality:
            raise InexactOperationError(
                f"cannot negate wildcard constraint: {constraint}"
            )
        wildcard = wilds[0]
        modulus = abs(constraint.coeff(wildcard))
        base = constraint.expr.substitute(wildcard, 0)
        if constraint.coeff(wildcard) > 0:
            base = -base
        # Constraint says base == modulus * wildcard; negation: base takes
        # one of the other residues mod modulus.
        negations = []
        for residue in range(1, modulus):
            fresh = fresh_name("a")
            shifted = LinExpr.var(fresh).scaled(modulus) + residue - base
            negations.append(Conjunct([Constraint(shifted, EQ)], [fresh]))
        positive = Conjunct([constraint], [wildcard])
        groups.append((positive, negations))
    return groups


def _complement_conjunct(conjunct: Conjunct) -> List[Conjunct]:
    """Clauses whose union is the complement of ``conjunct``."""
    return [
        clause
        for _, negations in _negation_groups(conjunct)
        for clause in negations
    ]


def disjoint_subtract(a: Conjunct, b: Conjunct) -> List[Conjunct]:
    """``a - b`` as a list of *pairwise disjoint* conjuncts.

    Uses the prefix decomposition
    ``a∧¬g1 ∪ a∧g1∧¬g2 ∪ a∧g1∧g2∧¬g3 ∪ ...`` over ``b``'s constraints.
    ``b`` is first gisted against ``a`` so constraints they share do not
    spawn (empty) pieces — the same complexity-control trick §5 of the
    paper describes for intermediate set sizes.

    Identity fast path: when the two conjuncts' presolve windows prove
    ``a`` and ``b`` disjoint, ``a - b`` is ``a`` itself — no gisting, no
    negation, and one piece instead of a fan of fragments that would have
    to be re-proved disjoint downstream.  On disjoint-decomposition
    workloads (where pieces mostly cover disjoint index sub-domains) this
    skips the majority of all subtract pairs.
    """
    if presolve_disjoint(a, b):
        record_event("fastpath.disjoint_pretest")
        return [a]
    reduced = _gist_keeping_wildcards(b, a)
    if reduced is None:  # b is structurally empty: a - b = a
        return [a]
    pieces: List[Conjunct] = []
    prefix = a
    for positive, negations in _negation_groups(reduced):
        for clause in negations:
            if presolve_disjoint(prefix, clause):
                record_event("fastpath.disjoint_pretest")
                continue
            piece = normalize(prefix.conjoin(clause))
            if piece is not None and not piece.is_trivially_false():
                pieces.append(piece)
        prefix = prefix.conjoin(positive)
    return pieces


def _gist_keeping_wildcards(b: Conjunct, a: Conjunct) -> Optional[Conjunct]:
    """Drop constraints of ``b`` implied by ``a`` — but never constraints
    involving wildcards, whose defining equalities must stay paired with
    their other occurrences for exact negation."""
    from .omega import incremental_redundancies

    simplified = normalize(b)
    if simplified is None:
        return None
    wild = set(simplified.wildcards)
    keep = [
        c
        for c in simplified.constraints
        if any(c.coeff(w) for w in wild)
    ]
    base = a.conjoin(Conjunct(tuple(keep), simplified.wildcards))
    free = [
        c
        for c in simplified.constraints
        if not any(c.coeff(w) for w in wild)
    ]
    kept_free = incremental_redundancies(base, free)
    return Conjunct(tuple(keep) + tuple(kept_free), simplified.wildcards)


def split_disjoint(subset: "IntegerSet") -> List["IntegerSet"]:
    """Pairwise-disjoint single-conjunct sets covering ``subset``.

    This is the "disjoint disjunctive form" step of MMCodeGen (paper §5).
    """
    profiler = active_profiler()
    start = _clock() if profiler is not None else 0.0
    pieces: List[Conjunct] = []
    for conjunct in subset.conjuncts:
        fresh = [conjunct]
        for existing in pieces:
            fresh = [
                remainder
                for piece in fresh
                for remainder in disjoint_subtract(piece, existing)
            ]
        # The per-remainder emptiness checks are independent boolean
        # queries; query_map fans them out when REPRO_SET_THREADS is set
        # and preserves input order either way.
        empty_flags = parallel.query_map("split", fresh, is_empty_conjunct)
        pieces.extend(
            p for p, empty in zip(fresh, empty_flags) if not empty
        )
    if profiler is not None:
        profiler.record(
            "split_disjoint",
            _clock() - start,
            len(subset.conjuncts),
            len(pieces),
        )
    return [IntegerSet(subset.space, [p]) for p in pieces]
