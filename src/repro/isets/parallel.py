"""Parallel evaluation of independent boolean set-engine queries.

The redundancy sweeps in ``remove_redundancies`` / ``incremental_redundancies``
and the emptiness filter in ``split_disjoint`` issue batches of queries that
are pure functions of their (interned, immutable) inputs — no query reads
another's result.  This module fans such a batch across a small thread pool
while keeping the engine's determinism guarantees:

* **Results are position-stable.**  ``query_map`` returns results in input
  order, and each query computes exactly what the sequential path would —
  callers only parallelize *prescreens* whose outcomes are scheduling-
  independent (see the monotonicity arguments at the call sites).
* **Fresh names cannot leak.**  Worker threads run under
  :func:`~.space.scoped_fresh_names` with a deterministic per-item tag, so
  the process-global counter — and therefore every artifact byte the main
  thread produces — is untouched by thread scheduling.
* **Profiling still adds up.**  Each worker gets a private
  :class:`~.profile.SetOpProfiler`; their snapshots merge into the caller's
  profiler in input order after the batch (only the commutative counters
  matter, but the order is fixed anyway).

The pool is sized by ``REPRO_SET_THREADS`` and **off by default** (size 0):
under CPython's GIL these CPU-bound queries do not overlap, and the compile
service already parallelizes across *processes* — :func:`disable` is called
in its pool workers so nested fan-out cannot oversubscribe the host.  The
switch exists for free-threaded builds and for I/O-light experimentation.

Sequential fallback triggers whenever the pool is off, the batch is small,
or the calling thread has caching disabled (the ``caching="off"`` A/B path
is thread-local, and worker threads would silently re-enable memoization).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from ..cache.manager import caches
from .profile import SetOpProfiler, active_profiler, profiled
from .space import scoped_fresh_names

__all__ = ["disable", "pool_size", "query_map"]

T = TypeVar("T")
R = TypeVar("R")

#: Batches below this size run sequentially — thread handoff costs more
#: than the queries themselves.
MIN_PARALLEL_BATCH = 8

_lock = threading.Lock()
_pool: Optional[ThreadPoolExecutor] = None
_pool_threads = 0
_disabled = False


def pool_size() -> int:
    """Configured thread count (``REPRO_SET_THREADS``, default 0 = off)."""
    if _disabled:
        return 0
    try:
        return max(0, int(os.environ.get("REPRO_SET_THREADS", "0")))
    except ValueError:
        return 0


def disable() -> None:
    """Force sequential evaluation for the rest of this process.

    Called by compile-service pool workers: the service already runs one
    compile per core, so per-compile thread fan-out would oversubscribe.
    """
    global _disabled, _pool
    with _lock:
        _disabled = True
        pool = _pool
        _pool = None
    if pool is not None:
        pool.shutdown(wait=False)


def _executor(threads: int) -> ThreadPoolExecutor:
    global _pool, _pool_threads
    with _lock:
        if _pool is None or _pool_threads != threads:
            if _pool is not None:
                _pool.shutdown(wait=False)
            _pool = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix="repro-setq"
            )
            _pool_threads = threads
        return _pool


def query_map(
    tag: str,
    items: Sequence[T],
    fn: Callable[[T], R],
) -> List[R]:
    """Evaluate ``fn`` over ``items``, results in input order.

    ``fn`` must be a pure boolean-path query (no representation output, no
    shared mutable state beyond the thread-safe caches).  ``tag`` keys the
    per-item fresh-name scopes; use a distinct tag per call site.  Falls
    back to plain sequential evaluation unless a pool is configured, the
    batch is worth it, and caching is enabled on the calling thread.
    """
    threads = pool_size()
    if (
        threads < 2
        or len(items) < MIN_PARALLEL_BATCH
        or not caches.enabled
    ):
        return [fn(item) for item in items]

    caller_profiler = active_profiler()

    def run(index: int, item: T):
        profiler = SetOpProfiler() if caller_profiler is not None else None
        with scoped_fresh_names(f"{tag}{index}"):
            if profiler is None:
                return fn(item), None
            with profiled(profiler):
                return fn(item), profiler

    futures = [
        _executor(threads).submit(run, index, item)
        for index, item in enumerate(items)
    ]
    results: List[R] = []
    error: Optional[BaseException] = None
    for future in futures:
        try:
            value, profiler = future.result()
        except BaseException as exc:  # propagate the earliest item's error
            if error is None:
                error = exc
            continue
        if error is None:
            results.append(value)
            if profiler is not None and caller_profiler is not None:
                caller_profiler.merge_snapshot(profiler.snapshot())
    if error is not None:
        raise error
    return results
