"""Command-line interface: compile and run mini-HPF programs.

Usage::

    python -m repro compile prog.hpf [--source | --listing | --phases]
    python -m repro run prog.hpf --nprocs 4 --param n=64 --param niter=3
    python -m repro sets '{[i] : 1 <= i <= 20 and exists(a : i = 3a)}'
    python -m repro cache stats|clear [--cache-dir DIR]
    python -m repro serve [--port 8737] [--shards 8] [--cache-dir DIR]
                          [--workers N] [--queue-depth D]
                          [--quarantine-after K] [--compile-deadline-s S]
    python -m repro submit prog.hpf [--url http://host:port] [--json]

``compile`` prints the compilation listing (default), the generated SPMD
node program, or the phase-time breakdown.  ``run`` executes on the
simulated machine, validates against the serial interpreter, and reports
messages/bytes and the cost-model prediction.  ``sets`` evaluates a set
expression and enumerates it (small sets; parameters via --param).
``cache`` inspects or clears the persistent compile cache; ``compile``
and ``run`` consult that cache when ``--cache-dir`` is given (default:
``$REPRO_CACHE_DIR`` when set), making recompiles of unchanged programs
near-free.  ``serve`` starts the long-lived compile server (DESIGN §10);
``--workers N`` adds the supervised compile worker pool (DESIGN §13:
parallel cold compiles, crash respawn, deadlines, load shedding,
poison-pill quarantine, graceful SIGTERM drain).  ``submit`` sends a
compile+run request to a server; ``submit --json`` emits the
machine-readable response for scripts and CI.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import Dict, List

# Piping output into `head` is routine; die quietly on SIGPIPE.
try:
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)
except (AttributeError, ValueError):
    pass


def _parse_params(pairs: List[str]) -> Dict[str, int]:
    params: Dict[str, int] = {}
    for pair in pairs or []:
        name, _, value = pair.partition("=")
        if not value:
            raise SystemExit(f"--param expects name=value, got {pair!r}")
        params[name] = int(value)
    return params


def _options_from(args) -> "CompilerOptions":
    from .core.options import CompilerOptions

    return CompilerOptions(
        coalesce=not args.no_coalesce,
        inplace=not args.no_inplace,
        loop_split=args.loop_split,
        active_vp=not args.no_active_vp,
        buffer_mode=args.buffer_mode,
        compute=args.compute,
        caching=args.caching,
        cache_dir=args.cache_dir,
        profile_sets=getattr(args, "profile_sets", False),
    )


def _add_option_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-coalesce", action="store_true",
                        help="disable message coalescing (§3.2)")
    parser.add_argument("--no-inplace", action="store_true",
                        help="disable in-place communication (§3.3)")
    parser.add_argument("--loop-split", action="store_true",
                        help="enable non-local index-set splitting (§3.4)")
    parser.add_argument("--no-active-vp", action="store_true",
                        help="disable active-VP restriction (§4.1)")
    parser.add_argument("--buffer-mode", choices=("overlap", "direct"),
                        default="overlap")
    parser.add_argument("--compute", choices=("kernels", "scalar"),
                        default="kernels",
                        help="compute plane: 'kernels' lowers qualifying "
                             "affine loop pieces to numpy strided-slice "
                             "kernels, 'scalar' interprets every statement "
                             "point-by-point (A/B oracle)")
    parser.add_argument("--caching", choices=("on", "off"), default="on",
                        help="'off' bypasses set-operation memoization and "
                             "the persistent compile cache (A/B path)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        default=os.environ.get("REPRO_CACHE_DIR"),
                        help="persistent compile-cache directory (default: "
                             "$REPRO_CACHE_DIR if set, else disabled)")
    parser.add_argument("--profile-sets", action="store_true",
                        help="profile the integer-set engine during the "
                             "compile: per-op counters, timings and size "
                             "histograms, printed after the normal output")


def cmd_compile(args) -> int:
    from . import compile_program

    source = open(args.program).read()
    compiled = compile_program(source, _options_from(args))
    if args.source:
        print(compiled.source)
    elif args.phases:
        title = "compile-time phases"
        if compiled.cache_hit:
            title += " (artifact served from the compile cache)"
        print(compiled.phases.format_table(title))
    else:
        print(compiled.listing())
    if args.profile_sets and not args.phases:
        # --phases already appends the set-engine profile via format_table.
        for line in compiled.phases.format_set_stats():
            print(line)
        if not compiled.phases.set_stats:
            print("(set-engine profile empty: artifact served from the "
                  "compile cache)")
    return 0


def cmd_run(args) -> int:
    from . import compile_program, run_compiled
    from .runtime.errors import CommunicationError
    from .runtime.faults import FaultPlan
    from .runtime.harness import RetryPolicy
    from .runtime.options import RuntimeOptions

    source = open(args.program).read()
    compiled = compile_program(source, _options_from(args))
    runtime_options = RuntimeOptions(backend=args.backend)
    if args.recv_timeout is not None:
        runtime_options = runtime_options.with_(
            recv_timeout_s=args.recv_timeout
        )
    if getattr(args, "comm_latency", None):
        runtime_options = runtime_options.with_(
            comm_latency_s=args.comm_latency
        )
    if args.fault_spec:
        try:
            plan = FaultPlan.parse(args.fault_spec, seed=args.fault_seed)
        except ValueError as exc:
            raise SystemExit(f"--fault-spec: {exc}")
        runtime_options = runtime_options.with_(fault_plan=plan)
    fallback = tuple(
        name.strip()
        for name in (args.fallback_backends or "").split(",")
        if name.strip()
    )
    if fallback:
        runtime_options = runtime_options.with_(fallback_backends=fallback)
    retry_policy = (
        RetryPolicy(max_attempts=args.retries + 1)
        if args.retries or fallback
        else None
    )
    try:
        outcome = run_compiled(
            compiled,
            params=_parse_params(args.param),
            nprocs=args.nprocs,
            validate=not args.no_validate,
            backend=args.backend,
            runtime_options=runtime_options,
            retry_policy=retry_policy,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    except CommunicationError as exc:
        print(f"run failed: {type(exc).__name__}", file=sys.stderr)
        print(str(exc), file=sys.stderr)
        for record in getattr(exc, "attempts", []):
            print(
                f"  attempt {record.attempt} [{record.backend}]: "
                f"{record.outcome}",
                file=sys.stderr,
            )
        return 1
    status = "skipped" if args.no_validate else "OK"
    print(f"validation: {status}")
    print(f"backend:    {outcome.backend}")
    if len(outcome.attempts) > 1:
        print("attempts:")
        for record in outcome.attempts:
            backoff = (
                f" (backoff {record.backoff_s * 1e3:.0f} ms)"
                if record.backoff_s
                else ""
            )
            print(
                f"  {record.attempt}: [{record.backend}] "
                f"{record.outcome}{backoff}"
            )
    print(f"processors: {args.nprocs}")
    print(f"messages:   {outcome.stats.total_messages} "
          f"({outcome.stats.total_bytes} payload bytes, "
          f"{outcome.stats.total_copies} copied)")
    print(f"collectives: "
          f"{sum(r.trace.collectives for r in outcome.results)}")
    print(f"predicted time: {outcome.predicted_time * 1e3:.3f} ms "
          f"(serial estimate {outcome.serial_time * 1e3:.3f} ms, "
          f"speedup {outcome.speedup:.2f}x)")
    if outcome.timings:
        print(f"measured wall-clock: {outcome.max_rank_wall_s * 1e3:.3f} ms "
              f"max-rank (launch {outcome.launch_wall_s * 1e3:.3f} ms)")
        for t in outcome.timings:
            comm = (
                f", comm {t.comm_wall_s * 1e3:.3f} ms"
                if t.comm_wall_s else ""
            )
            print(f"  rank {t.rank}: {t.wall_s * 1e3:.3f} ms{comm}")
    sched = outcome.stats.scheduler
    if sched:
        print(
            f"scheduler:  {sched.get('workers')} workers, "
            f"{sched.get('executed')}/{sched.get('units')} units, "
            f"{sched.get('steals')} steals, "
            f"ready depth {sched.get('max_ready_depth')}, "
            f"critical path {sched.get('critical_path_units')} units / "
            f"{float(sched.get('critical_path_s', 0.0)) * 1e3:.3f} ms"
        )
        plan_shape = sched.get("plan") or {}
        print(
            f"  plan: {plan_shape.get('templates', 0)} templates -> "
            f"{plan_shape.get('sccs', 0)} SCCs "
            f"({plan_shape.get('cycles_collapsed', 0)} cycles collapsed, "
            f"{plan_shape.get('loops_unrolled', 0)} loops unrolled, "
            f"{plan_shape.get('edges', 0)} edges)"
        )
    cache_stats = compiled.phases.cache_stats
    if compiled.cache_hit:
        print("compile cache: warm (artifact reused)")
    elif cache_stats:
        hits = sum(e.get("hits", 0) for e in cache_stats.values())
        lookups = hits + sum(
            e.get("misses", 0) for e in cache_stats.values()
        )
        print(f"set-op memoization: {hits}/{lookups} lookups hit "
              f"({100.0 * hits / max(lookups, 1):.1f}%)")
    for name in sorted(outcome.results[0].scalars):
        print(f"scalar {name} = {outcome.results[0].scalars[name]}")
    if args.profile_sets:
        for line in compiled.phases.format_set_stats():
            print(line)
        if not compiled.phases.set_stats:
            print("(set-engine profile empty: artifact served from the "
                  "compile cache)")
    return 0


def cmd_sets(args) -> int:
    from .isets import enumerate_points, parse_map, parse_set
    from .isets.errors import ParseError

    params = _parse_params(args.param)
    text = args.expression
    try:
        obj = parse_set(text)
    except ParseError:
        obj = parse_map(text)
    print(obj)
    if not obj.space.is_map:
        try:
            points = enumerate_points(obj, params)
        except Exception as exc:
            print(f"(not enumerable: {exc})")
            return 0
        print(f"{len(points)} point(s):")
        for point in points[: args.limit]:
            print("  ", point)
        if len(points) > args.limit:
            print(f"   ... {len(points) - args.limit} more")
    return 0


def _resolve_cache_dir(args) -> str:
    from .cache.persist import default_cache_dir

    return args.cache_dir or default_cache_dir()


def cmd_cache_stats(args) -> int:
    from .cache.manager import caches
    from .cache.persist import CompileCache

    cache = CompileCache(_resolve_cache_dir(args))
    stats = cache.stats()
    print(f"compile cache: {stats['dir']}")
    print(f"  artifacts: {stats['entries']} "
          f"({stats['bytes'] / 1024.0:.1f} KiB)")
    rows = [s for s in caches.stats().values() if s.lookups or s.size]
    if rows:
        print("in-process memoization caches:")
        for s in rows:
            print(f"  {s.name:28s} {s.hits:8d} hits {s.misses:8d} misses "
                  f"{100.0 * s.hit_rate:6.1f}% "
                  f"{s.size}/{s.maxsize} entries")
    return 0


def cmd_cache_clear(args) -> int:
    from .cache.persist import CompileCache

    cache = CompileCache(_resolve_cache_dir(args))
    removed = cache.clear()
    print(f"removed {removed} artifact(s) from {cache.root}")
    return 0


def _wire_options_from(args) -> dict:
    """Compile options as the service wire dict (``cache_dir`` stays
    server-side and is deliberately not sent)."""
    return {
        "coalesce": not args.no_coalesce,
        "inplace": not args.no_inplace,
        "loop_split": args.loop_split,
        "active_vp": not args.no_active_vp,
        "buffer_mode": args.buffer_mode,
        "compute": args.compute,
        "caching": args.caching,
    }


def cmd_serve(args) -> int:
    import threading

    from .runtime.faults import FaultPlan
    from .service.server import create_server

    pool_fault_plan = None
    if args.pool_fault_spec:
        try:
            pool_fault_plan = FaultPlan.parse(
                args.pool_fault_spec, seed=args.pool_fault_seed
            )
        except ValueError as exc:
            print(f"error: --pool-fault-spec: {exc}", file=sys.stderr)
            return 2
    server = create_server(
        host=args.host,
        port=args.port,
        cache_dir=_resolve_cache_dir(args),
        nshards=args.shards,
        shard_capacity=args.shard_capacity,
        quiet=not args.verbose,
        workers=args.workers,
        queue_depth=args.queue_depth,
        quarantine_after=args.quarantine_after,
        compile_deadline_s=args.compile_deadline_s,
        pool_fault_plan=pool_fault_plan,
    )
    host, port = server.server_address[:2]
    service = server.service
    store = service.store
    print(f"compile service listening on http://{host}:{port}")
    print(f"artifact store: {store.root} "
          f"({len(store.shards)} shards x {store.shards[0].capacity} "
          f"artifacts)")
    if service.pool is not None:
        service.wait_ready(timeout_s=30.0)
        print(f"compile pool: {service.pool.alive_workers()}/"
              f"{args.workers} workers up, queue depth "
              f"{args.queue_depth}, quarantine after "
              f"{args.quarantine_after} kills")

    # SIGTERM = graceful drain: readiness flips to 503, in-flight work
    # finishes, workers stop (terminate→join→kill), then the accept
    # loop exits.  SIGINT (^C) takes the same path via KeyboardInterrupt.
    def _drain(signum, frame):
        threading.Thread(
            target=server.shutdown_gracefully, daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _drain)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        service.begin_drain()
    finally:
        service.close()
        server.server_close()
    return 0


def cmd_submit(args) -> int:
    import json as _json

    from .service.client import ServiceClient, ServiceError

    with open(args.program) as handle:
        source = handle.read()
    client = ServiceClient(url=args.url, host=args.host, port=args.port)
    fallback = tuple(
        name.strip()
        for name in (args.fallback_backends or "").split(",")
        if name.strip()
    )
    try:
        if args.compile_only:
            response = client.compile(
                source, options=_wire_options_from(args)
            )
        else:
            response = client.run(
                source,
                params=_parse_params(args.param),
                nprocs=args.nprocs,
                backend=args.backend,
                validate=not args.no_validate,
                options=_wire_options_from(args),
                retries=args.retries,
                fallback_backends=fallback,
                fault_spec=args.fault_spec,
                fault_seed=args.fault_seed,
                recv_timeout_s=args.recv_timeout,
                run_timeout_s=args.run_timeout,
            )
    except ServiceError as exc:
        if args.json and exc.payload:
            print(_json.dumps(exc.payload, indent=2, sort_keys=True))
        else:
            print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()

    if args.json:
        print(_json.dumps(response, indent=2, sort_keys=True))
        return 0 if response.get("ok") else 1

    if not response.get("ok"):
        error = response.get("error", {})
        print(f"submit failed: {error.get('type', 'Error')}",
              file=sys.stderr)
        print(error.get("message", ""), file=sys.stderr)
        for record in error.get("attempts", []):
            print(
                f"  attempt {record['attempt']} [{record['backend']}]: "
                f"{record['outcome']}",
                file=sys.stderr,
            )
        return 1
    print(f"fingerprint: {response['fingerprint']}")
    print(f"cache:       {response['cache']} "
          f"({response['compile_ms']:.1f} ms)")
    outcome = response.get("outcome")
    if outcome:
        print(f"backend:     {outcome['backend']}")
        print(f"processors:  {outcome['nprocs']}")
        print(f"validation:  "
              f"{'OK' if response.get('validated') else 'skipped'}")
        print(f"messages:    {outcome['messages']} "
              f"({outcome['payload_bytes']} payload bytes)")
        print(f"predicted time: {outcome['predicted_ms']:.3f} ms "
              f"(speedup {outcome['speedup']:.2f}x)")
        for name, value in outcome.get("scalars", {}).items():
            print(f"scalar {name} = {value}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="dHPF reproduction: integer-set data-parallel compiler",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile a mini-HPF program")
    p_compile.add_argument("program")
    what = p_compile.add_mutually_exclusive_group()
    what.add_argument("--source", action="store_true",
                      help="print the generated SPMD node program")
    what.add_argument("--listing", action="store_true",
                      help="print the compilation listing (default)")
    what.add_argument("--phases", action="store_true",
                      help="print the compile-time phase breakdown")
    _add_option_flags(p_compile)
    p_compile.set_defaults(func=cmd_compile)

    p_run = sub.add_parser("run", help="run on an execution backend")
    p_run.add_argument("program")
    p_run.add_argument("--nprocs", type=int, default=4)
    p_run.add_argument("--param", action="append", metavar="NAME=VALUE")
    p_run.add_argument("--no-validate", action="store_true")
    p_run.add_argument(
        "--backend", default="threads", metavar="NAME",
        help="execution backend: threads (default), mp "
             "(one OS process per rank), inproc-seq (deterministic "
             "sequential reference), or taskgraph (statement-instance "
             "DAG with work stealing)")
    p_run.add_argument(
        "--recv-timeout", type=float, default=None, metavar="SECONDS",
        help="blocking-receive timeout before a run is declared "
             "deadlocked (default: $REPRO_RECV_TIMEOUT_S or 60)")
    p_run.add_argument(
        "--fault-spec", default=None, metavar="SPEC",
        help="inject faults: 'kind[:rank=R][:op=OP][:n=N][:ms=MS]"
             "[:attempts=A]' joined by ';' — kinds: drop, delay, dup, "
             "crash, kill, shm-alloc, jitter")
    p_run.add_argument(
        "--fault-seed", type=int, default=0, metavar="SEED",
        help="seed for the fault schedule; the same seed replays the "
             "same chaos run byte-identically")
    p_run.add_argument(
        "--fallback-backends", default=None, metavar="NAMES",
        help="comma-separated backends the supervisor degrades to after "
             "the primary exhausts its retries (e.g. 'threads,inproc-seq')")
    p_run.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-launch up to N times per backend on transient failures "
             "(rank crash, timeout, launch error), with deterministic "
             "exponential backoff")
    p_run.add_argument(
        "--comm-latency", type=float, default=0.0, metavar="SECONDS",
        help="simulated per-message link latency honored by the threads "
             "and taskgraph backends (for measuring comm/compute overlap)")
    _add_option_flags(p_run)
    p_run.set_defaults(func=cmd_run)

    p_sets = sub.add_parser("sets", help="evaluate a set expression")
    p_sets.add_argument("expression")
    p_sets.add_argument("--param", action="append", metavar="NAME=VALUE")
    p_sets.add_argument("--limit", type=int, default=50)
    p_sets.set_defaults(func=cmd_sets)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the persistent compile cache"
    )
    cache_sub = p_cache.add_subparsers(dest="action", required=True)
    p_cstats = cache_sub.add_parser("stats", help="show cache contents")
    p_cstats.add_argument("--cache-dir", metavar="DIR", default=None,
                          help="cache directory (default: $REPRO_CACHE_DIR "
                               "or ~/.cache/repro-dhpf)")
    p_cstats.set_defaults(func=cmd_cache_stats)
    p_cclear = cache_sub.add_parser("clear", help="delete cached artifacts")
    p_cclear.add_argument("--cache-dir", metavar="DIR", default=None,
                          help="cache directory (default: $REPRO_CACHE_DIR "
                               "or ~/.cache/repro-dhpf)")
    p_cclear.set_defaults(func=cmd_cache_clear)

    p_serve = sub.add_parser(
        "serve", help="start the long-lived compile server"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8737)
    p_serve.add_argument("--shards", type=int, default=8,
                         help="artifact-store shard count (lock stripes)")
    p_serve.add_argument("--shard-capacity", type=int, default=256,
                         help="max artifacts per shard before LRU eviction")
    p_serve.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="artifact-store root (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro-dhpf)")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="compile worker processes (0 = compile "
                              "in-process, no pool)")
    p_serve.add_argument("--queue-depth", type=int, default=16,
                         help="bounded dispatch queue size; submits "
                              "beyond it are shed with HTTP 429")
    p_serve.add_argument("--quarantine-after", type=int, default=3,
                         help="quarantine a request fingerprint after "
                              "it kills this many distinct workers")
    p_serve.add_argument("--compile-deadline-s", type=float, default=60.0,
                         help="per-request compile deadline; a worker "
                              "exceeding it is killed and replaced")
    p_serve.add_argument("--pool-fault-spec", default=None,
                         help="chaos: worker-crash/worker-stall fault "
                              "plan for the pool (testing)")
    p_serve.add_argument("--pool-fault-seed", type=int, default=0)
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request to stderr")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a compile+run request to a compile server"
    )
    p_submit.add_argument("program")
    p_submit.add_argument("--url", default=None, metavar="URL",
                          help="server base URL (overrides --host/--port)")
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=8737)
    p_submit.add_argument("--nprocs", type=int, default=4)
    p_submit.add_argument("--param", action="append", metavar="NAME=VALUE")
    p_submit.add_argument("--no-validate", action="store_true")
    p_submit.add_argument("--backend", default=None, metavar="NAME")
    p_submit.add_argument("--compile-only", action="store_true",
                          help="compile to an artifact without running")
    p_submit.add_argument("--json", action="store_true",
                          help="print the machine-readable JSON response")
    p_submit.add_argument("--retries", type=int, default=0, metavar="N")
    p_submit.add_argument("--fallback-backends", default=None,
                          metavar="NAMES")
    p_submit.add_argument("--fault-spec", default=None, metavar="SPEC")
    p_submit.add_argument("--fault-seed", type=int, default=0,
                          metavar="SEED")
    p_submit.add_argument("--recv-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="blocking-receive timeout for the run")
    p_submit.add_argument("--run-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="whole-launch timeout for the run")
    _add_option_flags(p_submit)
    p_submit.set_defaults(func=cmd_submit)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
