"""Picklable task-plan representation.

A :class:`TaskPlan` is everything the work-stealing scheduler needs to
execute one SPMD launch as a statement-instance DAG: the work units
(each carrying the Python source of one generated-program segment), the
dependence edges between them, and the SCC condensation metadata from
the template graph.  Everything is plain strings / ints / tuples so a
plan can ship to out-of-process workers exactly like the
:class:`~repro.runtime.backends.base.LaunchSpec` it rides in.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["TaskUnit", "TaskPlan"]


@dataclass
class TaskUnit:
    """One (statement segment, iteration instance, rank) work unit.

    ``code`` is the compiled program fragment this unit executes in its
    rank's shared namespace; ``kind`` drives scheduling policy:

    ``send``
        Gathers and enqueues section messages — never blocks.
    ``recv``
        Consumes messages; *gated*: made ready only after every
        same-tag/same-instance send unit completed and the simulated
        arrival time passed, so it never occupies a worker waiting.
    ``collective``
        Blocks at a rendezvous; forces pool size >= nprocs.
    ``call``
        Whole-procedure call (plan-less fallback, sp-like routines);
        conservatively conflicts with everything and may block.
    ``compute`` / ``admin``
        Kernel pieces, work-counter flushes, prelude bindings.
    """

    uid: int
    rank: int
    kind: str  # compute | send | recv | collective | call | admin
    code: str
    label: str
    #: communication event tag ('' when not a comm unit).
    tag: str = ""
    #: phase-loop iteration instance (0 outside unrolled loops).
    instance: int = 0
    #: template statement id this unit instantiates.
    template: int = -1
    #: SCC id of the template statement in the condensed template DAG.
    scc: int = -1


@dataclass
class TaskPlan:
    """A complete launch plan: units, DAG edges, condensation metadata."""

    nprocs: int
    units: List[TaskUnit]
    #: instance-DAG edges (pred uid, succ uid), deduplicated and sorted.
    edges: List[Tuple[int, int]]
    #: number of template statements and of SCCs after condensation.
    template_count: int = 0
    scc_count: int = 0
    #: template SCC members (template ids), forward topological order.
    scc_members: List[Tuple[int, ...]] = field(default_factory=list)
    #: cycles collapsed (SCCs with more than one member).
    cycles_collapsed: int = 0
    #: phase loops unrolled into per-iteration instances.
    loops_unrolled: int = 0
    #: True when some unit may block (collectives / call units): the
    #: scheduler must then run at least ``nprocs`` workers.
    needs_rank_parallel_pool: bool = False
    #: why planning degraded (empty when fully segmented).
    notes: List[str] = field(default_factory=list)

    def topo_hash(self) -> str:
        """Stable fingerprint of the graph structure (determinism tests).

        Hashes unit identities (rank, kind, label, tag, instance,
        template, scc) and the sorted edge list — everything except the
        code bodies, which the artifact sha already pins.
        """
        h = hashlib.sha256()
        for u in self.units:
            h.update(
                f"{u.uid}|{u.rank}|{u.kind}|{u.label}|{u.tag}|"
                f"{u.instance}|{u.template}|{u.scc}\n".encode()
            )
        for pred, succ in sorted(self.edges):
            h.update(f"{pred}->{succ}\n".encode())
        return h.hexdigest()

    def successors(self) -> List[List[int]]:
        succs: List[List[int]] = [[] for _ in self.units]
        for pred, succ in self.edges:
            succs[pred].append(succ)
        for row in succs:
            row.sort()
        return succs

    def indegrees(self) -> List[int]:
        indeg = [0] * len(self.units)
        for _, succ in self.edges:
            indeg[succ] += 1
        return indeg

    def stats(self) -> Dict[str, int]:
        kinds: Dict[str, int] = {}
        for unit in self.units:
            kinds[unit.kind] = kinds.get(unit.kind, 0) + 1
        return {
            "units": len(self.units),
            "edges": len(self.edges),
            "templates": self.template_count,
            "sccs": self.scc_count,
            "cycles_collapsed": self.cycles_collapsed,
            "loops_unrolled": self.loops_unrolled,
            **{f"units_{kind}": n for kind, n in sorted(kinds.items())},
        }
