"""Lower a generated SPMD node program to a statement-instance task DAG.

The emitted node program (see :mod:`repro.codegen.spmd`) is a flat
sequence of top-level statements per procedure: prelude bindings, kernel
pieces, communication gather/send/recv loops, work-counter flushes, and
sequential *phase loops* (``for iter in range(...)``) whose bodies repeat
that structure per iteration.  This module re-parses that program with
:mod:`ast` — codegen itself is untouched, and the artifact bytes stay
pinned — and turns it into a :class:`~repro.runtime.taskgraph.plan.TaskPlan`:

1. **Segmentation** — each top-level statement becomes a work-unit
   template; consecutive plain statements that would be chained anyway
   are merged.  ``rt.*`` calls classify the segment (send / recv /
   collective / call).
2. **Phase-loop unrolling** — a top-level loop containing communication
   whose ``range`` bounds evaluate identically on every rank is unrolled
   into per-iteration *instances*; the loop variable and the
   emitter-private ``_bufs_*`` buffers are renamed per instance, which is
   exactly the renaming that removes their false (WAR) cross-iteration
   dependences.
3. **Dependence edges** — name-level read/write conflicts, refined two
   ways: work-counter increments (``_wN[...] += c``) are commutative and
   do not order two compute segments against each other, and arrays the
   integer-set dependence analysis proved cross-statement independent
   (``LaunchSpec.dep_hints``, from :mod:`repro.core.depend`) are ignored
   between compute templates.  Conflicts give per-rank sequential
   consistency: every pair the analysis cannot reorder executes in
   program order, so results are bitwise identical to the ``threads``
   schedule.
4. **SCC condensation** — the *template* graph additionally carries
   next-iteration (loop-carried) edges, which close cycles
   (compute -> send -> recv -> compute'); Tarjan's algorithm collapses
   them and the condensation is recorded on every unit for per-SCC
   timing and critical-path reporting.
5. **Cross-rank edges** — every send unit of a communication event
   instance precedes every recv unit of the same ``(tag, instance)``,
   so a receive only becomes *ready* once all its messages are in
   flight: receives never occupy a worker waiting (that is where
   communication/computation overlap comes from).

Anything the planner cannot prove safe degrades conservatively: an
unevaluable phase loop stays one (possibly blocking) unit, a program
without the generated-module marker gets the trivial one-unit-per-rank
plan, and a planning failure of any kind falls back the same way.
"""

from __future__ import annotations

import ast
import copy
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .graph import condense
from .plan import TaskPlan, TaskUnit

__all__ = ["build_task_plan", "trivial_plan", "GENERATED_MARKER"]

#: module docstring marker of programs the segmenting planner accepts.
GENERATED_MARKER = "Generated SPMD node program"

#: hard ceilings: beyond these the plan degrades rather than explodes.
DEFAULT_UNROLL_CAP = 128
MAX_SEGMENTS_PER_RANK = 4000

_COMM_METHODS = {"send", "send_section", "recv", "recv_section"}
_COLLECTIVE_METHODS = {"allreduce", "barrier"}
_ACCOUNTING_METHODS = {"work", "check", "member"}


def trivial_plan(nprocs: int, note: str) -> TaskPlan:
    """One ``node_main(rt)`` unit per rank — always correct, no overlap."""
    units = [
        TaskUnit(
            uid=rank,
            rank=rank,
            kind="call",
            code="node_main(rt)",
            label="node_main",
        )
        for rank in range(nprocs)
    ]
    return TaskPlan(
        nprocs=nprocs,
        units=units,
        edges=[],
        template_count=1,
        scc_count=1,
        scc_members=[(0,)],
        needs_rank_parallel_pool=True,
        notes=[note],
    )


# ---------------------------------------------------------------------------
# segment analysis
# ---------------------------------------------------------------------------


@dataclass
class _SegInfo:
    """Read/write footprint and communication role of one segment."""

    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    #: names whose *only* writes are commutative ``+=`` increments.
    aug_only: Set[str] = field(default_factory=set)
    #: upward-exposed reads: names possibly read before this segment
    #: writes them (so the incoming value matters).
    exposed: Set[str] = field(default_factory=set)
    #: names definitely written on every path through the segment.
    killed: Set[str] = field(default_factory=set)
    sends: int = 0
    recvs: int = 0
    collectives: int = 0
    unknown_calls: int = 0
    tags: Set[str] = field(default_factory=set)
    has_nest: bool = False

    def kind(self) -> str:
        if self.unknown_calls:
            return "call"
        comm_kinds = (self.sends > 0) + (self.recvs > 0) + (
            self.collectives > 0
        )
        if comm_kinds > 1:
            return "mixed"
        if self.collectives:
            return "collective"
        if self.recvs:
            return "recv"
        if self.sends:
            return "send"
        if self.has_nest or self.writes & {"S"}:
            return "compute"
        return "admin"

    def tag(self) -> str:
        return next(iter(self.tags)) if len(self.tags) == 1 else ""

    def merged_with(self, other: "_SegInfo") -> "_SegInfo":
        info = _SegInfo(
            reads=self.reads | other.reads,
            writes=self.writes | other.writes,
            exposed=self.exposed | (other.exposed - self.killed),
            killed=self.killed | other.killed,
            sends=self.sends + other.sends,
            recvs=self.recvs + other.recvs,
            collectives=self.collectives + other.collectives,
            unknown_calls=self.unknown_calls + other.unknown_calls,
            tags=self.tags | other.tags,
            has_nest=self.has_nest or other.has_nest,
        )
        # A name stays commutative only if *both* sides treat it so
        # (or one side does not write it at all).
        info.aug_only = {
            name
            for name in self.aug_only | other.aug_only
            if (name not in self.writes or name in self.aug_only)
            and (name not in other.writes or name in other.aug_only)
        }
        return info


class _FootprintVisitor(ast.NodeVisitor):
    """Collect the name-level footprint of one statement subtree."""

    def __init__(self, rt_name: str, module_fns: Set[str], arrays: Set[str]):
        self.rt = rt_name
        self.module_fns = module_fns
        self.arrays = arrays
        self.info = _SegInfo()
        self._plain_writes: Set[str] = set()
        #: names definitely assigned on every path reaching the current
        #: visit point — a read of anything else is upward-exposed.
        self._definite: Set[str] = set()

    # -- helpers ------------------------------------------------------------

    def _base_name(self, node: ast.AST) -> Optional[str]:
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def _read(self, name: str) -> None:
        self.info.reads.add(name)
        if name not in self._definite:
            self.info.exposed.add(name)

    def _write(self, target: ast.AST, aug: bool = False) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._write(element, aug)
            return
        if isinstance(target, ast.Starred):
            self._write(target.value, aug)
            return
        name = self._base_name(target)
        if name is None:
            return
        if not isinstance(target, ast.Name):
            self._read(name)  # partial update reads the object
        self.info.writes.add(name)
        if aug and isinstance(target, (ast.Subscript, ast.Name)):
            if name not in self._plain_writes:
                self.info.aug_only.add(name)
        else:
            self._plain_writes.add(name)
            self.info.aug_only.discard(name)
        if isinstance(target, ast.Name):
            self._definite.add(name)
        if isinstance(target, ast.Subscript):
            self.visit(target.slice)

    # -- statements ---------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self._write(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        self._write(node.target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        base = self._base_name(node.target)
        if base is not None:
            self._read(base)  # in-place update reads the old value
        self._write(node.target, aug=isinstance(node.op, ast.Add))

    def visit_For(self, node: ast.For) -> None:
        self.info.has_nest = True
        self.visit(node.iter)
        outer = set(self._definite)
        self._write(node.target)
        for stmt in node.body:
            self.visit(stmt)
        # The loop may run zero times: nothing it assigns (including the
        # target) is definite afterwards.
        self._definite = set(outer)
        for stmt in node.orelse:
            self.visit(stmt)
        self._definite = outer

    def visit_While(self, node: ast.While) -> None:
        self.info.has_nest = True
        self.visit(node.test)
        outer = set(self._definite)
        for stmt in node.body:
            self.visit(stmt)
        self._definite = set(outer)
        for stmt in node.orelse:
            self.visit(stmt)
        self._definite = outer

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        before = set(self._definite)
        for stmt in node.body:
            self.visit(stmt)
        after_body = self._definite
        self._definite = set(before)
        for stmt in node.orelse:
            self.visit(stmt)
        self._definite = after_body & self._definite

    def visit_Try(self, node: ast.Try) -> None:
        # Any statement in the body may raise mid-way, so handler and
        # downstream reads see an unpredictable subset of its writes.
        outer = set(self._definite)
        for stmt in node.body:
            self.visit(stmt)
        for handler in node.handlers:
            self._definite = set(outer)
            for stmt in handler.body:
                self.visit(stmt)
        self._definite = set(outer)
        for stmt in node.orelse + node.finalbody:
            self.visit(stmt)
        self._definite = outer

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == self.rt
        ):
            self._visit_rt_call(func.attr, node)
            return
        if isinstance(func, ast.Attribute):
            base = self._base_name(func)
            if base is not None and base != self.rt:
                # A method call on a local may mutate it (dict.setdefault,
                # list.append, ...) — conservatively a write.
                self._read(base)
                self.info.writes.add(base)
                self._plain_writes.add(base)
                self.info.aug_only.discard(base)
            elif base is None:
                # Chained receiver (``d.setdefault(k, []).append(x)``):
                # the inner expression carries the real footprint.
                self.visit(func.value)
        elif isinstance(func, ast.Name):
            if func.id.startswith("proc_") and func.id in self.module_fns:
                # Whole-procedure call: unknown footprint.
                self.info.unknown_calls += 1
            else:
                self._read(func.id)
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def _visit_rt_call(self, method: str, node: ast.Call) -> None:
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)
        if method in ("send", "send_section"):
            self.info.sends += 1
        elif method in ("recv", "recv_section"):
            self.info.recvs += 1
        elif method in _COLLECTIVE_METHODS:
            self.info.collectives += 1
        elif method not in _ACCOUNTING_METHODS and method not in (
            "env", "arrays", "scalars", "lbounds", "rank", "nprocs",
            "inplace", "red_base",
        ):
            self.info.unknown_calls += 1
        if method in _COMM_METHODS and len(node.args) >= 2:
            tag = node.args[1]
            if isinstance(tag, ast.Constant) and isinstance(tag.value, str):
                self.info.tags.add(tag.value)
        if method == "send_section" and len(node.args) >= 3:
            name = node.args[2]
            if isinstance(name, ast.Constant) and isinstance(name.value, str):
                self._read(name.value)
        if method == "recv_section" and len(node.args) >= 3:
            name = node.args[2]
            if isinstance(name, ast.Constant) and isinstance(name.value, str):
                self._read(name.value)  # section store: partial update
                self.info.writes.add(name.value)
                self._plain_writes.add(name.value)
                self.info.aug_only.discard(name.value)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._read(node.id)


def _footprint(
    stmt: ast.stmt, rt_name: str, module_fns: Set[str], arrays: Set[str]
) -> _SegInfo:
    visitor = _FootprintVisitor(rt_name, module_fns, arrays)
    visitor.visit(stmt)
    visitor.info.killed = set(visitor._definite)
    visitor.info.reads -= {rt_name}
    visitor.info.exposed -= {rt_name}
    return visitor.info


def _conflict_names(
    a: _SegInfo, b: _SegInfo, private: FrozenSet[str] = frozenset()
) -> Set[str]:
    """Names forcing program order between two segments.

    Commutative work-counter increments (``_wN[...] += c``) are exempt
    when *both* sides only increment: the counters are integer sums whose
    final value is order-independent, and the reset/flush statements that
    do care about order write or read them plainly, so those edges stay.

    ``private`` names (no upward-exposed read in *any* segment of the
    plan — every reader re-initialises them first, e.g. loop indices and
    per-statement bound temporaries) never carry a value between
    segments, so write/write and write/read overlaps on them are not
    dependences.  Rank exclusivity makes the shared-namespace writes
    race-free, and because nothing ever reads such a name before killing
    it, the final value is unobservable in any execution order.
    """
    names = (a.writes & (b.reads | b.writes)) | (a.reads & b.writes)
    return {
        name
        for name in names
        if name not in private
        and not (
            name.startswith("_w")
            and name in a.aug_only
            and name in b.aug_only
        )
    }


# ---------------------------------------------------------------------------
# phase-loop unrolling
# ---------------------------------------------------------------------------


class _Renamer(ast.NodeTransformer):
    def __init__(self, renames: Dict[str, str]):
        self.renames = renames

    def visit_Name(self, node: ast.Name) -> ast.Name:
        new = self.renames.get(node.id)
        if new is not None:
            return ast.copy_location(ast.Name(id=new, ctx=node.ctx), node)
        return node


def _contains_comm(stmt: ast.stmt, rt_name: str, module_fns: Set[str]) -> bool:
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == rt_name
            and func.attr in (_COMM_METHODS | _COLLECTIVE_METHODS)
        ):
            return True
        if (
            isinstance(func, ast.Name)
            and func.id.startswith("proc_")
            and func.id in module_fns
        ):
            return True
    return False


def _eval_in_env(expr: ast.expr, eval_ns: Dict[str, object]):
    return eval(  # noqa: S307 - evaluating our own generated bounds
        compile(ast.Expression(copy.deepcopy(expr)), "<tg-bounds>", "eval"),
        dict(eval_ns),
    )


def _phase_loop(stmt: ast.stmt) -> Optional[Tuple[Optional[ast.expr], ast.For]]:
    """Match ``for v in range(...)`` optionally wrapped in one ``if``."""
    guard = None
    node = stmt
    if (
        isinstance(node, ast.If)
        and not node.orelse
        and len(node.body) == 1
        and isinstance(node.body[0], ast.For)
    ):
        guard = node.test
        node = node.body[0]
    if not isinstance(node, ast.For) or node.orelse:
        return None
    if not isinstance(node.target, ast.Name):
        return None
    call = node.iter
    if not (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id == "range"
        and not call.keywords
        and 1 <= len(call.args) <= 3
    ):
        return None
    return guard, node


def _bufs_names(stmts: Sequence[ast.stmt]) -> Set[str]:
    names = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id.startswith("_bufs_"):
                names.add(node.id)
    return names


# ---------------------------------------------------------------------------
# the planner
# ---------------------------------------------------------------------------


@dataclass
class _Segment:
    """One per-rank work-unit instance (rank-independent description)."""

    code: str
    info: _SegInfo
    label: str
    template: int
    instance: int = 0
    kind: str = ""


class _PlanError(Exception):
    """Planning cannot proceed; the caller degrades to a trivial plan."""


def _target_procedure(
    tree: ast.Module,
) -> Tuple[ast.FunctionDef, Dict[str, ast.FunctionDef], str]:
    fns = {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }
    node_main = fns.get("node_main")
    if node_main is None:
        raise _PlanError("no node_main in module")
    body = [
        stmt
        for stmt in node_main.body
        if not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
        )
        and not (isinstance(stmt, ast.Return) and stmt.value is None)
    ]
    target = node_main
    if (
        len(body) == 1
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Call)
        and isinstance(body[0].value.func, ast.Name)
        and body[0].value.func.id in fns
    ):
        target = fns[body[0].value.func.id]
    if not target.args.args:
        raise _PlanError(f"{target.name} takes no runtime argument")
    rt_name = target.args.args[0].arg
    return target, fns, rt_name


def _build_segments(
    target: ast.FunctionDef,
    module_fns: Set[str],
    arrays: Set[str],
    rt_name: str,
    envs: Sequence[Dict[str, int]],
    eval_base: Dict[str, object],
    unroll_cap: int,
    notes: List[str],
) -> Tuple[List[_Segment], List[_SegInfo], List[Tuple[int, ...]], int]:
    """Segment the procedure body.

    Returns ``(segments, template_infos, loop_groups, loops_unrolled)``
    where ``loop_groups`` lists, per unrolled loop, the template ids of
    its body statements (for carried-edge construction).
    """

    def footprint(stmt: ast.stmt) -> _SegInfo:
        return _footprint(stmt, rt_name, module_fns, arrays)

    segments: List[_Segment] = []
    template_infos: List[_SegInfo] = []
    loop_groups: List[Tuple[int, ...]] = []
    loops_unrolled = 0

    def new_template(info: _SegInfo) -> int:
        template_infos.append(info)
        return len(template_infos) - 1

    # Unparse each distinct statement object once; instances re-parse
    # that text (fast C parser) and rename the fresh tree in place, which
    # avoids a deepcopy of large nest ASTs per unrolled iteration.  Keyed
    # by object identity (value pins the stmt so ids are never recycled):
    # unrolled instances share body statement objects, while synthesized
    # per-instance statements differ and must not share text.
    stmt_code: Dict[int, Tuple[ast.stmt, str]] = {}

    def emit(stmt: ast.stmt, info: _SegInfo, template: int,
             instance: int = 0,
             renames: Optional[Dict[str, str]] = None) -> None:
        cached = stmt_code.get(id(stmt))
        if cached is None:
            code = ast.unparse(stmt)
            stmt_code[id(stmt)] = (stmt, code)
        else:
            code = cached[1]
        if renames:
            tree = ast.parse(code)
            _Renamer(renames).visit(tree)
            code = ast.unparse(tree)
            info = _SegInfo(
                reads={renames.get(n, n) for n in info.reads},
                writes={renames.get(n, n) for n in info.writes},
                aug_only={renames.get(n, n) for n in info.aug_only},
                exposed={renames.get(n, n) for n in info.exposed},
                killed={renames.get(n, n) for n in info.killed},
                sends=info.sends, recvs=info.recvs,
                collectives=info.collectives,
                unknown_calls=info.unknown_calls,
                tags=set(info.tags), has_nest=info.has_nest,
            )
        segments.append(
            _Segment(
                code=code,
                info=info,
                label=code.split("\n", 1)[0][:48],
                template=template,
                instance=instance,
                kind=info.kind(),
            )
        )

    def emit_plain(stmt: ast.stmt) -> None:
        info = footprint(stmt)
        emit(stmt, info, new_template(info))

    def try_unroll(stmt: ast.stmt) -> bool:
        nonlocal loops_unrolled
        matched = _phase_loop(stmt)
        if matched is None:
            return False
        guard, loop = matched
        if not _contains_comm(loop, rt_name, module_fns):
            return False  # plain compute nest: one segment is right
        try:
            if guard is not None:
                verdicts = [
                    bool(_eval_in_env(guard, {**eval_base, "env": env, **env}))
                    for env in envs
                ]
                if len(set(verdicts)) != 1:
                    return False
                if not verdicts[0]:
                    return True  # guard statically false: emit nothing
            ranges = [
                list(range(*(
                    _eval_in_env(arg, {**eval_base, "env": env, **env})
                    for arg in loop.iter.args
                )))
                for env in envs
            ]
        except Exception:
            notes.append(f"phase loop {loop.target.id}: bounds not static")
            return False
        if any(r != ranges[0] for r in ranges[1:]):
            notes.append(f"phase loop {loop.target.id}: bounds differ by rank")
            return False
        trips = ranges[0]
        if not trips:
            return True
        if len(trips) > unroll_cap:
            notes.append(
                f"phase loop {loop.target.id}: {len(trips)} trips "
                f"> unroll cap {unroll_cap}"
            )
            return False
        # Per-iteration templates: one for the loop-variable binding,
        # one per top-level body statement.
        var = loop.target.id
        private = {var} | _bufs_names(loop.body)
        prologue_info = _SegInfo(writes={var})
        prologue_tmpl = new_template(prologue_info)
        body_infos = [footprint(s) for s in loop.body]
        body_tmpls = [new_template(info) for info in body_infos]
        loop_groups.append(tuple([prologue_tmpl] + body_tmpls))
        loops_unrolled += 1
        for k, value in enumerate(trips):
            renames = {name: f"{name}__tg{k}" for name in private}
            bound = ast.parse(f"{renames[var]} = {value!r}").body[0]
            emit(
                bound,
                _SegInfo(writes={renames[var]}),
                prologue_tmpl,
                instance=k,
            )
            for body_stmt, info, tmpl in zip(
                loop.body, body_infos, body_tmpls
            ):
                emit(body_stmt, info, tmpl, instance=k, renames=renames)
        return True

    for stmt in target.body:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring
        if isinstance(stmt, ast.Return):
            if stmt.value is not None and not (
                isinstance(stmt.value, ast.Constant)
                and stmt.value.value is None
            ):
                raise _PlanError("procedure returns a value")
            continue
        if isinstance(stmt, (ast.Global, ast.Nonlocal, ast.Import,
                             ast.ImportFrom, ast.FunctionDef,
                             ast.ClassDef, ast.With, ast.Try)):
            raise _PlanError(f"unsupported statement {type(stmt).__name__}")
        if try_unroll(stmt):
            continue
        emit_plain(stmt)
        if len(segments) > MAX_SEGMENTS_PER_RANK:
            raise _PlanError("segment count exceeds cap")

    if len(segments) > MAX_SEGMENTS_PER_RANK:
        raise _PlanError("segment count exceeds cap")
    return segments, template_infos, loop_groups, loops_unrolled


def _privatizable(infos: Sequence[_SegInfo]) -> FrozenSet[str]:
    """Names safe to ignore when ordering segments of one plan.

    A name is privatizable when no segment reads it upward-exposed:
    every segment that reads it definitely writes it first, so no value
    ever flows between segments through the name, and (rank execution
    being exclusive) the shared-namespace writes cannot race.  Loop
    indices and per-statement bound temporaries fall out of this —
    without it every compute nest conflicts with every other through the
    shared index variable and the plan degenerates to a chain.

    A whole-procedure call has an unknown footprint that may read
    anything exposed, so its presence disables privatization.
    """
    if any(info.unknown_calls for info in infos):
        return frozenset()
    accessed: Set[str] = set()
    exposed: Set[str] = set()
    for info in infos:
        accessed |= info.reads | info.writes
        exposed |= info.exposed
    return frozenset(accessed - exposed)


def _merge_plain_runs(
    segments: List[_Segment], private: FrozenSet[str]
) -> List[_Segment]:
    """Merge consecutive plain segments that would be chained anyway.

    Two adjacent segments merge when neither communicates and they either
    conflict (an edge would order them back-to-back regardless) or are
    both straight-line admin statements.  Merging only unions footprints,
    so it can only *add* conservatism, never lose an edge.
    """
    merged: List[_Segment] = []
    for seg in segments:
        if merged:
            prev = merged[-1]
            plain = (
                prev.kind in ("compute", "admin")
                and seg.kind in ("compute", "admin")
                and prev.instance == seg.instance
                and prev.template != seg.template
            )
            if plain and (
                _conflict_names(prev.info, seg.info, private)
                or not (prev.info.has_nest or seg.info.has_nest)
            ):
                info = prev.info.merged_with(seg.info)
                merged[-1] = _Segment(
                    code=prev.code + "\n" + seg.code,
                    info=info,
                    label=prev.label,
                    template=prev.template,
                    instance=prev.instance,
                    kind=info.kind(),
                )
                continue
        merged.append(seg)
    return merged


def build_task_plan(
    source: str,
    bindings: Sequence,
    dep_hints: Optional[Sequence[str]] = None,
    unroll_cap: Optional[int] = None,
) -> TaskPlan:
    """Plan one launch of ``source`` for the ranks in ``bindings``.

    ``dep_hints`` names arrays the integer-set analysis proved free of
    cross-statement same-element access pairs; conflicts between two
    compute templates through those names alone are dropped.  Always
    returns a plan — on any planning obstacle, the trivial
    one-unit-per-rank plan (which is exactly the ``threads`` execution
    shape) is returned with the reason in ``plan.notes``.
    """
    nprocs = len(bindings)
    if GENERATED_MARKER not in source.split("\n", 3)[0]:
        return trivial_plan(nprocs, "not a generated node program")
    try:
        return _build_segmented_plan(
            source, bindings, dep_hints or (), unroll_cap or DEFAULT_UNROLL_CAP
        )
    except _PlanError as exc:
        return trivial_plan(nprocs, str(exc))
    except SyntaxError as exc:
        return trivial_plan(nprocs, f"unparseable source: {exc}")


def _build_segmented_plan(
    source: str,
    bindings: Sequence,
    dep_hints: Sequence[str],
    unroll_cap: int,
) -> TaskPlan:
    nprocs = len(bindings)
    notes: List[str] = []
    tree = ast.parse(source)
    target, fns, rt_name = _target_procedure(tree)
    module_fns = set(fns)
    arrays = set(getattr(bindings[0], "array_shapes", {}) or {})
    envs = [dict(b.env) for b in bindings]

    # Helper functions (_cdiv, _align, ...) participate in loop bounds;
    # executing the module binds them (it only contains defs + imports).
    eval_base: Dict[str, object] = {}
    exec(compile(source, "<tg-module>", "exec"), eval_base)  # noqa: S102

    segments, template_infos, loop_groups, loops_unrolled = _build_segments(
        target, module_fns, arrays, rt_name, envs, eval_base,
        unroll_cap, notes,
    )
    # One privatization verdict covers both name pools: segment infos use
    # per-instance (renamed) names, template infos the original ones, and
    # a name is exempt only if *neither* pool exposes it.
    private = _privatizable(
        [seg.info for seg in segments] + list(template_infos)
    )
    segments = _merge_plain_runs(segments, private)
    if not segments:
        raise _PlanError("no executable segments")

    hinted = set(dep_hints)

    def hint_exempt(a: _Segment, b: _Segment, names: Set[str]) -> Set[str]:
        """Drop conflicts carried only by proven-independent arrays."""
        if not hinted or a.template == b.template:
            return names
        if a.kind not in ("compute", "admin") or b.kind not in (
            "compute", "admin"
        ):
            return names
        return names - hinted

    # -- intra-rank instance edges (identical for every rank) ---------------
    # Whole-procedure call units have an unknown footprint: they order
    # against *every* other segment of their rank, in program order.
    local_edges: List[Tuple[int, int]] = []
    n_seg = len(segments)
    for j in range(n_seg):
        seg_j = segments[j]
        for i in range(j):
            seg_i = segments[i]
            if seg_i.kind == "call" or seg_j.kind == "call":
                local_edges.append((i, j))
                continue
            names = _conflict_names(seg_i.info, seg_j.info, private)
            if hint_exempt(seg_i, seg_j, names):
                local_edges.append((i, j))
    # Collectives must execute in one global order; per-rank chaining of
    # consecutive collective units (usually implied by scalar conflicts
    # already) guarantees the rendezvous generations line up.
    last_blocking = -1
    for idx, seg in enumerate(segments):
        if seg.kind in ("collective", "mixed", "call"):
            if last_blocking >= 0:
                local_edges.append((last_blocking, idx))
            last_blocking = idx

    # -- template graph with carried edges; Tarjan condensation -------------
    n_tmpl = len(template_infos)
    tmpl_adj: List[Set[int]] = [set() for _ in range(n_tmpl)]
    order_of: Dict[int, int] = {}
    for seg in segments:
        order_of.setdefault(seg.template, len(order_of))
    ordered_tmpls = sorted(order_of, key=order_of.get)
    for jj, t_j in enumerate(ordered_tmpls):
        for t_i in ordered_tmpls[:jj]:
            if (
                template_infos[t_i].kind() == "call"
                or template_infos[t_j].kind() == "call"
                or _conflict_names(
                    template_infos[t_i], template_infos[t_j], private
                )
            ):
                tmpl_adj[t_i].add(t_j)
    private_prefixes = ("_bufs_",)
    for group in loop_groups:
        group_set = set(group)
        loop_vars = {
            next(iter(template_infos[t].writes))
            for t in group
            if len(template_infos[t].writes) == 1
            and not template_infos[t].reads
        }
        for t_i in group:
            for t_j in group:
                if t_j not in group_set:
                    continue
                if (
                    template_infos[t_i].kind() == "call"
                    or template_infos[t_j].kind() == "call"
                ):
                    tmpl_adj[t_i].add(t_j)
                    continue
                carried = {
                    name
                    for name in _conflict_names(
                        template_infos[t_i], template_infos[t_j], private
                    )
                    if name not in loop_vars
                    and not name.startswith(private_prefixes)
                }
                if carried:
                    tmpl_adj[t_i].add(t_j)
    comp_of, members, _ = condense(
        n_tmpl, [sorted(s) for s in tmpl_adj]
    )
    cycles = sum(1 for m in members if len(m) > 1)

    # -- materialize per-rank units -----------------------------------------
    units: List[TaskUnit] = []
    edges: Set[Tuple[int, int]] = set()
    for rank in range(nprocs):
        base = rank * n_seg
        for idx, seg in enumerate(segments):
            units.append(
                TaskUnit(
                    uid=base + idx,
                    rank=rank,
                    kind=seg.kind,
                    code=seg.code,
                    label=seg.label,
                    tag=seg.info.tag() if seg.kind in ("send", "recv") else "",
                    instance=seg.instance,
                    template=seg.template,
                    scc=comp_of[seg.template],
                )
            )
        for i, j in local_edges:
            edges.add((base + i, base + j))

    # -- cross-rank communication edges -------------------------------------
    senders: Dict[Tuple[str, int], List[int]] = {}
    receivers: Dict[Tuple[str, int], List[int]] = {}
    for unit in units:
        if not unit.tag:
            continue
        key = (unit.tag, unit.instance)
        if unit.kind == "send":
            senders.setdefault(key, []).append(unit.uid)
        elif unit.kind == "recv":
            receivers.setdefault(key, []).append(unit.uid)
    gated: Set[int] = set()
    for key, recv_uids in receivers.items():
        send_uids = senders.get(key, ())
        for recv_uid in recv_uids:
            if send_uids:
                gated.add(recv_uid)
            for send_uid in send_uids:
                if units[send_uid].rank != units[recv_uid].rank:
                    edges.add((send_uid, recv_uid))

    needs_pool = any(
        unit.kind in ("collective", "mixed", "call")
        or (unit.kind == "recv" and unit.uid not in gated)
        for unit in units
    )
    return TaskPlan(
        nprocs=nprocs,
        units=units,
        edges=sorted(edges),
        template_count=n_tmpl,
        scc_count=len(members),
        scc_members=[tuple(m) for m in members],
        cycles_collapsed=cycles,
        loops_unrolled=loops_unrolled,
        needs_rank_parallel_pool=needs_pool,
        notes=notes,
    )
