"""Transport for the task-graph backend: tag-addressed, latency-aware.

The plain :class:`~repro.runtime.machine.Machine` keeps one FIFO per
``(src, dest)`` rank pair, which is exactly right when each rank runs its
program in order — but the task scheduler reorders independent units, so
a receive for tag B may run before the receive for tag A even though A's
message is at the head of the FIFO.  :class:`TaskMachine` therefore keys
channels by ``(src, dest, tag, instance)``: every communication event
instance gets its own mailbox and reordering across *independent* events
can never mis-deliver.  Ordering within one event instance is untouched
(per-channel FIFO), so duplicate-injection faults behave as on
``threads``.

Two more things the scheduler needs from its transport:

* **Simulated link latency** (``comm_latency_s``): messages carry a
  ready-at timestamp and a receive blocks until it passes.  The threads
  machine honors the same knob, so overlap benchmarks compare the two
  backends under identical communication cost.
* **Abort awareness**: when any unit fails the scheduler aborts the run;
  blocked receives and collectives wake up promptly with a
  :class:`RecvTimeoutError` instead of waiting out their full timeout.

Collectives combine rank values in ascending rank order — a fixed,
deterministic order (the threads machine combines in arrival order,
which for the reductions the suite uses — ``max``/``min`` and integer
sums — is bitwise-identical anyway).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..errors import RankDiagnostics, RecvTimeoutError
from ..machine import Machine

__all__ = ["TaskMachine"]

#: wake-up granularity for abort checks while blocked (seconds).
_POLL_S = 0.05


class TaskMachine(Machine):
    """A :class:`Machine` with per-(tag, instance) mailboxes."""

    def __init__(
        self,
        nprocs: int,
        recv_timeout_s: Optional[float] = None,
        run_timeout_s: float = 600.0,
        comm_latency_s: float = 0.0,
    ):
        super().__init__(
            nprocs, recv_timeout_s, run_timeout_s,
            comm_latency_s=comm_latency_s,
        )
        self._cv = threading.Condition()
        #: (src, dest, tag, instance) -> deque of (ready_at, tag, idx, data)
        self._boxes: Dict[Tuple[int, int, object, int], Deque] = {}
        #: phase-loop instance of the unit currently executing per rank;
        #: safe without extra locking because the scheduler runs at most
        #: one unit per rank at a time.
        self._instance = [0] * nprocs
        self.abort = threading.Event()

    # -- scheduler hooks ----------------------------------------------------

    def set_instance(self, rank: int, instance: int) -> None:
        self._instance[rank] = instance

    def latest_ready_at(self, dest: int, tag, instance: int) -> float:
        """Arrival time of the last in-flight message for an event.

        Meaningful once every send unit of the ``(tag, instance)`` event
        has completed (the scheduler's gate): all messages are queued, so
        the maximum ready-at stamp is when the receive can run without
        blocking.  Returns 0.0 when nothing is queued for ``dest``.
        """
        with self._cv:
            return max(
                (
                    box[-1][0]
                    for (src, d, t, i), box in self._boxes.items()
                    if d == dest and t == tag and i == instance and box
                ),
                default=0.0,
            )

    def channel_occupancy(self, dest: int) -> Dict[int, int]:
        with self._cv:
            occupancy: Dict[int, int] = {}
            for (src, d, _t, _i), box in self._boxes.items():
                if d == dest and box:
                    occupancy[src] = occupancy.get(src, 0) + len(box)
            return occupancy

    # -- transport ----------------------------------------------------------

    def put_message(self, src, dest, tag, indices, data) -> None:
        key = (src, dest, tag, self._instance[src])
        ready_at = time.monotonic() + self.comm_latency_s
        with self._cv:
            self._boxes.setdefault(key, deque()).append(
                (ready_at, tag, indices, data)
            )
            self._cv.notify_all()

    def get_message(self, src, dest, tag):
        key = (src, dest, tag, self._instance[dest])
        deadline = time.monotonic() + self.recv_timeout_s
        with self._cv:
            while True:
                box = self._boxes.get(key)
                now = time.monotonic()
                if box:
                    ready_at = box[0][0]
                    if ready_at <= now:
                        _ready, got_tag, indices, data = box.popleft()
                        return got_tag, indices, data
                    wait = min(_POLL_S, ready_at - now, deadline - now)
                else:
                    wait = min(_POLL_S, deadline - now)
                if self.abort.is_set():
                    raise RecvTimeoutError(
                        f"rank {dest}: receive of {tag!r} from {src} "
                        "abandoned — the run was aborted after a peer "
                        "failure",
                        diagnostics=[
                            RankDiagnostics(
                                rank=dest,
                                phase="recv",
                                detail="scheduler abort while blocked",
                            )
                        ],
                    )
                if wait <= 0:
                    raise RecvTimeoutError(
                        f"rank {dest} timed out receiving {tag!r} from "
                        f"{src} after {self.recv_timeout_s:g}s",
                        diagnostics=[
                            RankDiagnostics(
                                rank=dest,
                                phase="recv",
                                detail=(
                                    f"blocked on tag {tag!r} from rank "
                                    f"{src}; pending inbound messages by "
                                    "source: "
                                    f"{self.channel_occupancy(dest) or 'none'}"
                                ),
                                ring_occupancy=self.channel_occupancy(dest),
                            )
                        ],
                    )
                self._cv.wait(timeout=wait)

    # -- collectives --------------------------------------------------------

    def combine(self, rank: int, value, op):
        cv = self._cv
        deadline = time.monotonic() + self.recv_timeout_s
        with cv:
            generation = self.collective.generation
            self.collective.values.append((rank, value))
            if len(self.collective.values) == self.nprocs:
                ordered = [
                    v for _r, v in sorted(self.collective.values)
                ]
                self.collective.result = op(ordered)
                self.collective.values = []
                self.collective.generation += 1
                cv.notify_all()
                return self.collective.result
            while self.collective.generation == generation:
                if self.abort.is_set():
                    raise RecvTimeoutError(
                        f"rank {rank}: collective abandoned — the run "
                        "was aborted after a peer failure",
                        diagnostics=[
                            RankDiagnostics(
                                rank=rank,
                                phase="collective",
                                detail="scheduler abort at the rendezvous",
                            )
                        ],
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    arrived = len(self.collective.values)
                    raise RecvTimeoutError(
                        "collective timed out after "
                        f"{self.recv_timeout_s:g}s",
                        diagnostics=[
                            RankDiagnostics(
                                rank=rank,
                                phase="collective",
                                detail=(
                                    f"{arrived}/{self.nprocs} ranks had "
                                    "arrived at the rendezvous"
                                ),
                            )
                        ],
                    )
                cv.wait(timeout=min(_POLL_S, remaining))
            return self.collective.result
