"""Work-stealing execution of a :class:`TaskPlan`.

Workers own LIFO deques (hot successors run depth-first) and steal FIFO
from peers when idle (old, wide work migrates — the classic Chase-Lev
policy, here under one scheduler lock since units are coarse).  A unit
becomes *ready* when its dependence in-degree drains; readiness is
necessary but not sufficient to run:

* **Rank exclusivity** — at most one unit of a rank executes at a time.
  Units share their rank's namespace, runtime, and trace; exclusivity
  plus the plan's conflict edges is what makes results and traces
  bitwise-identical to the ``threads`` schedule (conflicting units run
  in program order; reordered units are provably independent).  A ready
  unit whose rank is busy waits in that rank's pending queue and is
  promoted when the running unit completes.
* **Arrival parking** — a gated receive (all matching send units done)
  whose messages are still in flight under simulated latency is parked
  in a time heap rather than occupying a worker; it is released when the
  last message's ready-at stamp passes.  This is the mechanism that
  converts receive *blocking* time into useful compute time.

Failure semantics mirror :meth:`Machine.run`: the first failing unit
aborts the run (no new units dispatched, blocked transport calls wake
via ``machine.abort``), application crashes take precedence over
communication errors, and ties break in rank order.  Every worker thread
is joined before :meth:`TaskScheduler.run` returns — including on the
error paths — so chaos tests can assert zero leaked threads.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..errors import (
    CommunicationError,
    RankCrashError,
    RankDiagnostics,
    RunTimeoutError,
    trace_tail,
)
from .plan import TaskPlan

__all__ = ["SchedulerStats", "TaskScheduler"]

#: idle-worker wake-up slice: bounds abort/deadline reaction time.
_IDLE_WAIT_S = 0.1


@dataclass
class SchedulerStats:
    """Observability counters for one scheduled launch."""

    workers: int
    units: int
    executed: int
    steals: int
    max_ready_depth: int
    parked_peak: int
    #: critical path through the instance DAG, in units and in measured
    #: seconds (longest chain of unit durations along dependence edges).
    critical_path_units: int
    critical_path_s: float
    #: measured seconds summed per template-graph SCC (condensation id).
    per_scc_s: Dict[int, float] = field(default_factory=dict)
    #: structural plan counters (see :meth:`TaskPlan.stats`).
    plan: Dict[str, int] = field(default_factory=dict)
    topo_hash: str = ""
    notes: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workers": self.workers,
            "units": self.units,
            "executed": self.executed,
            "steals": self.steals,
            "max_ready_depth": self.max_ready_depth,
            "parked_peak": self.parked_peak,
            "critical_path_units": self.critical_path_units,
            "critical_path_s": round(self.critical_path_s, 6),
            "per_scc_s": {
                str(scc): round(s, 6)
                for scc, s in sorted(self.per_scc_s.items())
            },
            "plan": dict(self.plan),
            "topo_hash": self.topo_hash,
            "notes": list(self.notes),
        }


class TaskScheduler:
    """Executes one plan on a pool of stealing workers."""

    def __init__(
        self,
        plan: TaskPlan,
        machine,
        runtimes: Sequence,
        namespaces: Sequence[Dict[str, Any]],
        code_objects: Sequence,
        workers: int,
        run_timeout_s: float,
    ):
        self.plan = plan
        self.machine = machine
        self.runtimes = list(runtimes)
        self.namespaces = list(namespaces)
        self.code_objects = list(code_objects)
        self.n_workers = max(1, workers)
        self.run_timeout_s = run_timeout_s

        self._succs = plan.successors()
        self._indeg = plan.indegrees()
        self._comm_dist = self._distance_to_comm()
        units = plan.units
        send_tags = {
            (u.tag, u.instance) for u in units if u.kind == "send" and u.tag
        }
        self._gated = {
            u.uid
            for u in units
            if u.kind == "recv" and u.tag and (u.tag, u.instance) in send_tags
        }

        self._cv = threading.Condition()
        self._deques: List[deque] = [deque() for _ in range(self.n_workers)]
        self._rank_busy = [False] * plan.nprocs
        self._rank_pending: List[deque] = [deque() for _ in range(plan.nprocs)]
        self._parked: List = []  # heap of (ready_time, uid)
        self._abort = False
        self._executed = 0
        self._ready_count = 0
        self._errors: List[Optional[BaseException]] = [None] * plan.nprocs
        self._durations = [0.0] * len(units)
        self._rank_busy_s = [0.0] * plan.nprocs
        self._steals = 0
        self._max_ready = 0
        self._parked_peak = 0

    # -- readiness ----------------------------------------------------------

    def _distance_to_comm(self) -> List[int]:
        """Edge distance from each unit to its nearest downstream send.

        Sends start latency clocks: every cycle a message spends in
        flight while the scheduler still has local compute queued is a
        cycle of latency that could have been hidden.  Ready units are
        therefore pushed so that the unit closest to unblocking a send
        (or a receive) pops first, and bulk compute fills the flight
        time.  Computed once per launch by dynamic programming over a
        reverse topological order of the instance DAG.
        """
        units = self.plan.units
        n = len(units)
        infinity = n + 1
        indeg = list(self._indeg)
        order: List[int] = [u for u in range(n) if indeg[u] == 0]
        for uid in order:  # Kahn; `order` grows while iterating
            for succ in self._succs[uid]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    order.append(succ)
        dist = [infinity] * n
        for uid in reversed(order):
            if units[uid].kind in ("send", "recv", "mixed", "collective"):
                dist[uid] = 0
                continue
            for succ in self._succs[uid]:
                if dist[succ] + 1 < dist[uid]:
                    dist[uid] = dist[succ] + 1
        return dist

    def _enqueue(self, uid: int, worker: int) -> None:
        # caller holds self._cv
        rank = self.plan.units[uid].rank
        if self._rank_busy[rank]:
            self._rank_pending[rank].append(uid)
            return
        self._deques[worker % self.n_workers].append(uid)
        self._ready_count += 1
        self._max_ready = max(self._max_ready, self._ready_count)

    def _make_ready(self, uid: int, worker: int) -> None:
        # caller holds self._cv
        unit = self.plan.units[uid]
        if uid in self._gated:
            ready_at = self.machine.latest_ready_at(
                unit.rank, unit.tag, unit.instance
            )
            if ready_at > time.monotonic():
                heapq.heappush(self._parked, (ready_at, uid))
                self._parked_peak = max(
                    self._parked_peak, len(self._parked)
                )
                return
        self._enqueue(uid, worker)

    def _release_parked(self, now: float, worker: int) -> None:
        # caller holds self._cv
        while self._parked and self._parked[0][0] <= now:
            _t, uid = heapq.heappop(self._parked)
            self._enqueue(uid, worker)

    def _take(self, worker: int) -> Optional[int]:
        """Next runnable unit for ``worker``; None means shut down."""
        with self._cv:
            while True:
                if self._abort or self._executed >= len(self.plan.units):
                    return None
                now = time.monotonic()
                self._release_parked(now, worker)
                uid = self._pop(worker)
                if uid is not None:
                    rank = self.plan.units[uid].rank
                    if self._rank_busy[rank]:
                        self._rank_pending[rank].append(uid)
                        continue
                    self._rank_busy[rank] = True
                    return uid
                timeout = _IDLE_WAIT_S
                if self._parked:
                    timeout = min(
                        timeout, max(0.0, self._parked[0][0] - now)
                    )
                self._cv.wait(timeout=timeout)

    def _pop(self, worker: int) -> Optional[int]:
        # caller holds self._cv
        own = self._deques[worker]
        if own:
            self._ready_count -= 1
            # Comm-critical first: the unit nearest a downstream send
            # (program order on ties).  Queued messages in flight while
            # local compute runs is the whole point of the backend, so
            # the chain that launches sends outranks bulk compute.
            dist = self._comm_dist
            best = min(range(len(own)), key=lambda k: (dist[own[k]], own[k]))
            uid = own[best]
            del own[best]
            return uid
        for offset in range(1, self.n_workers):
            victim = self._deques[(worker + offset) % self.n_workers]
            if victim:
                self._steals += 1
                self._ready_count -= 1
                # Thieves take the bulkiest work (farthest from a send,
                # oldest on ties): the owner chases the comm chain while
                # stolen compute fills the flight time.
                dist = self._comm_dist
                best = max(
                    range(len(victim)),
                    key=lambda k: (dist[victim[k]], -victim[k]),
                )
                uid = victim[best]
                del victim[best]
                return uid
        return None

    # -- execution ----------------------------------------------------------

    def _run_unit(self, uid: int) -> Optional[BaseException]:
        unit = self.plan.units[uid]
        self.machine.set_instance(unit.rank, unit.instance)
        start = time.perf_counter()
        try:
            exec(  # noqa: S102 - generated program fragments
                self.code_objects[uid], self.namespaces[unit.rank]
            )
            error = None
        except BaseException as exc:  # surfaced with Machine.run precedence
            error = exc
        duration = time.perf_counter() - start
        self._durations[uid] = duration
        self._rank_busy_s[unit.rank] += duration
        return error

    def _complete(self, uid: int, worker: int,
                  error: Optional[BaseException]) -> None:
        unit = self.plan.units[uid]
        with self._cv:
            self._rank_busy[unit.rank] = False
            self._executed += 1
            if error is not None:
                if self._errors[unit.rank] is None:
                    self._errors[unit.rank] = error
                self._abort = True
                self.machine.abort.set()
            elif not self._abort:
                for succ in self._succs[uid]:
                    self._indeg[succ] -= 1
                    if self._indeg[succ] == 0:
                        self._make_ready(succ, worker)
                pending = self._rank_pending[unit.rank]
                if pending:
                    self._enqueue(pending.popleft(), worker)
            self._cv.notify_all()

    def _worker(self, worker: int) -> None:
        while True:
            uid = self._take(worker)
            if uid is None:
                return
            error = self._run_unit(uid)
            self._complete(uid, worker, error)

    def run(self) -> SchedulerStats:
        """Execute the plan; raises exactly like :meth:`Machine.run`."""
        with self._cv:
            for uid, degree in enumerate(self._indeg):
                if degree == 0:
                    self._make_ready(uid, uid)
        threads = [
            threading.Thread(
                target=self._worker, args=(w,), daemon=True,
                name=f"taskgraph-worker-{w}",
            )
            for w in range(self.n_workers)
        ]
        deadline = time.monotonic() + self.run_timeout_s
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        if any(thread.is_alive() for thread in threads):
            with self._cv:
                self._abort = True
                self.machine.abort.set()
                self._cv.notify_all()
            for thread in threads:  # wake-up is prompt; reap them all
                thread.join(timeout=5.0 + self.run_timeout_s)
            raise RunTimeoutError(
                "task-graph run did not terminate within "
                f"{self.run_timeout_s:g}s",
                diagnostics=[
                    RankDiagnostics(
                        rank=rank,
                        phase=self.runtimes[rank].phase,
                        detail=(
                            f"{self._executed}/{len(self.plan.units)} "
                            "units executed at the deadline"
                        ),
                        trace_tail=trace_tail(self.runtimes[rank].trace),
                    )
                    for rank, busy in enumerate(self._rank_busy)
                    if busy
                ]
                or None,
            )
        self._raise_errors()
        return self._stats()

    def _raise_errors(self) -> None:
        # Mirrors Machine.run: application crashes outrank the
        # CommunicationErrors they usually cause; rank order breaks ties.
        for rank, error in enumerate(self._errors):
            if error is None or isinstance(error, CommunicationError):
                continue
            raise RankCrashError(
                f"rank {rank} failed: {error!r}",
                diagnostics=[
                    RankDiagnostics(
                        rank=rank,
                        phase=self.runtimes[rank].phase,
                        detail=f"{type(error).__name__}: {error}",
                        trace_tail=trace_tail(self.runtimes[rank].trace),
                    )
                ],
            ) from error
        for error in self._errors:
            if error is not None:
                raise error

    # -- reporting ----------------------------------------------------------

    def rank_busy_seconds(self) -> List[float]:
        return list(self._rank_busy_s)

    def _stats(self) -> SchedulerStats:
        # Critical path by dynamic programming in a Kahn topological
        # order (uids are rank-major, so numeric order is *not*
        # topological across cross-rank edges).
        n = len(self.plan.units)
        indeg = self.plan.indegrees()
        frontier = [uid for uid in range(n) if indeg[uid] == 0]
        cp_units = [1] * n
        cp_s = list(self._durations)
        order: List[int] = []
        while frontier:
            uid = frontier.pop()
            order.append(uid)
            for succ in self._succs[uid]:
                cp_units[succ] = max(cp_units[succ], cp_units[uid] + 1)
                cp_s[succ] = max(
                    cp_s[succ], cp_s[uid] + self._durations[succ]
                )
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    frontier.append(succ)
        per_scc: Dict[int, float] = {}
        for unit, duration in zip(self.plan.units, self._durations):
            per_scc[unit.scc] = per_scc.get(unit.scc, 0.0) + duration
        return SchedulerStats(
            workers=self.n_workers,
            units=n,
            executed=self._executed,
            steals=self._steals,
            max_ready_depth=self._max_ready,
            parked_peak=self._parked_peak,
            critical_path_units=max(cp_units, default=0) if order else 0,
            critical_path_s=max(cp_s, default=0.0) if order else 0.0,
            per_scc_s=per_scc,
            plan=self.plan.stats(),
            topo_hash=self.plan.topo_hash(),
            notes=list(self.plan.notes),
        )
