"""Task-graph scheduling subsystem (the ``taskgraph`` backend).

Turns one SPMD launch into a statement-instance DAG and executes it on a
work-stealing thread pool, overlapping communication latency with
independent computation while staying bitwise-identical to the
``threads`` schedule.  Modules:

``graph``
    Tarjan SCC, condensation, critical-path helpers (pure algorithms).
``plan``
    Picklable :class:`TaskPlan` / :class:`TaskUnit` representation.
``lower``
    AST segmentation of the generated node program into a plan.
``machine``
    Tag-addressed, latency-aware, abort-aware transport.
``sched``
    Work-stealing scheduler with rank exclusivity and arrival parking.
``backend``
    The registered :class:`ExecutionBackend` gluing it all together.
"""

from .backend import TaskGraphBackend
from .graph import condense, longest_path, tarjan_scc
from .lower import build_task_plan, trivial_plan
from .machine import TaskMachine
from .plan import TaskPlan, TaskUnit
from .sched import SchedulerStats, TaskScheduler

__all__ = [
    "TaskGraphBackend",
    "TaskMachine",
    "TaskPlan",
    "TaskScheduler",
    "TaskUnit",
    "SchedulerStats",
    "build_task_plan",
    "condense",
    "longest_path",
    "tarjan_scc",
    "trivial_plan",
]
