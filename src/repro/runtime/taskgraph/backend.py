"""The ``taskgraph`` execution backend.

Plans the generated node program into a statement-instance DAG
(:mod:`repro.runtime.taskgraph.lower`), then executes it on a
work-stealing pool (:mod:`repro.runtime.taskgraph.sched`) over the
tag-addressed :class:`~repro.runtime.taskgraph.machine.TaskMachine`
transport.  Plugs into the backend registry like any other backend — the
harness, supervisor (retry/fallback), fault injection, and result
validation all apply unchanged — and reports scheduler observability
through ``LaunchResult.scheduler``.

Unit code fragments are compiled once per distinct source string and
cached process-wide: repeated launches of the same artifact (benchmark
loops, the compile service) share code objects exactly like the
module-level ``load_node_main`` path does.
"""

from __future__ import annotations

import os
import threading
import time
from types import CodeType
from typing import Dict, List

from ..backends.base import (
    ExecutionBackend,
    LaunchResult,
    LaunchSpec,
    RankTiming,
)
from ..faults import arm_runtime
from ..machine import NodeRuntime, RankResult
from .lower import build_task_plan
from .machine import TaskMachine
from .sched import TaskScheduler

__all__ = ["TaskGraphBackend"]

_CODE_CACHE: Dict[str, CodeType] = {}
_CODE_LOCK = threading.Lock()


def _compiled_fragment(code: str) -> CodeType:
    with _CODE_LOCK:
        obj = _CODE_CACHE.get(code)
        if obj is None:
            obj = compile(code, "<taskgraph-unit>", "exec")
            _CODE_CACHE[code] = obj
        return obj


# Plans are pure functions of (source, per-rank envs, dep hints): the
# scheduler never mutates a plan (indegrees/successors are copied out),
# so repeated launches of the same artifact — benchmark laps, the
# compile service, supervisor retries — reuse one planning pass.
_PLAN_CACHE: Dict[tuple, object] = {}
_PLAN_LOCK = threading.Lock()
_PLAN_CACHE_MAX = 64


def _cached_plan(spec: LaunchSpec):
    key = (
        spec.source,
        tuple(
            tuple(sorted(binding.env.items())) for binding in spec.bindings
        ),
        tuple(spec.dep_hints or ()),
    )
    with _PLAN_LOCK:
        plan = _PLAN_CACHE.get(key)
    if plan is not None:
        return plan
    plan = build_task_plan(
        spec.source, spec.bindings, dep_hints=spec.dep_hints
    )
    with _PLAN_LOCK:
        if len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
            _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
        _PLAN_CACHE[key] = plan
    return plan


class TaskGraphBackend(ExecutionBackend):
    name = "taskgraph"

    def launch(self, spec: LaunchSpec) -> LaunchResult:
        options = spec.options
        plan_start = time.perf_counter()
        plan = _cached_plan(spec)
        plan_s = time.perf_counter() - plan_start

        machine = TaskMachine(
            spec.nprocs,
            recv_timeout_s=options.recv_timeout_s,
            run_timeout_s=options.run_timeout_s,
            comm_latency_s=options.comm_latency_s,
        )
        members = self.member_fns(spec.fallback_sets)

        # One exec of the module binds helpers and procedures; each rank
        # then works in its own shallow copy so unit-level assignments
        # (the segments' "locals") never leak across ranks.
        module_ns: Dict[str, object] = {}
        exec(  # noqa: S102 - the generated node program
            compile(spec.source, "<spmd>", "exec"), module_ns
        )

        runtimes: List[NodeRuntime] = []
        namespaces: List[Dict[str, object]] = []
        for rank in range(spec.nprocs):
            bindings = spec.bindings[rank]
            arrays, scalars = self.allocate_state(bindings)
            runtime = NodeRuntime(
                machine,
                rank,
                dict(bindings.env),
                arrays,
                bindings.array_lbounds,
                scalars,
            )
            runtime.member_fns = members
            runtime.inplace = dict(bindings.inplace)
            arm_runtime(runtime, options.fault_plan)
            runtimes.append(runtime)
            rank_ns = dict(module_ns)
            rank_ns["rt"] = runtime
            namespaces.append(rank_ns)

        code_objects = [
            _compiled_fragment(unit.code) for unit in plan.units
        ]
        workers = options.taskgraph_workers or min(
            spec.nprocs, max(2, os.cpu_count() or 2)
        )
        if plan.needs_rank_parallel_pool:
            # Blocking units (collectives, whole-procedure calls,
            # ungated receives) may suspend one worker per rank at once.
            workers = max(workers, spec.nprocs)

        scheduler = TaskScheduler(
            plan,
            machine,
            runtimes,
            namespaces,
            code_objects,
            workers=workers,
            run_timeout_s=options.run_timeout_s,
        )
        launch_start = time.perf_counter()
        stats = scheduler.run()
        elapsed = time.perf_counter() - launch_start

        busy = scheduler.rank_busy_seconds()
        timings = [
            RankTiming(rank, busy[rank]) for rank in range(spec.nprocs)
        ]
        rank_results = [
            RankResult(rt.rank, rt.arrays, rt.scalars, rt.trace, rt.env)
            for rt in runtimes
        ]
        scheduler_report = stats.as_dict()
        scheduler_report["plan_build_s"] = round(plan_s, 6)
        return LaunchResult(
            self.name,
            rank_results,
            timings,
            elapsed,
            scheduler=scheduler_report,
        )
