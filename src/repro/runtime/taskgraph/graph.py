"""Directed-graph algorithms for the task-graph scheduler.

Small, dependency-free, and deliberately generic: the planner
(:mod:`repro.runtime.taskgraph.lower`) feeds these adjacency lists built
from statement-level dependence conflicts, and the property tests feed
them random digraphs checked against brute-force oracles.

``tarjan_scc`` is the iterative (explicit-stack) formulation of Tarjan's
strongly-connected-components algorithm, so pathological template graphs
cannot hit the interpreter recursion limit.  Component order is reverse
topological (every edge leaving a component points to an
*earlier-emitted* component), which :func:`condense` then flips into the
forward topological order schedulers want.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["tarjan_scc", "condense", "longest_path"]


def tarjan_scc(n: int, adj: Sequence[Sequence[int]]) -> List[List[int]]:
    """Strongly connected components of the digraph ``0..n-1``.

    ``adj[u]`` lists successors of ``u``.  Returns components in reverse
    topological order; each component lists its members in ascending
    order (stable across runs — determinism is load-bearing, the plan
    hash covers it).
    """
    index = [0] * n
    low = [0] * n
    on_stack = [False] * n
    visited = [False] * n
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 1  # 0 means "unvisited" in ``index``

    for root in range(n):
        if visited[root]:
            continue
        # (node, iterator position) work stack replaces recursion.
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, pos = work.pop()
            if pos == 0:
                visited[node] = True
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            recurse = False
            successors = adj[node]
            while pos < len(successors):
                succ = successors[pos]
                pos += 1
                if not visited[succ]:
                    work.append((node, pos))
                    work.append((succ, 0))
                    recurse = True
                    break
                if on_stack[succ]:
                    low[node] = min(low[node], index[succ])
            if recurse:
                continue
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                component.sort()
                components.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return components


def condense(
    n: int, adj: Sequence[Sequence[int]]
) -> Tuple[List[int], List[List[int]], List[List[int]]]:
    """Collapse cycles: the SCC condensation as a DAG.

    Returns ``(comp_of, members, comp_adj)`` where ``comp_of[u]`` is the
    component id of node ``u``, ``members[c]`` lists the nodes of
    component ``c`` (ascending), and ``comp_adj[c]`` the distinct
    successor components (ascending, self-loops removed).  Components
    are numbered in forward topological order: every edge satisfies
    ``comp_of[u] <= comp_of[v]``.
    """
    components = tarjan_scc(n, adj)
    components.reverse()  # forward topological order
    comp_of = [0] * n
    for cid, members in enumerate(components):
        for node in members:
            comp_of[node] = cid
    comp_adj: List[List[int]] = []
    for cid, members in enumerate(components):
        succs = {
            comp_of[v]
            for u in members
            for v in adj[u]
            if comp_of[v] != cid
        }
        comp_adj.append(sorted(succs))
    return comp_of, components, comp_adj


def longest_path(
    n: int,
    adj: Sequence[Sequence[int]],
    weight: Sequence[float],
) -> float:
    """Critical-path length of a DAG under per-node weights.

    Nodes must be topologically numbered ascending along every edge
    (what the planner's instance DAG guarantees); raises ``ValueError``
    on a back edge rather than silently under-reporting.
    """
    best = list(weight)
    for u in range(n):
        for v in adj[u]:
            if v <= u:
                raise ValueError(
                    f"edge {u}->{v} violates topological numbering"
                )
            if best[u] + weight[v] > best[v]:
                best[v] = best[u] + weight[v]
    return max(best, default=0.0)
