"""The abstract runtime API generated node programs run against.

The SPMD emitter targets exactly this surface: ``rt.send_section`` /
``rt.recv_section`` for descriptor-based communication (the legacy
per-element ``rt.send`` / ``rt.recv`` remain for the ``elements`` data
plane and hand-written node programs), ``rt.allreduce`` / ``rt.barrier``
for collectives, ``rt.work`` / ``rt.check`` for cost accounting,
``rt.member`` for fallback set guards, and the ``env`` / ``arrays`` /
``lbounds`` / ``scalars`` / ``red_base`` / ``inplace`` state
dictionaries.  Each execution backend provides a concrete
subclass: the thread-simulated :class:`~repro.runtime.machine.NodeRuntime`,
and the multiprocess worker's shared-memory implementation in
:mod:`repro.runtime.backends.mp`.

Only the four communication primitives differ between backends; state
handling, tracing hooks, and guard evaluation are shared here.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Tuple

import numpy as np

from .trace import Trace


class NodeRuntimeBase(abc.ABC):
    """Backend-independent half of the node-program runtime protocol."""

    def __init__(
        self,
        rank: int,
        nprocs: int,
        env: Dict[str, int],
        arrays: Dict[str, np.ndarray],
        lbounds: Dict[str, Tuple[int, ...]],
        scalars: Dict[str, float],
    ):
        self.rank = rank
        self.nprocs = nprocs
        self.env = env
        self.arrays = arrays
        self.lbounds = lbounds
        self.scalars = scalars
        self.trace = Trace(rank)
        #: membership closures for guards the emitter could not express
        #: inline; registered by the harness.
        self.member_fns: List[Callable[..., bool]] = []
        #: pre-nest values of '+'-reduction scalars.
        self.red_base: Dict[str, float] = {}
        #: runtime-evaluated in-place contiguity flags, by name.
        self.inplace: Dict[str, bool] = {}

    # -- communication (backend-specific) ---------------------------------------

    @abc.abstractmethod
    def send(
        self, dest: int, tag, values, indices=None, inplace: bool = False
    ) -> None:
        """Buffered (non-blocking) send of ``values`` to ``dest``."""

    @abc.abstractmethod
    def recv(self, src: int, tag, inplace: bool = False):
        """Blocking receive; returns ``(indices, values)`` from ``src``."""

    @abc.abstractmethod
    def send_section(
        self, dest: int, tag, name: str, sections, inplace: bool = False
    ) -> None:
        """Buffered send of array ``name``'s ``sections`` to ``dest``.

        ``sections`` is a list of section descriptors (see
        :mod:`repro.runtime.sections`) in global index coordinates; the
        payload is gathered with vectorized numpy slice reads (zero-copy
        where the transport allows it) and the descriptors travel with
        the message.
        """

    @abc.abstractmethod
    def recv_section(
        self, src: int, tag, name: str, inplace: bool = False
    ) -> None:
        """Blocking receive scattering directly into array ``name``.

        Uses the descriptors the *sender* shipped (minus this rank's
        allocation lower bounds), so no enumeration-order agreement is
        required; the payload is written via strided views instead of
        index-by-index assignments.
        """

    @abc.abstractmethod
    def allreduce(self, op: str, value: float) -> float:
        """Combine ``value`` across all ranks with ``op`` in {'+','max','min'}."""

    @abc.abstractmethod
    def barrier(self) -> None:
        """Block until every rank reaches the barrier."""

    # -- accounting (shared) ----------------------------------------------------

    def work(self, amount: float) -> None:
        self.trace.compute(amount)

    def check(self, count: int = 1) -> None:
        self.trace.check(count)

    def member(self, index: int, point, overrides=None) -> bool:
        env = dict(self.env)
        if overrides:
            env.update(overrides)
        return self.member_fns[index](env, point)
