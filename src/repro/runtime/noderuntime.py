"""The abstract runtime API generated node programs run against.

The SPMD emitter targets exactly this surface: ``rt.send`` / ``rt.recv`` /
``rt.allreduce`` / ``rt.barrier`` for communication, ``rt.work`` /
``rt.check`` for cost accounting, ``rt.member`` for fallback set guards,
and the ``env`` / ``arrays`` / ``lbounds`` / ``scalars`` / ``red_base`` /
``inplace`` state dictionaries.  Each execution backend provides a concrete
subclass: the thread-simulated :class:`~repro.runtime.machine.NodeRuntime`,
and the multiprocess worker's shared-memory implementation in
:mod:`repro.runtime.backends.mp`.

Only the four communication primitives differ between backends; state
handling, tracing hooks, and guard evaluation are shared here.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Tuple

import numpy as np

from .trace import Trace


class NodeRuntimeBase(abc.ABC):
    """Backend-independent half of the node-program runtime protocol."""

    def __init__(
        self,
        rank: int,
        nprocs: int,
        env: Dict[str, int],
        arrays: Dict[str, np.ndarray],
        lbounds: Dict[str, Tuple[int, ...]],
        scalars: Dict[str, float],
    ):
        self.rank = rank
        self.nprocs = nprocs
        self.env = env
        self.arrays = arrays
        self.lbounds = lbounds
        self.scalars = scalars
        self.trace = Trace(rank)
        #: membership closures for guards the emitter could not express
        #: inline; registered by the harness.
        self.member_fns: List[Callable[..., bool]] = []
        #: pre-nest values of '+'-reduction scalars.
        self.red_base: Dict[str, float] = {}
        #: runtime-evaluated in-place contiguity flags, by name.
        self.inplace: Dict[str, bool] = {}

    # -- communication (backend-specific) ---------------------------------------

    @abc.abstractmethod
    def send(
        self, dest: int, tag, values, indices=None, inplace: bool = False
    ) -> None:
        """Buffered (non-blocking) send of ``values`` to ``dest``."""

    @abc.abstractmethod
    def recv(self, src: int, tag, inplace: bool = False):
        """Blocking receive; returns ``(indices, values)`` from ``src``."""

    @abc.abstractmethod
    def allreduce(self, op: str, value: float) -> float:
        """Combine ``value`` across all ranks with ``op`` in {'+','max','min'}."""

    @abc.abstractmethod
    def barrier(self) -> None:
        """Block until every rank reaches the barrier."""

    # -- accounting (shared) ----------------------------------------------------

    def work(self, amount: float) -> None:
        self.trace.compute(amount)

    def check(self, count: int = 1) -> None:
        self.trace.check(count)

    def member(self, index: int, point, overrides=None) -> bool:
        env = dict(self.env)
        if overrides:
            env.update(overrides)
        return self.member_fns[index](env, point)
