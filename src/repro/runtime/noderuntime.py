"""The abstract runtime API generated node programs run against.

The SPMD emitter targets exactly this surface: ``rt.send_section`` /
``rt.recv_section`` for descriptor-based communication (the legacy
per-element ``rt.send`` / ``rt.recv`` remain for the ``elements`` data
plane and hand-written node programs), ``rt.allreduce`` / ``rt.barrier``
for collectives, ``rt.work`` / ``rt.check`` for cost accounting,
``rt.member`` for fallback set guards, and the ``env`` / ``arrays`` /
``lbounds`` / ``scalars`` / ``red_base`` / ``inplace`` state
dictionaries.  Each execution backend provides a concrete
subclass: the thread-simulated :class:`~repro.runtime.machine.NodeRuntime`,
and the multiprocess worker's shared-memory implementation in
:mod:`repro.runtime.backends.mp`.

Only the four communication primitives differ between backends; state
handling, tracing hooks, and guard evaluation are shared here.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Tuple

import numpy as np

from .faults import OP_OF_METHOD
from .trace import Trace


class NodeRuntimeBase(abc.ABC):
    """Backend-independent half of the node-program runtime protocol."""

    #: does this runtime own its OS process?  Controls whether a ``kill``
    #: fault may deliver a real signal (mp workers) or must degrade to an
    #: in-process crash (threads / inproc-seq share the interpreter).
    out_of_process: bool = False

    def __init__(
        self,
        rank: int,
        nprocs: int,
        env: Dict[str, int],
        arrays: Dict[str, np.ndarray],
        lbounds: Dict[str, Tuple[int, ...]],
        scalars: Dict[str, float],
    ):
        self.rank = rank
        self.nprocs = nprocs
        self.env = env
        self.arrays = arrays
        self.lbounds = lbounds
        self.scalars = scalars
        self.trace = Trace(rank)
        #: membership closures for guards the emitter could not express
        #: inline; registered by the harness.
        self.member_fns: List[Callable[..., bool]] = []
        #: pre-nest values of '+'-reduction scalars.
        self.red_base: Dict[str, float] = {}
        #: runtime-evaluated in-place contiguity flags, by name.
        self.inplace: Dict[str, bool] = {}
        #: last phase this rank entered — crash-report fodder
        #: (startup → compute / send / recv / collective / step).
        self.phase: str = "startup"
        #: armed fault injector, if any (set by ``faults.arm_runtime``).
        self.faults = None
        self._install_phase_tracking()

    def _install_phase_tracking(self) -> None:
        """Wrap the op methods so ``self.phase`` always names the phase.

        Instance-level wrapping covers every backend's concrete
        implementation uniformly; on failure the phase is left at the op
        that raised (the wrapper only resets it on success), so crash
        reports can say *where* a rank died.
        """
        for name, phase in OP_OF_METHOD.items():
            original = getattr(self, name)
            setattr(self, name, self._phased(original, phase))

    def _phased(self, original: Callable, phase: str) -> Callable:
        def tracked(*args, **kwargs):
            self.phase = phase
            result = original(*args, **kwargs)
            self.phase = "compute"
            return result

        return tracked

    # -- communication (backend-specific) ---------------------------------------

    @abc.abstractmethod
    def send(
        self, dest: int, tag, values, indices=None, inplace: bool = False
    ) -> None:
        """Buffered (non-blocking) send of ``values`` to ``dest``."""

    @abc.abstractmethod
    def recv(self, src: int, tag, inplace: bool = False):
        """Blocking receive; returns ``(indices, values)`` from ``src``."""

    @abc.abstractmethod
    def send_section(
        self, dest: int, tag, name: str, sections, inplace: bool = False
    ) -> None:
        """Buffered send of array ``name``'s ``sections`` to ``dest``.

        ``sections`` is a list of section descriptors (see
        :mod:`repro.runtime.sections`) in global index coordinates; the
        payload is gathered with vectorized numpy slice reads (zero-copy
        where the transport allows it) and the descriptors travel with
        the message.
        """

    @abc.abstractmethod
    def recv_section(
        self, src: int, tag, name: str, inplace: bool = False
    ) -> None:
        """Blocking receive scattering directly into array ``name``.

        Uses the descriptors the *sender* shipped (minus this rank's
        allocation lower bounds), so no enumeration-order agreement is
        required; the payload is written via strided views instead of
        index-by-index assignments.
        """

    @abc.abstractmethod
    def allreduce(self, op: str, value: float) -> float:
        """Combine ``value`` across all ranks with ``op`` in {'+','max','min'}."""

    @abc.abstractmethod
    def barrier(self) -> None:
        """Block until every rank reaches the barrier."""

    # -- accounting (shared) ----------------------------------------------------

    def work(self, amount: float, vectorized: bool = False) -> None:
        self.trace.compute(amount, vectorized=vectorized)

    def check(self, count: int = 1) -> None:
        self.trace.check(count)

    def member(self, index: int, point, overrides=None) -> bool:
        env = dict(self.env)
        if overrides:
            env.update(overrides)
        return self.member_fns[index](env, point)
