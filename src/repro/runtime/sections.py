"""Section descriptors: the vectorized communication data plane.

The §3.3 contiguity analysis (:mod:`repro.core.inplace`) proves at compile
time that communicated data is a union of contiguous/strided array
sections.  Instead of shipping every message as per-element index/value
lists packed by generated Python loops, the emitter lowers each
communication-set conjunct to a compact *section descriptor* and the
runtime moves the payload with numpy slice assignments — one vectorized
copy (or none at all on the shared-memory backend) instead of one Python
iteration per element.

Descriptor format — a message carries a list of sections, each one of:

* ``("S", ((start, count, step), ...))`` — a strided span per array
  dimension, in **global** index coordinates (the receiver subtracts its
  own allocation lower bounds).  Enumerates the rectangular lattice
  ``start, start+step, ..., start+(count-1)*step`` per dimension in
  C order.
* ``("F", (indices_dim0, indices_dim1, ...))`` — exact fancy-index
  fallback for conjuncts the emitter cannot express as a single strided
  span (e.g. triangular sets whose inner bounds depend on outer data
  dimensions).  Parallel per-dimension index sequences, also global.

Payloads are C-contiguous 1-D ``float64`` vectors holding the sections
back to back, in descriptor order.  Because the descriptors travel with
the message, sender and receiver never need to agree on an enumeration
order — the receiver scatters exactly what the sender described.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

SLICE = "S"
FANCY = "F"


def section_count(section) -> int:
    """Number of elements a single section describes."""
    kind, dims = section
    if kind == SLICE:
        total = 1
        for _start, count, _step in dims:
            total *= count
        return total
    return len(dims[0]) if dims else 0


def message_count(sections) -> int:
    """Total element count of a descriptor list."""
    return sum(section_count(section) for section in sections)


def _local_slices(dims, lbounds) -> Tuple[slice, ...]:
    return tuple(
        slice(start - lb, start - lb + (count - 1) * step + 1, step)
        for (start, count, step), lb in zip(dims, lbounds)
    )


def _local_fancy(dims, lbounds):
    return tuple(
        np.asarray(ix, dtype=np.intp) - lb
        for ix, lb in zip(dims, lbounds)
    )


def _checked_slice_view(array, lbounds, dims):
    view = array[_local_slices(dims, lbounds)]
    counts = tuple(count for _start, count, _step in dims)
    if view.shape != counts:
        raise ValueError(
            f"section {dims} exceeds array bounds "
            f"(shape {array.shape}, lbounds {tuple(lbounds)})"
        )
    return view


def section_view(array, lbounds, section):
    """A view (slice sections) or gathered copy (fancy) of one section."""
    kind, dims = section
    if kind == SLICE:
        return _checked_slice_view(array, lbounds, dims)
    return array[_local_fancy(dims, lbounds)]


def pack_sections(array, lbounds, sections, force_copy: bool):
    """Gather ``sections`` of ``array`` into one contiguous payload.

    Returns ``(payload, copied_bytes, viewed_bytes)`` where ``payload``
    is a C-contiguous 1-D float64 vector.  When ``force_copy`` is false
    and the message is a single contiguous slice section, the payload is
    a zero-copy view into ``array`` (``viewed_bytes`` = payload bytes);
    every other shape stages exactly one vectorized copy
    (``copied_bytes`` = payload bytes).  Backends whose transport does
    not immediately consume the payload (the in-process machines, whose
    channel holds it until the receiver scatters) must pass
    ``force_copy=True`` — the sender is free to overwrite the sent region
    as soon as the call returns.
    """
    if len(sections) == 1:
        kind, dims = sections[0]
        if kind == SLICE:
            view = _checked_slice_view(array, lbounds, dims)
            if view.flags.c_contiguous:
                flat = view.reshape(-1)
                if force_copy:
                    return flat.copy(), flat.nbytes, 0
                return flat, 0, flat.nbytes
            flat = np.ascontiguousarray(view).reshape(-1)
            return flat, flat.nbytes, 0
        gathered = array[_local_fancy(dims, lbounds)].astype(
            np.float64, copy=False
        )
        flat = np.ascontiguousarray(gathered).reshape(-1)
        return flat, flat.nbytes, 0
    total = message_count(sections)
    out = np.empty(total, dtype=np.float64)
    pos = 0
    for section in sections:
        piece = section_view(array, lbounds, section)
        n = piece.size
        out[pos : pos + n] = piece.reshape(-1)
        pos += n
    return out, out.nbytes, 0


def scatter_sections(array, lbounds, sections, payload) -> int:
    """Scatter a received ``payload`` into ``array`` per ``sections``.

    Writes directly from the payload (which may be a read-only view into
    a transport buffer) into array storage via strided slice assignment
    (slice sections) or advanced indexing (fancy sections).  Returns the
    number of elements consumed; raises when the descriptor element count
    disagrees with the payload length.
    """
    flat = np.asarray(payload).reshape(-1)
    pos = 0
    for kind, dims in sections:
        if kind == SLICE:
            counts = tuple(count for _start, count, _step in dims)
            n = 1
            for count in counts:
                n *= count
            view = _checked_slice_view(array, lbounds, dims)
            view[...] = flat[pos : pos + n].reshape(counts)
        else:
            idx = _local_fancy(dims, lbounds)
            n = len(dims[0]) if dims else 0
            array[idx] = flat[pos : pos + n]
        pos += n
    if pos != flat.size:
        raise ValueError(
            f"descriptor count {pos} != payload length {flat.size}"
        )
    return pos


def own_payload(values) -> Tuple[np.ndarray, int]:
    """Coerce legacy ``send(values, indices=...)`` payloads to an owned,
    contiguous float64 vector.

    Returns ``(payload, copied_bytes)``.  The legacy API has buffered
    (MPI-style) send semantics — the caller may reuse its buffer as soon
    as the call returns — so an ndarray argument is snapshotted; list or
    iterable arguments are materialized, which is itself the one copy
    (the old ``data = list(values)`` staging copy on top of it is gone).
    """
    if isinstance(values, np.ndarray):
        arr = np.ascontiguousarray(values, dtype=np.float64)
        if arr is values:
            arr = values.copy()
        return arr.reshape(-1), arr.nbytes
    arr = np.asarray(
        values if isinstance(values, (list, tuple)) else list(values),
        dtype=np.float64,
    )
    return arr.reshape(-1), arr.nbytes
