"""Pluggable execution backends for compiled SPMD node programs.

See :mod:`repro.runtime.backends.base` for the interface and the
characteristics of each registered backend (``threads``, ``mp``,
``inproc-seq``, ``taskgraph``).
"""

from ..taskgraph.backend import TaskGraphBackend
from .base import (
    ExecutionBackend,
    LaunchResult,
    LaunchSpec,
    RankBindings,
    RankTiming,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
)
from .inproc_seq import SequentialBackend, SequentialMachine
from .mp import MPNodeRuntime, MultiprocessBackend
from .threads import ThreadsBackend

register_backend(ThreadsBackend.name, ThreadsBackend)
register_backend(MultiprocessBackend.name, MultiprocessBackend)
register_backend(SequentialBackend.name, SequentialBackend)
register_backend(TaskGraphBackend.name, TaskGraphBackend)

__all__ = [
    "ExecutionBackend",
    "LaunchResult",
    "LaunchSpec",
    "MPNodeRuntime",
    "MultiprocessBackend",
    "RankBindings",
    "RankTiming",
    "SequentialBackend",
    "SequentialMachine",
    "TaskGraphBackend",
    "ThreadsBackend",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend",
]
