"""``mp`` backend: one OS process per rank — a real shared-nothing run.

This is the closest substitute we have for the paper's message-passing
testbed (a 64-node IBM SP-2): every rank is a separate interpreter with
its own heap, receives genuinely block, collectives are binomial trees of
point-to-point messages, and the reported times are measured wall-clock,
not LogGP replay.  The optimizations the paper motivates by *copy* and
*overlap* behavior (in-place communication §3.3, loop splitting Figure 4)
are therefore observable here as real time differences.

Transport
---------

Each rank owns one inbound ``multiprocessing.Queue`` carrying small
control tuples.  Message *payloads* (float64 vectors) travel through
single-producer/single-consumer ring buffers carved out of one
``multiprocessing.shared_memory`` segment — one ring per ordered rank
pair, header ``[head:u64][tail:u64]`` followed by the data area.  The
sender writes the payload and advances ``tail``; the receiver consumes in
control-message order and advances ``head``; when a ring lacks space the
payload falls back to pickling through the control queue, so correctness
never depends on ring capacity.  Collective partials always use the
pickle path (they are single scalars) which keeps ring traffic strictly
FIFO per pair.

Failure behavior: a rank that raises reports through the result queue and
the parent terminates the survivors; a deadlocked receive times out after
``RuntimeOptions.recv_timeout_s`` — either way the caller sees
:class:`CommunicationError`, never a hang.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import struct
import time
import traceback
from collections import deque
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..machine import CommunicationError, RankResult
from .base import (
    ExecutionBackend,
    LaunchResult,
    LaunchSpec,
    RankBindings,
    RankTiming,
)
from ..noderuntime import NodeRuntimeBase

#: per-pair ring capacity (bytes, data area); total segment size is capped
#: so large rank counts degrade to the pickle path instead of exhausting
#: /dev/shm.
DEFAULT_RING_BYTES = 1 << 18
_TOTAL_SHM_CAP = 1 << 26
_RING_HEADER = 16

_COLL_UP = "__coll_up__"
_COLL_DOWN = "__coll_dn__"


def _ring_bytes_for(nprocs: int, requested: int) -> int:
    per_pair_cap = max(4096, _TOTAL_SHM_CAP // max(1, nprocs * nprocs))
    return min(requested, per_pair_cap)


class _ShmRing:
    """Single-producer/single-consumer byte ring inside a shm slice.

    ``head`` and ``tail`` are monotonically increasing byte counters; the
    writer only advances ``tail``, the reader only advances ``head``, and
    every payload is announced through the control queue *after* the write
    completes, so no locking is needed.
    """

    def __init__(self, view: memoryview):
        self.view = view
        self.capacity = len(view) - _RING_HEADER

    def _head(self) -> int:
        return struct.unpack_from("<Q", self.view, 0)[0]

    def _tail(self) -> int:
        return struct.unpack_from("<Q", self.view, 8)[0]

    def try_write(self, payload: bytes) -> bool:
        nbytes = len(payload)
        head, tail = self._head(), self._tail()
        if nbytes == 0 or nbytes > self.capacity - (tail - head):
            return False
        pos = tail % self.capacity
        first = min(nbytes, self.capacity - pos)
        base = _RING_HEADER
        self.view[base + pos : base + pos + first] = payload[:first]
        if first < nbytes:
            self.view[base : base + nbytes - first] = payload[first:]
        struct.pack_into("<Q", self.view, 8, tail + nbytes)
        return True

    def read(self, nbytes: int) -> bytes:
        head = self._head()
        pos = head % self.capacity
        first = min(nbytes, self.capacity - pos)
        base = _RING_HEADER
        data = bytes(self.view[base + pos : base + pos + first])
        if first < nbytes:
            data += bytes(self.view[base : base + nbytes - first])
        struct.pack_into("<Q", self.view, 0, head + nbytes)
        return data

    def release(self) -> None:
        self.view.release()


class _Transport:
    """Per-worker view of the queues + shared-memory rings."""

    def __init__(
        self,
        rank: int,
        nprocs: int,
        queues,
        shm_buf: memoryview,
        ring_bytes: int,
        recv_timeout_s: float,
    ):
        self.rank = rank
        self.nprocs = nprocs
        self.queues = queues
        self.recv_timeout_s = recv_timeout_s
        self.shm_fallbacks = 0
        slot = ring_bytes + _RING_HEADER
        self._rings_out: Dict[int, _ShmRing] = {}
        self._rings_in: Dict[int, _ShmRing] = {}
        for other in range(nprocs):
            if other == rank:
                continue
            out_off = (rank * nprocs + other) * slot
            in_off = (other * nprocs + rank) * slot
            self._rings_out[other] = _ShmRing(
                shm_buf[out_off : out_off + slot]
            )
            self._rings_in[other] = _ShmRing(
                shm_buf[in_off : in_off + slot]
            )
        self._pending_user: Dict[int, deque] = {
            r: deque() for r in range(nprocs)
        }
        self._pending_internal: Dict[int, deque] = {
            r: deque() for r in range(nprocs)
        }

    # -- sending ----------------------------------------------------------------

    def send_user(self, dest: int, tag, indices, values) -> None:
        payload = np.asarray(values, dtype=np.float64).tobytes()
        if values and self._rings_out[dest].try_write(payload):
            msg = ("shm", self.rank, tag, indices, len(values))
        else:
            if values:
                self.shm_fallbacks += 1
            msg = ("pkl", self.rank, tag, indices, list(values))
        self.queues[dest].put(msg)

    def send_internal(self, dest: int, tag, values) -> None:
        self.queues[dest].put(("int", self.rank, tag, None, list(values)))

    # -- receiving --------------------------------------------------------------

    def _pump(self, want_tag, want_src) -> None:
        """Move one inbound control message into its pending stash."""
        try:
            msg = self.queues[self.rank].get(timeout=self.recv_timeout_s)
        except queue_mod.Empty:
            raise CommunicationError(
                f"rank {self.rank} timed out receiving {want_tag!r} "
                f"from {want_src}"
            ) from None
        kind, src = msg[0], msg[1]
        if kind == "int":
            self._pending_internal[src].append(msg)
        else:
            self._pending_user[src].append(msg)

    def _materialize(self, msg):
        kind, src, tag, indices, payload = msg
        if kind == "shm":
            raw = self._rings_in[src].read(8 * payload)
            values = np.frombuffer(raw, dtype=np.float64).tolist()
        else:
            values = payload
        return tag, indices, values

    def recv_user(self, src: int, tag):
        pending = self._pending_user[src]
        while not pending:
            self._pump(tag, src)
        return self._materialize(pending.popleft())

    def recv_internal(self, src: int, tag):
        pending = self._pending_internal[src]
        while True:
            for i, msg in enumerate(pending):
                if msg[2] == tag:
                    del pending[i]
                    return msg[4]
            self._pump(tag, src)

    def release(self) -> None:
        for ring in self._rings_out.values():
            ring.release()
        for ring in self._rings_in.values():
            ring.release()


class MPNodeRuntime(NodeRuntimeBase):
    """The multiprocess-worker implementation of the runtime protocol."""

    def __init__(
        self,
        transport: _Transport,
        rank: int,
        nprocs: int,
        env: Dict[str, int],
        arrays: Dict[str, np.ndarray],
        lbounds: Dict[str, Tuple[int, ...]],
        scalars: Dict[str, float],
    ):
        super().__init__(rank, nprocs, env, arrays, lbounds, scalars)
        self.transport = transport
        self.comm_wall_s = 0.0
        self.per_event_s: List[float] = []
        self._coll_seq = 0

    def _clocked(self, start: float) -> None:
        elapsed = time.perf_counter() - start
        self.comm_wall_s += elapsed
        self.per_event_s.append(elapsed)

    # -- communication ----------------------------------------------------------

    def send(self, dest, tag, values, indices=None, inplace=False) -> None:
        start = time.perf_counter()
        data = list(values)
        nbytes = 8 * len(data)
        self.trace.send(dest, tag, nbytes, 0 if inplace else nbytes)
        self.transport.send_user(dest, tag, indices, data)
        self._clocked(start)

    def recv(self, src, tag, inplace=False):
        start = time.perf_counter()
        got_tag, indices, data = self.transport.recv_user(src, tag)
        if got_tag != tag:
            raise CommunicationError(
                f"rank {self.rank}: expected {tag!r} from {src}, "
                f"got {got_tag!r}"
            )
        nbytes = 8 * len(data)
        self.trace.recv(src, tag, nbytes, 0 if inplace else nbytes)
        self._clocked(start)
        return indices, data

    def allreduce(self, op: str, value: float) -> float:
        self.trace.collective("allreduce", 8)
        ops = {
            "+": lambda a, b: a + b,
            "max": lambda a, b: a if a >= b else b,
            "min": lambda a, b: a if a <= b else b,
        }
        return self._tree_combine(value, ops[op])

    def barrier(self) -> None:
        self.trace.collective("barrier", 0)
        self._tree_combine(0.0, lambda a, b: 0.0)

    def _tree_combine(self, value, op2: Callable) -> float:
        """Binomial-tree reduce to rank 0, then tree broadcast back."""
        start = time.perf_counter()
        seq = self._coll_seq
        self._coll_seq += 1
        up = (_COLL_UP, seq)
        down = (_COLL_DOWN, seq)
        rank, nprocs, tr = self.rank, self.nprocs, self.transport
        step = 1
        while step < nprocs:
            if rank % (2 * step) == step:
                tr.send_internal(rank - step, up, [value])
                break
            partner = rank + step
            if partner < nprocs:
                value = op2(value, tr.recv_internal(partner, up)[0])
            step *= 2
        steps = []
        step = 1
        while step < nprocs:
            steps.append(step)
            step *= 2
        for step in reversed(steps):
            if rank % (2 * step) == step:
                value = tr.recv_internal(rank - step, down)[0]
            elif rank % (2 * step) == 0 and rank + step < nprocs:
                tr.send_internal(rank + step, down, [value])
        self._clocked(start)
        return value


def _worker_main(
    rank: int,
    spec: LaunchSpec,
    queues,
    result_queue,
    shm_name: str,
    ring_bytes: int,
) -> None:
    from multiprocessing import shared_memory

    shm = None
    transport = None
    try:
        shm = shared_memory.SharedMemory(name=shm_name)
        transport = _Transport(
            rank,
            spec.nprocs,
            queues,
            shm.buf,
            ring_bytes,
            spec.options.recv_timeout_s,
        )
        bindings: RankBindings = spec.bindings[rank]
        node_main = ExecutionBackend.load_node_main(spec.source)
        arrays, scalars = ExecutionBackend.allocate_state(bindings)
        runtime = MPNodeRuntime(
            transport,
            rank,
            spec.nprocs,
            dict(bindings.env),
            arrays,
            bindings.array_lbounds,
            scalars,
        )
        runtime.member_fns = ExecutionBackend.member_fns(
            spec.fallback_sets
        )
        runtime.inplace = dict(bindings.inplace)
        start = time.perf_counter()
        node_main(runtime)
        wall = time.perf_counter() - start
        timing = RankTiming(
            rank, wall, runtime.comm_wall_s, runtime.per_event_s
        )
        result_queue.put(
            (
                "ok",
                rank,
                runtime.arrays,
                runtime.scalars,
                runtime.trace,
                runtime.env,
                timing,
            )
        )
    except BaseException as exc:
        result_queue.put(
            (
                "err",
                rank,
                f"{type(exc).__name__}: {exc}",
                traceback.format_exc(),
            )
        )
    finally:
        if transport is not None:
            transport.release()
        if shm is not None:
            shm.close()


class MultiprocessBackend(ExecutionBackend):
    """True multiprocess SPMD execution (one interpreter per rank)."""

    name = "mp"

    def __init__(self, ring_bytes: int = DEFAULT_RING_BYTES):
        self.ring_bytes = ring_bytes

    def launch(self, spec: LaunchSpec) -> LaunchResult:
        from multiprocessing import shared_memory

        ctx = multiprocessing.get_context()
        nprocs = spec.nprocs
        ring_bytes = _ring_bytes_for(nprocs, self.ring_bytes)
        slot = ring_bytes + _RING_HEADER
        queues = [ctx.Queue() for _ in range(nprocs)]
        result_queue = ctx.Queue()
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, nprocs * nprocs * slot)
        )
        procs = []
        launch_start = time.perf_counter()
        try:
            procs = [
                ctx.Process(
                    target=_worker_main,
                    args=(
                        rank,
                        spec,
                        queues,
                        result_queue,
                        shm.name,
                        ring_bytes,
                    ),
                    daemon=True,
                )
                for rank in range(nprocs)
            ]
            for proc in procs:
                proc.start()
            collected: Dict[int, tuple] = {}
            deadline = launch_start + spec.options.run_timeout_s
            error = None
            while len(collected) < nprocs:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    error = "SPMD run did not terminate"
                    break
                try:
                    msg = result_queue.get(timeout=min(remaining, 0.25))
                except queue_mod.Empty:
                    for rank, proc in enumerate(procs):
                        if (
                            rank not in collected
                            and proc.exitcode is not None
                            and proc.exitcode != 0
                        ):
                            error = (
                                f"rank {rank} died with exit code "
                                f"{proc.exitcode}"
                            )
                            break
                    if error:
                        break
                    continue
                if msg[0] == "err":
                    error = f"rank {msg[1]} failed: {msg[2]}\n{msg[3]}"
                    break
                collected[msg[1]] = msg
            if error is not None:
                raise CommunicationError(error)
            elapsed = time.perf_counter() - launch_start
            results = []
            timings = []
            for rank in range(nprocs):
                _, _, arrays, scalars, trace, env, timing = collected[rank]
                results.append(
                    RankResult(rank, arrays, scalars, trace, env)
                )
                timings.append(timing)
            return LaunchResult(self.name, results, timings, elapsed)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                if proc.pid is not None:
                    proc.join(timeout=5.0)
            for q in queues + [result_queue]:
                q.close()
            shm.close()
            shm.unlink()
