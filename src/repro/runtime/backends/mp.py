"""``mp`` backend: one OS process per rank — a real shared-nothing run.

This is the closest substitute we have for the paper's message-passing
testbed (a 64-node IBM SP-2): every rank is a separate interpreter with
its own heap, receives genuinely block, collectives are binomial trees of
point-to-point messages, and the reported times are measured wall-clock,
not LogGP replay.  The optimizations the paper motivates by *copy* and
*overlap* behavior (in-place communication §3.3, loop splitting Figure 4)
are therefore observable here as real time differences.

Transport
---------

Each rank owns one inbound ``multiprocessing.Queue`` carrying small
control tuples.  Message *payloads* (contiguous float64 vectors) travel
through single-producer/single-consumer ring buffers carved out of one
``multiprocessing.shared_memory`` segment — one ring per ordered rank
pair, header ``[head:u64][tail:u64]`` followed by the data area.  The
sender writes the payload **directly from an array view** into the ring
(the ring write is the transfer — no staging ``tobytes()`` copy) and
advances ``tail``; the receiver consumes in control-message order through
:meth:`_ShmRing.read_view`, which returns a **zero-copy read-only numpy
view into the segment** whenever the payload does not wrap around the
ring boundary; ``head`` advances only after the receiver has scattered
out of the view (deferred release).  When a ring lacks space the payload
falls back to pickling through the control queue, so correctness never
depends on ring capacity.  Collective partials always use the pickle
path (they are single scalars) which keeps ring traffic strictly FIFO
per pair.

Failure behavior: a rank that raises ships a :class:`RankDiagnostics`
through the result queue and the parent terminates the survivors
(``terminate`` → ``join`` → ``kill`` escalation, so a wedged worker never
leaks); a deadlocked receive times out after
``RuntimeOptions.recv_timeout_s``.  The caller always sees the *typed*
failure — :class:`RankCrashError` (with negative exitcodes decoded to
signal names), :class:`RecvTimeoutError`, :class:`RunTimeoutError`, or
:class:`LaunchError` — never a hang, and the shared-memory segment is
unlinked on every exit path.
"""

from __future__ import annotations

import logging
import multiprocessing
import queue as queue_mod
import struct
import time
import traceback
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import (
    CommunicationError,
    LaunchError,
    RankCrashError,
    RankDiagnostics,
    RecvTimeoutError,
    RunTimeoutError,
    decode_exitcode,
    trace_tail,
)
from ..faults import arm_runtime
from ..machine import RankResult
from ..sections import own_payload, pack_sections, scatter_sections
from .base import (
    ExecutionBackend,
    LaunchResult,
    LaunchSpec,
    RankBindings,
    RankTiming,
)
from ..noderuntime import NodeRuntimeBase

logger = logging.getLogger(__name__)

#: per-pair ring capacity (bytes, data area); total segment size is capped
#: so large rank counts degrade to the pickle path instead of exhausting
#: /dev/shm.
DEFAULT_RING_BYTES = 1 << 18
_TOTAL_SHM_CAP = 1 << 26
_RING_HEADER = 16

_COLL_UP = "__coll_up__"
_COLL_DOWN = "__coll_dn__"


def _noop_release() -> None:
    pass


def _ring_bytes_for(nprocs: int, requested: int) -> int:
    per_pair_cap = max(4096, _TOTAL_SHM_CAP // max(1, nprocs * nprocs))
    return min(requested, per_pair_cap)


class _ShmRing:
    """Single-producer/single-consumer byte ring inside a shm slice.

    ``head`` and ``tail`` are monotonically increasing byte counters; the
    writer only advances ``tail``, the reader only advances ``head``, and
    every payload is announced through the control queue *after* the write
    completes, so no locking is needed.

    The reader keeps a private ``_cursor`` ahead of the shared ``head``:
    :meth:`read_view` hands out views at the cursor, and ``head`` only
    catches up in :meth:`advance` once the consumer is done with the
    view.  The writer therefore sees a conservative ``head`` and at worst
    falls back to the pickle path while a view is outstanding — it can
    never overwrite bytes still being read.
    """

    def __init__(self, view: memoryview):
        self.view = view
        self.capacity = len(view) - _RING_HEADER
        self._cursor: int = 0

    def _head(self) -> int:
        return struct.unpack_from("<Q", self.view, 0)[0]

    def _tail(self) -> int:
        return struct.unpack_from("<Q", self.view, 8)[0]

    def try_write(self, payload) -> bool:
        """Write ``payload`` (any C-contiguous buffer) if space allows."""
        payload = memoryview(payload).cast("B")
        nbytes = len(payload)
        head, tail = self._head(), self._tail()
        if nbytes == 0 or nbytes > self.capacity - (tail - head):
            return False
        pos = tail % self.capacity
        first = min(nbytes, self.capacity - pos)
        base = _RING_HEADER
        self.view[base + pos : base + pos + first] = payload[:first]
        if first < nbytes:
            self.view[base : base + nbytes - first] = payload[first:]
        struct.pack_into("<Q", self.view, 8, tail + nbytes)
        return True

    def read_view(self, nbytes: int):
        """Next ``nbytes`` as a float64 array; zero-copy when possible.

        Returns ``(values, zero_copy)``.  When the payload is contiguous
        in the ring, ``values`` is a read-only view straight into shared
        memory (``zero_copy=True``) and stays valid until
        :meth:`advance`; when it wraps the segment boundary the two spans
        are assembled into an owned array (``zero_copy=False``).
        """
        pos = self._cursor % self.capacity
        first = min(nbytes, self.capacity - pos)
        base = _RING_HEADER
        if first == nbytes:
            values = np.frombuffer(
                self.view[base + pos : base + pos + nbytes],
                dtype=np.float64,
            )
            values.flags.writeable = False
            zero_copy = True
        else:
            values = np.empty(nbytes // 8, dtype=np.float64)
            raw = values.view(np.uint8)
            raw[:first] = np.frombuffer(
                self.view[base + pos : base + pos + first], dtype=np.uint8
            )
            raw[first:] = np.frombuffer(
                self.view[base : base + nbytes - first], dtype=np.uint8
            )
            zero_copy = False
        self._cursor += nbytes
        return values, zero_copy

    def advance(self, nbytes: int) -> None:
        """Release ``nbytes`` consumed via :meth:`read_view`."""
        struct.pack_into("<Q", self.view, 0, self._head() + nbytes)

    def release(self) -> None:
        self.view.release()


class _Transport:
    """Per-worker view of the queues + shared-memory rings."""

    def __init__(
        self,
        rank: int,
        nprocs: int,
        queues,
        shm_buf: memoryview,
        ring_bytes: int,
        recv_timeout_s: float,
    ):
        self.rank = rank
        self.nprocs = nprocs
        self.queues = queues
        self.recv_timeout_s = recv_timeout_s
        self.shm_fallbacks = 0
        slot = ring_bytes + _RING_HEADER
        self._rings_out: Dict[int, _ShmRing] = {}
        self._rings_in: Dict[int, _ShmRing] = {}
        for other in range(nprocs):
            if other == rank:
                continue
            out_off = (rank * nprocs + other) * slot
            in_off = (other * nprocs + rank) * slot
            self._rings_out[other] = _ShmRing(
                shm_buf[out_off : out_off + slot]
            )
            self._rings_in[other] = _ShmRing(
                shm_buf[in_off : in_off + slot]
            )
        self._pending_user: Dict[int, deque] = {
            r: deque() for r in range(nprocs)
        }
        self._pending_internal: Dict[int, deque] = {
            r: deque() for r in range(nprocs)
        }

    # -- sending ----------------------------------------------------------------

    def send_user(self, dest: int, tag, meta, payload, owned: bool) -> str:
        """Ship a contiguous float64 ``payload`` with its ``meta``.

        The ring write moves bytes straight out of ``payload`` (which may
        be a view into the sender's array — the write completes before we
        return, so aliasing is safe).  Only the pickle fallback needs an
        owned snapshot, because ``Queue.put`` serializes asynchronously
        in a feeder thread; pass ``owned=True`` when ``payload`` is
        already a private staging buffer.  Returns ``'shm'`` or
        ``'pkl'``.
        """
        nbytes = payload.nbytes
        if nbytes and self._rings_out[dest].try_write(payload):
            self.queues[dest].put(
                ("shm", self.rank, tag, meta, payload.size)
            )
            return "shm"
        if nbytes:
            self.shm_fallbacks += 1
        if not owned:
            payload = payload.copy()
        self.queues[dest].put(("pkl", self.rank, tag, meta, payload))
        return "pkl"

    def send_internal(self, dest: int, tag, values) -> None:
        self.queues[dest].put(("int", self.rank, tag, None, list(values)))

    # -- receiving --------------------------------------------------------------

    def occupancy(self) -> Dict[int, int]:
        """Unread bytes sitting in each inbound ring, by source rank."""
        return {
            src: ring._tail() - ring._head()
            for src, ring in self._rings_in.items()
        }

    def _pump(self, want_tag, want_src) -> None:
        """Move one inbound control message into its pending stash."""
        try:
            msg = self.queues[self.rank].get(timeout=self.recv_timeout_s)
        except queue_mod.Empty:
            raise RecvTimeoutError(
                f"rank {self.rank} timed out receiving {want_tag!r} "
                f"from {want_src} after {self.recv_timeout_s:g}s",
                diagnostics=[
                    RankDiagnostics(
                        rank=self.rank,
                        phase="recv",
                        detail=(
                            f"blocked on tag {want_tag!r} from rank "
                            f"{want_src}"
                        ),
                        ring_occupancy=self.occupancy(),
                    )
                ],
            ) from None
        kind, src = msg[0], msg[1]
        if kind == "int":
            self._pending_internal[src].append(msg)
        else:
            self._pending_user[src].append(msg)

    def recv_user(self, src: int, tag):
        """Next user message from ``src``.

        Returns ``(tag, meta, values, release, zero_copy)``; ``values``
        is read-only and — when ``zero_copy`` — a view into the shared
        ring that must not be used after calling ``release()``.
        """
        pending = self._pending_user[src]
        while not pending:
            self._pump(tag, src)
        kind, _src, got_tag, meta, payload = pending.popleft()
        if kind == "shm":
            ring = self._rings_in[src]
            nbytes = 8 * payload
            values, zero_copy = ring.read_view(nbytes)
            return (
                got_tag, meta, values,
                lambda: ring.advance(nbytes), zero_copy,
            )
        values = np.asarray(payload, dtype=np.float64)
        return got_tag, meta, values, _noop_release, False

    def recv_internal(self, src: int, tag):
        pending = self._pending_internal[src]
        while True:
            for i, msg in enumerate(pending):
                if msg[2] == tag:
                    del pending[i]
                    return msg[4]
            self._pump(tag, src)

    def release(self) -> None:
        for ring in self._rings_out.values():
            ring.release()
        for ring in self._rings_in.values():
            ring.release()


class MPNodeRuntime(NodeRuntimeBase):
    """The multiprocess-worker implementation of the runtime protocol."""

    #: each rank owns its interpreter, so ``kill`` faults may deliver a
    #: real signal and the parent sees a negative exitcode.
    out_of_process = True

    def __init__(
        self,
        transport: _Transport,
        rank: int,
        nprocs: int,
        env: Dict[str, int],
        arrays: Dict[str, np.ndarray],
        lbounds: Dict[str, Tuple[int, ...]],
        scalars: Dict[str, float],
    ):
        super().__init__(rank, nprocs, env, arrays, lbounds, scalars)
        self.transport = transport
        self.comm_wall_s = 0.0
        self.per_event_s: List[float] = []
        self._coll_seq = 0

    def _clocked(self, start: float) -> None:
        elapsed = time.perf_counter() - start
        self.comm_wall_s += elapsed
        self.per_event_s.append(elapsed)

    # -- communication ----------------------------------------------------------

    def send(self, dest, tag, values, indices=None, inplace=False) -> None:
        start = time.perf_counter()
        data, copied = own_payload(values)
        nbytes = data.nbytes
        self.trace.send(dest, tag, nbytes, 0 if inplace else nbytes)
        self.trace.data_copied(copied)
        self.transport.send_user(dest, tag, indices, data, owned=True)
        self._clocked(start)

    def recv(self, src, tag, inplace=False):
        start = time.perf_counter()
        got_tag, indices, values, release, _zero_copy = (
            self.transport.recv_user(src, tag)
        )
        try:
            if got_tag != tag:
                raise CommunicationError(
                    f"rank {self.rank}: expected {tag!r} from {src}, "
                    f"got {got_tag!r}"
                )
            # Forced copy: ``values`` may be a view into the shared ring
            # that dies at release(), and the caller may hold the result
            # indefinitely.  One vectorized copy, no per-element list.
            data = np.array(values, dtype=np.float64)
        finally:
            release()
        nbytes = data.nbytes
        self.trace.recv(src, tag, nbytes, 0 if inplace else nbytes)
        self.trace.data_copied(nbytes)
        self._clocked(start)
        return indices, data

    def send_section(
        self, dest, tag, name, sections, inplace=False
    ) -> None:
        start = time.perf_counter()
        # The ring write consumes the payload before we return, so a
        # zero-copy view into the array is safe here (unlike the
        # in-process machines).
        payload, copied, viewed = pack_sections(
            self.arrays[name], self.lbounds[name], sections,
            force_copy=False,
        )
        nbytes = payload.nbytes
        self.trace.send(dest, tag, nbytes, 0 if inplace else nbytes)
        path = self.transport.send_user(
            dest, tag, sections, payload, owned=copied > 0
        )
        if path == "shm" and copied == 0:
            self.trace.data_viewed(viewed)
        else:
            self.trace.data_copied(nbytes)
        self._clocked(start)

    def recv_section(self, src, tag, name, inplace=False) -> None:
        start = time.perf_counter()
        got_tag, sections, values, release, zero_copy = (
            self.transport.recv_user(src, tag)
        )
        try:
            if got_tag != tag:
                raise CommunicationError(
                    f"rank {self.rank}: expected {tag!r} from {src}, "
                    f"got {got_tag!r}"
                )
            nbytes = values.nbytes
            self.trace.recv(src, tag, nbytes, 0 if inplace else nbytes)
            scatter_sections(
                self.arrays[name], self.lbounds[name], sections, values
            )
        finally:
            release()
        if zero_copy:
            self.trace.data_viewed(nbytes)
        else:
            self.trace.data_copied(nbytes)
        self._clocked(start)

    def allreduce(self, op: str, value: float) -> float:
        self.trace.collective("allreduce", 8)
        ops = {
            "+": lambda a, b: a + b,
            "max": lambda a, b: a if a >= b else b,
            "min": lambda a, b: a if a <= b else b,
        }
        return self._tree_combine(value, ops[op])

    def barrier(self) -> None:
        self.trace.collective("barrier", 0)
        self._tree_combine(0.0, lambda a, b: 0.0)

    def _tree_combine(self, value, op2: Callable) -> float:
        """Binomial-tree reduce to rank 0, then tree broadcast back."""
        start = time.perf_counter()
        seq = self._coll_seq
        self._coll_seq += 1
        up = (_COLL_UP, seq)
        down = (_COLL_DOWN, seq)
        rank, nprocs, tr = self.rank, self.nprocs, self.transport
        step = 1
        while step < nprocs:
            if rank % (2 * step) == step:
                tr.send_internal(rank - step, up, [value])
                break
            partner = rank + step
            if partner < nprocs:
                value = op2(value, tr.recv_internal(partner, up)[0])
            step *= 2
        steps = []
        step = 1
        while step < nprocs:
            steps.append(step)
            step *= 2
        for step in reversed(steps):
            if rank % (2 * step) == step:
                value = tr.recv_internal(rank - step, down)[0]
            elif rank % (2 * step) == 0 and rank + step < nprocs:
                tr.send_internal(rank + step, down, [value])
        self._clocked(start)
        return value


def _attach_shm(name: str):
    """Attach the parent's segment without adopting cleanup duties.

    Attaching registers the segment with this process's resource tracker
    on CPython < 3.13; under the ``spawn`` start method each child owns a
    *separate* tracker which would then warn about (and unlink!) a
    segment the parent still owns.  Under ``fork`` the tracker process is
    shared and registration is idempotent, so unregistering here would
    instead drop the parent's registration — hence the gate.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    if multiprocessing.get_start_method(allow_none=True) != "fork":
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # tracker internals vary; never fail the rank
            pass
    return shm


def _worker_main(
    rank: int,
    spec: LaunchSpec,
    queues,
    result_queue,
    shm_name: str,
    ring_bytes: int,
) -> None:
    shm = None
    transport = None
    runtime = None
    try:
        shm = _attach_shm(shm_name)
        transport = _Transport(
            rank,
            spec.nprocs,
            queues,
            shm.buf,
            ring_bytes,
            spec.options.recv_timeout_s,
        )
        bindings: RankBindings = spec.bindings[rank]
        node_main = ExecutionBackend.load_node_main(spec.source)
        arrays, scalars = ExecutionBackend.allocate_state(bindings)
        runtime = MPNodeRuntime(
            transport,
            rank,
            spec.nprocs,
            dict(bindings.env),
            arrays,
            bindings.array_lbounds,
            scalars,
        )
        runtime.member_fns = ExecutionBackend.member_fns(
            spec.fallback_sets
        )
        runtime.inplace = dict(bindings.inplace)
        arm_runtime(runtime, spec.options.fault_plan)
        start = time.perf_counter()
        node_main(runtime)
        wall = time.perf_counter() - start
        timing = RankTiming(
            rank, wall, runtime.comm_wall_s, runtime.per_event_s
        )
        result_queue.put(
            (
                "ok",
                rank,
                runtime.arrays,
                runtime.scalars,
                runtime.trace,
                runtime.env,
                timing,
            )
        )
    except BaseException as exc:
        diag = RankDiagnostics(
            rank=rank,
            phase=getattr(runtime, "phase", "startup"),
            detail=traceback.format_exc(limit=8),
            trace_tail=(
                trace_tail(runtime.trace) if runtime is not None else []
            ),
            ring_occupancy=(
                transport.occupancy() if transport is not None else {}
            ),
        )
        kind = "timeout" if isinstance(exc, RecvTimeoutError) else "crash"
        result_queue.put(
            ("err", rank, kind, f"{type(exc).__name__}: {exc}", diag)
        )
    finally:
        if transport is not None:
            transport.release()
        if shm is not None:
            shm.close()


class MultiprocessBackend(ExecutionBackend):
    """True multiprocess SPMD execution (one interpreter per rank)."""

    name = "mp"

    def __init__(self, ring_bytes: int = DEFAULT_RING_BYTES):
        self.ring_bytes = ring_bytes

    def launch(self, spec: LaunchSpec) -> LaunchResult:
        from multiprocessing import shared_memory

        ctx = multiprocessing.get_context()
        nprocs = spec.nprocs
        ring_bytes = _ring_bytes_for(nprocs, self.ring_bytes)
        slot = ring_bytes + _RING_HEADER
        shm_size = max(1, nprocs * nprocs * slot)
        plan = spec.options.fault_plan
        if plan is not None and plan.wants_shm_alloc_failure():
            raise LaunchError(
                "injected shared-memory allocation failure "
                f"({shm_size} bytes requested; fault plan seed "
                f"{plan.seed})"
            )
        try:
            shm = shared_memory.SharedMemory(create=True, size=shm_size)
        except OSError as exc:
            raise LaunchError(
                f"shared-memory allocation of {shm_size} bytes failed: "
                f"{exc}"
            ) from exc
        queues = [ctx.Queue() for _ in range(nprocs)]
        result_queue = ctx.Queue()
        procs = []
        launch_start = time.perf_counter()
        try:
            procs = [
                ctx.Process(
                    target=_worker_main,
                    args=(
                        rank,
                        spec,
                        queues,
                        result_queue,
                        shm.name,
                        ring_bytes,
                    ),
                    daemon=True,
                )
                for rank in range(nprocs)
            ]
            for proc in procs:
                proc.start()
            collected: Dict[int, tuple] = {}
            deadline = launch_start + spec.options.run_timeout_s
            error: Optional[CommunicationError] = None
            while len(collected) < nprocs:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    error = RunTimeoutError(
                        "SPMD run did not terminate within "
                        f"{spec.options.run_timeout_s:g}s "
                        f"({len(collected)}/{nprocs} ranks reported)",
                        diagnostics=[
                            RankDiagnostics(
                                rank=rank,
                                detail="rank never reported a result",
                                exitcode=procs[rank].exitcode,
                            )
                            for rank in range(nprocs)
                            if rank not in collected
                        ],
                    )
                    break
                try:
                    msg = result_queue.get(timeout=min(remaining, 0.25))
                except queue_mod.Empty:
                    error = self._dead_rank_error(procs, collected)
                    if error is not None:
                        break
                    continue
                if msg[0] == "err":
                    _, rank, kind, summary, diag = msg
                    cls = (
                        RecvTimeoutError
                        if kind == "timeout"
                        else RankCrashError
                    )
                    error = cls(
                        f"rank {rank} failed: {summary}",
                        diagnostics=[diag],
                    )
                    break
                collected[msg[1]] = msg
            if error is not None:
                raise error
            elapsed = time.perf_counter() - launch_start
            results = []
            timings = []
            for rank in range(nprocs):
                _, _, arrays, scalars, trace, env, timing = collected[rank]
                results.append(
                    RankResult(rank, arrays, scalars, trace, env)
                )
                timings.append(timing)
            return LaunchResult(self.name, results, timings, elapsed)
        finally:
            self._shutdown(procs, queues + [result_queue], shm)

    @staticmethod
    def _dead_rank_error(
        procs, collected
    ) -> Optional[RankCrashError]:
        """A typed error for the first uncollected rank whose process died.

        Negative exitcodes are deaths-by-signal and decode to the signal
        name (``-9`` → ``killed by SIGKILL``), so a rank lost to the OOM
        killer reads differently from one that called ``exit(1)``.
        """
        for rank, proc in enumerate(procs):
            if (
                rank not in collected
                and proc.exitcode is not None
                and proc.exitcode != 0
            ):
                return RankCrashError(
                    f"rank {rank} died: {decode_exitcode(proc.exitcode)}",
                    diagnostics=[
                        RankDiagnostics(
                            rank=rank,
                            detail=(
                                "process exited without reporting a "
                                "result"
                            ),
                            exitcode=proc.exitcode,
                        )
                    ],
                )
        return None

    @staticmethod
    def _shutdown(procs, all_queues, shm) -> None:
        """Reap workers and release IPC resources on every exit path.

        Escalation: ``terminate()`` (SIGTERM) → ``join(5s)`` →
        ``kill()`` (SIGKILL) for anything still alive → final join.  A
        rank that survives SIGKILL (unkillable D-state) is logged and
        abandoned rather than hanging the caller forever.  Queues are
        drained before closing so worker feeder threads never pin their
        buffers, and the shared-memory segment is always unlinked.
        """
        try:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                if proc.pid is not None:
                    proc.join(timeout=5.0)
            stubborn = [proc for proc in procs if proc.is_alive()]
            for proc in stubborn:
                proc.kill()
            for proc in stubborn:
                proc.join(timeout=2.0)
            for rank, proc in enumerate(procs):
                if proc.is_alive():
                    logger.warning(
                        "rank %d (pid %s) survived SIGKILL; leaking the "
                        "process",
                        rank,
                        proc.pid,
                    )
            for q in all_queues:
                try:
                    while True:
                        q.get_nowait()
                except (queue_mod.Empty, OSError, ValueError):
                    pass
                q.close()
                q.cancel_join_thread()
        finally:
            shm.close()
            shm.unlink()
