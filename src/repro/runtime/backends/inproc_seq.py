"""``inproc-seq`` backend: deterministic sequential SPMD scheduler.

Ranks execute one at a time.  A single scheduler token is handed around
rank-cyclically: the active rank runs uninterrupted until it blocks (a
receive on an empty channel, or a collective it is not the last to reach)
or finishes, at which point the token passes to the next runnable rank in
rank order.  The resulting schedule is a pure function of the program, so
two runs produce byte-identical traces — this is the golden reference for
debugging the concurrent backends.

Deadlock is detected structurally (no runnable rank while some are
unfinished) rather than by timeout, so broken programs fail immediately
and deterministically with :class:`CommunicationError`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..errors import RankDiagnostics, RecvTimeoutError
from ..machine import Machine
from .threads import ThreadsBackend


class SequentialMachine(Machine):
    """A :class:`Machine` whose ranks run under a cooperative token."""

    def __init__(
        self,
        nprocs: int,
        recv_timeout_s: Optional[float] = None,
        run_timeout_s: float = 600.0,
        comm_latency_s: float = 0.0,
    ):
        # ``comm_latency_s`` is accepted for interface parity but unused:
        # this machine's transport is overridden below and its cooperative
        # schedule is already deterministic without simulated delays.
        super().__init__(nprocs, recv_timeout_s, run_timeout_s)
        self._cond = threading.Condition()
        self._mail: Dict[Tuple[int, int], Deque] = {}
        self._active: Optional[int] = None
        self._blocked: Dict[int, Callable[[], bool]] = {}
        self._registered: set = set()
        self._finished: set = set()
        self._deadlocked = False
        self._coll_values: list = []
        self._coll_result = None
        self._coll_generation = 0

    # -- scheduling -------------------------------------------------------------

    def _wait_for_turn(self, rank: int) -> None:
        # caller holds self._cond
        self._cond.wait_for(
            lambda: self._active == rank or self._deadlocked
        )
        if self._deadlocked:
            # Deadlock is *proved* structurally, but it is the same
            # failure a timed-out receive reports on the concurrent
            # backends — so it carries the same type and payload.
            raise RecvTimeoutError(
                "sequential schedule deadlocked: no rank can make "
                "progress (detected structurally, not by timeout)",
                diagnostics=[
                    RankDiagnostics(
                        rank=rank,
                        phase="recv",
                        detail=(
                            "blocked ranks: "
                            f"{sorted(self._blocked) or [rank]}; finished: "
                            f"{sorted(self._finished) or 'none'}"
                        ),
                        ring_occupancy=self._mail_occupancy(rank),
                    )
                ],
            )

    def _mail_occupancy(self, dest: int):
        # caller holds self._cond
        return {
            src: len(box)
            for (src, d), box in self._mail.items()
            if d == dest and box
        }

    def _grant_next(self, after: int) -> None:
        # caller holds self._cond
        for k in range(1, self.nprocs + 1):
            r = (after + k) % self.nprocs
            if r in self._finished or r not in self._registered:
                continue
            predicate = self._blocked.get(r)
            if predicate is None or predicate():
                self._blocked.pop(r, None)
                self._active = r
                self._cond.notify_all()
                return
        self._active = None
        if len(self._finished) < len(self._registered):
            self._deadlocked = True
            self._cond.notify_all()

    def _yield_until(self, rank: int, predicate: Callable[[], bool]) -> None:
        # caller holds self._cond
        self._blocked[rank] = predicate
        self._grant_next(rank)
        self._wait_for_turn(rank)

    def _begin(self, rank: int) -> None:
        with self._cond:
            self._registered.add(rank)
            if len(self._registered) == self.nprocs:
                self._active = 0
                self._cond.notify_all()
            self._wait_for_turn(rank)

    def _finish(self, rank: int) -> None:
        with self._cond:
            self._finished.add(rank)
            if self._active == rank:
                self._grant_next(rank)

    # -- transport --------------------------------------------------------------

    def put_message(self, src, dest, tag, indices, data) -> None:
        with self._cond:
            self._mail.setdefault((src, dest), deque()).append(
                (tag, indices, data)
            )

    def get_message(self, src, dest, tag):
        with self._cond:
            box = self._mail.setdefault((src, dest), deque())
            if not box:
                self._yield_until(dest, lambda: bool(box))
            return box.popleft()

    def combine(self, rank: int, value, op):
        with self._cond:
            generation = self._coll_generation
            self._coll_values.append(value)
            if len(self._coll_values) == self.nprocs:
                self._coll_result = op(self._coll_values)
                self._coll_values = []
                self._coll_generation += 1
                # last arriver keeps the token and continues
            else:
                self._yield_until(
                    rank,
                    lambda: self._coll_generation != generation,
                )
            return self._coll_result

    # -- execution --------------------------------------------------------------

    def run(self, node_main, make_runtime):
        def gated_main(rt):
            self._begin(rt.rank)
            try:
                node_main(rt)
            finally:
                self._finish(rt.rank)

        return super().run(gated_main, make_runtime)


class SequentialBackend(ThreadsBackend):
    name = "inproc-seq"
    machine_cls = SequentialMachine
