"""The execution-backend interface and registry.

An :class:`ExecutionBackend` turns a compiled SPMD node program plus
per-rank startup bindings into per-rank results, traces, and wall-clock
timings.  The harness (:mod:`repro.runtime.harness`) is backend-agnostic:
it prepares a :class:`LaunchSpec`, hands it to whichever backend was
selected, and validates/replays the returned :class:`RankResult` list the
same way regardless of how the ranks actually ran.

Registered backends:

``threads``
    The original simulated machine — one daemon thread per rank inside
    this process.  Cheap to launch; real concurrency under the GIL.
``mp``
    One OS process per rank (:mod:`repro.runtime.backends.mp`): a true
    shared-nothing SPMD run with payloads shipped through
    ``multiprocessing.shared_memory`` ring buffers.  Wall-clock numbers
    from this backend reflect real data movement.
``inproc-seq``
    A deterministic sequential scheduler
    (:mod:`repro.runtime.backends.inproc_seq`): ranks execute one at a
    time with rank-cyclic handoff at blocking points.  The golden
    reference for debugging — identical schedules on every run.

Everything in a :class:`LaunchSpec` is picklable so the same spec can be
shipped to worker processes unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..machine import RankResult
from ..options import RuntimeOptions


@dataclass
class RankBindings:
    """Everything one rank needs at startup, fully evaluated and picklable.

    The harness evaluates the symbolic startup bindings (grid coordinates,
    block sizes, VP rebindings) and array extents in the parent so workers
    never need the program AST or the data-mapping model.
    """

    rank: int
    env: Dict[str, int]
    array_shapes: Dict[str, Tuple[int, ...]]
    array_lbounds: Dict[str, Tuple[int, ...]]
    scalars: List[str]
    inplace: Dict[str, bool]


@dataclass
class LaunchSpec:
    """One SPMD launch: the node program and all per-rank bindings."""

    nprocs: int
    source: str  # generated node-program module source
    bindings: List[RankBindings]
    #: fallback integer sets backing ``rt.member`` guards (picklable).
    fallback_sets: List[object] = field(default_factory=list)
    options: RuntimeOptions = field(default_factory=RuntimeOptions)
    #: arrays the integer-set dependence analysis proved free of
    #: cross-statement same-element accesses (see
    #: :func:`repro.runtime.harness.independent_arrays`).  The taskgraph
    #: planner may drop compute-compute ordering edges carried only by
    #: these names; other backends ignore the field.
    dep_hints: Tuple[str, ...] = ()


@dataclass
class RankTiming:
    """Measured (not modeled) times for one rank."""

    rank: int
    wall_s: float  # total wall-clock inside node_main
    comm_wall_s: float = 0.0  # wall-clock inside send/recv/collectives
    per_event_s: List[float] = field(default_factory=list)


@dataclass
class LaunchResult:
    backend: str
    results: List[RankResult]
    timings: List[RankTiming]
    wall_s: float  # parent-side elapsed time for the whole launch
    #: scheduler observability (taskgraph backend): steal counts, ready
    #: depth, critical path, per-SCC seconds...  ``None`` elsewhere.
    scheduler: Optional[Dict[str, object]] = None

    @property
    def max_rank_wall_s(self) -> float:
        return max((t.wall_s for t in self.timings), default=0.0)


class ExecutionBackend:
    """Interface every execution backend implements."""

    #: registry key; subclasses must override.
    name: str = ""

    def launch(self, spec: LaunchSpec) -> LaunchResult:
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------------

    @staticmethod
    def load_node_main(source: str) -> Callable:
        """Exec the generated module and return its ``node_main``."""
        namespace: Dict[str, object] = {}
        exec(compile(source, "<spmd>", "exec"), namespace)
        return namespace["node_main"]

    @staticmethod
    def allocate_state(
        bindings: RankBindings,
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, float]]:
        """Per-rank array storage and scalar dictionary."""
        arrays = {
            name: np.zeros(shape, dtype=np.float64)
            for name, shape in bindings.array_shapes.items()
        }
        scalars = {name: 0.0 for name in bindings.scalars}
        return arrays, scalars

    @staticmethod
    def member_fns(fallback_sets: Sequence[object]) -> List[Callable]:
        return [
            (lambda s: (lambda env, point: s.contains(point, env)))(s)
            for s in fallback_sets
        ]


_REGISTRY: Dict[str, Callable[[], ExecutionBackend]] = {}


def register_backend(
    name: str, factory: Callable[[], ExecutionBackend]
) -> None:
    _REGISTRY[name] = factory


def backend_names() -> List[str]:
    return sorted(_REGISTRY)


def get_backend(name: str) -> ExecutionBackend:
    """Instantiate a registered backend; unknown names fail loudly."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(backend_names())
        raise ValueError(
            f"unknown execution backend {name!r}; registered backends: "
            f"{known}"
        ) from None
    return factory()


def resolve_backend(backend) -> ExecutionBackend:
    """Accept a backend name or an already-constructed backend."""
    if isinstance(backend, ExecutionBackend):
        return backend
    return get_backend(backend)
