"""``threads`` backend: the original thread-simulated machine.

One daemon thread per rank inside this process.  This is the default
backend — cheap to launch and exercises real concurrency — but its
wall-clock numbers are GIL-serialized, so use the ``mp`` backend when the
measured times matter.
"""

from __future__ import annotations

import time
from typing import List

from ..faults import arm_runtime
from ..machine import Machine, NodeRuntime
from .base import (
    ExecutionBackend,
    LaunchResult,
    LaunchSpec,
    RankBindings,
    RankTiming,
)


class ThreadsBackend(ExecutionBackend):
    name = "threads"

    #: machine class; the sequential backend swaps this out.
    machine_cls = Machine

    def launch(self, spec: LaunchSpec) -> LaunchResult:
        node_main = self.load_node_main(spec.source)
        members = self.member_fns(spec.fallback_sets)

        def make_runtime(rank: int, machine) -> NodeRuntime:
            bindings = spec.bindings[rank]
            arrays, scalars = self.allocate_state(bindings)
            runtime = NodeRuntime(
                machine,
                rank,
                dict(bindings.env),
                arrays,
                bindings.array_lbounds,
                scalars,
            )
            runtime.member_fns = members
            runtime.inplace = dict(bindings.inplace)
            arm_runtime(runtime, spec.options.fault_plan)
            return runtime

        wall: List[float] = [0.0] * spec.nprocs

        def timed_main(rt) -> None:
            start = time.perf_counter()
            try:
                node_main(rt)
            finally:
                wall[rt.rank] = time.perf_counter() - start

        machine = self.machine_cls(
            spec.nprocs,
            recv_timeout_s=spec.options.recv_timeout_s,
            run_timeout_s=spec.options.run_timeout_s,
            comm_latency_s=spec.options.comm_latency_s,
        )
        launch_start = time.perf_counter()
        results = machine.run(timed_main, make_runtime)
        elapsed = time.perf_counter() - launch_start
        timings = [
            RankTiming(rank, wall[rank]) for rank in range(spec.nprocs)
        ]
        return LaunchResult(self.name, results, timings, elapsed)
