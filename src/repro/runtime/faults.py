"""Deterministic fault injection for SPMD runs.

A :class:`FaultPlan` is a picklable, *seeded* description of the faults
to provoke during a launch: dropped / delayed / duplicated messages, a
rank crashing (softly, or killed by a real signal) at the N-th send /
receive / collective / work step, shared-memory allocation failure at
launch, and per-rank slow-rank jitter.  The plan travels inside the
:class:`~repro.runtime.backends.base.LaunchSpec` (via
``RuntimeOptions.fault_plan``), so every backend — in-process threads,
the sequential scheduler, and out-of-process ``mp`` workers — injects
the *same* schedule.  All randomness (jitter magnitudes, backoff) is
derived from ``(seed, rank, op index)``, so a chaos run replays
byte-identically from its seed: ``FaultPlan.parse(spec, seed)`` on the
CLI (``--fault-spec`` / ``--fault-seed``) reproduces a failure exactly.

Spec grammar (semicolon-separated faults, colon-separated fields)::

    kind[:rank=R][:op=OP][:n=N][:ms=MS][:attempts=A]

    kinds: drop | delay | dup | crash | kill | shm-alloc | jitter
         | worker-crash | worker-stall
    ops:   send | recv | collective | step | compile | any

``drop``/``dup`` apply to sends; ``crash``/``kill`` fire at the N-th
matching op of the targeted rank; ``jitter`` sleeps a seeded random
amount before *every* matching op; ``shm-alloc`` makes the ``mp``
backend's launch-time shared-memory allocation fail (other backends
ignore it).  ``worker-crash``/``worker-stall`` target the compile worker
pool (DESIGN §13): ``rank`` selects a pool slot, ``op`` is implicitly
``compile`` (one fires per request the worker serves), and the worker
SIGKILLs itself / sleeps ``ms`` past its deadline at the N-th compile —
the SPMD backends ignore them.  ``attempts=A`` limits a fault to the
first ``A`` supervised launch attempts (for the pool: the first ``A``
worker generations in a slot) — the standard way to build a *transient*
fault that a :class:`~repro.runtime.harness.RetryPolicy` recovers from.
"""

from __future__ import annotations

import os
import random
import signal as signal_mod
import time
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

#: ops a fault can target; "any" matches all of them.  ``compile`` is the
#: compile-worker-pool op: one "compile" fires per request a pool worker
#: serves (the SPMD runtime never emits it).
FAULT_OPS = ("send", "recv", "collective", "step", "compile", "any")
#: recognized fault kinds.  ``worker-crash``/``worker-stall`` target the
#: compile worker pool (DESIGN §13): the worker process SIGKILLs itself /
#: sleeps past its deadline at the N-th matching compile, exercising the
#: supervisor's respawn, deadline-kill, and quarantine paths.
FAULT_KINDS = (
    "drop", "delay", "dup", "crash", "kill", "shm-alloc", "jitter",
    "worker-crash", "worker-stall",
)

#: kinds interpreted by the compile worker pool rather than the SPMD
#: runtime (other backends ignore them, like ``shm-alloc`` elsewhere).
WORKER_FAULT_KINDS = ("worker-crash", "worker-stall")

#: method name → op category, shared by phase tracking and injection.
OP_OF_METHOD = {
    "send": "send",
    "send_section": "send",
    "recv": "recv",
    "recv_section": "recv",
    "allreduce": "collective",
    "barrier": "collective",
    "work": "step",
}


class InjectedFault(Exception):
    """Raised inside a rank by a ``crash`` fault (or ``kill`` in-process).

    Deliberately *not* a ``CommunicationError``: an injected crash is
    indistinguishable from a genuine application crash, so it surfaces
    through the same collection path and becomes a
    :class:`~repro.runtime.errors.RankCrashError`.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what to do, to whom, and when."""

    kind: str
    rank: Optional[int] = None  # None targets every rank
    op: str = "any"
    n: int = 1  # fire at the Nth matching op (1-based)
    delay_ms: float = 10.0  # for delay / jitter
    attempts: Optional[int] = None  # active while attempt < attempts

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.op not in FAULT_OPS:
            raise ValueError(
                f"unknown fault op {self.op!r}; known: {', '.join(FAULT_OPS)}"
            )
        if self.kind in ("drop", "dup") and self.op not in ("send", "any"):
            raise ValueError(f"{self.kind} faults only apply to sends")
        if (self.kind in WORKER_FAULT_KINDS
                and self.op not in ("compile", "any")):
            raise ValueError(
                f"{self.kind} faults only apply to compile-pool requests "
                "(op=compile)"
            )
        if self.n < 1:
            raise ValueError("fault n is 1-based; n >= 1 required")

    def matches_rank(self, rank: int) -> bool:
        return self.rank is None or self.rank == rank

    def matches_op(self, op: str) -> bool:
        return self.op == "any" or self.op == op


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable schedule of faults for one launch."""

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()

    @staticmethod
    def parse(text: str, seed: int = 0) -> "FaultPlan":
        """Parse the ``--fault-spec`` grammar (see module docstring)."""
        faults: List[FaultSpec] = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            head, *fields = chunk.split(":")
            kwargs = {}
            for fld in fields:
                key, _, value = fld.partition("=")
                key = key.strip()
                if not value:
                    raise ValueError(
                        f"fault field {fld!r} expects key=value"
                    )
                if key == "rank":
                    kwargs["rank"] = int(value)
                elif key == "op":
                    kwargs["op"] = value.strip()
                elif key == "n":
                    kwargs["n"] = int(value)
                elif key == "ms":
                    kwargs["delay_ms"] = float(value)
                elif key == "attempts":
                    kwargs["attempts"] = int(value)
                else:
                    raise ValueError(f"unknown fault field {key!r}")
            faults.append(FaultSpec(head.strip(), **kwargs))
        return FaultPlan(seed=seed, faults=tuple(faults))

    def for_attempt(self, attempt: int) -> "FaultPlan":
        """The plan as seen by supervised launch attempt ``attempt``.

        Faults carrying ``attempts=A`` only fire while ``attempt < A`` —
        this is how a plan expresses *transient* failures that a retry
        outlives.  The seed is attempt-independent so surviving faults
        keep identical schedules across attempts.
        """
        return replace(
            self,
            faults=tuple(
                f
                for f in self.faults
                if f.attempts is None or attempt < f.attempts
            ),
        )

    def wants_shm_alloc_failure(self) -> bool:
        return any(f.kind == "shm-alloc" for f in self.faults)

    def injector(self, rank: int) -> "FaultInjector":
        return FaultInjector(self, rank)

    def schedule(self, rank: int, nops: int = 32) -> Tuple:
        """Deterministic preview of what fires on ``rank``.

        Simulates ``nops`` consecutive ops of every category and returns
        a tuple of ``(op, index, kind, delay_s)`` entries.  Two plans
        with the same seed and faults produce byte-identical schedules —
        the property the chaos tests pin down with ``pickle.dumps``.
        """
        probe = self.injector(rank)
        fired = []
        for op in ("send", "recv", "collective", "step", "compile"):
            for index in range(1, nops + 1):
                for action, delay_s in probe.preview(op):
                    fired.append((op, index, action, delay_s))
        return tuple(fired)


def _rank_seed(seed: int, rank: int) -> str:
    return f"faultplan:{seed}:{rank}"


class FaultInjector:
    """Per-rank executor of a :class:`FaultPlan`.

    ``arm(runtime)`` wraps the runtime's communication and accounting
    methods in place, so injection works identically on every backend
    without the backends knowing about faults at all.
    """

    def __init__(self, plan: FaultPlan, rank: int):
        self.plan = plan
        self.rank = rank
        self.faults = [f for f in plan.faults if f.matches_rank(rank)]
        self._counts = {op: 0 for op in FAULT_OPS}
        self._jitter_rng = random.Random(_rank_seed(plan.seed, rank))

    # -- arming -----------------------------------------------------------------

    def arm(self, runtime) -> None:
        """Wrap ``runtime``'s op methods with injection points."""
        runtime.faults = self
        for name, op in OP_OF_METHOD.items():
            original = getattr(runtime, name)
            setattr(
                runtime, name, self._wrap(runtime, original, op)
            )

    def _wrap(self, runtime, original, op):
        def injected(*args, **kwargs):
            actions = self._fire(op)
            for action, delay_s in actions:
                if action in ("delay", "jitter"):
                    time.sleep(delay_s)
                elif action == "crash":
                    runtime.phase = op
                    raise InjectedFault(
                        f"injected crash on rank {self.rank} at {op} "
                        f"#{self._counts[op]}"
                    )
                elif action == "kill":
                    runtime.phase = op
                    self._hard_kill(runtime, op)
                elif action == "drop":
                    return None  # message silently lost
            if any(action == "dup" for action, _ in actions):
                original(*args, **kwargs)
            return original(*args, **kwargs)

        return injected

    def _hard_kill(self, runtime, op) -> None:
        """Die by a real signal when the rank owns its process.

        In-process backends (threads / inproc-seq) share the caller's
        interpreter, so a genuine ``SIGKILL`` would take the whole test
        process down; there the fault degrades to an injected crash —
        the strongest failure that backend can express.
        """
        if getattr(runtime, "out_of_process", False):
            os.kill(os.getpid(), signal_mod.SIGKILL)
        raise InjectedFault(
            f"injected kill on rank {self.rank} at {op} "
            f"#{self._counts[op]} (in-process: degraded to crash)"
        )

    # -- firing -----------------------------------------------------------------

    def _fire(self, op: str):
        """Advance the op counter; return ``(action, delay_s)`` to apply."""
        self._counts[op] += 1
        count = self._counts[op]
        actions = []
        for fault in self.faults:
            if not fault.matches_op(op):
                continue
            if fault.kind in WORKER_FAULT_KINDS and op != "compile":
                # Pool faults fire only on pool compiles, even under
                # op=any — an SPMD send must not consume their trigger.
                continue
            if fault.kind == "jitter":
                actions.append(
                    (
                        "jitter",
                        self._jitter_rng.uniform(0.0, fault.delay_ms / 1e3),
                    )
                )
            elif fault.kind == "shm-alloc":
                continue  # launch-time fault; nothing to do per-op
            elif count == fault.n:
                delay = (
                    fault.delay_ms / 1e3
                    if fault.kind in ("delay", "worker-stall")
                    else 0.0
                )
                actions.append((fault.kind, delay))
        return actions

    def preview(self, op: str):
        """Like the firing path, but named for schedule previews."""
        return self._fire(op)


def arm_runtime(runtime, plan: Optional[FaultPlan]) -> None:
    """Attach ``plan``'s injector for ``runtime.rank`` (no-op when None)."""
    if plan is not None and plan.faults:
        plan.injector(runtime.rank).arm(runtime)


__all__ = [
    "FAULT_KINDS",
    "FAULT_OPS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "OP_OF_METHOD",
    "WORKER_FAULT_KINDS",
    "arm_runtime",
]
