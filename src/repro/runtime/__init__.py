"""Message-passing runtime: execution backends + cost model.

Correctness always comes from really executing the generated SPMD code on
one of the pluggable backends (:mod:`repro.runtime.backends`); predicted
performance comes from LogGP replay of the recorded traces, and measured
performance from the backends' wall-clock timings (meaningful on ``mp``).
"""

from .backends import (
    ExecutionBackend,
    LaunchResult,
    LaunchSpec,
    MultiprocessBackend,
    RankBindings,
    RankTiming,
    SequentialBackend,
    ThreadsBackend,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
)
from .cost import CostModel, ReplayResult, replay, speedup_curve
from .errors import (
    CommunicationError,
    LaunchError,
    RankCrashError,
    RankDiagnostics,
    RecvTimeoutError,
    ResultDivergenceError,
    RunTimeoutError,
    decode_exitcode,
    is_transient,
)
from .faults import FaultPlan, FaultSpec, InjectedFault, arm_runtime
from .harness import (
    AttemptRecord,
    RetryPolicy,
    RunOutcome,
    ValidationError,
    build_launch_spec,
    cross_check_results,
    eval_lang_expr,
    evaluate_bindings,
    run_compiled,
)
from .machine import Machine, NodeRuntime, RankResult
from .noderuntime import NodeRuntimeBase
from .options import RuntimeOptions, default_recv_timeout
from .trace import RunStatistics, Trace

__all__ = [
    "AttemptRecord",
    "CommunicationError",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "LaunchError",
    "RankCrashError",
    "RankDiagnostics",
    "RecvTimeoutError",
    "ResultDivergenceError",
    "RetryPolicy",
    "RunTimeoutError",
    "arm_runtime",
    "cross_check_results",
    "decode_exitcode",
    "is_transient",
    "CostModel",
    "ExecutionBackend",
    "LaunchResult",
    "LaunchSpec",
    "Machine",
    "MultiprocessBackend",
    "NodeRuntime",
    "NodeRuntimeBase",
    "RankBindings",
    "RankResult",
    "RankTiming",
    "ReplayResult",
    "RunOutcome",
    "RunStatistics",
    "RuntimeOptions",
    "SequentialBackend",
    "ThreadsBackend",
    "Trace",
    "ValidationError",
    "backend_names",
    "build_launch_spec",
    "default_recv_timeout",
    "eval_lang_expr",
    "evaluate_bindings",
    "get_backend",
    "register_backend",
    "replay",
    "resolve_backend",
    "run_compiled",
    "speedup_curve",
]
