"""Simulated message-passing runtime and cost model."""

from .cost import CostModel, ReplayResult, replay, speedup_curve
from .harness import (
    RunOutcome,
    ValidationError,
    eval_lang_expr,
    evaluate_bindings,
    run_compiled,
)
from .machine import CommunicationError, Machine, NodeRuntime, RankResult
from .trace import RunStatistics, Trace

__all__ = [
    "CommunicationError",
    "CostModel",
    "Machine",
    "NodeRuntime",
    "RankResult",
    "ReplayResult",
    "RunOutcome",
    "RunStatistics",
    "Trace",
    "ValidationError",
    "eval_lang_expr",
    "evaluate_bindings",
    "replay",
    "run_compiled",
    "speedup_curve",
]
