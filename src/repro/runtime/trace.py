"""Execution traces recorded by node programs.

Each rank records an ordered list of events carrying *abstract* costs
(element counts, byte counts) rather than wall-clock times; the cost model
(:mod:`repro.runtime.cost`) replays them through a LogGP-style machine
model to predict execution times.  This separation substitutes for the
paper's IBM SP-2: correctness comes from really executing the SPMD code,
performance *shape* from the replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union


@dataclass
class ComputeEvent:
    """``amount`` abstract work units (weighted statement executions)."""

    amount: float


@dataclass
class SendEvent:
    dest: int
    tag: object
    bytes: int
    copied_bytes: int  # 0 when sent in place


@dataclass
class RecvEvent:
    src: int
    tag: object
    bytes: int
    copied_bytes: int  # 0 when referenced directly from the buffer


@dataclass
class CollectiveEvent:
    """A reduction/broadcast involving every rank (matched by index)."""

    kind: str  # 'allreduce' | 'broadcast'
    bytes: int


Event = Union[ComputeEvent, SendEvent, RecvEvent, CollectiveEvent]


@dataclass
class Trace:
    rank: int
    events: List[Event] = field(default_factory=list)

    # Aggregate statistics (filled as events are appended).
    compute_units: float = 0.0
    messages_sent: int = 0
    bytes_sent: int = 0
    copies: int = 0
    buffer_checks: int = 0
    collectives: int = 0
    # Actual data-plane accounting (how payload bytes really moved, as
    # opposed to ``copies`` which carries the cost-model's §3.3 charge):
    # ``bytes_copied`` passed through an intermediate staging buffer,
    # ``bytes_viewed`` moved directly between array storage and the
    # transport via numpy views (zero staging copies).
    bytes_copied: int = 0
    bytes_viewed: int = 0
    # Compute-plane accounting: how the abstract work units were actually
    # executed.  ``flops_vectorized`` were performed by numpy strided-slice
    # kernels (one launch per loop piece), ``flops_scalar`` by the
    # interpreted per-point loop.  The LogGP ``compute_units`` charge is
    # the sum of both — the cost model is deliberately unaware of the
    # execution tier so Figure 7 shapes do not depend on it.
    flops_vectorized: float = 0.0
    flops_scalar: float = 0.0

    def compute(self, amount: float, vectorized: bool = False) -> None:
        if amount <= 0:
            return
        events = self.events
        if events and isinstance(events[-1], ComputeEvent):
            events[-1].amount += amount
        else:
            events.append(ComputeEvent(amount))
        self.compute_units += amount
        if vectorized:
            self.flops_vectorized += amount
        else:
            self.flops_scalar += amount

    def send(self, dest: int, tag, nbytes: int, copied: int) -> None:
        self.events.append(SendEvent(dest, tag, nbytes, copied))
        self.messages_sent += 1
        self.bytes_sent += nbytes
        self.copies += copied

    def recv(self, src: int, tag, nbytes: int, copied: int) -> None:
        self.events.append(RecvEvent(src, tag, nbytes, copied))
        self.copies += copied

    def data_copied(self, nbytes: int) -> None:
        self.bytes_copied += nbytes

    def data_viewed(self, nbytes: int) -> None:
        self.bytes_viewed += nbytes

    def collective(self, kind: str, nbytes: int) -> None:
        self.events.append(CollectiveEvent(kind, nbytes))
        self.collectives += 1

    def check(self, count: int = 1) -> None:
        self.buffer_checks += count


@dataclass
class RunStatistics:
    """Summary over all ranks, for reports and ablation benchmarks."""

    nprocs: int
    total_messages: int
    total_bytes: int
    total_copies: int
    total_checks: int
    max_compute: float
    total_compute: float
    #: actual staging copies vs zero-copy view traffic (see Trace).
    total_bytes_copied: int = 0
    total_bytes_viewed: int = 0
    #: compute-plane split of ``total_compute`` (see Trace).
    total_flops_vectorized: float = 0.0
    total_flops_scalar: float = 0.0
    #: scheduler observability from the ``taskgraph`` backend (steals,
    #: ready-queue depth, critical path, per-SCC seconds, plan shape);
    #: ``None`` for backends without a scheduler.  Attached by the
    #: harness after the launch, not derived from traces.
    scheduler: Optional[Dict[str, object]] = None

    @staticmethod
    def from_traces(traces: List[Trace]) -> "RunStatistics":
        return RunStatistics(
            nprocs=len(traces),
            total_messages=sum(t.messages_sent for t in traces),
            total_bytes=sum(t.bytes_sent for t in traces),
            total_copies=sum(t.copies for t in traces),
            total_checks=sum(t.buffer_checks for t in traces),
            max_compute=max((t.compute_units for t in traces), default=0.0),
            total_compute=sum(t.compute_units for t in traces),
            total_bytes_copied=sum(t.bytes_copied for t in traces),
            total_bytes_viewed=sum(t.bytes_viewed for t in traces),
            total_flops_vectorized=sum(t.flops_vectorized for t in traces),
            total_flops_scalar=sum(t.flops_scalar for t in traces),
        )

    def merge(self, other: "RunStatistics") -> "RunStatistics":
        """Combine summaries of two disjoint rank groups.

        ``from_traces(a + b) == from_traces(a).merge(from_traces(b))`` —
        used when per-rank traces are gathered incrementally (e.g. as
        multiprocess workers report in).
        """
        return RunStatistics(
            nprocs=self.nprocs + other.nprocs,
            total_messages=self.total_messages + other.total_messages,
            total_bytes=self.total_bytes + other.total_bytes,
            total_copies=self.total_copies + other.total_copies,
            total_checks=self.total_checks + other.total_checks,
            max_compute=max(self.max_compute, other.max_compute),
            total_compute=self.total_compute + other.total_compute,
            total_bytes_copied=(
                self.total_bytes_copied + other.total_bytes_copied
            ),
            total_bytes_viewed=(
                self.total_bytes_viewed + other.total_bytes_viewed
            ),
            total_flops_vectorized=(
                self.total_flops_vectorized + other.total_flops_vectorized
            ),
            total_flops_scalar=(
                self.total_flops_scalar + other.total_flops_scalar
            ),
            # Scheduler counters describe one launch, not a rank group;
            # keep whichever side has them.
            scheduler=self.scheduler or other.scheduler,
        )
