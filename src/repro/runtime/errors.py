"""Typed failure taxonomy for SPMD runs.

Every abnormal outcome of a launch maps onto exactly one subclass of
:class:`CommunicationError`, so callers (the supervisor, the chaos test
matrix, CLI users) can branch on *what went wrong* instead of parsing
message strings:

``RankCrashError``
    A rank raised, or its process died (negative exitcodes are decoded to
    signal names: ``-9`` → ``SIGKILL``).  Transient — a retry may succeed.
``RecvTimeoutError``
    A blocking receive or collective exceeded ``recv_timeout_s``, or the
    sequential scheduler proved a structural deadlock.  Transient.
``RunTimeoutError``
    The whole launch exceeded ``run_timeout_s`` (ranks wedged outside
    communication).  Transient.
``LaunchError``
    The backend could not even start the run (e.g. shared-memory
    allocation failed).  Transient — and the natural trigger for falling
    back to a cheaper backend.
``ResultDivergenceError``
    Survivor results disagree with a reference run — the one failure that
    must *never* be retried into silence.  Not transient.

Each error carries a list of :class:`RankDiagnostics` (failed rank, the
phase it was in, the tail of its event trace, inbound ring occupancy)
rendered into the exception message as a readable crash report.  The
diagnostics are plain picklable dataclasses so multiprocess workers can
ship them through a result queue.
"""

from __future__ import annotations

import signal
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class CommunicationError(RuntimeError):
    """Deadlock, tag mismatch, or rank failure during an SPMD run.

    Root of the failure taxonomy; anything the runtime raises about a
    run is an instance of this class.  ``transient`` marks whether a
    supervisor may retry the launch (see :func:`is_transient`).
    """

    #: may a supervised re-launch plausibly succeed?
    transient: bool = False

    def __init__(self, message: str, diagnostics: Sequence["RankDiagnostics"] = ()):
        self.message = message
        self.diagnostics: List[RankDiagnostics] = list(diagnostics)
        super().__init__(self._render())

    def _render(self) -> str:
        if not self.diagnostics:
            return self.message
        lines = [self.message]
        for diag in self.diagnostics:
            lines.append(diag.report())
        return "\n".join(lines)

    def __reduce__(self):
        return (type(self), (self.message, self.diagnostics))


@dataclass
class RankDiagnostics:
    """What one rank was doing when a run failed — picklable.

    ``phase`` is the runtime phase the rank was last seen in
    (``startup``/``compute``/``send``/``recv``/``collective``/``step``);
    ``trace_tail`` is the last few entries of its event trace;
    ``ring_occupancy`` maps source rank → unread bytes sitting in that
    inbound shared-memory ring (mp backend only).
    """

    rank: int
    phase: str = "unknown"
    detail: str = ""
    trace_tail: List[str] = field(default_factory=list)
    ring_occupancy: Dict[int, int] = field(default_factory=dict)
    exitcode: Optional[int] = None

    def report(self) -> str:
        lines = [f"  rank {self.rank} [phase={self.phase}]"]
        if self.exitcode is not None:
            lines.append(f"    exit: {decode_exitcode(self.exitcode)}")
        if self.detail:
            for row in self.detail.rstrip().splitlines():
                lines.append(f"    {row}")
        if self.trace_tail:
            lines.append("    trace tail:")
            for event in self.trace_tail:
                lines.append(f"      {event}")
        if self.ring_occupancy:
            occupied = ", ".join(
                f"{src}→{nbytes}B"
                for src, nbytes in sorted(self.ring_occupancy.items())
                if nbytes
            )
            lines.append(f"    inbound rings: {occupied or 'all drained'}")
        return "\n".join(lines)


@dataclass
class WorkerDiagnostics:
    """What one compile-pool worker was doing when it was lost — picklable.

    The pool analogue of :class:`RankDiagnostics`: ``worker`` is the pool
    slot index, ``generation`` the global incarnation id of the process
    occupying it (respawns get fresh generations, which is how the
    poison-pill quarantine counts *distinct* dead workers), ``phase`` the
    worker's last known phase (``idle``/``compile``/``send``),
    ``fingerprint`` the compile request it was serving, and ``rss_kb`` the
    worker's last observed resident set size.
    """

    worker: int
    generation: int = 0
    pid: Optional[int] = None
    phase: str = "unknown"
    fingerprint: str = ""
    exitcode: Optional[int] = None
    rss_kb: Optional[int] = None
    detail: str = ""

    def report(self) -> str:
        lines = [
            f"  worker {self.worker} (gen {self.generation}, "
            f"pid {self.pid}) [phase={self.phase}]"
        ]
        if self.exitcode is not None:
            lines.append(f"    exit: {decode_exitcode(self.exitcode)}")
        if self.fingerprint:
            lines.append(f"    request: {self.fingerprint[:16]}…")
        if self.rss_kb is not None:
            lines.append(f"    rss: {self.rss_kb} KiB")
        if self.detail:
            for row in self.detail.rstrip().splitlines():
                lines.append(f"    {row}")
        return "\n".join(lines)


class RankCrashError(CommunicationError):
    """A rank raised an exception or its process died."""

    transient = True


class RecvTimeoutError(CommunicationError):
    """A blocking receive or collective timed out (or provably deadlocked)."""

    transient = True


class RunTimeoutError(CommunicationError):
    """The launch as a whole exceeded ``run_timeout_s``."""

    transient = True


class LaunchError(CommunicationError):
    """The backend failed before any rank ran (e.g. shm allocation)."""

    transient = True


class ResultDivergenceError(CommunicationError):
    """Survivor results disagree with a reference run — never retried."""

    transient = False


class WorkerCrashError(CommunicationError):
    """A compile-pool worker process died mid-request (signal/exit).

    Transient: the supervisor respawns the worker and the request may be
    retried on a fresh one — unless the same fingerprint keeps killing
    workers, at which point the quarantine converts further submits into
    :class:`CompileQuarantinedError`.
    """

    transient = True


class WorkerStallError(CommunicationError):
    """A compile-pool worker exceeded its per-request deadline.

    The supervisor kills and replaces the wedged worker; like a crash,
    the stall counts against the request fingerprint's quarantine budget
    (a wedged worker is a destroyed worker).
    """

    transient = True


class CompileQuarantinedError(CommunicationError):
    """A request fingerprint crashed too many distinct workers.

    The poison-pill circuit breaker: once ``quarantine_after`` distinct
    worker processes have been lost to one fingerprint, further submits
    fail fast with this error instead of feeding another worker to the
    same input.  Not transient — retrying the identical request cannot
    succeed until the quarantine is cleared (server restart).
    """

    transient = False


def is_transient(exc: BaseException) -> bool:
    """May a supervised re-launch of the same spec plausibly succeed?

    Typed errors answer for themselves via their ``transient`` class
    attribute; anything outside the taxonomy (a compiler bug, a bad
    spec) is permanent by definition.
    """
    return isinstance(exc, CommunicationError) and exc.transient


def decode_exitcode(exitcode: int) -> str:
    """Human-readable account of a process exit code.

    Negative exitcodes are deaths-by-signal
    (``multiprocessing.Process.exitcode`` convention); they decode to the
    signal name when the platform knows it.
    """
    if exitcode == 0:
        return "exit code 0"
    if exitcode < 0:
        try:
            name = signal.Signals(-exitcode).name
        except ValueError:
            return f"killed by signal {-exitcode}"
        return f"killed by {name} (signal {-exitcode})"
    return f"exit code {exitcode}"


def trace_tail(trace, limit: int = 6) -> List[str]:
    """Compact rendering of the last ``limit`` events of a rank trace."""
    events = getattr(trace, "events", [])
    return [repr(event) for event in events[-limit:]]


__all__ = [
    "CommunicationError",
    "CompileQuarantinedError",
    "LaunchError",
    "RankCrashError",
    "RankDiagnostics",
    "RecvTimeoutError",
    "ResultDivergenceError",
    "RunTimeoutError",
    "WorkerCrashError",
    "WorkerDiagnostics",
    "WorkerStallError",
    "decode_exitcode",
    "is_transient",
    "trace_tail",
]
