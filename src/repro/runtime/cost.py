"""LogGP-style cost-model replay of execution traces.

The model plays each rank's event list against a virtual clock:

* ``ComputeEvent(w)`` advances the rank's clock by ``w * flop_time``;
* ``SendEvent`` costs the sender ``o_send + copied_bytes * copy_per_byte``
  and makes the message available to the receiver at
  ``sender_clock + latency + bytes * per_byte``;
* ``RecvEvent`` blocks until the matching message is available, then costs
  ``o_recv + copied_bytes * copy_per_byte``;
* ``CollectiveEvent`` synchronizes all ranks (``max`` of clocks) and adds a
  logarithmic tree cost, matching how MPI reductions behave on a
  message-passing machine like the paper's IBM SP-2;
* ``buffer_checks`` add ``check_time`` each (the §3.4 buffer-access cost).

Default constants are loosely calibrated to the paper's platform class
(an SP-2-like machine: tens-of-microseconds latency, tens of MB/s
bandwidth, tens of MFLOPS per node) — the *ratios* are what shape the
speedup curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .trace import (
    CollectiveEvent,
    ComputeEvent,
    RecvEvent,
    SendEvent,
    Trace,
)


@dataclass
class CostModel:
    """Machine constants (seconds)."""

    flop_time: float = 2.0e-8        # per abstract work unit (~50 MFLOPS)
    latency: float = 40.0e-6         # end-to-end message latency (L)
    per_byte: float = 1.0 / 35.0e6   # 1/bandwidth (G): ~35 MB/s
    o_send: float = 15.0e-6          # sender CPU overhead per message
    o_recv: float = 15.0e-6          # receiver CPU overhead per message
    copy_per_byte: float = 1.0 / 180.0e6  # memcpy bandwidth for pack/unpack
    check_time: float = 5.0e-8       # one buffer-access ownership check

    def collective_cost(self, nprocs: int, nbytes: int) -> float:
        """Cost of a tree reduction/broadcast."""
        rounds = max(1, math.ceil(math.log2(max(nprocs, 2))))
        return rounds * (
            self.latency + self.o_send + self.o_recv
            + nbytes * self.per_byte
        )


@dataclass
class ReplayResult:
    time: float
    per_rank: List[float]
    comm_time: float  # aggregate time ranks spent blocked or in overheads


def replay(traces: List[Trace], model: CostModel = CostModel()) -> ReplayResult:
    """Predict the execution time of a traced run.

    Messages between a (sender, receiver, tag-insensitive) pair are matched
    in FIFO order, as the runtime's channels deliver them.
    """
    nprocs = len(traces)
    clocks = [0.0] * nprocs
    comm_time = 0.0
    # Message availability times, FIFO per (src, dest).
    available: Dict[Tuple[int, int], List[float]] = {}
    consumed: Dict[Tuple[int, int], int] = {}
    # Event cursors; collectives require global coordination, so we iterate
    # to a fixed point processing each rank as far as it can go.
    cursors = [0] * nprocs

    progress = True
    while progress:
        progress = False
        for rank, trace in enumerate(traces):
            while cursors[rank] < len(trace.events):
                event = trace.events[cursors[rank]]
                if isinstance(event, ComputeEvent):
                    clocks[rank] += event.amount * model.flop_time
                elif isinstance(event, SendEvent):
                    cost = (
                        model.o_send
                        + event.copied_bytes * model.copy_per_byte
                    )
                    clocks[rank] += cost
                    comm_time += cost
                    key = (rank, event.dest)
                    available.setdefault(key, []).append(
                        clocks[rank]
                        + model.latency
                        + event.bytes * model.per_byte
                    )
                elif isinstance(event, RecvEvent):
                    key = (event.src, rank)
                    index = consumed.get(key, 0)
                    queue = available.get(key, [])
                    if index >= len(queue):
                        break  # sender not processed far enough yet
                    consumed[key] = index + 1
                    before = clocks[rank]
                    arrival = queue[index]
                    clocks[rank] = max(clocks[rank], arrival) + (
                        model.o_recv
                        + event.copied_bytes * model.copy_per_byte
                    )
                    comm_time += clocks[rank] - before
                elif isinstance(event, CollectiveEvent):
                    break  # rendezvous handled below once all ranks arrive
                cursors[rank] += 1
                progress = True
        # Collective rendezvous: when every rank's next event is a
        # collective, synchronize them all.
        if all(
            cursors[r] < len(traces[r].events)
            and isinstance(traces[r].events[cursors[r]], CollectiveEvent)
            for r in range(nprocs)
        ):
            nbytes = max(
                traces[r].events[cursors[r]].bytes for r in range(nprocs)
            )
            before = list(clocks)
            sync = max(clocks)
            cost = CostModel.collective_cost(model, nprocs, nbytes)
            for r in range(nprocs):
                comm_time += sync - before[r] + cost
                clocks[r] = sync + cost
                cursors[r] += 1
            progress = True

    # Deadlock / imbalance check: all cursors must be at the end.
    for rank in range(nprocs):
        if cursors[rank] != len(traces[rank].events):
            raise RuntimeError(
                f"trace replay stuck at rank {rank}, event {cursors[rank]}"
                f"/{len(traces[rank].events)}: "
                f"{traces[rank].events[cursors[rank]]!r}"
            )
    # Buffer-check cost is accounted per rank at the end (checks are spread
    # through compute; adding them as a lump keeps replay simple and the
    # totals identical).
    for rank, trace in enumerate(traces):
        clocks[rank] += trace.buffer_checks * model.check_time
    return ReplayResult(max(clocks), clocks, comm_time)


def speedup_curve(
    serial_time: float, parallel_times: Dict[int, float]
) -> Dict[int, float]:
    """Speedups relative to a serial execution time."""
    return {p: serial_time / t for p, t in parallel_times.items()}
