"""Simulated message-passing machine (the testbed substitute).

Each rank runs the generated node program on its own thread with real MPI
semantics: buffered (non-blocking) sends, blocking FIFO receives per
channel, and tree collectives.  Correctness comes from this execution;
predicted performance comes from replaying the recorded traces through
:mod:`repro.runtime.cost`.

This machine is one of several execution backends (see
:mod:`repro.runtime.backends`); it remains the default because it is cheap
to launch and exercises real concurrency.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from .errors import (
    CommunicationError,
    RankCrashError,
    RankDiagnostics,
    RecvTimeoutError,
    RunTimeoutError,
    trace_tail,
)
from .noderuntime import NodeRuntimeBase
from .options import default_recv_timeout
from .sections import own_payload, pack_sections, scatter_sections
from .trace import Trace

__all__ = [
    "CommunicationError",  # canonical home is runtime.errors; re-exported
    "Machine",
    "NodeRuntime",
    "RankResult",
]


class _Collective:
    """Reusable rendezvous combining one value from every rank."""

    def __init__(self, nprocs: int, timeout_s: Optional[float] = None):
        self.nprocs = nprocs
        self.timeout_s = (
            timeout_s if timeout_s is not None else default_recv_timeout()
        )
        self.lock = threading.Condition()
        self.values: List[Any] = []
        self.result: Any = None
        self.generation = 0

    def combine(self, value, op: Callable[[List[Any]], Any], rank=None):
        with self.lock:
            generation = self.generation
            self.values.append(value)
            if len(self.values) == self.nprocs:
                self.result = op(self.values)
                self.values = []
                self.generation += 1
                self.lock.notify_all()
            else:
                if not self.lock.wait_for(
                    lambda: self.generation != generation,
                    timeout=self.timeout_s,
                ):
                    arrived = len(self.values)
                    raise RecvTimeoutError(
                        "collective timed out after "
                        f"{self.timeout_s:g}s",
                        diagnostics=[
                            RankDiagnostics(
                                rank=-1 if rank is None else rank,
                                phase="collective",
                                detail=(
                                    f"{arrived}/{self.nprocs} ranks had "
                                    "arrived at the rendezvous"
                                ),
                            )
                        ],
                    )
            return self.result


class NodeRuntime(NodeRuntimeBase):
    """The thread-machine implementation of the node-program runtime."""

    def __init__(
        self,
        machine: "Machine",
        rank: int,
        env: Dict[str, int],
        arrays: Dict[str, np.ndarray],
        lbounds: Dict[str, Tuple[int, ...]],
        scalars: Dict[str, float],
    ):
        super().__init__(rank, machine.nprocs, env, arrays, lbounds, scalars)
        self.machine = machine

    # -- communication ----------------------------------------------------------

    def send(
        self, dest: int, tag, values, indices=None, inplace: bool = False
    ) -> None:
        data, copied = own_payload(values)
        nbytes = data.nbytes
        self.trace.send(dest, tag, nbytes, 0 if inplace else nbytes)
        self.trace.data_copied(copied)
        self.machine.put_message(self.rank, dest, tag, indices, data)

    def recv(self, src: int, tag, inplace: bool = False):
        """Returns ``(indices, values)`` for the next message from src."""
        got_tag, indices, data = self.machine.get_message(
            src, self.rank, tag
        )
        if got_tag != tag:
            raise CommunicationError(
                f"rank {self.rank}: expected {tag!r} from {src}, "
                f"got {got_tag!r}"
            )
        data = np.asarray(data, dtype=np.float64)
        nbytes = data.nbytes
        self.trace.recv(src, tag, nbytes, 0 if inplace else nbytes)
        # Values are a float64 ndarray (sequence-compatible with the old
        # per-element list contract, without materializing one).
        return indices, data

    def send_section(
        self, dest: int, tag, name: str, sections, inplace: bool = False
    ) -> None:
        # The channel holds the payload until the receiver scatters it,
        # and sender/receiver share one address space: the sender must
        # snapshot (exactly one vectorized copy), zero-copy send would
        # let later writes to the array corrupt the in-flight message.
        payload, copied, viewed = pack_sections(
            self.arrays[name], self.lbounds[name], sections,
            force_copy=True,
        )
        nbytes = payload.nbytes
        self.trace.send(dest, tag, nbytes, 0 if inplace else nbytes)
        self.trace.data_copied(copied)
        self.trace.data_viewed(viewed)
        self.machine.put_message(self.rank, dest, tag, sections, payload)

    def recv_section(
        self, src: int, tag, name: str, inplace: bool = False
    ) -> None:
        got_tag, sections, payload = self.machine.get_message(
            src, self.rank, tag
        )
        if got_tag != tag:
            raise CommunicationError(
                f"rank {self.rank}: expected {tag!r} from {src}, "
                f"got {got_tag!r}"
            )
        nbytes = payload.nbytes
        self.trace.recv(src, tag, nbytes, 0 if inplace else nbytes)
        scatter_sections(
            self.arrays[name], self.lbounds[name], sections, payload
        )
        # Scattered straight from the in-flight buffer into array
        # storage: no staging copy on the receive side.
        self.trace.data_viewed(nbytes)

    def allreduce(self, op: str, value: float) -> float:
        self.trace.collective("allreduce", 8)
        ops = {
            "+": lambda vs: sum(vs),
            "max": lambda vs: max(vs),
            "min": lambda vs: min(vs),
        }
        return self.machine.combine(self.rank, value, ops[op])

    def barrier(self) -> None:
        self.trace.collective("barrier", 0)
        self.machine.combine(self.rank, 0, lambda vs: 0)


@dataclass
class RankResult:
    rank: int
    arrays: Dict[str, np.ndarray]
    scalars: Dict[str, float]
    trace: Trace
    env: Dict[str, int]


class Machine:
    """Runs a node program on ``nprocs`` simulated processors."""

    def __init__(
        self,
        nprocs: int,
        recv_timeout_s: Optional[float] = None,
        run_timeout_s: float = 600.0,
        comm_latency_s: float = 0.0,
    ):
        self.nprocs = nprocs
        self.recv_timeout_s = (
            recv_timeout_s
            if recv_timeout_s is not None
            else default_recv_timeout()
        )
        self.run_timeout_s = run_timeout_s
        #: simulated per-message link latency (seconds).  Messages become
        #: visible to the receiver only after this delay, so backends can
        #: be compared under identical communication cost (see
        #: ``RuntimeOptions.comm_latency_s``).  Zero — the default — is
        #: the historical immediate-delivery behavior.
        self.comm_latency_s = comm_latency_s
        self._channels: Dict[Tuple[int, int], queue.Queue] = {}
        self._channel_lock = threading.Lock()
        self.collective = _Collective(nprocs, self.recv_timeout_s)

    def channel_occupancy(self, dest: int) -> Dict[int, int]:
        """Pending inbound message counts for ``dest``, by source rank."""
        with self._channel_lock:
            return {
                src: chan.qsize()
                for (src, d), chan in self._channels.items()
                if d == dest and chan.qsize()
            }

    def channel(self, src: int, dest: int) -> queue.Queue:
        key = (src, dest)
        with self._channel_lock:
            if key not in self._channels:
                self._channels[key] = queue.Queue()
            return self._channels[key]

    # -- transport hooks (overridden by the sequential machine) -----------------

    def put_message(self, src, dest, tag, indices, data) -> None:
        ready_at = time.monotonic() + self.comm_latency_s
        self.channel(src, dest).put((ready_at, tag, indices, data))

    def get_message(self, src, dest, tag):
        try:
            ready_at, got_tag, indices, data = self.channel(src, dest).get(
                timeout=self.recv_timeout_s
            )
            delay = ready_at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            return got_tag, indices, data
        except queue.Empty:
            raise RecvTimeoutError(
                f"rank {dest} timed out receiving {tag!r} from {src} "
                f"after {self.recv_timeout_s:g}s",
                diagnostics=[
                    RankDiagnostics(
                        rank=dest,
                        phase="recv",
                        detail=(
                            f"blocked on tag {tag!r} from rank {src}; "
                            "pending inbound messages by source: "
                            f"{self.channel_occupancy(dest) or 'none'}"
                        ),
                        ring_occupancy=self.channel_occupancy(dest),
                    )
                ],
            ) from None

    def combine(self, rank: int, value, op):
        return self.collective.combine(value, op, rank)

    def run(
        self,
        node_main: Callable[[NodeRuntime], None],
        make_runtime: Callable[[int, "Machine"], NodeRuntime],
    ) -> List[RankResult]:
        """Execute ``node_main`` on every rank; returns per-rank results."""
        runtimes = [make_runtime(rank, self) for rank in range(self.nprocs)]
        errors: List[Optional[BaseException]] = [None] * self.nprocs

        def runner(rank: int) -> None:
            try:
                node_main(runtimes[rank])
            except BaseException as exc:  # surface to the caller
                errors[rank] = exc

        threads = [
            threading.Thread(target=runner, args=(rank,), daemon=True)
            for rank in range(self.nprocs)
        ]
        deadline = time.monotonic() + self.run_timeout_s
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        stuck = [
            rank
            for rank, thread in enumerate(threads)
            if thread.is_alive()
        ]
        if stuck:
            raise RunTimeoutError(
                "SPMD run did not terminate within "
                f"{self.run_timeout_s:g}s",
                diagnostics=[
                    RankDiagnostics(
                        rank=rank,
                        phase=runtimes[rank].phase,
                        detail="rank thread still running at the deadline",
                        trace_tail=trace_tail(runtimes[rank].trace),
                    )
                    for rank in stuck
                ],
            )
        # Application crashes take precedence over CommunicationErrors:
        # a dead rank usually *causes* its peers' receive timeouts, and
        # the root cause is what the caller should see.
        for rank, error in enumerate(errors):
            if error is None or isinstance(error, CommunicationError):
                continue
            raise RankCrashError(
                f"rank {rank} failed: {error!r}",
                diagnostics=[
                    RankDiagnostics(
                        rank=rank,
                        phase=runtimes[rank].phase,
                        detail=f"{type(error).__name__}: {error}",
                        trace_tail=trace_tail(runtimes[rank].trace),
                    )
                ],
            ) from error
        for error in errors:
            if error is not None:
                # Typed failures travel unchanged: the first failing
                # rank (in rank order) decides what the caller sees.
                raise error
        return [
            RankResult(
                rt.rank, rt.arrays, rt.scalars, rt.trace, rt.env
            )
            for rt in runtimes
        ]
