"""Execution harness: run compiled SPMD programs and validate them.

Responsibilities:

* evaluate the startup **runtime bindings** per rank (grid coordinates,
  symbolic extents, block sizes, the ``vm = B*m + tlb`` VP-block rebinding)
  into a picklable :class:`~repro.runtime.backends.LaunchSpec`;
* hand the spec to the selected **execution backend** (``threads`` by
  default; ``mp`` for one-process-per-rank; ``inproc-seq`` for the
  deterministic golden reference — see :mod:`repro.runtime.backends`);
* **validate** the distributed result against the serial interpreter by
  comparing each element on its owner rank (ownership evaluated numerically
  from the layout descriptors) — identical for every backend;
* replay traces through the cost model for predicted times, reported
  alongside the backend's *measured* wall-clock timings.
"""

from __future__ import annotations

import dataclasses
import math
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..hpf.layout import (
    DataMapping,
    Layout,
    PHYS_BLOCK,
    PHYS_CYCLIC,
    PHYS_CYCLIC_K,
    VP_BLOCK,
    VP_CYCLIC,
    VP_CYCLIC_K,
)
from ..hpf.procgrid import RuntimeBinding
from ..isets import LinExpr
from ..lang.ast import BinOp, Call, Expr, Name, Num, UnOp
from ..lang.interp import run_serial
from ..core.driver import CompiledProgram
from ..core.inplace import evaluate_at_runtime
from .backends import (
    LaunchSpec,
    RankBindings,
    RankTiming,
    resolve_backend,
)
from .cost import CostModel, ReplayResult, replay
from .errors import (
    CommunicationError,
    ResultDivergenceError,
    is_transient,
)
from .machine import RankResult
from .options import RuntimeOptions
from .trace import RunStatistics, Trace


class ValidationError(AssertionError):
    """Parallel result differs from the serial reference."""


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor re-launches after *transient* failures.

    ``max_attempts`` is per backend in the chain; backoff grows
    exponentially with **deterministic** jitter — the jitter fraction is
    drawn from ``Random((seed, attempt))``, so a supervised chaos run is
    exactly reproducible, sleeps included.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter_frac: float = 0.25
    seed: int = 0
    #: exponential growth ceiling (pre-jitter).  ``None`` leaves the
    #: backoff unbounded — fine for a handful of launch retries, wrong
    #: for open-ended loops like the compile-pool respawn governor,
    #: which would otherwise sleep for minutes after a crash streak.
    backoff_cap_s: Optional[float] = None

    def backoff_s(self, attempt: int) -> float:
        """Delay before re-launching after global attempt ``attempt``."""
        base = self.backoff_base_s * self.backoff_factor ** attempt
        if self.backoff_cap_s is not None:
            base = min(base, self.backoff_cap_s)
        rng = random.Random(f"retrypolicy:{self.seed}:{attempt}")
        return base * (1.0 + self.jitter_frac * rng.random())


@dataclass
class AttemptRecord:
    """One supervised launch attempt, successful or not."""

    attempt: int  # global attempt index across the backend chain
    backend: str
    outcome: str  # "ok" or the error class name
    error: str = ""
    wall_s: float = 0.0
    backoff_s: float = 0.0  # sleep taken *after* this attempt failed

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"


def _supervised_launch(spec, backends, policy):
    """Launch ``spec``, retrying transiently and degrading down the chain.

    Tries each backend up to ``policy.max_attempts`` times.  Permanent
    failures (``is_transient(exc)`` false — tag mismatches, divergence)
    raise immediately; transient ones (crashes, timeouts, launch
    failures) consume the retry budget with backoff, then fall through
    to the next backend.  The fault plan is re-filtered per *global*
    attempt index (``FaultPlan.for_attempt``), which is how injected
    transient faults expire.  Every attempt — including the failed ones
    behind an eventual success — is recorded; on failure the records are
    attached to the raised error as ``exc.attempts``.
    """
    attempts: List[AttemptRecord] = []
    plan = spec.options.fault_plan
    attempt_index = 0
    last_exc: Optional[CommunicationError] = None
    total = len(backends) * policy.max_attempts
    for backend in backends:
        for _ in range(policy.max_attempts):
            spec_k = spec
            if plan is not None:
                spec_k = dataclasses.replace(
                    spec,
                    options=spec.options.with_(
                        fault_plan=plan.for_attempt(attempt_index)
                    ),
                )
            start = time.perf_counter()
            try:
                launch = backend.launch(spec_k)
            except CommunicationError as exc:
                record = AttemptRecord(
                    attempt_index,
                    backend.name,
                    type(exc).__name__,
                    exc.message,
                    time.perf_counter() - start,
                )
                attempts.append(record)
                last_exc = exc
                attempt_index += 1
                if not is_transient(exc):
                    exc.attempts = attempts
                    raise
                if attempt_index < total:
                    record.backoff_s = policy.backoff_s(attempt_index - 1)
                    time.sleep(record.backoff_s)
                continue
            attempts.append(
                AttemptRecord(
                    attempt_index,
                    backend.name,
                    "ok",
                    wall_s=time.perf_counter() - start,
                )
            )
            return launch, backend, attempts
    assert last_exc is not None
    last_exc.attempts = attempts
    raise last_exc


def cross_check_results(
    results: List[RankResult],
    reference: List[RankResult],
    context: str = "",
) -> None:
    """Raise :class:`ResultDivergenceError` unless two runs agree.

    Compares every rank's arrays and scalars element-wise against a
    reference run (typically ``inproc-seq``, the deterministic golden
    backend) — the chaos matrix uses this to prove a fault can corrupt
    nothing silently.
    """
    prefix = f"{context}: " if context else ""
    if len(results) != len(reference):
        raise ResultDivergenceError(
            f"{prefix}rank count diverged: {len(results)} vs "
            f"{len(reference)} in the reference run"
        )
    for got, want in zip(results, reference):
        for name in want.arrays:
            if not np.allclose(
                got.arrays[name], want.arrays[name],
                rtol=1e-9, atol=1e-9,
            ):
                raise ResultDivergenceError(
                    f"{prefix}array {name!r} on rank {want.rank} "
                    "diverged from the reference run"
                )
        for name in want.scalars:
            if not np.isclose(
                got.scalars[name], want.scalars[name],
                rtol=1e-9, atol=1e-9,
            ):
                raise ResultDivergenceError(
                    f"{prefix}scalar {name!r} on rank {want.rank}: "
                    f"{got.scalars[name]!r} vs reference "
                    f"{want.scalars[name]!r}"
                )


def eval_lang_expr(expr: Expr, env: Mapping[str, int]) -> int:
    """Integer evaluation of a language expression (Fortran division)."""
    if isinstance(expr, Num):
        return int(expr.value)
    if isinstance(expr, Name):
        return int(env[expr.ident])
    if isinstance(expr, UnOp):
        return -eval_lang_expr(expr.operand, env)
    if isinstance(expr, BinOp):
        left = eval_lang_expr(expr.left, env)
        right = eval_lang_expr(expr.right, env)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return int(math.trunc(left / right))
    if isinstance(expr, Call) and expr.func == "max":
        return max(eval_lang_expr(a, env) for a in expr.args)
    if isinstance(expr, Call) and expr.func == "min":
        return min(eval_lang_expr(a, env) for a in expr.args)
    raise ValueError(f"cannot evaluate {expr!r} at startup")


def _eval_value(value, env: Mapping[str, int]) -> int:
    """Evaluate an int | LinExpr | language Expr."""
    if isinstance(value, int):
        return value
    if isinstance(value, LinExpr):
        return value.evaluate({name: env[name] for name in value.variables()})
    return eval_lang_expr(value, env)


def evaluate_bindings(
    mapping: DataMapping,
    params: Mapping[str, int],
    nprocs: int,
    rank: int,
) -> Dict[str, int]:
    """Startup symbol environment for one rank."""
    env: Dict[str, int] = dict(params)
    env["nprocs"] = nprocs
    for decl in mapping.program.parameters:
        if decl.name not in env:
            if decl.value is None:
                raise ValueError(f"parameter {decl.name} unbound")
            env[decl.name] = decl.value
    for binding in mapping.runtime_bindings():
        if binding.kind == "expr":
            env[binding.symbol] = eval_lang_expr(binding.args[0], env)
        elif binding.kind == "ceil_div":
            numerator = _eval_value(binding.args[0], env)
            denominator = _eval_value(binding.args[1], env)
            env[binding.symbol] = -((-numerator) // denominator)
        elif binding.kind == "grid_coord":
            extents = [_eval_value(e, env) for e in binding.args[0]]
            total = 1
            for extent in extents:
                total *= extent
            if total != nprocs:
                raise ValueError(
                    f"grid extents {extents} do not match nprocs={nprocs}"
                )
            dim = binding.args[1]
            if dim is None:
                env[binding.symbol] = rank
            else:
                remainder = rank
                coords = []
                for extent in reversed(extents):
                    coords.append(remainder % extent)
                    remainder //= extent
                coords.reverse()
                env[binding.symbol] = coords[dim]
        elif binding.kind == "vp_block":
            block = _eval_value(binding.args[0], env)
            tlb = _eval_value(binding.args[1], env)
            env[binding.symbol] = block * env[binding.symbol] + tlb
        else:
            raise ValueError(f"unknown binding kind {binding.kind!r}")
    return env


def owner_coordinate(
    layout: Layout, grid_dim: int, index: Tuple[int, ...],
    env: Mapping[str, int],
) -> Optional[int]:
    """Physical coordinate owning an element along one grid dim.

    ``None`` means replicated along this grid dim (every coordinate owns).
    """
    ownership = layout.ownerships[grid_dim]
    if ownership is None:
        return None
    image = layout.align_images.get(grid_dim)
    if image is None:
        return None
    dims = layout.data_dims
    binding = dict(zip(dims, index))
    t = image.evaluate({v: binding.get(v, env.get(v, 0))
                        for v in image.variables()})
    tlb = _eval_value(ownership.template_lb, env)
    count = _eval_value(ownership.proc_count, env)
    if ownership.kind in (PHYS_BLOCK, VP_BLOCK):
        if ownership.kind == PHYS_BLOCK:
            block = ownership.block_size
        else:
            tub = _eval_value(ownership.template_ub, env)
            block = -((-(tub - tlb + 1)) // count)
        return min((t - tlb) // block, count - 1)
    if ownership.kind in (PHYS_CYCLIC, VP_CYCLIC):
        return (t - tlb) % count
    # cyclic(k)
    k = _eval_value(ownership.block_size, env)
    return ((t - tlb) // k) % count


def rank_of_coords(extents: List[int], coords: List[int]) -> int:
    rank = 0
    for extent, coord in zip(extents, coords):
        rank = rank * extent + coord
    return rank


@dataclass
class RunOutcome:
    compiled: CompiledProgram
    nprocs: int
    results: List[RankResult]
    stats: RunStatistics
    replay: ReplayResult
    serial_time: float  # predicted serial time under the same cost model
    env0: Dict[str, int]
    #: which execution backend produced the results.
    backend: str = "threads"
    #: measured (not modeled) per-rank wall-clock timings.
    timings: List[RankTiming] = field(default_factory=list)
    #: parent-side elapsed wall-clock for the whole launch.
    launch_wall_s: float = 0.0
    #: per-cache memoization counters of the compile that produced this
    #: run's program (mirrors ``compiled.phases.cache_stats``).
    cache_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: every supervised launch attempt (retries and backend fallbacks
    #: included) — the last entry is the one that produced ``results``.
    attempts: List[AttemptRecord] = field(default_factory=list)

    @property
    def predicted_time(self) -> float:
        return self.replay.time

    @property
    def speedup(self) -> float:
        return self.serial_time / self.replay.time

    @property
    def max_rank_wall_s(self) -> float:
        """Slowest rank's measured wall-clock (the SPMD critical path)."""
        return max((t.wall_s for t in self.timings), default=0.0)


def independent_arrays(compiled: CompiledProgram) -> Tuple[str, ...]:
    """Arrays with no cross-statement same-element access pairs.

    This is the integer-set dependence analysis (:mod:`repro.core.depend`)
    answering a coarser question than communication placement asks: for
    which arrays is *every* (write, other-access) pair either within one
    statement instance or provably element-disjoint?  The taskgraph
    planner may then drop compute-compute ordering edges carried only by
    such arrays — name-level conflicts that the sets refute (e.g. two
    nests updating disjoint regions of one array).

    Sound by construction: an array qualifies only if (a) no pair of
    references from *different* statements can ever touch a common
    element (:func:`same_element_possible`), and (b) no write can touch
    the same element as any reference of its *own* statement on a
    different iteration (:func:`dependence_level` in both directions) —
    so split pieces of one nest are reorderable too.  Arrays referenced
    in more than one procedure are conservatively excluded.  The result
    is memoized on the compiled program; analysis failures degrade to
    "no hints".
    """
    cached = compiled.__dict__.get("_independent_arrays")
    if cached is not None:
        return cached
    from ..core.context import collect_contexts
    from ..core.depend import dependence_level, same_element_possible

    hints: List[str] = []
    try:
        mapping = compiled.mapping
        refs_by_array: Dict[str, List[Tuple[int, object, object]]] = {}
        proc_of_array: Dict[str, set] = {}
        for procedure in compiled.program.procedures:
            contexts = collect_contexts(compiled.program, procedure)
            for stmt_idx, ctx in enumerate(contexts):
                for ref in ctx.references():
                    refs_by_array.setdefault(ref.array, []).append(
                        (stmt_idx, ctx, ref)
                    )
                    proc_of_array.setdefault(ref.array, set()).add(
                        procedure.name
                    )
        for array, refs in sorted(refs_by_array.items()):
            if len(proc_of_array[array]) != 1:
                continue
            writes = [r for r in refs if r[2].is_write]
            if not writes:
                continue  # read-only: never part of a conflict anyway
            if _array_refs_independent(
                writes, refs, mapping.layout(array), dependence_level,
                same_element_possible,
            ):
                hints.append(array)
    except Exception:
        hints = []
    result = tuple(hints)
    compiled.__dict__["_independent_arrays"] = result
    return result


def _array_refs_independent(
    writes, refs, layout, dependence_level, same_element_possible
) -> bool:
    for w_idx, w_ctx, w_ref in writes:
        for o_idx, o_ctx, o_ref in refs:
            if o_idx == w_idx:
                # Same statement: only *cross-iteration* aliasing
                # matters (same-iteration pairs stay inside one unit).
                depth = len(w_ctx.loops)
                if dependence_level(
                    w_ctx, w_ref, o_ctx, o_ref, layout, depth
                ) is not None:
                    return False
                if dependence_level(
                    o_ctx, o_ref, w_ctx, w_ref, layout, depth
                ) is not None:
                    return False
            elif same_element_possible(
                w_ctx, w_ref, o_ctx, o_ref, layout
            ):
                return False
    return True


def build_launch_spec(
    compiled: CompiledProgram,
    params: Mapping[str, int],
    nprocs: int,
    options: Optional[RuntimeOptions] = None,
) -> LaunchSpec:
    """Evaluate all per-rank startup state into a picklable launch spec.

    Everything symbolic (bindings, array extents, runtime in-place flags)
    is resolved here in the parent, so backends — including out-of-process
    workers — only see plain numbers, names, and the node-program source.
    """
    options = options or RuntimeOptions()
    program = compiled.program
    mapping = compiled.mapping
    scalar_names = [s.name for s in program.scalars]
    bindings: List[RankBindings] = []
    for rank in range(nprocs):
        env = evaluate_bindings(mapping, params, nprocs, rank)
        shapes: Dict[str, Tuple[int, ...]] = {}
        lbounds: Dict[str, Tuple[int, ...]] = {}
        for decl in program.arrays:
            lbs = []
            shape = []
            for low, high in decl.extents:
                lo = eval_lang_expr(low, env)
                hi = eval_lang_expr(high, env)
                lbs.append(lo)
                shape.append(hi - lo + 1)
            shapes[decl.name] = tuple(shape)
            lbounds[decl.name] = tuple(lbs)
        inplace = {
            name: _inplace_for_rank(result, layout, env, nprocs, rank)
            for name, result, layout in compiled.module.runtime_inplace
        }
        bindings.append(
            RankBindings(rank, env, shapes, lbounds, scalar_names, inplace)
        )
    return LaunchSpec(
        nprocs,
        compiled.source,
        bindings,
        list(compiled.module.fallback_sets),
        options,
    )


def run_compiled(
    compiled: CompiledProgram,
    params: Mapping[str, int],
    nprocs: int,
    cost_model: Optional[CostModel] = None,
    validate: bool = True,
    serial_work: Optional[float] = None,
    backend: Optional[str] = None,
    runtime_options: Optional[RuntimeOptions] = None,
    retry_policy: Optional[RetryPolicy] = None,
    fallback_backends: Optional[Sequence[str]] = None,
) -> RunOutcome:
    """Execute the compiled program on ``nprocs`` ranks.

    ``backend`` selects the execution substrate (``threads`` default,
    ``mp``, ``inproc-seq``, or any :class:`ExecutionBackend` instance);
    validation and trace replay are identical regardless of backend.

    The launch runs under a supervisor: with a ``retry_policy``,
    transient failures (rank crashes, timeouts, launch errors) are
    retried with deterministic exponential backoff, and once the primary
    backend's budget is exhausted the run degrades down
    ``fallback_backends`` (default: ``runtime_options.fallback_backends``)
    in order.  ``RunOutcome.attempts`` records what actually ran; without
    a policy, a single attempt is made and failures propagate typed
    (see :mod:`repro.runtime.errors`).
    """
    cost_model = cost_model or CostModel()
    options = runtime_options or RuntimeOptions()
    backend_obj = resolve_backend(
        backend if backend is not None else options.backend
    )
    chain = (
        fallback_backends
        if fallback_backends is not None
        else options.fallback_backends
    )
    backends = [backend_obj] + [resolve_backend(name) for name in chain]
    policy = retry_policy or RetryPolicy(max_attempts=1)
    spec = build_launch_spec(compiled, params, nprocs, options)
    if any(b.name == "taskgraph" for b in backends):
        # Pay the set-engine cost only when a planner will consume it.
        spec.dep_hints = independent_arrays(compiled)
    launch, backend_obj, attempts = _supervised_launch(
        spec, backends, policy
    )
    results = launch.results
    stats = RunStatistics.from_traces([r.trace for r in results])
    stats.scheduler = launch.scheduler
    replayed = replay([r.trace for r in results], cost_model)
    if serial_work is None:
        serial_work = _serial_work_estimate(results)
    serial_time = serial_work * cost_model.flop_time

    env0 = results[0].env
    if validate:
        _validate(compiled, params, nprocs, results)
    return RunOutcome(
        compiled,
        nprocs,
        results,
        stats,
        replayed,
        serial_time,
        env0,
        backend=backend_obj.name,
        timings=launch.timings,
        launch_wall_s=launch.wall_s,
        cache_stats=dict(compiled.phases.cache_stats),
        attempts=attempts,
    )


def _inplace_for_rank(result, layout, env, nprocs, rank) -> bool:
    """Run-time half of §3.3 with actual partners bound.

    The compile-time predicate may be UNKNOWN only because fictitious
    virtual processors admit violations; binding the partner coordinates
    to the *real* partner VPs (and myid's own) decides it exactly.
    Multi-VP (cyclic) dims fall back to the conservative answer.
    """
    from ..core.inplace import InPlaceResult
    from ..isets import Answer

    if result.answer is Answer.TRUE:
        return True
    if result.answer is Answer.FALSE:
        return False
    grid = layout.grid
    extents = [_eval_value(grid.extents[d], env) for d in range(grid.rank)]
    for ownership in layout.ownerships:
        if ownership is not None and ownership.needs_vp_loops:
            return False  # cyclic VP dims: pack conservatively
    for partner in range(nprocs):
        if partner == rank:
            continue
        coords = []
        remainder = partner
        for extent in reversed(extents):
            coords.append(remainder % extent)
            remainder //= extent
        coords.reverse()
        binding = dict(env)
        for dim, name in enumerate(layout.proc_dims):
            ownership = layout.ownerships[dim]
            coord = coords[dim]
            if ownership is not None and ownership.kind == VP_BLOCK:
                tub = _eval_value(ownership.template_ub, env)
                tlb = _eval_value(ownership.template_lb, env)
                count = _eval_value(ownership.proc_count, env)
                block = -((-(tub - tlb + 1)) // count)
                coord = block * coord + tlb
            binding[name] = coord
        if not evaluate_at_runtime(result, binding):
            return False
    return True


def _serial_work_estimate(results: List[RankResult]) -> float:
    """Total statement work across ranks ≈ serial work (each dynamic
    statement instance executes on at least one rank; replication inflates
    this slightly, which only makes reported speedups conservative)."""
    return sum(r.trace.compute_units for r in results)


def _validate(
    compiled: CompiledProgram,
    params: Mapping[str, int],
    nprocs: int,
    results: List[RankResult],
) -> None:
    """Compare every owned element against the serial interpreter."""
    program = compiled.program
    mapping = compiled.mapping
    serial = run_serial(program, dict(params))
    env_by_rank = [r.env for r in results]
    for decl in program.arrays:
        layout = mapping.layout(decl.name)
        grid = layout.grid
        extents = [
            _eval_value(grid.extents[d], env_by_rank[0])
            for d in range(grid.rank)
        ]
        reference = serial.arrays[decl.name]
        lbs = reference.lbounds
        it = np.ndindex(*reference.data.shape)
        for offsets in it:
            index = tuple(o + lb for o, lb in zip(offsets, lbs))
            coords = []
            for grid_dim in range(grid.rank):
                coord = owner_coordinate(
                    layout, grid_dim, index, env_by_rank[0]
                )
                coords.append(0 if coord is None else coord)
            rank = rank_of_coords(extents, coords)
            got = results[rank].arrays[decl.name][offsets]
            want = reference.data[offsets]
            if not np.isclose(got, want, rtol=1e-9, atol=1e-9):
                raise ValidationError(
                    f"array {decl.name}{list(index)}: rank {rank} has "
                    f"{got!r}, serial reference has {want!r}"
                )
    for scalar in program.scalars:
        want = serial.values.get(scalar.name, 0.0)
        got = results[0].scalars[scalar.name]
        if isinstance(want, (int, float)) and not np.isclose(
            got, want, rtol=1e-9, atol=1e-9
        ):
            raise ValidationError(
                f"scalar {scalar.name}: rank 0 has {got!r}, serial "
                f"reference has {want!r}"
            )
