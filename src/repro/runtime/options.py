"""Runtime options: knobs for *executing* compiled programs.

These are deliberately separate from :class:`repro.core.options.CompilerOptions`
— compiler options change the generated code, runtime options change how a
given node program is launched (which backend, how many ranks, how long a
blocking receive may wait before the run is declared deadlocked).

The receive timeout can also be set process-wide through the
``REPRO_RECV_TIMEOUT_S`` environment variable; an explicit
:class:`RuntimeOptions` value always wins.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from .faults import FaultPlan

#: Environment variable consulted for the default blocking-receive timeout.
RECV_TIMEOUT_ENV = "REPRO_RECV_TIMEOUT_S"

_FALLBACK_RECV_TIMEOUT_S = 60.0


def default_recv_timeout() -> float:
    """The blocking-receive timeout (seconds) from the environment.

    Falls back to 60 s when ``REPRO_RECV_TIMEOUT_S`` is unset or invalid.
    """
    raw = os.environ.get(RECV_TIMEOUT_ENV)
    if raw is None:
        return _FALLBACK_RECV_TIMEOUT_S
    try:
        value = float(raw)
    except ValueError:
        return _FALLBACK_RECV_TIMEOUT_S
    return value if value > 0 else _FALLBACK_RECV_TIMEOUT_S


@dataclass
class RuntimeOptions:
    """Execution knobs threaded through every backend.

    ``recv_timeout_s`` bounds how long a blocking receive or collective
    waits before surfacing :class:`~repro.runtime.machine.CommunicationError`
    (a deadlocked SPMD program must fail, not hang).  ``run_timeout_s``
    bounds the whole launch, covering ranks stuck outside communication.
    """

    backend: str = "threads"
    recv_timeout_s: float = None  # type: ignore[assignment]
    run_timeout_s: float = 600.0
    #: deterministic fault-injection schedule (chaos testing); ``None``
    #: runs clean.  Picklable, so it reaches out-of-process workers.
    fault_plan: Optional[FaultPlan] = None
    #: backends the supervisor may degrade to, in order, after the
    #: primary backend exhausts its retry budget (e.g.
    #: ``("threads", "inproc-seq")``).  Empty disables fallback.
    fallback_backends: Tuple[str, ...] = ()
    #: simulated per-message link latency in seconds.  Honored by the
    #: ``threads`` and ``taskgraph`` transports (a message becomes
    #: visible to its receiver only after the delay), so comm/compute
    #: overlap can be measured under identical communication cost on
    #: both backends.  Zero (default) preserves immediate delivery.
    comm_latency_s: float = 0.0
    #: worker-pool size for the ``taskgraph`` backend; ``None`` sizes the
    #: pool automatically (and it is always raised to ``nprocs`` when the
    #: plan contains units that may block, e.g. collectives).
    taskgraph_workers: Optional[int] = None

    def __post_init__(self):
        if self.recv_timeout_s is None:
            self.recv_timeout_s = default_recv_timeout()

    def with_(self, **changes) -> "RuntimeOptions":
        return replace(self, **changes)
