"""HPF data-mapping semantics: grids, distributions, layout maps."""

from .layout import (
    DataMapping,
    DimOwnership,
    Layout,
    PHYS_BLOCK,
    PHYS_CYCLIC,
    PHYS_CYCLIC_K,
    TemplateMapping,
    VP_BLOCK,
    VP_CYCLIC,
    VP_CYCLIC_K,
)
from .procgrid import ProcessorGrid, RuntimeBinding

__all__ = [
    "DataMapping",
    "DimOwnership",
    "Layout",
    "PHYS_BLOCK",
    "PHYS_CYCLIC",
    "PHYS_CYCLIC_K",
    "ProcessorGrid",
    "RuntimeBinding",
    "TemplateMapping",
    "VP_BLOCK",
    "VP_CYCLIC",
    "VP_CYCLIC_K",
]
