"""Processor grids and their symbolic extents.

A ``processors P(e1, ..., ek)`` declaration yields a :class:`ProcessorGrid`
whose per-dimension extent is either a concrete int (when the extent
expression is a constant) or a fresh symbolic constant bound at SPMD startup
(e.g. ``P(2, nprocs/2)`` gives extent symbols bound from the actual
processor count).  Grid dimension *names* are the domain dims of every
layout map on the grid; ``my`` symbols denote the executing processor's
coordinate (or its active virtual-processor coordinate, Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..isets import Constraint, IntegerSet, LinExpr
from ..lang.ast import Expr, Num, ProcessorsDecl
from ..lang.affine import to_affine

ExtentValue = Union[int, LinExpr]


@dataclass
class RuntimeBinding:
    """A symbol the generated node program computes at startup.

    ``kind`` is one of:

    * ``"expr"`` — evaluate the language expression ``args[0]``;
    * ``"ceil_div"`` — ``ceil(args[0] / args[1])`` where args are prior
      symbols/ints or affine expressions (used for block sizes);
    * ``"grid_coord"`` — coordinate ``args[1]`` of this rank in a grid with
      extents ``args[0]`` (row-major rank decomposition);
    * ``"affine"`` — evaluate the :class:`LinExpr` in ``args[0]`` over
      previously bound symbols (used for ``vm = B*m + tlb``).
    """

    symbol: str
    kind: str
    args: tuple


class ProcessorGrid:
    """A processor array with 0-based coordinates per dimension."""

    def __init__(self, decl: ProcessorsDecl):
        self.decl = decl
        self.name = decl.name
        self.dim_names: Tuple[str, ...] = tuple(
            f"{decl.name}_{d}" for d in range(decl.rank)
        )
        self.my_names: Tuple[str, ...] = tuple(
            f"my_{decl.name}_{d}" for d in range(decl.rank)
        )
        self.extents: List[ExtentValue] = []
        self.bindings: List[RuntimeBinding] = []
        for d, expr in enumerate(decl.extents):
            self.extents.append(self._extent_value(d, expr))
        self.bindings.append(
            RuntimeBinding(
                f"my_rank_{self.name}", "grid_coord",
                (tuple(self.extent_exprs()), None),
            )
        )
        for d in range(decl.rank):
            self.bindings.append(
                RuntimeBinding(
                    self.my_names[d], "grid_coord",
                    (tuple(self.extent_exprs()), d),
                )
            )

    def _extent_value(self, dim: int, expr: Expr) -> ExtentValue:
        try:
            affine = to_affine(expr)
        except Exception:
            affine = None
        if affine is not None:
            if affine.is_constant():
                return affine.constant
            # Affine in parameters (e.g. plain NP): usable symbolically.
            return affine
        symbol = f"P_{self.name}_{dim}"
        self.bindings.append(RuntimeBinding(symbol, "expr", (expr,)))
        return LinExpr.var(symbol)

    @property
    def rank(self) -> int:
        return self.decl.rank

    def extent_exprs(self) -> List[Union[int, LinExpr]]:
        return list(self.extents)

    def extent_affine(self, dim: int) -> LinExpr:
        value = self.extents[dim]
        if isinstance(value, int):
            return LinExpr.const(value)
        return value

    def is_symbolic(self, dim: int) -> bool:
        return not isinstance(self.extents[dim], int)

    def dim_bounds(self, dim: int) -> List[Constraint]:
        """0 <= p_dim <= extent - 1 as constraints on the grid dim name."""
        p = LinExpr.var(self.dim_names[dim])
        return [
            Constraint.geq(p, 0),
            Constraint.leq(p, self.extent_affine(dim) - 1),
        ]

    def proc_set(self) -> IntegerSet:
        """The set of processor coordinate tuples."""
        constraints = []
        for dim in range(self.rank):
            constraints.extend(self.dim_bounds(dim))
        return IntegerSet.from_constraints(self.dim_names, constraints)

    def total_procs_value(self, nprocs: int) -> List[int]:
        """Concrete per-dim extents for ``nprocs`` (evaluating parameters
        requires only ``nprocs`` in the common case); raises otherwise."""
        from ..lang.interp import Interpreter  # deferred to avoid cycles

        values = []
        for value in self.extents:
            if isinstance(value, int):
                values.append(value)
            else:
                env = {"nprocs": nprocs}
                total = value.evaluate(
                    {name: env.get(name, 0) for name in value.variables()}
                )
                values.append(total)
        return values
