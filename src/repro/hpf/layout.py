"""Construction of Layout maps: ``proc_k -> data_k`` (paper Figures 1-2).

``Layout_A = Dist_T ∘ Align_A^{-1}`` in the paper's terms; we build the
composition directly as constraints over {grid dims} ∪ {array dims} with the
template dims as existential variables.

The **virtual-processor refinement** (Section 4.1) is applied per dimension
whenever the distribution is not exactly representable (a symbolic block
size or processor count would need a product of symbols):

* ``block``: the VP coordinate ``v`` owns template elements
  ``[v, v+B-1]`` and exactly one VP per physical processor is active
  (``vm = B*m + tlb``), so no VP loops are ever needed;
* ``cyclic``: the VP coordinate *is* the template index; physical owner of
  VP ``v`` is ``(v - tlb) mod P``;
* ``cyclic(k)``: the VP coordinate is the block index; owner of VP ``v``
  is ``(v - 1) mod P``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..isets import (
    Conjunct,
    Constraint,
    IntegerMap,
    IntegerSet,
    LinExpr,
    Space,
    fresh_name,
)
from ..lang.affine import to_affine
from ..lang.ast import (
    AlignDecl,
    ArrayDecl,
    DistFormat,
    DistributeDecl,
    Program,
    TemplateDecl,
)
from ..lang.errors import SemanticError
from .procgrid import ProcessorGrid, RuntimeBinding

# Ownership kinds for a grid dimension of a layout (per template dim).
PHYS_BLOCK = "phys-block"       # exact: B*p + tlb <= t <= B*p + B - 1 + tlb
PHYS_CYCLIC = "phys-cyclic"     # exact: t ≡ p + tlb (mod P)
PHYS_CYCLIC_K = "phys-cyclicK"  # exact: k-blocks round robin
VP_BLOCK = "vp-block"           # v <= t <= v + B - 1; active vm = B*m + tlb
VP_CYCLIC = "vp-cyclic"         # t = v; owner(v) = (v - tlb) mod P
VP_CYCLIC_K = "vp-cyclicK"      # k(v-1)+tlb <= t <= kv+tlb-1; owner (v-1)%P


@dataclass
class DimOwnership:
    """How one grid dimension owns one template dimension."""

    grid_dim: int
    template_dim: int
    kind: str
    block_size: Union[int, LinExpr, None]  # B for block, k for cyclic(k)
    proc_count: Union[int, LinExpr]
    template_lb: LinExpr
    template_ub: LinExpr

    @property
    def is_vp(self) -> bool:
        return self.kind.startswith("vp-")

    @property
    def needs_vp_loops(self) -> bool:
        """Block VP dims have one active VP per processor — no loops."""
        return self.kind in (VP_CYCLIC, VP_CYCLIC_K)


@dataclass
class TemplateMapping:
    """A template together with its distribution onto a grid."""

    decl: TemplateDecl
    grid: ProcessorGrid
    distribute: DistributeDecl
    ownerships: List[Optional[DimOwnership]]  # per template dim
    bindings: List[RuntimeBinding]


class Layout:
    """The layout of one array: map from (virtual) processors to elements."""

    def __init__(
        self,
        array: str,
        grid: ProcessorGrid,
        owner_map: IntegerMap,
        ownerships: List[Optional[DimOwnership]],
        replicated_dims: Tuple[int, ...],
        align_images: Optional[Dict[int, LinExpr]] = None,
    ):
        self.array = array
        self.grid = grid
        #: map {[grid dims] -> [array dims]}: which elements each
        #: (virtual) processor owns.
        self.map = owner_map
        #: per grid dim, the ownership descriptor (None when the array is
        #: replicated along that grid dim).
        self.ownerships = ownerships
        #: grid dims along which this array is replicated.
        self.replicated_dims = replicated_dims
        #: per grid dim, the template-image expression over the array dim
        #: names (used by the harness for fast numeric ownership tests).
        self.align_images: Dict[int, LinExpr] = align_images or {}

    @property
    def proc_dims(self) -> Tuple[str, ...]:
        return self.map.in_dims

    @property
    def data_dims(self) -> Tuple[str, ...]:
        return self.map.out_dims

    def owner_symbols(self) -> Tuple[str, ...]:
        """Symbols denoting the executing processor's (VP) coordinates."""
        return self.grid.my_names

    def local_map(self) -> IntegerMap:
        """Layout with the domain fixed to the executing processor."""
        binding = dict(zip(self.proc_dims, self.owner_symbols()))
        return self.map.fix_input(binding)

    def local_set(self) -> IntegerSet:
        """Elements owned by the executing processor (``Layout({m})``)."""
        return self.local_map().range().simplify()

    def is_fully_replicated(self) -> bool:
        return all(o is None for o in self.ownerships)

    def __repr__(self) -> str:
        return f"Layout({self.array}: {self.map})"


class DataMapping:
    """Whole-program mapping model: grids, templates, layouts."""

    def __init__(self, program: Program):
        self.program = program
        if not program.processors:
            raise SemanticError(
                "program declares no processors; nothing to distribute on"
            )
        self.grids: Dict[str, ProcessorGrid] = {
            decl.name: ProcessorGrid(decl) for decl in program.processors
        }
        self.templates: Dict[str, TemplateMapping] = {}
        for tdecl in program.templates:
            self.templates[tdecl.name] = self._build_template(tdecl)
        self.layouts: Dict[str, Layout] = {}
        for adecl in program.arrays:
            self.layouts[adecl.name] = self._build_layout(adecl)

    # -- template mapping ---------------------------------------------------------

    def _affine_extent(self, expr) -> LinExpr:
        return to_affine(expr)

    def _build_template(self, decl: TemplateDecl) -> TemplateMapping:
        dist = self.program.distribute_for(decl.name)
        if dist is None:
            # Undistributed template: treat every dim as collapsed onto the
            # first grid (arrays aligned to it are replicated).
            grid = next(iter(self.grids.values()))
            return TemplateMapping(decl, grid, None, [None] * decl.rank, [])
        grid = self.grids.get(dist.processors)
        if grid is None:
            raise SemanticError(
                f"distribute onto unknown processors {dist.processors!r}"
            )
        if len(dist.formats) != decl.rank:
            raise SemanticError(
                f"distribute {decl.name}: {len(dist.formats)} formats for "
                f"rank-{decl.rank} template"
            )
        bindings: List[RuntimeBinding] = []
        ownerships: List[Optional[DimOwnership]] = []
        grid_dim = 0
        for tdim, fmt in enumerate(dist.formats):
            if fmt.kind == "*":
                ownerships.append(None)
                continue
            if grid_dim >= grid.rank:
                raise SemanticError(
                    f"distribute {decl.name}: more distributed dims than "
                    f"grid {grid.name} has"
                )
            ownerships.append(
                self._dim_ownership(decl, tdim, fmt, grid, grid_dim, bindings)
            )
            grid_dim += 1
        if grid_dim not in (0, grid.rank):
            raise SemanticError(
                f"distribute {decl.name}: grid {grid.name} has {grid.rank} "
                f"dims but only {grid_dim} are distributed"
            )
        return TemplateMapping(decl, grid, dist, ownerships, bindings)

    def _dim_ownership(
        self,
        decl: TemplateDecl,
        tdim: int,
        fmt: DistFormat,
        grid: ProcessorGrid,
        grid_dim: int,
        bindings: List[RuntimeBinding],
    ) -> DimOwnership:
        tlb = self._affine_extent(decl.extents[tdim][0])
        tub = self._affine_extent(decl.extents[tdim][1])
        proc_count = grid.extents[grid_dim]
        p_symbolic = not isinstance(proc_count, int)
        extent = tub - tlb + 1

        if fmt.kind == "block":
            if not p_symbolic and extent.is_constant():
                block = -((-extent.constant) // proc_count)  # ceil division
                kind = PHYS_BLOCK
            else:
                symbol = f"B_{decl.name}_{tdim}"
                bindings.append(
                    RuntimeBinding(
                        symbol, "ceil_div",
                        (extent, grid.extent_affine(grid_dim)),
                    )
                )
                block = LinExpr.var(symbol)
                kind = VP_BLOCK
            return DimOwnership(
                grid_dim, tdim, kind, block, proc_count
                if not p_symbolic else grid.extent_affine(grid_dim),
                tlb, tub,
            )
        if fmt.kind == "cyclic" and fmt.block_size is None:
            kind = PHYS_CYCLIC if not p_symbolic else VP_CYCLIC
            return DimOwnership(
                grid_dim, tdim, kind, None,
                proc_count if not p_symbolic
                else grid.extent_affine(grid_dim),
                tlb, tub,
            )
        # cyclic(k)
        k_expr = to_affine(fmt.block_size)
        if not k_expr.is_constant():
            raise SemanticError(
                f"cyclic(k) with symbolic k is supported only through "
                f"inspector-style runtime resolution; not implemented"
            )
        k = k_expr.constant
        kind = PHYS_CYCLIC_K if not p_symbolic else VP_CYCLIC_K
        return DimOwnership(
            grid_dim, tdim, kind, k,
            proc_count if not p_symbolic else grid.extent_affine(grid_dim),
            tlb, tub,
        )

    # -- layouts ----------------------------------------------------------------------

    def _build_layout(self, decl: ArrayDecl) -> Layout:
        align = self.program.align_for(decl.name)
        array_dims = tuple(f"{decl.name}_{d}" for d in range(decl.rank))
        bound_constraints = []
        for d, (low, high) in enumerate(decl.extents):
            a = LinExpr.var(array_dims[d])
            bound_constraints.append(Constraint.geq(a, to_affine(low)))
            bound_constraints.append(Constraint.leq(a, to_affine(high)))

        if align is None:
            # Unaligned array: fully replicated on the first grid.
            grid = next(iter(self.grids.values()))
            constraints = list(bound_constraints)
            for gd in range(grid.rank):
                constraints.extend(
                    _grid_dim_domain(grid, gd, None)
                )
            owner_map = IntegerMap.from_constraints(
                grid.dim_names, array_dims, constraints
            )
            return Layout(
                decl.name, grid, owner_map,
                [None] * grid.rank, tuple(range(grid.rank)),
            )

        template = self.templates.get(align.template)
        if template is None:
            raise SemanticError(
                f"align {decl.name} with unknown template {align.template!r}"
            )
        if len(align.dummies) != decl.rank:
            raise SemanticError(
                f"align {decl.name}: {len(align.dummies)} dummies for "
                f"rank-{decl.rank} array"
            )
        if len(align.targets) != template.decl.rank:
            raise SemanticError(
                f"align {decl.name}: {len(align.targets)} targets for "
                f"rank-{template.decl.rank} template"
            )
        grid = template.grid
        dummy_env = dict(zip(align.dummies, array_dims))
        align_images: Dict[int, LinExpr] = {}

        constraints: List[Constraint] = list(bound_constraints)
        wildcards: List[str] = []
        # Each distributed dim contributes a list of alternatives (one for
        # plain distributions; cyclic(k) expands into its k residues so the
        # map stays in pure stride form, which negation requires).
        alternative_sets: List[List[Tuple[List[Constraint], List[str]]]] = []
        per_grid_dim: List[Optional[DimOwnership]] = [None] * grid.rank
        replicated: List[int] = []
        for tdim, target in enumerate(align.targets):
            ownership = template.ownerships[tdim]
            if target is None:
                # '*' in the align: array replicated along this template dim
                # (hence along its grid dim, if distributed).
                if ownership is not None:
                    replicated.append(ownership.grid_dim)
                    constraints.extend(
                        _grid_dim_domain(grid, ownership.grid_dim, ownership)
                    )
                continue
            t_expr = to_affine(target).rename(dummy_env)
            # Template bounds always constrain the alignment image.
            tlb = self._affine_extent(template.decl.extents[tdim][0])
            tub = self._affine_extent(template.decl.extents[tdim][1])
            constraints.append(Constraint.geq(t_expr, tlb))
            constraints.append(Constraint.leq(t_expr, tub))
            if ownership is None:
                continue  # collapsed: no processor constraint
            alternative_sets.append(
                _ownership_constraints(grid, ownership, t_expr)
            )
            per_grid_dim[ownership.grid_dim] = ownership
            align_images[ownership.grid_dim] = t_expr

        # Grid dims not constrained at all (array has no data on them):
        # replicate along them.
        for gd in range(grid.rank):
            if per_grid_dim[gd] is None and gd not in replicated:
                replicated.append(gd)
                constraints.extend(_grid_dim_domain(grid, gd, None))

        conjuncts = []
        import itertools as _it

        for combo in _it.product(*alternative_sets) if alternative_sets \
                else [()]:
            all_constraints = list(constraints)
            all_wildcards = list(wildcards)
            for extra_constraints, extra_wildcards in combo:
                all_constraints.extend(extra_constraints)
                all_wildcards.extend(extra_wildcards)
            conjuncts.append(Conjunct(all_constraints, all_wildcards))
        owner_map = IntegerMap(
            Space(grid.dim_names, array_dims), conjuncts
        )
        return Layout(
            decl.name, grid, owner_map, per_grid_dim, tuple(replicated),
            align_images,
        )

    # -- conveniences --------------------------------------------------------------

    def layout(self, array: str) -> Layout:
        if array not in self.layouts:
            raise SemanticError(f"no layout for array {array!r}")
        return self.layouts[array]

    def runtime_bindings(self) -> List[RuntimeBinding]:
        """All startup bindings: grid coords, extents, block sizes, vm."""
        bindings: List[RuntimeBinding] = []
        for grid in self.grids.values():
            bindings.extend(grid.bindings)
        for template in self.templates.values():
            bindings.extend(template.bindings)
        # vm rebindings for VP-block dims: my coordinate becomes B*m + tlb
        # (paper §4.1: the single active virtual processor of this rank).
        seen = set()
        for template in self.templates.values():
            for ownership in template.ownerships:
                if ownership is None or ownership.kind != VP_BLOCK:
                    continue
                my = template.grid.my_names[ownership.grid_dim]
                if my in seen:
                    continue
                seen.add(my)
                bindings.append(
                    RuntimeBinding(
                        my, "vp_block",
                        (ownership.block_size, ownership.template_lb),
                    )
                )
        return bindings


def _grid_dim_domain(
    grid: ProcessorGrid, grid_dim: int, ownership: Optional[DimOwnership]
) -> List[Constraint]:
    """Domain constraints for a grid dim of a layout map.

    For physical dims this is ``0 <= p < P``.  For VP dims the domain is
    the VP range (template-valued for cyclic, block index for cyclic(k),
    template-valued start for block).
    """
    p = LinExpr.var(grid.dim_names[grid_dim])
    if ownership is None or not ownership.is_vp:
        return [
            Constraint.geq(p, 0),
            Constraint.leq(p, grid.extent_affine(grid_dim) - 1),
        ]
    if ownership.kind == VP_BLOCK or ownership.kind == VP_CYCLIC:
        return [
            Constraint.geq(p, ownership.template_lb),
            Constraint.leq(p, ownership.template_ub),
        ]
    # VP_CYCLIC_K: block index range 1 .. ceil(extent/k)
    k = ownership.block_size
    extent = ownership.template_ub - ownership.template_lb + 1
    return [
        Constraint.geq(p, 1),
        Constraint.leq(p.scaled(k), extent + k - 1),
    ]


def _ownership_constraints(
    grid: ProcessorGrid,
    ownership: DimOwnership,
    t_expr: LinExpr,
) -> List[Tuple[List[Constraint], List[str]]]:
    """Alternatives of (constraints, wildcards) tying a template-image
    expression to its grid dim; cyclic(k) yields one alternative per
    residue so every wildcard stays in stride (equality) form."""
    p = LinExpr.var(grid.dim_names[ownership.grid_dim])
    tlb = ownership.template_lb
    kind = ownership.kind
    constraints: List[Constraint] = []
    wildcards: List[str] = []
    if kind == PHYS_BLOCK:
        block = ownership.block_size
        constraints.append(Constraint.geq(t_expr, p.scaled(block) + tlb))
        constraints.append(
            Constraint.leq(t_expr, p.scaled(block) + tlb + block - 1)
        )
        constraints.append(Constraint.geq(p, 0))
        constraints.append(
            Constraint.leq(p, grid.extent_affine(ownership.grid_dim) - 1)
        )
    elif kind == PHYS_CYCLIC:
        count = ownership.proc_count
        witness = fresh_name("a")
        # t - tlb - p = P * a
        constraints.append(
            Constraint.eq(
                t_expr - tlb - p, LinExpr.var(witness).scaled(count)
            )
        )
        wildcards.append(witness)
        constraints.append(Constraint.geq(p, 0))
        constraints.append(Constraint.leq(p, count - 1))
    elif kind == PHYS_CYCLIC_K:
        count = ownership.proc_count
        k = ownership.block_size
        alternatives = []
        for residue in range(k):
            witness = fresh_name("a")
            base = (
                LinExpr.var(witness).scaled(k * count)
                + p.scaled(k) + tlb + residue
            )
            alternatives.append((
                [
                    Constraint.eq(t_expr, base),
                    Constraint.geq(LinExpr.var(witness), 0),
                    Constraint.geq(p, 0),
                    Constraint.leq(p, count - 1),
                ],
                [witness],
            ))
        return alternatives
    elif kind == VP_BLOCK:
        block = ownership.block_size  # symbolic LinExpr
        constraints.append(Constraint.geq(t_expr, p))
        constraints.append(Constraint.leq(t_expr, p + block - 1))
        constraints.append(Constraint.geq(p, tlb))
        constraints.append(Constraint.leq(p, ownership.template_ub))
    elif kind == VP_CYCLIC:
        constraints.append(Constraint.eq(t_expr, p))
        constraints.append(Constraint.geq(p, tlb))
        constraints.append(Constraint.leq(p, ownership.template_ub))
    elif kind == VP_CYCLIC_K:
        k = ownership.block_size
        alternatives = []
        for residue in range(k):
            alternatives.append((
                [
                    Constraint.eq(
                        t_expr, p.scaled(k) - k + tlb + residue
                    ),
                    Constraint.geq(p, 1),
                ],
                [],
            ))
        return alternatives
    else:
        raise SemanticError(f"unknown ownership kind {kind!r}")
    return [(constraints, wildcards)]
