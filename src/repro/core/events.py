"""Identifying, vectorizing, and coalescing communication events.

* A reference is *potentially non-local* when some (virtual) processor
  executes an iteration that touches data it does not own — an emptiness
  question on ``(CPMap ∘ RefMap) − Layout`` (paper Section 3.2).
* **Message vectorization** hoists a reference's communication out of
  enclosing loops as far as data dependences allow (``repro.core.depend``).
* **Message coalescing** merges the communication of references to the same
  array placed at the same point into one logical event, unioning their
  communication sets (Figure 3 handles the union seamlessly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..hpf.layout import DataMapping, Layout
from ..lang.ast import Do
from .commsets import CommEvent, EventRef
from .context import Reference, StmtContext
from .cp import CPInfo
from .depend import carried_into, loop_independent_dependence
from .refmap import reference_map


@dataclass
class PlacedEvent:
    """A communication event with its position in the statement tree.

    ``anchor`` is the loop (Do node) the communication sits immediately
    outside of — communication happens inside loops ``0..level-1`` of the
    anchor statement's nest.  ``when`` is ``"before"`` (data needed by
    reads, placed before the anchor) or ``"after"`` (non-local write
    updates, flushed after the anchor completes).
    """

    event: CommEvent
    anchor: object  # Do node or the Assign itself when level == depth
    when: str  # 'before' | 'after'
    level: int
    key: Tuple = ()


def is_potentially_nonlocal(
    cp: CPInfo, reference: Reference, layout: Layout
) -> bool:
    """Can any processor access an element of this reference it does not
    own?  (Definition of non-local references, paper Section 3.2.)"""
    if layout.is_fully_replicated() and not reference.is_write:
        return False
    ref_map = reference_map(cp.context, reference, layout)
    accessed = cp.cp_map.then(ref_map)  # {[p] -> [a]}
    nonlocal_part = accessed.subtract(layout.map)
    if not nonlocal_part.is_empty():
        return True
    if reference.is_write and layout.replicated_dims:
        # A write is also non-local when some copy's owner does not itself
        # execute the write (replicated layouts): owners of written data
        # minus the writers.
        written = accessed.range()
        owners = layout.map.restrict_range(written)
        unwritten_copies = owners.subtract(accessed)
        return not unwritten_copies.is_empty()
    return False


def placement_level(
    cp: CPInfo,
    reference: Reference,
    all_contexts: Sequence[Tuple[CPInfo, StmtContext]],
    mapping: DataMapping,
) -> int:
    """How many outer loops the communication must remain inside.

    0 = fully vectorized out of the whole nest.  For a read, every write to
    the same array sharing loops forces placement inside the deepest
    dependence-carrying level; symmetrically for non-local writes against
    later reads.
    """
    context = cp.context
    layout = mapping.layout(reference.array)
    level = 0
    for other_cp, other_ctx in all_contexts:
        common = _common_depth(context, other_ctx)
        if common == 0:
            continue
        for other_ref in other_ctx.references():
            if other_ref.array != reference.array:
                continue
            if not reference.is_write and other_ref.is_write:
                level = max(
                    level,
                    carried_into(
                        other_ctx, other_ref, context, reference,
                        layout, common,
                    ),
                )
                # A write earlier in the same iteration of the shared
                # loops (loop-independent flow) pins the communication
                # inside all of them.
                if (
                    other_ctx.order <= context.order
                    and level < common
                    and loop_independent_dependence(
                        other_ctx, other_ref, context, reference,
                        layout, common,
                    )
                ):
                    level = max(level, common)
            elif reference.is_write and not other_ref.is_write:
                level = max(
                    level,
                    carried_into(
                        context, reference, other_ctx, other_ref,
                        layout, common,
                    ),
                )
                if (
                    context.order <= other_ctx.order
                    and level < common
                    and loop_independent_dependence(
                        context, reference, other_ctx, other_ref,
                        layout, common,
                    )
                ):
                    level = max(level, common)
            elif reference.is_write and other_ref.is_write:
                # Output dependences also pin the flush point.
                level = max(
                    level,
                    carried_into(
                        context, reference, other_ctx, other_ref,
                        layout, common,
                    ),
                )
    return min(level, context.depth())


def _common_depth(a: StmtContext, b: StmtContext) -> int:
    depth = 0
    for la, lb in zip(a.loops, b.loops):
        if la.node is lb.node:
            depth += 1
        else:
            break
    return depth


def build_events(
    mapping: DataMapping,
    cp_infos: Sequence[CPInfo],
    coalesce: bool = True,
) -> List[PlacedEvent]:
    """Identify non-local references and group them into placed events."""
    pairs = [(cp, cp.context) for cp in cp_infos]
    raw: List[Tuple[Tuple, EventRef, int, object, str]] = []
    for cp in cp_infos:
        if cp.replicated and cp.layout is None:
            continue
        for reference in cp.context.references():
            layout = mapping.layouts.get(reference.array)
            if layout is None or layout.is_fully_replicated():
                if layout is None or not reference.is_write:
                    continue
            if not is_potentially_nonlocal(cp, reference, layout):
                continue
            level = placement_level(cp, reference, pairs, mapping)
            anchor, when = _anchor_for(cp.context, reference, level)
            outer = tuple(
                info.var for info in cp.context.loops[:level]
            )
            key = (
                reference.array,
                id(anchor),
                when,
                level,
                outer,
            )
            raw.append(
                (key, EventRef(cp, reference), level, anchor, when)
            )

    groups: Dict[Tuple, List] = {}
    order: List[Tuple] = []
    for key, event_ref, level, anchor, when in raw:
        group_key = key if coalesce else key + (id(event_ref.reference.ref),
                                                event_ref.cp.context.stmt.stmt_id)
        if group_key not in groups:
            groups[group_key] = []
            order.append(group_key)
        groups[group_key].append((event_ref, level, anchor, when, key))

    events: List[PlacedEvent] = []
    for group_key in order:
        members = groups[group_key]
        event_ref0, level, anchor, when, key = members[0]
        array = event_ref0.reference.array
        layout = mapping.layout(array)
        outer_vars = key[4]
        event = CommEvent(
            array=array,
            layout=layout,
            level=level,
            refs=[m[0] for m in members],
            outer_symbols=tuple(f"{v}_cur" for v in outer_vars),
        )
        events.append(
            PlacedEvent(event, anchor, when, level, key=group_key)
        )
    return events


def _anchor_for(
    context: StmtContext, reference: Reference, level: int
) -> Tuple[object, str]:
    when = "after" if reference.is_write else "before"
    if level >= context.depth():
        return context.stmt, when
    return context.loops[level].node, when
