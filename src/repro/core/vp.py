"""Active virtual-processor sets (paper Section 4.1, Figure 5).

For cyclic / cyclic(k) distributions under a symbolic processor count,
every physical processor owns many virtual processors, but not all of them
are *active* in a given computation or communication.  These equations
compute, across all processors:

* ``busyVPSet``   — VPs executing any iteration (domain of CPMap);
* ``activeSendVPSet`` — VPs that must send data;
* ``activeRecvVPSet`` — VPs that must receive data;

code generation then restricts each VP loop to the active VPs owned by
``myid``, eliminating or reducing run-time checks (the refinement over
SUIF/Gupta et al. the paper claims).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..isets import IntegerMap, IntegerSet
from ..hpf.layout import Layout
from .commsets import CommEvent, CommSets, _restricted_cp_map
from .cp import CPInfo
from .refmap import reference_map


@dataclass
class ActiveVPSets:
    """Results of the Figure 5(a) equations for one communication event."""

    busy_vp: Dict[str, IntegerSet]        # per kind: read / write
    active_send_vp: IntegerSet
    active_recv_vp: IntegerSet


def busy_vp_set(cp_infos: Sequence[CPInfo]) -> IntegerSet:
    """``busyVPSet = ∪ Domain(CPMap_r)`` for a partitioned computation."""
    result: Optional[IntegerSet] = None
    for cp in cp_infos:
        domain = cp.cp_map.domain()
        result = domain if result is None else result.union(domain)
    if result is None:
        raise ValueError("busy_vp_set of no statements")
    return result.simplify()


def compute_active_vp_sets(event: CommEvent) -> ActiveVPSets:
    """Figure 5(a): active senders/receivers for one communication event."""
    layout = event.layout

    busy: Dict[str, IntegerSet] = {}
    nl_accessed: Dict[str, Optional[IntegerMap]] = {
        "read": None, "write": None
    }
    for kind in ("read", "write"):
        refs = event.reads if kind == "read" else event.writes
        busy_set: Optional[IntegerSet] = None
        for event_ref in refs:
            cp_v = _restricted_cp_map(
                event_ref, event.level, event.outer_symbols
            )
            domain = cp_v.domain()
            busy_set = domain if busy_set is None else busy_set.union(domain)
            ref_map = reference_map(
                event_ref.cp.context, event_ref.reference, layout
            )
            accessed = cp_v.then(ref_map)
            current = nl_accessed[kind]
            nl_accessed[kind] = (
                accessed if current is None else current.union(accessed)
            )
        busy[kind] = (
            busy_set.simplify()
            if busy_set is not None
            else IntegerSet.empty(layout.proc_dims)
        )

    owns_nl: Dict[str, IntegerSet] = {}
    accesses_nl: Dict[str, IntegerSet] = {}
    for kind in ("read", "write"):
        accessed = nl_accessed[kind]
        if accessed is None:
            owns_nl[kind] = IntegerSet.empty(layout.proc_dims)
            accesses_nl[kind] = IntegerSet.empty(layout.proc_dims)
            continue
        # NLDataAccessed_t as a map: accessed minus owned, per processor.
        nl_map = accessed.subtract(layout.map).simplify()
        # allNLDataSet_t = NLDataAccessed_t(busyVPSet_t)
        all_nl_data = nl_map.apply(busy[kind]).simplify()
        # vpsThatOwnNLData_t = Layout^{-1}(allNLDataSet_t)
        owns_nl[kind] = layout.map.inverse().apply(all_nl_data).simplify()
        # vpsThatAccessNLData_t = Domain(NLDataAccessed_t)
        accesses_nl[kind] = nl_map.domain().simplify()

    active_send = owns_nl["read"].union(accesses_nl["write"]).simplify()
    active_recv = accesses_nl["read"].union(owns_nl["write"]).simplify()
    return ActiveVPSets(busy, active_send, active_recv)
