"""Set-based data-dependence analysis (Pugh-style, memory based).

Used to decide how far communication for a reference can be vectorized
(hoisted): communication for a read of array ``A`` placed at loop level
``v`` is legal only if no write to ``A`` inside the loops being vectorized
over can produce a value consumed by a later iteration's read — i.e. there
is no flow dependence from the write to the read carried by a loop deeper
than ``v``.

Dependences are computed exactly as integer map emptiness questions, which
is precisely the application Pugh's Omega test was built for (reference
[25] of the paper).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..isets import Constraint, IntegerMap, IntegerSet, LinExpr
from ..hpf.layout import Layout
from .context import Reference, StmtContext
from .refmap import reference_map


def _lex_later_constraints(
    in_dims: Tuple[str, ...],
    out_dims: Tuple[str, ...],
    level: int,
) -> List[Constraint]:
    """``out`` follows ``in`` with equality on the first ``level`` dims and
    strict increase at dim ``level`` (0-based)."""
    constraints = [
        Constraint.eq(LinExpr.var(a), LinExpr.var(b))
        for a, b in zip(in_dims[:level], out_dims[:level])
    ]
    constraints.append(
        Constraint.lt(
            LinExpr.var(in_dims[level]), LinExpr.var(out_dims[level])
        )
    )
    return constraints


def dependence_level(
    source_ctx: StmtContext,
    source_ref: Reference,
    sink_ctx: StmtContext,
    sink_ref: Reference,
    layout: Layout,
    common_depth: int,
) -> Optional[int]:
    """Deepest common loop level carrying a dependence source→sink.

    Returns the 0-based level of the *deepest* common loop whose iteration
    change can carry the dependence (communication may not be vectorized
    past a carrying loop), or ``None`` when the references never touch the
    same element on distinct iterations of the common loops.
    ``common_depth`` is the number of shared enclosing loops.
    """
    if source_ref.array != sink_ref.array:
        return None
    src_map = reference_map(source_ctx, source_ref, layout)
    src_map = src_map.restrict_domain(source_ctx.iteration_set())
    sink_map = reference_map(sink_ctx, sink_ref, layout)
    sink_map = sink_map.restrict_domain(sink_ctx.iteration_set())
    # iterations of source -> iterations of sink touching the same element
    shared = src_map.then(sink_map.inverse())
    for level in range(common_depth - 1, -1, -1):
        ordered = shared.constrain(
            _lex_later_constraints(
                shared.in_dims, shared.out_dims, level
            )
        )
        if not ordered.is_empty():
            return level
    return None


def carried_into(
    write_ctx: StmtContext,
    write_ref: Reference,
    read_ctx: StmtContext,
    read_ref: Reference,
    layout: Layout,
    common_depth: int,
) -> int:
    """Vectorization limit: number of outer loops communication may be
    hoisted out of is ``depth - limit`` where limit is the returned level.

    A returned value of ``k`` means loops ``k..depth-1`` (0-based, of the
    *read's* nest) may NOT be vectorized over; communication must be placed
    inside loop ``k-1``...  Concretely: communication for the read can be
    hoisted out of all loops strictly deeper than the deepest
    dependence-carrying level.
    """
    level = dependence_level(
        write_ctx, write_ref, read_ctx, read_ref, layout, common_depth
    )
    if level is None:
        return 0
    return level + 1


def loop_independent_dependence(
    source_ctx: StmtContext,
    source_ref: Reference,
    sink_ctx: StmtContext,
    sink_ref: Reference,
    layout: Layout,
    common_depth: int,
) -> bool:
    """Same-iteration dependence: the references touch a common element
    with equal indices on all ``common_depth`` shared loops.  Such a
    dependence (source textually before sink) pins communication inside
    every shared loop even though no loop *carries* it."""
    if source_ref.array != sink_ref.array:
        return False
    src_map = reference_map(source_ctx, source_ref, layout)
    src_map = src_map.restrict_domain(source_ctx.iteration_set())
    sink_map = reference_map(sink_ctx, sink_ref, layout)
    sink_map = sink_map.restrict_domain(sink_ctx.iteration_set())
    shared = src_map.then(sink_map.inverse())
    same_prefix = [
        Constraint.eq(LinExpr.var(a), LinExpr.var(b))
        for a, b in zip(
            shared.in_dims[:common_depth], shared.out_dims[:common_depth]
        )
    ]
    return not shared.constrain(same_prefix).is_empty()


def same_element_possible(
    a_ctx: StmtContext,
    a_ref: Reference,
    b_ctx: StmtContext,
    b_ref: Reference,
    layout: Layout,
) -> bool:
    """Whether the two references can ever touch a common element."""
    if a_ref.array != b_ref.array:
        return False
    a_map = reference_map(a_ctx, a_ref, layout)
    a_data = a_map.apply(a_ctx.iteration_set())
    b_map = reference_map(b_ctx, b_ref, layout)
    b_data = b_map.apply(b_ctx.iteration_set())
    return not a_data.intersect(b_data).is_empty()
