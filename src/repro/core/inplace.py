"""In-place communication recognition (paper Section 3.3).

Fortran arrays are column-major, so a communication set ``C`` over an array
``A`` with ``n`` dims is a contiguous address range iff there is a ``k``
with:

* dims ``1 <= i < k`` (leftmost, fastest-varying): ``C<i> == A<i>`` (spans
  the full allocated range);
* dim ``k``: ``IsConvex(C<k>)``;
* dims ``k+1 .. n``: ``IsSingleton(C<i>)``.

Each test reduces to a satisfiability question (a *violation set*); a test
that is neither provably true nor provably false at compile time (symbolic
parameters) is recorded so an equivalent predicate can be evaluated at run
time with at most ``n + 2`` checks — the combined compile-time/run-time
scheme of the paper.  Like dHPF, the compile-time path applies to
single-conjunct communication sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..isets import (
    Answer,
    IntegerSet,
    is_convex_1d,
    is_singleton_1d,
    spans_full_range,
)


@dataclass
class RuntimePredicate:
    """One deferred test: emptiness of ``violations`` under parameters."""

    description: str
    violations: IntegerSet


@dataclass
class InPlaceResult:
    """Outcome of the contiguity analysis for one communication set."""

    answer: Answer
    pivot_dim: Optional[int] = None  # the k of the condition above
    runtime_checks: List[RuntimePredicate] = field(default_factory=list)
    #: original operands, kept so the run-time half of the combined
    #: algorithm can repeat the dimension scan with grounded parameters.
    comm_set: Optional[IntegerSet] = None
    array_bounds: Optional[IntegerSet] = None

    @property
    def provably_contiguous(self) -> bool:
        return self.answer is Answer.TRUE


def analyze_contiguity(
    comm_set: IntegerSet, array_bounds: IntegerSet
) -> InPlaceResult:
    """Apply the §3.3 condition with the single-scan dimension search.

    ``comm_set`` and ``array_bounds`` share the array's index space.  As in
    the paper, a single scan over the dimensions (leftmost first) finds the
    first dimension ``k`` where the set stops spanning the full range; the
    predicates are then checked for ``k .. n``, avoiding O(n²) tests.
    """
    if comm_set.is_empty():
        return InPlaceResult(Answer.TRUE, pivot_dim=0)
    if len(comm_set.conjuncts) > 1:
        # dHPF applies the compile-time test to single-conjunct sets only
        # (mutually-exclusive disjunct support is noted as future work).
        return InPlaceResult(
            Answer.UNKNOWN, comm_set=comm_set, array_bounds=array_bounds
        )
    rank = comm_set.space.arity_in
    checks: List[RuntimePredicate] = []
    pivot = rank  # if every dim spans fully, condition holds with k = n
    # Coverage is tested under the communication set's own parameter
    # preconditions (e.g. "the outer loop index is in range"): outside
    # them no message exists, so they cannot witness a violation.
    data_dims = set(comm_set.space.in_dims)
    preconditions = [
        c
        for c in comm_set.conjuncts[0].constraints
        if not any(c.coeff(d) for d in data_dims)
        and not any(
            c.coeff(w) for w in comm_set.conjuncts[0].wildcards
        )
    ]
    for dim in range(rank):
        comm_proj = _projection(comm_set, dim)
        full_proj = _projection(array_bounds, dim).constrain(preconditions)
        spans = spans_full_range(comm_proj, full_proj)
        if spans.answer is Answer.TRUE:
            continue
        if spans.answer is Answer.UNKNOWN:
            checks.append(
                RuntimePredicate(
                    f"dim {dim} spans full allocated range",
                    spans.violations,
                )
            )
        pivot = dim
        break
    if pivot == rank:
        if not checks:
            return InPlaceResult(Answer.TRUE, pivot_dim=rank)
        return InPlaceResult(
            Answer.UNKNOWN, rank, checks,
            comm_set=comm_set, array_bounds=array_bounds,
        )

    answer = Answer.TRUE
    convex = is_convex_1d(_projection(comm_set, pivot))
    if convex.answer is Answer.FALSE:
        return InPlaceResult(Answer.FALSE, pivot)
    if convex.answer is Answer.UNKNOWN:
        checks.append(
            RuntimePredicate(
                f"dim {pivot} index range is convex", convex.violations
            )
        )
        answer = Answer.UNKNOWN
    for dim in range(pivot + 1, rank):
        single = is_singleton_1d(_projection(comm_set, dim))
        if single.answer is Answer.FALSE:
            return InPlaceResult(Answer.FALSE, pivot)
        if single.answer is Answer.UNKNOWN:
            checks.append(
                RuntimePredicate(
                    f"dim {dim} holds a single index", single.violations
                )
            )
            answer = Answer.UNKNOWN
    if checks:
        answer = Answer.UNKNOWN
    return InPlaceResult(
        answer, pivot, checks,
        comm_set=comm_set, array_bounds=array_bounds,
    )


def _projection(subset: IntegerSet, dim: int) -> IntegerSet:
    return subset.project_onto([subset.space.in_dims[dim]])


def analyze_contiguity_per_message(
    comm_data: IntegerSet, array_bounds: IntegerSet
) -> InPlaceResult:
    """Contiguity of each *message* of a communication set.

    A union's conjuncts correspond to distinct partner messages (one
    message per partner is sent); the whole event is in-place when every
    per-message piece is contiguous on its own."""
    if not comm_data.conjuncts:
        return InPlaceResult(Answer.TRUE, pivot_dim=0)
    results = [
        analyze_contiguity(
            IntegerSet(comm_data.space, [conjunct]), array_bounds
        )
        for conjunct in comm_data.conjuncts
    ]
    if all(r.answer is Answer.TRUE for r in results):
        return InPlaceResult(Answer.TRUE)
    if any(r.answer is Answer.FALSE for r in results):
        return InPlaceResult(Answer.FALSE)
    checks = [c for r in results for c in r.runtime_checks]
    return InPlaceResult(
        Answer.UNKNOWN, None, checks,
        comm_set=comm_data, array_bounds=array_bounds,
    )


def evaluate_at_runtime(result: InPlaceResult, env) -> bool:
    """Run-time half of the combined algorithm (paper §3.3).

    Repeats the single dimension scan with the parameters bound — at most
    ``n + 2`` grounded predicates — which, unlike re-checking the
    compile-time branch's predicates, finds the correct pivot dimension
    for the actual parameter values.
    """
    if result.answer is Answer.TRUE:
        return True
    if result.answer is Answer.FALSE:
        return False
    binding = dict(env)
    grounded_comm = result.comm_set.partial_evaluate(binding)
    grounded_bounds = result.array_bounds.partial_evaluate(binding)
    if len(grounded_comm.conjuncts) > 1:
        rerun = analyze_contiguity_per_message(
            grounded_comm.simplify(), grounded_bounds
        )
        return rerun.answer is Answer.TRUE
    rerun = analyze_contiguity(grounded_comm, grounded_bounds)
    return rerun.answer is Answer.TRUE
