"""The computation-partitioning model (paper Section 3.1).

A statement's CP is a union of ``ON_HOME A_j(f_j(i))`` terms — strictly more
general than the owner-computes rule.  The explicit form is the mapping

    CPMap = ∪_j (Layout_{A_j} ∘ RefMap_j^{-1}) ∩_range loop

from (virtual) processors to the statement instances they execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Optional, Tuple

from ..isets import Conjunct, IntegerMap, IntegerSet, Space
from ..hpf.layout import DataMapping, Layout
from ..lang.ast import ArrayRef, Call, ComputationPartitioning, Name, OnHomeTerm
from ..lang.errors import SemanticError
from .context import Reference, StmtContext, _make_reference
from .refmap import reference_map


@dataclass
class CPInfo:
    """Resolved computation partitioning of one statement.

    ``cp_map`` maps (virtual) processor tuples to the loop iterations they
    execute.  ``replicated`` marks statements every processor executes
    (scalar assignments and statements with no distributed reference).
    ``reduction`` carries the recognized reduction operator, if any.
    """

    context: StmtContext
    layout: Optional[Layout]  # layout of the CP's home array (first term)
    cp_map: IntegerMap
    terms: Tuple[Reference, ...]
    replicated: bool = False
    reduction: Optional[str] = None  # '+', 'max', 'min'

    @property
    def iter_dims(self) -> Tuple[str, ...]:
        return self.context.iter_dims

    @property
    def grid(self):
        if self.layout is not None:
            return self.layout.grid
        raise SemanticError("CP has no associated grid")

    @cached_property
    def local_iterations(self) -> IntegerSet:
        """``cpIterSet = CPMap({m})``: iterations of the executing proc.

        ``cached_property`` makes the invalidation contract explicit: the
        value is computed once per instance and lives in the instance
        ``__dict__`` (CPInfo is treated as immutable after construction;
        ``del cp.local_iterations`` would invalidate explicitly).
        """
        if self.replicated:
            return self.context.iteration_set()
        binding = dict(zip(self.cp_map.in_dims, self.grid.my_names))
        return self.cp_map.fix_input(binding).range().simplify()


def recognize_reduction(context: StmtContext) -> Optional[str]:
    """Detect ``s = s + e`` / ``s = max(s, e)`` / ``s = min(s, e)``.

    The paper notes dHPF recognizes and implements such reductions
    efficiently (its TOMCATV study leans on two maxloc reductions).
    """
    stmt = context.stmt
    if not isinstance(stmt.lhs, Name) or not context.loops:
        return None
    target = stmt.lhs.ident
    rhs = stmt.rhs
    if isinstance(rhs, Call) and rhs.func in ("max", "min"):
        if any(isinstance(a, Name) and a.ident == target for a in rhs.args):
            return rhs.func
    from ..lang.ast import BinOp

    if isinstance(rhs, BinOp) and rhs.op == "+":
        for side in (rhs.left, rhs.right):
            if isinstance(side, Name) and side.ident == target:
                return "+"
    return None


def resolve_cp(
    mapping: DataMapping, context: StmtContext
) -> CPInfo:
    """Determine the statement's CP (explicit ON_HOME or owner-computes)."""
    terms: List[Reference] = []
    if context.stmt.cp is not None:
        for term in context.stmt.cp.terms:
            terms.append(_make_reference(term.ref, False))
    elif isinstance(context.stmt.lhs, ArrayRef):
        terms.append(_make_reference(context.stmt.lhs, True))

    reduction = recognize_reduction(context)
    if reduction is not None and not terms:
        # Reduction over distributed data: partition like the owner of the
        # first distributed array referenced on the RHS.
        for reference in context.references():
            layout = mapping.layouts.get(reference.array)
            if layout is not None and not layout.is_fully_replicated():
                terms.append(reference)
                break

    distributed_terms = [
        t for t in terms
        if not mapping.layout(t.array).is_fully_replicated()
    ]
    if not distributed_terms:
        # Scalar statement (or all-replicated homes): replicated execution.
        grid = next(iter(mapping.grids.values()))
        iteration = context.iteration_set()
        space = Space(grid.dim_names, iteration.space.in_dims)
        conjuncts = []
        proc = grid.proc_set()
        for a in proc.conjuncts:
            for b in iteration.conjuncts:
                conjuncts.append(a.conjoin(b))
        cp_map = IntegerMap(space, conjuncts)
        # A layout on the grid (for my-symbols); any one will do, else None.
        layout = _any_layout_on_grid(mapping, grid)
        return CPInfo(
            context, layout, cp_map, tuple(terms),
            replicated=True, reduction=reduction,
        )

    home = distributed_terms[0]
    layout = mapping.layout(home.array)
    iteration = context.iteration_set()
    cp_map: Optional[IntegerMap] = None
    for term in distributed_terms:
        term_layout = mapping.layout(term.array)
        if term_layout.grid is not layout.grid:
            raise SemanticError(
                "ON_HOME terms spanning different processor arrays are "
                "kept as mapping lists in dHPF (§5); this reproduction "
                "requires a single grid per statement"
            )
        ref_map = reference_map(context, term, term_layout)
        term_map = term_layout.map.then(ref_map.inverse())
        cp_map = term_map if cp_map is None else cp_map.union(term_map)
    cp_map = cp_map.restrict_range(iteration).simplify()
    return CPInfo(
        context, layout, cp_map, tuple(distributed_terms),
        reduction=reduction,
    )


def _any_layout_on_grid(mapping: DataMapping, grid) -> Optional[Layout]:
    for layout in mapping.layouts.values():
        if layout.grid is grid:
            return layout
    return None
