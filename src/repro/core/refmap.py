"""Reference maps: ``RefMap : loop_k -> data_k`` (paper Figure 1).

A reference ``A(f(i))`` in a statement with index vector ``i`` yields the
map ``{ [i] -> [a] : a_k = f_k(i) }``; the paper's equations compose these
with layouts and iteration sets.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..isets import Constraint, IntegerMap, LinExpr, Space
from ..hpf.layout import Layout
from .context import Reference, StmtContext


def reference_map(
    context: StmtContext, reference: Reference, layout: Layout
) -> IntegerMap:
    """Build RefMap for a reference, with output dims matching the layout."""
    iter_dims = context.iter_dims
    data_dims = layout.data_dims
    if len(data_dims) != len(reference.subscripts):
        raise ValueError(
            f"rank mismatch: {reference.ref} vs layout of {layout.array}"
        )
    out_dims = tuple(f"{d}'" if d in iter_dims else d for d in data_dims)
    constraints = [
        Constraint.eq(LinExpr.var(out_dim), subscript)
        for out_dim, subscript in zip(out_dims, reference.subscripts)
    ]
    return IntegerMap.from_constraints(iter_dims, out_dims, constraints)
