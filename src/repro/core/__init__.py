"""Core analyses and the compiler driver (the paper's contribution)."""

from .commsets import CommEvent, CommSets, EventRef, compute_comm_sets
from .context import LoopInfo, Reference, StmtContext, collect_contexts
from .cp import CPInfo, recognize_reduction, resolve_cp
from .depend import carried_into, dependence_level
from .driver import CompiledProgram, compile_program
from .events import PlacedEvent, build_events, is_potentially_nonlocal
from .inplace import InPlaceResult, analyze_contiguity, evaluate_at_runtime
from .loopsplit import SplitSets, compute_split_sets
from .options import CompilerOptions
from .phases import PhaseTimer
from .vp import ActiveVPSets, busy_vp_set, compute_active_vp_sets

__all__ = [
    "ActiveVPSets",
    "CommEvent",
    "CommSets",
    "CompiledProgram",
    "CompilerOptions",
    "CPInfo",
    "EventRef",
    "InPlaceResult",
    "LoopInfo",
    "PhaseTimer",
    "PlacedEvent",
    "Reference",
    "SplitSets",
    "StmtContext",
    "analyze_contiguity",
    "build_events",
    "busy_vp_set",
    "carried_into",
    "collect_contexts",
    "compile_program",
    "compute_active_vp_sets",
    "compute_comm_sets",
    "compute_split_sets",
    "dependence_level",
    "evaluate_at_runtime",
    "is_potentially_nonlocal",
    "recognize_reduction",
    "resolve_cp",
]
