"""Compiler option flags (optimization toggles for the ablation studies)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass
class CompilerOptions:
    """Optimization switches of the dHPF reproduction.

    Every flag corresponds to an optimization the paper describes; the
    ablation benchmarks flip them individually.
    """

    #: message coalescing (§3.2): merge same-array, same-placement refs.
    coalesce: bool = True
    #: in-place communication recognition (§3.3).
    inplace: bool = True
    #: non-local index-set splitting (§3.4 / Figure 4).
    loop_split: bool = False
    #: restrict VP loops to active virtual processors (§4.1 / Figure 5).
    active_vp: bool = True
    #: guard-lifting depth for MMCodeGen (§5).
    lift_guards: int = 1
    #: buffer handling: 'overlap' unpacks into array storage (copy cost);
    #: 'direct' references received data in place (check cost unless the
    #: loop is split).
    buffer_mode: str = "overlap"
    #: communication data plane: 'sections' lowers each comm-set conjunct
    #: to a strided section descriptor and moves payloads with vectorized
    #: numpy slice pack/scatter (zero-copy shm views on the mp backend);
    #: 'elements' is the legacy per-element index/value-list plane, kept
    #: for A/B benchmarking.
    dataplane: str = "sections"
    #: compute plane: 'kernels' lowers qualifying innermost affine loop
    #: pieces to numpy strided-slice statements (recognized reductions
    #: become ``np.max``/``np.min``/``np.sum`` partials feeding the
    #: existing allreduce); statements that fail qualification fall back
    #: per-statement to the interpreted scalar loop.  'scalar' keeps every
    #: statement in the per-point loop (A/B oracle).
    compute: str = "kernels"
    #: 'on' memoizes the pure set operations and enables the persistent
    #: compile cache; 'off' bypasses every cache layer (uncached A/B path,
    #: required to emit byte-identical programs).
    caching: str = "on"
    #: directory of the persistent compile cache; ``None`` disables
    #: persistence (the CLI defaults this from ``$REPRO_CACHE_DIR``).
    #: Not part of the artifact fingerprint.
    cache_dir: Optional[str] = None
    #: attach a per-compile integer-set operation profiler: op counters,
    #: time and size histograms for intersect/subtract/then/project_out/
    #: normalize/redundancy/emptiness, surfaced through ``PhaseTimer``
    #: (``set_stats``) and the ``--profile-sets`` CLI flag.  Observability
    #: only — never changes compile results; not part of the fingerprint.
    profile_sets: bool = False

    def with_(self, **changes) -> "CompilerOptions":
        return replace(self, **changes)
