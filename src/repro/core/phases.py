"""Compile-phase timing (the instrumentation behind our Table 1).

The paper profiles dHPF with Quantify and reports per-phase percentages of
total compilation time (its Table 1).  We record wall-clock time per named
phase with a context manager; phases may nest (``comm/contiguity``), and the
report computes each phase's share of the total, like the paper's table.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple


@dataclass
class PhaseTimer:
    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    _stack: List[str] = field(default_factory=list)
    wall_start: float = field(default_factory=time.perf_counter)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        qualified = "/".join(self._stack + [name])
        self._stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[qualified] = self.totals.get(qualified, 0.0) + elapsed
            self.counts[qualified] = self.counts.get(qualified, 0) + 1
            self._stack.pop()

    def total_time(self) -> float:
        return time.perf_counter() - self.wall_start

    def report(self) -> List[Tuple[str, float, float]]:
        """(phase, seconds, percent-of-total) rows, hierarchical order."""
        total = self.total_time()
        rows = []
        for name in sorted(self.totals):
            seconds = self.totals[name]
            rows.append((name, seconds, 100.0 * seconds / max(total, 1e-12)))
        return rows

    def get(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def format_table(self, title: str = "") -> str:
        lines = []
        if title:
            lines.append(title)
        lines.append(f"{'phase':40s} {'seconds':>10s} {'% total':>8s}")
        for name, seconds, percent in self.report():
            indent = "  " * name.count("/")
            label = indent + name.split("/")[-1]
            lines.append(f"{label:40s} {seconds:10.3f} {percent:8.1f}")
        lines.append(
            f"{'total wall-clock':40s} {self.total_time():10.3f} {100.0:8.1f}"
        )
        return "\n".join(lines)
