"""Compile-phase timing (the instrumentation behind our Table 1).

The paper profiles dHPF with Quantify and reports per-phase percentages of
total compilation time (its Table 1).  We record wall-clock time per named
phase with a context manager; phases may nest (``comm/contiguity``), and the
report computes each phase's share of the total, like the paper's table.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple


@dataclass
class PhaseTimer:
    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    _stack: List[str] = field(default_factory=list)
    wall_start: float = field(default_factory=time.perf_counter)
    #: per-compile memoization counters ``{cache: {hits, misses,
    #: evictions}}``, filled by the driver from the cache-manager delta so
    #: Table 1 runs report per-cache hit rates next to the phase times.
    cache_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: total wall-clock frozen at compile end; kept meaningful when the
    #: timer travels through the persistent compile cache into another
    #: process (where ``wall_start`` would be from a different clock).
    wall_total: float = 0.0
    #: integer-set operation profile for this compile (a
    #: :meth:`repro.isets.profile.SetOpProfiler.snapshot` dict), filled by
    #: the driver when ``CompilerOptions.profile_sets`` is on; empty
    #: otherwise.
    set_stats: Dict = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        qualified = "/".join(self._stack + [name])
        self._stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[qualified] = self.totals.get(qualified, 0.0) + elapsed
            self.counts[qualified] = self.counts.get(qualified, 0) + 1
            self._stack.pop()

    def total_time(self) -> float:
        if self.wall_total:
            return self.wall_total
        return time.perf_counter() - self.wall_start

    def freeze(self) -> None:
        """Pin :meth:`total_time` to the elapsed wall-clock so far."""
        self.wall_total = time.perf_counter() - self.wall_start

    def report(self) -> List[Tuple[str, float, float]]:
        """(phase, seconds, percent-of-total) rows, hierarchical order."""
        total = self.total_time()
        rows = []
        for name in sorted(self.totals):
            seconds = self.totals[name]
            rows.append((name, seconds, 100.0 * seconds / max(total, 1e-12)))
        return rows

    def get(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def format_table(self, title: str = "") -> str:
        lines = []
        if title:
            lines.append(title)
        lines.append(f"{'phase':40s} {'seconds':>10s} {'% total':>8s}")
        for name, seconds, percent in self.report():
            indent = "  " * name.count("/")
            label = indent + name.split("/")[-1]
            lines.append(f"{label:40s} {seconds:10.3f} {percent:8.1f}")
        lines.append(
            f"{'total wall-clock':40s} {self.total_time():10.3f} {100.0:8.1f}"
        )
        lines.extend(self.format_cache_stats())
        lines.extend(self.format_set_stats())
        return "\n".join(lines)

    def format_set_stats(self) -> List[str]:
        """Set-engine profile rows (empty unless compiled with
        ``profile_sets=True``)."""
        if not self.set_stats:
            return []
        from ..isets.profile import SetOpProfiler

        profiler = SetOpProfiler()
        profiler.merge_snapshot(self.set_stats)
        return ["", profiler.format_table("set-engine profile")]

    def format_cache_stats(self) -> List[str]:
        """Per-cache hit-rate rows for this compile (empty if uncached)."""
        if not self.cache_stats:
            return []
        lines = [
            "",
            f"{'cache':28s} {'hits':>10s} {'misses':>10s} "
            f"{'hit %':>7s} {'evicted':>8s}",
        ]
        for name in sorted(self.cache_stats):
            entry = self.cache_stats[name]
            hits = entry.get("hits", 0)
            misses = entry.get("misses", 0)
            lookups = hits + misses
            rate = 100.0 * hits / lookups if lookups else 0.0
            lines.append(
                f"{name:28s} {hits:10d} {misses:10d} {rate:7.1f} "
                f"{entry.get('evictions', 0):8d}"
            )
        return lines
