"""The communication-set equations of paper Figure 3.

Given a *logical communication event* — a set of coalesced references to a
common array, a placement level ``v`` (the communication has been vectorized
out of all loops deeper than ``v``), and the CP map of each reference's
statement — these equations produce ``SendCommMap(m)`` and
``RecvCommMap(m)``: what the executing processor must send to / receive
from every partner ``p``.

The equation numbering in comments matches Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isets import (
    Constraint,
    IntegerMap,
    IntegerSet,
    LinExpr,
)
from ..hpf.layout import Layout
from .context import Reference, StmtContext
from .cp import CPInfo
from .refmap import reference_map


@dataclass
class EventRef:
    """One reference participating in a communication event."""

    cp: CPInfo
    reference: Reference

    @property
    def is_write(self) -> bool:
        return self.reference.is_write


@dataclass
class CommEvent:
    """A logical communication event (vectorized + coalesced messages)."""

    array: str
    layout: Layout
    level: int  # number of outer loops the comm stays inside
    refs: List[EventRef]
    #: names of the outer loop index symbols J1..Jv the sets stay
    #: parameterized by (current iteration of non-vectorized loops).
    outer_symbols: Tuple[str, ...] = ()

    @property
    def reads(self) -> List[EventRef]:
        return [r for r in self.refs if not r.is_write]

    @property
    def writes(self) -> List[EventRef]:
        return [r for r in self.refs if r.is_write]


@dataclass
class CommSets:
    """Results of the Figure 3 equations for one event."""

    event: CommEvent
    data_accessed: Dict[str, IntegerMap]       # t -> {[p] -> [a]}
    nl_data_set: Dict[str, IntegerSet]         # t -> non-local data of m
    nl_comm_map: Dict[str, IntegerMap]         # t -> {[p] -> [a]} (eq 4)
    local_comm_map: Dict[str, IntegerMap]      # t -> {[p] -> [a]} (eq 5)
    send_comm_map: IntegerMap                  # eq 6
    recv_comm_map: IntegerMap                  # eq 7

    def has_communication(self) -> bool:
        return not (
            self.send_comm_map.is_empty() and self.recv_comm_map.is_empty()
        )


def _restricted_cp_map(
    event_ref: EventRef, level: int, outer_symbols: Sequence[str]
) -> IntegerMap:
    """Equation (1): fix the first ``level`` loop indices to symbols J*."""
    cp_map = event_ref.cp.cp_map
    iter_dims = cp_map.out_dims
    constraints = [
        Constraint.eq(LinExpr.var(dim), LinExpr.var(symbol))
        for dim, symbol in zip(iter_dims[:level], outer_symbols[:level])
    ]
    return cp_map.constrain(constraints)


def compute_comm_sets(event: CommEvent) -> CommSets:
    """Run equations (1)-(7) of Figure 3 for the event."""
    layout = event.layout
    my_binding = dict(zip(layout.proc_dims, layout.grid.my_names))

    # (2) DataAccessed_t = ∪_r CPMap_r^v ∘ RefMap_r
    data_accessed: Dict[str, Optional[IntegerMap]] = {
        "read": None, "write": None
    }
    for event_ref in event.refs:
        kind = "write" if event_ref.is_write else "read"
        cp_v = _restricted_cp_map(event_ref, event.level, event.outer_symbols)
        ref_map = reference_map(
            event_ref.cp.context, event_ref.reference, layout
        )
        accessed = cp_v.then(ref_map)
        current = data_accessed[kind]
        data_accessed[kind] = (
            accessed if current is None else current.union(accessed)
        )

    local_data = layout.local_set()  # Layout_A({m})
    nl_data_set: Dict[str, IntegerSet] = {}
    nl_comm_map: Dict[str, IntegerMap] = {}
    local_comm_map: Dict[str, IntegerMap] = {}
    for kind in ("read", "write"):
        accessed = data_accessed[kind]
        if accessed is None:
            empty_map = IntegerMap.empty(layout.proc_dims, layout.data_dims)
            nl_data_set[kind] = IntegerSet.empty(layout.data_dims)
            nl_comm_map[kind] = empty_map
            local_comm_map[kind] = empty_map
            continue
        accessed = accessed.simplify()
        # (3) nlDataSet_t(m): off-processor data accessed by m.
        accessed_by_me = accessed.fix_input(my_binding).range().simplify()
        if kind == "read":
            nl_mine = accessed_by_me.subtract(local_data)
        else:
            # Writes: data owned by one or more *other* processors (for
            # replicated layouts this catches copies m must update even
            # when m also owns one; the two cases coincide otherwise —
            # paper Figure 3, footnote 2).
            owned_elsewhere = (
                layout.map.restrict_domain(_not_me_set(layout))
                .range()
                .simplify()
            )
            nl_mine = accessed_by_me.intersect(owned_elsewhere)
        nl_mine = nl_mine.simplify()
        nl_data_set[kind] = nl_mine
        # (4) NLCommMap_t(m) = Layout ∩_range nlDataSet_t(m)
        nl_comm_map[kind] = layout.map.restrict_range(nl_mine).simplify()
        # (5) LocalCommMap_t(m) = DataAccessed_t ∩_range Layout({m})
        local_comm_map[kind] = accessed.restrict_range(
            local_data
        ).simplify()

    # (6) SendCommMap(m) = LocalCommMap_read(m) ∪ NLCommMap_write(m)
    send = local_comm_map["read"].union(nl_comm_map["write"]).simplify()
    # (7) RecvCommMap(m) = NLCommMap_read(m) ∪ LocalCommMap_write(m)
    recv = nl_comm_map["read"].union(local_comm_map["write"]).simplify()

    # A processor never communicates with itself: drop p == m pairs.
    send = _exclude_self(send, layout)
    recv = _exclude_self(recv, layout)

    return CommSets(
        event=event,
        data_accessed={
            k: v if v is not None
            else IntegerMap.empty(layout.proc_dims, layout.data_dims)
            for k, v in data_accessed.items()
        },
        nl_data_set=nl_data_set,
        nl_comm_map=nl_comm_map,
        local_comm_map=local_comm_map,
        send_comm_map=send,
        recv_comm_map=recv,
    )


def _not_me_set(layout: Layout) -> IntegerSet:
    """Processor tuples different from the executing processor."""
    diagonal = IntegerSet.from_constraints(
        layout.proc_dims,
        [
            Constraint.eq(LinExpr.var(dim), LinExpr.var(symbol))
            for dim, symbol in zip(layout.proc_dims, layout.grid.my_names)
        ],
    )
    return IntegerSet.universe(layout.proc_dims).subtract(diagonal)


def _exclude_self(comm_map: IntegerMap, layout: Layout) -> IntegerMap:
    """Remove pairs where the partner is the executing processor itself.

    Exact when expressible (difference of the diagonal); the SPMD code also
    guards dynamically, which covers replicated layouts.
    """
    diagonal = IntegerSet.from_constraints(
        comm_map.in_dims,
        [
            Constraint.eq(LinExpr.var(dim), LinExpr.var(symbol))
            for dim, symbol in zip(
                comm_map.in_dims, layout.grid.my_names
            )
        ],
    )
    not_self = IntegerSet.universe(comm_map.in_dims).subtract(diagonal)
    return comm_map.restrict_domain(not_self).simplify()
