"""Statement contexts: loop nests, iteration sets, reference collection.

For every assignment the compiler records its enclosing DO loops
(outer-to-inner), the iteration-space set ``loop_k`` of paper Figure 1
(loop bounds, constant steps as strides, and any enclosing affine IF
conditions), and the read/write array references with affine subscripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isets import (
    Constraint,
    IntegerSet,
    LinExpr,
    stride_constraint,
)
from ..lang.affine import to_affine
from ..lang.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Do,
    Expr,
    If,
    Name,
    Procedure,
    Program,
    Stmt,
    expr_array_refs,
)
from ..lang.errors import NonAffineSubscriptError, SemanticError


@dataclass
class LoopInfo:
    """One enclosing DO loop (affine bounds, constant step)."""

    var: str
    lower: LinExpr
    upper: LinExpr
    step: int
    node: Do


@dataclass
class Reference:
    """An array reference with affine subscripts, plus its access kind."""

    ref: ArrayRef
    is_write: bool
    subscripts: Tuple[LinExpr, ...]

    @property
    def array(self) -> str:
        return self.ref.array


@dataclass
class StmtContext:
    """An assignment with its loop context and references."""

    stmt: Assign
    loops: List[LoopInfo]
    guards: List[Constraint]  # affine IF conditions enclosing the stmt
    procedure: str
    order: int = 0  # textual position within the procedure

    @property
    def iter_dims(self) -> Tuple[str, ...]:
        return tuple(info.var for info in self.loops)

    def iteration_set(self) -> IntegerSet:
        """``loop_k``: bounds, strides, and affine guard constraints."""
        constraints: List[Constraint] = []
        wildcards: List[str] = []
        for info in self.loops:
            index = LinExpr.var(info.var)
            constraints.append(Constraint.geq(index, info.lower))
            constraints.append(Constraint.leq(index, info.upper))
            if info.step != 1:
                stride, witness = stride_constraint(
                    index, info.step, info.lower
                )
                constraints.append(stride)
                wildcards.append(witness)
        constraints.extend(self.guards)
        return IntegerSet.from_constraints(
            self.iter_dims, constraints, wildcards
        )

    def write_ref(self) -> Optional[Reference]:
        for ref in self.references():
            if ref.is_write:
                return ref
        return None

    def references(self) -> List[Reference]:
        refs: List[Reference] = []
        if isinstance(self.stmt.lhs, ArrayRef):
            refs.append(_make_reference(self.stmt.lhs, True))
        for node in expr_array_refs(self.stmt.rhs):
            refs.append(_make_reference(node, False))
        # Subscripts inside the LHS subscripts are reads too.
        if isinstance(self.stmt.lhs, ArrayRef):
            for sub in self.stmt.lhs.subscripts:
                for node in expr_array_refs(sub):
                    refs.append(_make_reference(node, False))
        return refs

    def depth(self) -> int:
        return len(self.loops)


def _make_reference(node: ArrayRef, is_write: bool) -> Reference:
    subscripts = tuple(to_affine(sub) for sub in node.subscripts)
    return Reference(node, is_write, subscripts)


def _affine_condition(cond: Expr) -> Optional[List[Constraint]]:
    """Affine constraints for an IF condition, or None if data-dependent."""
    if not isinstance(cond, BinOp):
        return None
    try:
        left = to_affine(cond.left)
        right = to_affine(cond.right)
    except Exception:
        return None
    if cond.op == "<":
        return [Constraint.lt(left, right)]
    if cond.op == "<=":
        return [Constraint.leq(left, right)]
    if cond.op == ">":
        return [Constraint.gt(left, right)]
    if cond.op == ">=":
        return [Constraint.geq(left, right)]
    if cond.op == "==":
        return [Constraint.eq(left, right)]
    return None


def collect_contexts(
    program: Program, procedure: Procedure
) -> List[StmtContext]:
    """All assignment contexts of a procedure, in program order.

    ``call`` statements are inlined (the paper's SP study predates full
    interprocedural CP; dHPF inlines or propagates — we inline, which
    preserves the analysis semantics for our benchmark programs).
    """
    contexts: List[StmtContext] = []
    _collect(
        program, procedure.name, procedure.body, [], [], contexts, set()
    )
    for index, context in enumerate(contexts):
        context.order = index
    return contexts


def _collect(
    program: Program,
    proc_name: str,
    body: Sequence[Stmt],
    loops: List[LoopInfo],
    guards: List[Constraint],
    out: List[StmtContext],
    call_stack: set,
) -> None:
    from ..lang.ast import CallStmt

    for stmt in body:
        if isinstance(stmt, Assign):
            out.append(
                StmtContext(stmt, list(loops), list(guards), proc_name)
            )
        elif isinstance(stmt, Do):
            try:
                lower = to_affine(stmt.lower)
                upper = to_affine(stmt.upper)
                step_expr = to_affine(stmt.step)
            except NonAffineSubscriptError as exc:
                raise SemanticError(
                    f"loop {stmt.var}: non-affine bounds ({exc})"
                ) from exc
            if not step_expr.is_constant():
                raise SemanticError(
                    f"loop {stmt.var}: symbolic stride is outside the "
                    f"framework (paper §4); use a runtime technique"
                )
            info = LoopInfo(
                stmt.var, lower, upper, step_expr.constant, stmt
            )
            _collect(
                program, proc_name, stmt.body, loops + [info], guards,
                out, call_stack,
            )
        elif isinstance(stmt, If):
            condition = _affine_condition(stmt.cond)
            if condition is not None:
                _collect(
                    program, proc_name, stmt.then_body, loops,
                    guards + condition, out, call_stack,
                )
                negated: List[Constraint] = []
                if len(condition) == 1 and not condition[0].is_equality:
                    negated = list(condition[0].negated())
                _collect(
                    program, proc_name, stmt.else_body, loops,
                    guards + negated, out, call_stack,
                )
            else:
                _collect(
                    program, proc_name, stmt.then_body, loops, guards,
                    out, call_stack,
                )
                _collect(
                    program, proc_name, stmt.else_body, loops, guards,
                    out, call_stack,
                )
        elif isinstance(stmt, CallStmt):
            if stmt.name in call_stack:
                raise SemanticError(f"recursive call to {stmt.name!r}")
            callee = program.procedure(stmt.name)
            _collect(
                program, proc_name, callee.body, loops, guards, out,
                call_stack | {stmt.name},
            )
