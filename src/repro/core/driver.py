"""The compiler driver: source text in, SPMD node program out.

Pipeline (with per-phase instrumentation feeding the Table 1 benchmark):

1. parse and build the data-mapping model;
2. per procedure: collect statement contexts, resolve CPs (§3.1);
3. identify/vectorize/coalesce communication into events (§3.2);
4. run the Figure 3 equations per event, the Figure 5 active-VP equations
   for cyclic VP layouts, and the §3.3 contiguity analysis;
5. loop splitting sets (Figure 4) when enabled;
6. emit the SPMD node program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..isets import Conjunct, IntegerSet, Space
from ..hpf.layout import DataMapping
from ..lang.ast import Program
from ..lang.parser import parse_program
from ..codegen.spmd import (
    AnalyzedEvent,
    CompiledModule,
    ProcedureAnalysis,
    SpmdEmitter,
)
from .commsets import compute_comm_sets
from .context import collect_contexts
from .cp import CPInfo, resolve_cp
from .events import build_events
from .inplace import analyze_contiguity_per_message
from .loopsplit import compute_split_sets
from .options import CompilerOptions
from .phases import PhaseTimer
from .vp import compute_active_vp_sets


@dataclass
class CompiledProgram:
    """Everything produced by one compilation."""

    program: Program
    mapping: DataMapping
    options: CompilerOptions
    module: CompiledModule
    analyses: Dict[str, ProcedureAnalysis]
    phases: PhaseTimer
    #: True when this artifact was loaded from the persistent compile
    #: cache instead of being compiled (set after load, never stored).
    cache_hit: bool = False

    @property
    def source(self) -> str:
        return self.module.source

    def run(
        self,
        params: Optional[Dict[str, int]] = None,
        nprocs: int = 4,
        backend: Optional[str] = None,
        **kwargs,
    ):
        """Execute this program on an execution backend (see
        :func:`repro.runtime.harness.run_compiled`); ``backend`` may be
        ``'threads'`` (default), ``'mp'``, or ``'inproc-seq'``."""
        from ..runtime.harness import run_compiled

        return run_compiled(
            self, params=params or {}, nprocs=nprocs, backend=backend,
            **kwargs,
        )

    def listing(self) -> str:
        """Human-readable compilation report.

        Mirrors the kind of per-event diagnostics dHPF prints: for every
        statement its CP, and for every communication event its placement,
        references, send/receive maps, in-place verdicts, and (for cyclic
        layouts) the active-VP sets.
        """
        lines = [f"program {self.program.name}"]
        for name, analysis in self.analyses.items():
            lines.append(f"procedure {name}:")
            for stmt_id, cp in sorted(analysis.cps.items()):
                kind = (
                    "replicated" if cp.replicated
                    else " union ".join(
                        f"ON_HOME {t.ref}" for t in cp.terms
                    )
                )
                extra = (
                    f"  [reduction {cp.reduction}]" if cp.reduction else ""
                )
                lines.append(
                    f"  s{stmt_id}: {cp.context.stmt}"
                )
                lines.append(f"      CP = {kind}{extra}")
            for event in analysis.events:
                placed = event.placed
                lines.append(
                    f"  event {event.tag}: array {placed.event.array!r}, "
                    f"{placed.when} anchor, inside {placed.level} loop(s), "
                    f"{len(placed.event.refs)} reference(s)"
                )
                lines.append(f"      send = {event.sets.send_comm_map}")
                lines.append(f"      recv = {event.sets.recv_comm_map}")
                if event.inplace_send is not None:
                    lines.append(
                        f"      in-place: send {event.inplace_send.answer.value}, "
                        f"recv {event.inplace_recv.answer.value}"
                    )
                if event.active_vp is not None:
                    lines.append(
                        f"      activeSendVPSet = "
                        f"{event.active_vp.active_send_vp}"
                    )
                    lines.append(
                        f"      activeRecvVPSet = "
                        f"{event.active_vp.active_recv_vp}"
                    )
        return "\n".join(lines)


def compile_program(
    source: Union[str, Program],
    options: Optional[CompilerOptions] = None,
) -> CompiledProgram:
    """Compile mini-HPF source (or an AST) to an SPMD node program.

    Caching behaviour (see :mod:`repro.cache`): with
    ``options.caching == "off"`` every memoization layer is bypassed —
    the emitted program is required to be byte-identical either way.
    With ``options.cache_dir`` set and string source, the persistent
    compile cache is consulted first and populated on a miss.
    """
    from ..cache.manager import caches

    options = options or CompilerOptions()
    if options.caching not in ("on", "off"):
        raise ValueError(
            f"CompilerOptions.caching must be 'on' or 'off', "
            f"got {options.caching!r}"
        )
    if options.compute not in ("kernels", "scalar"):
        raise ValueError(
            f"CompilerOptions.compute must be 'kernels' or 'scalar', "
            f"got {options.compute!r}"
        )
    if options.caching == "off":
        with caches.disabled():
            return _compile_program_impl(source, options)

    if options.cache_dir and isinstance(source, str):
        from ..cache.persist import CompileCache, compute_fingerprint

        cache = CompileCache(options.cache_dir)
        fingerprint = compute_fingerprint(source, options)
        loaded = cache.load(fingerprint)
        if loaded is not None:
            loaded.cache_hit = True
            return loaded
        compiled = _compile_program_impl(source, options)
        cache.store(fingerprint, compiled)
        return compiled

    return _compile_program_impl(source, options)


def _compile_program_impl(
    source: Union[str, Program],
    options: CompilerOptions,
) -> CompiledProgram:
    if options.profile_sets:
        from ..isets.profile import SetOpProfiler, active_profiler, profiled

        profiler = SetOpProfiler()
        with profiled(profiler):
            compiled = _compile_unprofiled(source, options)
        snapshot = profiler.snapshot()
        compiled.phases.set_stats = snapshot
        outer = active_profiler()
        if outer is not None:
            # Nested under an aggregating profiler (service /stats, bench
            # harnesses): contribute this compile's counters upward too.
            outer.merge_snapshot(snapshot)
        return compiled
    return _compile_unprofiled(source, options)


def _compile_unprofiled(
    source: Union[str, Program],
    options: CompilerOptions,
) -> CompiledProgram:
    from ..cache.manager import caches

    counters_before = caches.counters()
    phases = PhaseTimer()

    with phases.phase("parse"):
        program = (
            parse_program(source) if isinstance(source, str) else source
        )
    with phases.phase("data_mapping"):
        mapping = DataMapping(program)

    analyses: Dict[str, ProcedureAnalysis] = {}
    for procedure in program.procedures:
        with phases.phase("partitioning"):
            contexts = collect_contexts(program, procedure)
            cps = [resolve_cp(mapping, ctx) for ctx in contexts]
            cp_by_stmt = {cp.context.stmt.stmt_id: cp for cp in cps}
        with phases.phase("comm_placement"):
            placed = build_events(mapping, cps, coalesce=options.coalesce)
        analyzed_events: List[AnalyzedEvent] = []
        for index, placed_event in enumerate(placed):
            with phases.phase("communication_generation"):
                sets = compute_comm_sets(placed_event.event)
            if not sets.has_communication():
                continue
            active = None
            if any(
                o is not None and o.needs_vp_loops
                for o in placed_event.event.layout.ownerships
            ):
                with phases.phase("active_vp"):
                    active = compute_active_vp_sets(placed_event.event)
            inplace_send = inplace_recv = None
            if options.inplace:
                with phases.phase("check_contiguous"):
                    from ..isets import IntegerSet as _ISet, Space as _Sp

                    layout = placed_event.event.layout
                    bounds = layout.map.range().simplify()
                    # Per-partner message pieces: keep partner coordinates
                    # symbolic (one conjunct per message), but existentially
                    # project the current-outer-iteration symbols — they are
                    # bound per loop trip, not free parameters.  (For
                    # iteration-dependent sets this unions over trips; the
                    # in-place decision is then conservative cost
                    # accounting, see DESIGN.md.)
                    outer_syms = list(placed_event.event.outer_symbols)
                    send_data = _strip_outer(
                        _ISet(
                            _Sp(sets.send_comm_map.out_dims),
                            sets.send_comm_map.conjuncts,
                        ),
                        outer_syms,
                    )
                    recv_data = _strip_outer(
                        _ISet(
                            _Sp(sets.recv_comm_map.out_dims),
                            sets.recv_comm_map.conjuncts,
                        ),
                        outer_syms,
                    )
                    inplace_send = analyze_contiguity_per_message(
                        send_data, bounds
                    )
                    inplace_recv = analyze_contiguity_per_message(
                        recv_data, bounds
                    )
            analyzed = AnalyzedEvent(
                placed_event,
                sets,
                active,
                inplace_send,
                inplace_recv,
                tag=f"{procedure.name}_ev{index}",
            )
            with phases.phase("comm_outer_iters"):
                analyzed.outer_iters = _event_outer_iters(analyzed)
            analyzed_events.append(analyzed)
        splits = {}
        if options.loop_split:
            with phases.phase("loop_splitting"):
                splits = _compute_splits(
                    mapping, cps, analyzed_events
                )
        analyses[procedure.name] = ProcedureAnalysis(
            procedure.name, cp_by_stmt, analyzed_events, splits
        )

    with phases.phase("codegen"):
        emitter = SpmdEmitter(program, mapping, analyses, options)
        module = emitter.emit_module()
    phases.cache_stats = caches.delta(counters_before)
    phases.freeze()
    return CompiledProgram(
        program, mapping, options, module, analyses, phases
    )


def _strip_outer(subset: IntegerSet, symbols) -> IntegerSet:
    """Existentially eliminate outer-iteration symbols from a data set."""
    from ..isets.omega import project_out

    conjuncts = []
    for conjunct in subset.conjuncts:
        present = [s for s in symbols if conjunct.uses(s)]
        if present:
            conjuncts.extend(project_out(conjunct, present))
        else:
            conjuncts.append(conjunct)
    return IntegerSet(subset.space, conjuncts).simplify()


def _event_outer_iters(analyzed: AnalyzedEvent) -> Optional[IntegerSet]:
    """Iterations of the event's outer loops where myid participates.

    The communication sets are parameterized by the ``<var>_cur`` symbols of
    the loops the event stays inside; projecting everything else away gives
    the set of outer iterations in which this processor sends or receives —
    used to widen partitioned loop bounds so owners keep iterating to feed
    their consumers.
    """
    event = analyzed.placed.event
    outer_syms = event.outer_symbols
    if not outer_syms:
        return None
    variables = [s[: -len("_cur")] for s in outer_syms]
    renaming = dict(zip(outer_syms, variables))
    conjuncts: List[Conjunct] = []
    for comm_map in (analyzed.sets.send_comm_map, analyzed.sets.recv_comm_map):
        hidden = list(comm_map.in_dims) + list(comm_map.out_dims)
        for conjunct in comm_map.conjuncts:
            renamed = conjunct.rename_wildcards_apart().rename(renaming)
            conjuncts.append(renamed.with_wildcards(hidden))
    return IntegerSet(Space(variables), conjuncts).simplify()


def _compute_splits(mapping, cps, analyzed_events):
    """Figure 4(a) sets for statements participating in 'before' events."""
    splits = {}
    for analyzed in analyzed_events:
        if analyzed.placed.when != "before":
            continue
        for event_ref in analyzed.placed.event.refs:
            cp = event_ref.cp
            stmt_id = cp.context.stmt.stmt_id
            if stmt_id in splits:
                continue
            refs = [
                r
                for r in cp.context.references()
                if r.array in mapping.layouts
                and not mapping.layout(r.array).is_fully_replicated()
            ]
            splits[stmt_id] = compute_split_sets(cp, refs, mapping.layouts)
    return splits
