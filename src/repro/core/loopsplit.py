"""Loop splitting / non-local index-set splitting (paper Figure 4).

Splits the executing processor's iterations of a loop nest into four
sections —

* ``localIters``: iterations touching only local data,
* ``nlROIters``: iterations that read (but don't write) non-local data,
* ``nlWOIters``: write-only-non-local iterations,
* ``nlRWIters``: both —

enabling (a) communication/computation overlap by the Figure 4(b) schedule
and (b) elimination of buffer-access checks in the local section.  The
formulation follows the paper exactly, including the complexity-control
refinement of Section 5: the *intersection* of per-reference local
iteration sets is computed first, and the non-local sets are derived from
it (rather than unioning per-reference non-local sets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isets import IntegerSet
from ..hpf.layout import Layout
from .context import Reference, StmtContext
from .cp import CPInfo
from .refmap import reference_map


@dataclass
class SplitSets:
    """The four iteration sections of Figure 4(a) for a statement group."""

    cp_iter_set: IntegerSet
    local_iters: IntegerSet
    nl_ro_iters: IntegerSet
    nl_wo_iters: IntegerSet
    nl_rw_iters: IntegerSet
    #: per-reference local iteration sets, used to prove a reference needs
    #: no buffer-access checks inside a non-local section.
    local_iters_by_ref: List[Tuple[Reference, IntegerSet]] = field(
        default_factory=list
    )

    def is_worthwhile(self) -> bool:
        """Splitting is a no-op when no iteration touches non-local data."""
        return not (
            self.nl_ro_iters.is_empty()
            and self.nl_wo_iters.is_empty()
            and self.nl_rw_iters.is_empty()
        )

    def sections(self) -> List[Tuple[str, IntegerSet]]:
        return [
            ("local", self.local_iters),
            ("nl_ro", self.nl_ro_iters),
            ("nl_wo", self.nl_wo_iters),
            ("nl_rw", self.nl_rw_iters),
        ]


def compute_split_sets(
    cp: CPInfo,
    references: Sequence[Reference],
    layouts: Dict[str, Layout],
) -> SplitSets:
    """Figure 4(a) for one statement group.

    ``references`` are the potentially non-local references of the group;
    references to fully replicated arrays never contribute non-local reads.
    """
    cp_iter_set = cp.local_iterations
    context = cp.context

    local_read: Optional[IntegerSet] = None
    local_write: Optional[IntegerSet] = None
    by_ref: List[Tuple[Reference, IntegerSet]] = []
    for reference in references:
        layout = layouts[reference.array]
        ref_map = reference_map(context, reference, layout)
        data_accessed = ref_map.apply(cp_iter_set)
        local_data = layout.local_set()
        if reference.is_write:
            # writes are local where the data is not owned elsewhere too;
            # for non-replicated layouts this is ownership by m.
            local_accessed = data_accessed.intersect(local_data)
        else:
            local_accessed = data_accessed.intersect(local_data)
        local_iters_r = (
            ref_map.preimage(local_accessed)
            .intersect(cp_iter_set)
            .simplify()
        )
        # Iterations not touching the array at all are trivially local for
        # this reference: ref_map is total here (affine subscripts), so
        # preimage covers everything relevant.
        by_ref.append((reference, local_iters_r))
        if reference.is_write:
            local_write = (
                local_iters_r
                if local_write is None
                else local_write.intersect(local_iters_r)
            )
        else:
            local_read = (
                local_iters_r
                if local_read is None
                else local_read.intersect(local_iters_r)
            )

    if local_read is None:
        local_read = cp_iter_set
    if local_write is None:
        local_write = cp_iter_set

    nl_read_iters = cp_iter_set.subtract(local_read).simplify()
    nl_write_iters = cp_iter_set.subtract(local_write).simplify()
    local_iters = (
        cp_iter_set.intersect(local_read).intersect(local_write).simplify()
    )
    nl_rw = nl_read_iters.intersect(nl_write_iters).simplify()
    nl_ro = nl_read_iters.subtract(nl_write_iters).simplify()
    nl_wo = nl_write_iters.subtract(nl_read_iters).simplify()
    return SplitSets(
        cp_iter_set=cp_iter_set,
        local_iters=local_iters,
        nl_ro_iters=nl_ro,
        nl_wo_iters=nl_wo,
        nl_rw_iters=nl_rw,
        local_iters_by_ref=by_ref,
    )


def reference_needs_checks(
    split: SplitSets, reference: Reference, section: IntegerSet
) -> bool:
    """Does ``reference`` need buffer-access checks inside ``section``?

    Per the paper: no checks are needed if the section is contained in the
    reference's local iterations (always-local) or disjoint from them
    (always-buffered); a check remains only when the section mixes both.
    """
    def _same(a: Reference, b: Reference) -> bool:
        return (
            a.array == b.array
            and a.is_write == b.is_write
            and a.subscripts == b.subscripts
        )

    for candidate, local_iters in split.local_iters_by_ref:
        if _same(candidate, reference):
            if section.is_subset(local_iters):
                return False
            if section.intersect(local_iters).is_empty():
                return False
            return True
    return False


# Schedule of Figure 4(b): section execution order interleaved with the
# communication actions for overlap.  ``nl_rw_empty`` selects the variant
# where write latency can also be overlapped.
OVERLAP_SCHEDULE = (
    "send_reads",        # SEND data for non-local reads
    "exec_nl_wo",        # execute NLWOIters
    "send_writes_early",  # SEND non-local writes (only when NLRW empty)
    "exec_local",        # execute LocalIters
    "recv_reads",        # RECV data for non-local reads
    "exec_nl_ro_rw",     # execute NLROIters ∪ NLRWIters
    "send_writes",       # SEND data for non-local writes (when NLRW nonempty)
    "recv_writes",       # RECV data for non-local writes
)
