"""Source texts of the benchmark programs."""

from __future__ import annotations


def jacobi() -> str:
    """4-point stencil with convergence test (paper Figure 7c workload).

    (BLOCK, BLOCK) on a ``2 x (nprocs/2)`` grid, as in the paper's JACOBI
    experiment; parameters: ``n`` (grid size), ``niter`` (time steps).
    """
    return """
program jacobi
  parameter n, niter
  real u(n,n), v(n,n)
  scalar err
  processors p(2, nprocs / 2)
  template t(n,n)
  align u(i,j) with t(i,j)
  align v(i,j) with t(i,j)
  distribute t(block, block) onto p

  do i = 1, n
    do j = 1, n
      v(i,j) = i + j * 0.3
      u(i,j) = 0.0
    end do
  end do
  do iter = 1, niter
    do i = 2, n-1
      do j = 2, n-1
        u(i,j) = 0.25 * (v(i-1,j) + v(i+1,j) + v(i,j-1) + v(i,j+1))
      end do
    end do
    err = 0.0
    do i = 2, n-1
      do j = 2, n-1
        err = max(err, abs(u(i,j) - v(i,j)))
      end do
    end do
    do i = 2, n-1
      do j = 2, n-1
        v(i,j) = u(i,j)
      end do
    end do
  end do
end
"""


def tomcatv() -> str:
    """TOMCATV-style mesh generation (paper Figure 7a workload).

    (BLOCK, *) row distribution over a 1-D grid; per time step: two
    residual stencil sweeps, two max reductions (the paper attributes
    TOMCATV's reduced small-size scalability to these), and update sweeps.
    Parameters: ``n``, ``niter``.
    """
    return """
program tomcatv
  parameter n, niter
  real x(n,n), y(n,n), rx(n,n), ry(n,n)
  scalar rxm, rym
  processors p(nprocs)
  template t(n,n)
  align x(i,j) with t(i,j)
  align y(i,j) with t(i,j)
  align rx(i,j) with t(i,j)
  align ry(i,j) with t(i,j)
  distribute t(block, *) onto p

  do i = 1, n
    do j = 1, n
      x(i,j) = i * 1.0
      y(i,j) = j * 1.0
      rx(i,j) = 0.0
      ry(i,j) = 0.0
    end do
  end do
  do iter = 1, niter
    do i = 2, n-1
      do j = 2, n-1
        rx(i,j) = x(i-1,j) + x(i+1,j) + x(i,j-1) + x(i,j+1) - 4.0 * x(i,j)
        ry(i,j) = y(i-1,j) + y(i+1,j) + y(i,j-1) + y(i,j+1) - 4.0 * y(i,j)
      end do
    end do
    rxm = 0.0
    rym = 0.0
    do i = 2, n-1
      do j = 2, n-1
        rxm = max(rxm, abs(rx(i,j)))
        rym = max(rym, abs(ry(i,j)))
      end do
    end do
    do i = 2, n-1
      do j = 2, n-1
        x(i,j) = x(i,j) + 0.125 * rx(i,j)
        y(i,j) = y(i,j) + 0.125 * ry(i,j)
      end do
    end do
  end do
end
"""


def erlebacher() -> str:
    """ERLEBACHER-style 3D compact differencing (paper Figure 7b workload).

    (*, *, BLOCK): the forward z-sweep pipelines across processors
    (many small messages), and the final correction reads the last z-plane
    everywhere (a broadcast-like panel communication) — the two factors the
    paper names for ERLEBACHER's limited speedup.  Parameters: ``n``
    (x/y extent), ``nz`` (z extent), ``niter``.
    """
    return """
program erlebacher
  parameter n, nz, niter
  real f(n,n,nz), d(n,n,nz)
  processors p(nprocs)
  template t(n,n,nz)
  align f(i,j,k) with t(i,j,k)
  align d(i,j,k) with t(i,j,k)
  distribute t(*, *, block) onto p

  do k = 1, nz
    do i = 1, n
      do j = 1, n
        f(i,j,k) = i + 2 * j + 3 * k * 1.0
        d(i,j,k) = f(i,j,k) * 0.1
      end do
    end do
  end do
  do iter = 1, niter
    do k = 2, nz
      do i = 1, n
        do j = 1, n
          d(i,j,k) = d(i,j,k) - 0.4 * d(i,j,k-1)
        end do
      end do
    end do
    do k = 1, nz - 1
      do i = 1, n
        do j = 1, n
          f(i,j,k) = d(i,j,k) - 0.3 * d(i,j,nz)
        end do
      end do
    end do
  end do
end
"""


def gauss() -> str:
    """Gaussian elimination with cyclic rows (paper Figure 5 scenario).

    ``(CYCLIC, *)`` on a symbolic 1-D grid: the pivot-row read makes every
    later row's update non-local; active-VP analysis restricts senders to
    the pivot row's owner.  Parameter: ``n``.
    """
    return """
program gauss
  parameter n
  real a(n,n)
  processors p(nprocs)
  template t(n,n)
  align a(i,j) with t(i,j)
  distribute t(cyclic, *) onto p

  do i = 1, n
    do j = 1, n
      a(i,j) = 1.0 + i * 0.3 + j * 0.7
    end do
  end do
  do k = 1, n - 1
    do i = k + 1, n
      do j = k + 1, n
        a(i,j) = a(i,j) - a(k,j) * 0.01
      end do
    end do
  end do
end
"""


def sp_like(routines: int = 6, nests_per_routine: int = 5,
            symbolic_procs: bool = True) -> str:
    """Synthetic multi-procedure 3D ADI-style application (NAS SP stand-in).

    Used for the Table 1 compile-time study: directional sweep routines
    over 3D arrays with shift stencils in x, y, and z, called from a time
    loop.  ``symbolic_procs`` selects a ``2 x (nprocs/2)`` grid (the
    paper's SP-sym) versus a fixed ``2 x 2`` grid (SP-4).
    """
    grid = "processors p(2, nprocs / 2)" if symbolic_procs else \
        "processors p(2, 2)"
    arrays = ["u", "v", "w", "q"]
    header = [
        "program sp_like",
        "  parameter n, niter",
        "  real " + ", ".join(f"{a}(n,n,n)" for a in arrays),
        "  scalar rnorm",
        f"  {grid}",
        "  template t(n,n,n)",
    ]
    for a in arrays:
        header.append(f"  align {a}(i,j,k) with t(i,j,k)")
    header.append("  distribute t(*, block, block) onto p")

    body = []
    # main: init + time loop calling the sweep routines
    body.append("  do k = 1, n")
    body.append("    do j = 1, n")
    body.append("      do i = 1, n")
    for index, a in enumerate(arrays):
        body.append(
            f"        {a}(i,j,k) = i + {index + 2} * j + k * 0.5"
        )
    body.append("      end do")
    body.append("    end do")
    body.append("  end do")
    body.append("  do step = 1, niter")
    for r in range(routines):
        body.append(f"    call sweep{r}")
    body.append("  end do")

    procs = []
    directions = [
        ("i", "u", "v"), ("j", "v", "w"), ("k", "w", "q"),
        ("i", "q", "u"), ("j", "u", "w"), ("k", "v", "q"),
    ]
    for r in range(routines):
        axis, src, dst = directions[r % len(directions)]
        procs.append(f"procedure sweep{r}")
        for nest in range(nests_per_routine):
            coeff = 0.01 * (nest + 1)
            if axis == "i":
                ref = f"{src}(i-1,j,k) + {src}(i+1,j,k)"
                lo = ("2", "1", "1")
                hi = ("n-1", "n", "n")
            elif axis == "j":
                ref = f"{src}(i,j-1,k) + {src}(i,j+1,k)"
                lo = ("1", "2", "1")
                hi = ("n", "n-1", "n")
            else:
                ref = f"{src}(i,j,k-1) + {src}(i,j,k+1)"
                lo = ("1", "1", "2")
                hi = ("n", "n", "n-1")
            procs.append(f"  do k = {lo[2]}, {hi[2]}")
            procs.append(f"    do j = {lo[1]}, {hi[1]}")
            procs.append(f"      do i = {lo[0]}, {hi[0]}")
            procs.append(
                f"        {dst}(i,j,k) = {dst}(i,j,k) + "
                f"{coeff} * ({ref})"
            )
            procs.append("      end do")
            procs.append("    end do")
            procs.append("  end do")
        procs.append("end")
    # Grammar order: declarations, procedures, then the main body.
    return "\n".join(header + procs + body + ["end"]) + "\n"


def redblack() -> str:
    """Red-black Gauss-Seidel relaxation (strided iteration sets).

    Exercises constant loop steps end to end: iteration sets, communication
    sets, and generated loops all carry stride (existential) constraints.
    Parameters: ``n``, ``niter``.
    """
    return """
program redblack
  parameter n, niter
  real a(n)
  processors p(nprocs)
  template t(n)
  align a(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    a(i) = i * 0.5
  end do
  do iter = 1, niter
    do i = 2, n - 1, 2
      a(i) = 0.5 * (a(i-1) + a(i+1))
    end do
    do i = 3, n - 1, 2
      a(i) = 0.5 * (a(i-1) + a(i+1))
    end do
  end do
end
"""


def widehalo() -> str:
    """Wide-halo Jacobi with an independent line-relaxation sweep.

    The 5-point-wide row stencil on ``u`` needs a two-deep halo of ``v``
    from each (BLOCK, *) neighbor — per iteration, a wide communication
    event — while the ``w`` line relaxation (its own ``m``-sized
    template, carried in the local ``j`` dimension) is purely local and
    touches neither array.  A backend that can overlap communication
    with independent computation (the ``taskgraph`` scheduler) hides the
    halo latency behind the ``w`` sweep; program-order backends pay them
    serially.  Parameters: ``n`` (stencil grid size), ``m`` (relaxation
    grid size), ``niter`` (time steps).
    """
    return """
program widehalo
  parameter n, m, niter
  real u(n,n), v(n,n), w(m,m), w2(m,m)
  processors p(nprocs)
  template t(n,n)
  template s(m,m)
  align u(i,j) with t(i,j)
  align v(i,j) with t(i,j)
  align w(i,j) with s(i,j)
  align w2(i,j) with s(i,j)
  distribute t(block, *) onto p
  distribute s(block, *) onto p

  do i = 1, n
    do j = 1, n
      v(i,j) = i * 0.3 + j * 0.7
      u(i,j) = 0.0
    end do
  end do
  do i = 1, m
    do j = 1, m
      w(i,j) = i * 0.1 + j * 0.2
    end do
  end do
  do iter = 1, niter
    do i = 3, n - 2
      do j = 1, n
        u(i,j) = 0.2 * (v(i-2,j) + v(i-1,j) + v(i,j) + v(i+1,j) + v(i+2,j))
      end do
    end do
    do i = 1, m
      do j = 2, m - 1
        w2(i,j) = 0.3 * w(i,j) + 0.35 * (w(i,j-1) + w(i,j+1))
      end do
    end do
    do i = 1, m
      do j = 2, m - 1
        w(i,j) = w2(i,j)
      end do
    end do
    do i = 3, n - 2
      do j = 1, n
        v(i,j) = u(i,j)
      end do
    end do
  end do
end
"""
