"""Benchmark programs in the mini-HPF language (paper Sections 6 and 7).

Each function returns mini-HPF source text.  The codes mirror the paper's
benchmark set structurally:

* :func:`jacobi` — 4-point stencil with a convergence loop, (BLOCK, BLOCK)
  on a ``2 × (nprocs/2)`` grid (Figure 7c);
* :func:`tomcatv` — mesh-generation-style residual/update sweeps with two
  max-reductions per time step, (BLOCK, *) (Figure 7a);
* :func:`erlebacher` — 3D compact-differencing-style code: a z-pipelined
  forward sweep plus a top-plane broadcast correction, (*, *, BLOCK)
  (Figure 7b);
* :func:`gauss` — the Gaussian-elimination loop of Figure 5, cyclic rows;
* :func:`redblack` — red-black Gauss-Seidel with strided (step-2) loops;
* :func:`sp_like` — a synthetic multi-procedure 3D ADI-style application of
  configurable size used for the Table 1 compile-time study (the stand-in
  for NAS SP, which we cannot redistribute).
"""

from .sources import (
    erlebacher,
    gauss,
    jacobi,
    redblack,
    sp_like,
    tomcatv,
    widehalo,
)

__all__ = [
    "erlebacher",
    "gauss",
    "jacobi",
    "redblack",
    "sp_like",
    "tomcatv",
    "widehalo",
]
