"""Advisory cross-process file locks with stale-holder recovery.

The persistent compile cache and the service artifact store are plain
directories that several *processes* may read and write concurrently
(parallel CI jobs, a compile server next to ad-hoc CLI invocations).
Artifact files themselves are always safe — they are written with
tmp-file + ``os.replace`` so a reader never observes a torn file — but
the *bookkeeping* around them (eviction scans, "is it already there?"
write dedup, clear) needs mutual exclusion to avoid doing the same work
twice or double-counting evictions.

:class:`FileLock` provides that exclusion with ``fcntl.flock`` on a
dedicated ``.lock`` file:

* the kernel releases ``flock`` automatically when the holding process
  exits (even via SIGKILL), so a crashed writer can never wedge the
  cache;
* a holder that is alive but *stuck* is handled by stale recovery: when
  acquisition times out and the lock file's mtime is older than
  ``stale_after`` seconds, the waiter breaks the lock by unlinking the
  file and locking a fresh inode.  The old holder keeps its ``flock`` on
  the orphaned inode; both then proceed.  This deliberately trades
  strict exclusion for liveness — safe here because artifact writes are
  atomic regardless, so the worst outcome of a broken lock is duplicated
  work, never corruption.  Holders re-touch the file's mtime on acquire
  so an active lock is never judged stale.

On platforms without ``fcntl`` the lock degrades to in-process-only
exclusion (a ``threading.Lock``), which keeps single-process semantics
intact.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-posix fallback
    fcntl = None  # type: ignore[assignment]


class LockTimeout(TimeoutError):
    """Could not acquire a :class:`FileLock` within the deadline."""


class FileLock:
    """An advisory inter-process lock backed by ``flock`` on a lock file.

    Also takes an internal :class:`threading.Lock`, so one instance may
    be shared by many threads of one process: thread exclusion comes from
    the mutex, process exclusion from ``flock``.  Re-entrant use by the
    same thread is a programming error, not supported.
    """

    def __init__(
        self,
        path: os.PathLike,
        stale_after: float = 30.0,
        poll_interval: float = 0.01,
        timeout: float = 10.0,
    ):
        self.path = Path(path)
        self.stale_after = stale_after
        self.poll_interval = poll_interval
        self.timeout = timeout
        self._thread_lock = threading.Lock()
        self._fd: Optional[int] = None

    # -- acquisition -------------------------------------------------------

    def _try_flock(self) -> bool:
        """One non-blocking attempt; (re)opens the file each try so a
        broken (unlinked) lock file is re-created with a fresh inode."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return False
        # Got it — but only the current inode counts.  If another waiter
        # broke the lock between our open and flock, the path now names a
        # different file and our lock guards an orphan; retry.
        try:
            if not self._still_current(fd):
                fcntl.flock(fd, fcntl.LOCK_UN)
                os.close(fd)
                return False
        except OSError:
            os.close(fd)
            return False
        os.utime(self.path, None)  # mark the holder as live
        self._fd = fd
        return True

    def _still_current(self, fd: int) -> bool:
        try:
            path_stat = os.stat(self.path)
        except FileNotFoundError:
            return False
        fd_stat = os.fstat(fd)
        return (path_stat.st_dev, path_stat.st_ino) == (
            fd_stat.st_dev,
            fd_stat.st_ino,
        )

    def _break_if_stale(self) -> bool:
        """Unlink the lock file if its holder looks dead/wedged."""
        try:
            age = time.time() - self.path.stat().st_mtime
        except FileNotFoundError:
            return True  # already broken by someone else
        if age < self.stale_after:
            return False
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        return True

    def acquire(self, timeout: Optional[float] = None) -> "FileLock":
        timeout = self.timeout if timeout is None else timeout
        self._thread_lock.acquire()
        try:
            if fcntl is None:  # thread-level exclusion only
                return self
            deadline = time.monotonic() + timeout
            broke_stale = False
            while True:
                if self._try_flock():
                    return self
                if time.monotonic() >= deadline:
                    if not broke_stale and self._break_if_stale():
                        # One bounded grace period to contend for the
                        # fresh inode with the other waiters.
                        broke_stale = True
                        deadline = time.monotonic() + min(timeout, 1.0)
                        continue
                    raise LockTimeout(
                        f"could not lock {self.path} within {timeout:.1f}s "
                        f"(holder alive and younger than "
                        f"{self.stale_after:.0f}s)"
                    )
                time.sleep(self.poll_interval)
        except BaseException:
            self._thread_lock.release()
            raise

    def release(self) -> None:
        try:
            if self._fd is not None:
                try:
                    fcntl.flock(self._fd, fcntl.LOCK_UN)
                finally:
                    os.close(self._fd)
                self._fd = None
        finally:
            self._thread_lock.release()

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()
