"""Persistent on-disk compile cache (warm-start compiles).

A compiled SPMD artifact (the whole :class:`~repro.core.driver.CompiledProgram`
— AST, data mapping, analyses, emitted node-program source) is stored under
a **fingerprint** of everything that determines it:

* the program source text (byte-exact);
* every semantic field of :class:`~repro.core.options.CompilerOptions`
  (``caching`` and ``cache_dir`` themselves are excluded — they select
  *how* to compile, not *what* is compiled, and the cached and uncached
  paths are required to produce byte-identical programs);
* the package version and the artifact format version.

Artifacts are pickles written atomically (tmp file + ``os.replace``) so a
concurrent reader never sees a half-written file; a corrupted, truncated,
or version-skewed artifact is treated as a miss and recompiled, never an
error.  Reads therefore take no lock at all.  *Writers* (and ``clear``)
additionally serialize on a per-directory advisory ``.lock``
(:class:`~repro.cache.locks.FileLock` — ``flock``, auto-released on
process death, stale holders broken after a grace period): after
acquiring it they re-check for an artifact another process may have
published in the meantime and skip the duplicate write, which keeps
maintenance bookkeeping (entry counts, eviction decisions in the sharded
service store built on top of this class) from racing between
processes.  Like any pickle store, the cache directory must be trusted —
do not point ``--cache-dir`` at attacker-writable locations.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import fields
from pathlib import Path
from typing import Dict, Optional

from .locks import FileLock
from .manager import caches

#: Bump when the artifact layout changes incompatibly.
FORMAT_VERSION = 1

_ARTIFACT_PREFIX = "cc-"
_ARTIFACT_SUFFIX = ".pkl"

#: Option fields that do not affect the compiled artifact.
_NON_SEMANTIC_OPTIONS = frozenset({"caching", "cache_dir", "profile_sets"})

#: Counters for the persistent layer (reported next to the memo caches).
_COUNTS = caches.register("persist.compile", maxsize=16)


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-dhpf``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return str(Path.home() / ".cache" / "repro-dhpf")


def options_fingerprint_fields(options) -> Dict[str, object]:
    """The semantic option fields, as a JSON-stable dict."""
    return {
        f.name: getattr(options, f.name)
        for f in fields(options)
        if f.name not in _NON_SEMANTIC_OPTIONS
    }


def compute_fingerprint(
    source: str, options, version: Optional[str] = None
) -> str:
    """Hex digest keying one (source, options, version) compilation."""
    if version is None:
        from .. import __version__ as version
    payload = json.dumps(
        {
            "format": FORMAT_VERSION,
            "source": source,
            "options": options_fingerprint_fields(options),
            "version": version,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CompileCache:
    """A directory of fingerprint-keyed compiled artifacts."""

    #: Name of the per-directory advisory writer lock.
    LOCK_NAME = ".lock"

    def __init__(self, root: str, lock_timeout: float = 10.0,
                 lock_stale_after: float = 30.0):
        self.root = Path(root)
        self.lock_timeout = lock_timeout
        self._lock = FileLock(
            self.root / self.LOCK_NAME,
            stale_after=lock_stale_after,
            timeout=lock_timeout,
        )

    @property
    def lock(self) -> FileLock:
        """The directory's advisory writer lock.  Callers doing their own
        maintenance on the directory (e.g. the service store's LRU
        eviction sweep) serialize on this same lock; it is *not*
        re-entrant, so never wrap a call to :meth:`store`/:meth:`clear`
        in it."""
        return self._lock

    # -- paths -------------------------------------------------------------

    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"{_ARTIFACT_PREFIX}{fingerprint[:40]}{_ARTIFACT_SUFFIX}"

    def _artifacts(self):
        if not self.root.is_dir():
            return []
        return sorted(
            p
            for p in self.root.iterdir()
            if p.name.startswith(_ARTIFACT_PREFIX)
            and p.name.endswith(_ARTIFACT_SUFFIX)
        )

    # -- load / store ------------------------------------------------------

    def load(self, fingerprint: str):
        """The cached :class:`CompiledProgram`, or ``None`` on any miss.

        Unreadable, truncated, or mismatched artifacts fall back to a cold
        compile; the stored fingerprint is re-checked so a short-prefix
        filename collision cannot serve the wrong program.
        """
        path = self.path_for(fingerprint)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if not isinstance(payload, dict):
                raise ValueError("artifact payload is not a dict")
            if payload.get("format") != FORMAT_VERSION:
                raise ValueError("artifact format version mismatch")
            if payload.get("fingerprint") != fingerprint:
                raise ValueError("artifact fingerprint mismatch")
            compiled = payload["compiled"]
        except FileNotFoundError:
            _COUNTS.misses += 1
            return None
        except Exception:
            # Corrupt/truncated/stale artifact: drop it and recompile.
            _COUNTS.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        _COUNTS.hits += 1
        return compiled

    def store(self, fingerprint: str, compiled) -> Path:
        """Atomically write the artifact; returns its path.

        Serializes with concurrent writing *processes* on the directory's
        advisory lock and re-checks after acquiring it: if another writer
        published a valid artifact for this fingerprint while we waited,
        the duplicate write is skipped (the racing compiles are required
        to be byte-equivalent, so either copy serves).  If the lock
        cannot be obtained even after stale-holder recovery, the write
        proceeds unlocked — the tmp+rename protocol keeps that safe, it
        merely readmits the benign duplicate-write race.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(fingerprint)
        try:
            with self._lock:
                if self._valid_artifact(fingerprint):
                    return path
                return self._write(fingerprint, compiled, path)
        except TimeoutError:
            return self._write(fingerprint, compiled, path)

    def _valid_artifact(self, fingerprint: str) -> bool:
        """Is a loadable artifact for ``fingerprint`` already on disk?

        Reread-after-lock: validates the payload (not just existence), so
        a corrupt leftover is still overwritten.  Does not touch the
        hit/miss counters — this is writer bookkeeping, not a lookup.
        """
        path = self.path_for(fingerprint)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            return (
                isinstance(payload, dict)
                and payload.get("format") == FORMAT_VERSION
                and payload.get("fingerprint") == fingerprint
            )
        except Exception:
            return False

    def _write(self, fingerprint: str, compiled, path: Path) -> Path:
        payload = {
            "format": FORMAT_VERSION,
            "fingerprint": fingerprint,
            "compiled": compiled,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=".tmp-", suffix=_ARTIFACT_SUFFIX
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # -- maintenance -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        artifacts = self._artifacts()
        return {
            "dir": str(self.root),
            "entries": len(artifacts),
            "bytes": sum(p.stat().st_size for p in artifacts),
        }

    def clear(self) -> int:
        """Delete every artifact; returns how many were removed.

        Takes the writer lock so a concurrent ``store`` is not interleaved
        with the sweep (its artifact either fully survives or is fully
        removed, never half-counted).
        """
        removed = 0
        try:
            lock = self._lock.acquire(timeout=self.lock_timeout)
        except TimeoutError:
            lock = None
        try:
            for path in self._artifacts():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        finally:
            if lock is not None:
                lock.release()
        return removed
